"""Body-voltage hysteresis measurement (paper section I claim).

"The techniques that we use to control PBE operate by ensuring that the
body voltage of the SOI device never becomes very high ...  This yields
an added side benefit of reducing the timing hysteresis exhibited by SOI
circuits due to variations in the body voltage.  In narrowing the range
of permissible voltages for the body, we make the timing behavior of the
circuit more predictable."

This module quantifies that claim with the floating-body simulator: over
a stress run it counts, per pulldown device, the phases spent with a
charged body and the number of charge/discharge excursions.  Fewer
charged-body phases means a narrower V_t spread and therefore less
timing hysteresis — the PBE-aware mapping should score lower than the
bulk baseline on the same workload.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, Optional

from ..conventions import NEG_SUFFIX
from ..domino.circuit import DominoCircuit
from .model import PBEModelConfig
from .simulator import PBESimulator


@dataclass(frozen=True)
class HysteresisReport:
    """Aggregate floating-body statistics of one run."""

    cycles: int
    devices: int
    charged_phases: int      #: device-phases spent with a charged body
    excursions: int          #: body low->high transitions
    worst_device_phases: int #: charged phases of the worst single device

    @property
    def charged_fraction(self) -> float:
        """Fraction of device-phases spent with a charged body."""
        total = self.devices * self.cycles * 2
        return self.charged_phases / total if total else 0.0

    def __str__(self) -> str:
        return (f"{self.devices} devices over {self.cycles} cycles: "
                f"{self.charged_phases} charged device-phases "
                f"({100 * self.charged_fraction:.2f}%), "
                f"{self.excursions} excursions, worst device "
                f"{self.worst_device_phases} phases")


class _InstrumentedSimulator(PBESimulator):
    """PBESimulator that tallies body-state statistics per phase."""

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self.charged_phases = 0
        self.excursions = 0
        self._per_device: Dict[tuple, int] = {}
        self._prev_high: Dict[tuple, bool] = {}

    def _update_bodies(self, inst, signal_values):
        super()._update_bodies(inst, signal_values)
        for index, body in enumerate(inst.bodies):
            key = (inst.flat.gate.name, index)
            if body.high:
                self.charged_phases += 1
                self._per_device[key] = self._per_device.get(key, 0) + 1
                if not self._prev_high.get(key, False):
                    self.excursions += 1
            self._prev_high[key] = body.high

    @property
    def worst_device_phases(self) -> int:
        return max(self._per_device.values(), default=0)


def measure_hysteresis(circuit: DominoCircuit, cycles: int = 300,
                       seed: int = 0, hold_probability: float = 0.7,
                       config: Optional[PBEModelConfig] = None
                       ) -> HysteresisReport:
    """Run a held-vector stress workload and tally body excursions.

    The same ``(cycles, seed, hold_probability)`` triple produces the
    identical input sequence for every circuit, so reports for different
    mappings of the same network are directly comparable.
    """
    sim = _InstrumentedSimulator(circuit, config=config)
    base_inputs = [name for name in circuit.inputs
                   if not name.endswith(NEG_SUFFIX)]
    rng = random.Random(seed)
    vector = {name: bool(rng.getrandbits(1)) for name in base_inputs}
    for _ in range(cycles):
        if rng.random() >= hold_probability:
            for name in base_inputs:
                if rng.random() < 0.3:
                    vector[name] = not vector[name]
        sim.step(dict(vector))
    devices = sum(len(inst.bodies) for inst in sim._instances.values())
    return HysteresisReport(
        cycles=cycles,
        devices=devices,
        charged_phases=sim.charged_phases,
        excursions=sim.excursions,
        worst_device_phases=sim.worst_device_phases,
    )
