"""Floating-body PBE modelling and cycle-accurate domino simulation."""

from .model import BodyState, PBEModelConfig
from .netlist import FOOT, GND, TOP, FlatGate, FlatTransistor, flatten_gate
from .hysteresis import HysteresisReport, measure_hysteresis
from .prune import PruneReport, prune_discharges, prune_gate
from .simulator import (
    CycleResult,
    PBEEvent,
    PBESimulator,
    SimulationReport,
    random_stress,
)

__all__ = [
    "BodyState",
    "PBEModelConfig",
    "FOOT",
    "GND",
    "TOP",
    "FlatGate",
    "FlatTransistor",
    "flatten_gate",
    "HysteresisReport",
    "measure_hysteresis",
    "PruneReport",
    "prune_gate",
    "prune_discharges",
    "CycleResult",
    "PBEEvent",
    "PBESimulator",
    "SimulationReport",
    "random_stress",
]
