"""Multi-cycle domino simulator with floating-body / PBE modelling.

Each clock cycle has a **precharge** phase (dynamic nodes pulled high,
p-discharge transistors pull their junctions low, domino gate outputs all
low) and an **evaluate** phase (n-clock feet conduct, pulldown networks
evaluate).  Internal pulldown nodes that are not driven in a phase *float*
and retain their previous value — exactly the mechanism that lets SOI
bodies charge up and arms the parasitic bipolar transistor.

The simulator reproduces the paper's section III-B failure scenario on a
bulk-mapped circuit and demonstrates that the same circuit mapped with
``SOI_Domino_Map`` (or post-processed with discharge transistors) never
misfires; the test-suite uses it as a dynamic checker of the static
discharge analysis.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional

from ..domino.circuit import DominoCircuit
from ..errors import SimulationError
from ..sim.domino_sim import evaluate_structure
from ..conventions import NEG_SUFFIX
from .model import BodyState, PBEModelConfig
from .netlist import FOOT, GND, TOP, FlatGate, flatten_gate


@dataclass(frozen=True)
class PBEEvent:
    """One parasitic-bipolar firing.

    ``misfire`` is True when the firing discharges a dynamic node that
    should have stayed high (a wrong logic value); otherwise the bipolar
    current flowed somewhere harmless (e.g. the gate was evaluating low
    anyway).
    """

    cycle: int
    gate: str
    signal: str     #: input driving the transistor whose body fired
    misfire: bool

    def __str__(self) -> str:
        kind = "MISFIRE" if self.misfire else "harmless"
        return (f"cycle {self.cycle}: parasitic bipolar fired in gate "
                f"{self.gate} (device driven by {self.signal}) [{kind}]")


@dataclass
class CycleResult:
    """Observed state after one full clock cycle."""

    cycle: int
    outputs: Dict[str, bool]
    expected: Dict[str, bool]
    events: List[PBEEvent] = field(default_factory=list)

    @property
    def misfires(self) -> List[PBEEvent]:
        return [e for e in self.events if e.misfire]

    @property
    def correct(self) -> bool:
        return self.outputs == self.expected


@dataclass
class SimulationReport:
    """Aggregate of a multi-cycle run."""

    cycles: int = 0
    events: int = 0
    misfires: int = 0
    error_cycles: int = 0
    first_error_cycle: Optional[int] = None
    history: List[CycleResult] = field(default_factory=list)

    @property
    def pbe_free(self) -> bool:
        """True when no parasitic bipolar misfire corrupted any output."""
        return self.misfires == 0 and self.error_cycles == 0

    def __str__(self) -> str:
        return (f"{self.cycles} cycles: {self.events} bipolar events, "
                f"{self.misfires} misfires, {self.error_cycles} cycles with "
                f"wrong outputs"
                + (f" (first at cycle {self.first_error_cycle})"
                   if self.first_error_cycle is not None else ""))


class _GateInstance:
    """Per-gate electrical state."""

    __slots__ = ("flat", "values", "ages", "bodies", "output")

    def __init__(self, flat: FlatGate):
        self.flat = flat
        self.values: Dict[str, bool] = {TOP: True, GND: False}
        #: phases since each node was last driven (0 = driven this phase)
        self.ages: Dict[str, int] = {TOP: 0, GND: 0}
        for node in flat.internal_nodes:
            self.values[node] = False
            self.ages[node] = 0
        if flat.gate.footed:
            self.values[FOOT] = False
            self.ages[FOOT] = 0
        self.bodies = [BodyState() for _ in flat.transistors]
        self.output = False


class PBESimulator:
    """Cycle-accurate domino simulator with floating-body modelling.

    Parameters
    ----------
    circuit:
        The mapped :class:`DominoCircuit` to simulate.
    config:
        Floating-body model parameters (see :class:`PBEModelConfig`).
    derive_complements:
        When True (default), missing complemented inputs (``X_bar``) are
        driven with the complement of ``X`` automatically.
    """

    def __init__(self, circuit: DominoCircuit,
                 config: Optional[PBEModelConfig] = None,
                 derive_complements: bool = True,
                 neg_suffix: str = NEG_SUFFIX):
        self.circuit = circuit
        self.config = config or PBEModelConfig()
        self.derive_complements = derive_complements
        self.neg_suffix = neg_suffix
        self._order = circuit._topological_gates()
        self._instances = {g.name: _GateInstance(flatten_gate(g))
                           for g in self._order}
        self.cycle = 0

    # ------------------------------------------------------------------
    def reset(self) -> None:
        """Return every node and body to its power-up state."""
        for inst in self._instances.values():
            inst.__init__(inst.flat)
        self.cycle = 0

    # ------------------------------------------------------------------
    def _complete_inputs(self, pi_values: Dict[str, bool]) -> Dict[str, bool]:
        values = dict(pi_values)
        for name in self.circuit.inputs:
            if name in values:
                continue
            base = name[: -len(self.neg_suffix)] if name.endswith(
                self.neg_suffix) else None
            if self.derive_complements and base is not None and base in values:
                values[name] = not values[base]
            else:
                raise SimulationError(f"no value for circuit input {name!r}")
        return values

    def step(self, pi_values: Dict[str, bool]) -> CycleResult:
        """Simulate one precharge + evaluate cycle.

        ``pi_values`` maps primary-input names to this cycle's values;
        complemented phases are derived automatically when enabled.
        """
        pis = self._complete_inputs(pi_values)
        events: List[PBEEvent] = []

        # ---------------- precharge phase -----------------------------
        # All domino outputs are low; primary inputs already carry the new
        # vector (they come from static logic that settles early).
        signal_values = dict(pis)
        for gate in self._order:
            signal_values[gate.name] = False
        for gate in self._order:
            inst = self._instances[gate.name]
            self._solve_phase(inst, signal_values, precharge=True)
            self._update_bodies(inst, signal_values)
            inst.output = False

        # ---------------- evaluate phase ------------------------------
        signal_values = dict(pis)
        ideal_values = dict(pis)
        outputs: Dict[str, bool] = {}
        expected: Dict[str, bool] = {}
        for gate in self._order:
            inst = self._instances[gate.name]
            prev_values = dict(inst.values)
            self._solve_phase(inst, signal_values, precharge=False)
            gate_events = self._detect_pbe(inst, signal_values, prev_values)
            events.extend(gate_events)
            if self.config.inject_errors and any(
                    e.misfire for e in gate_events):
                inst.values[TOP] = False
            inst.output = not inst.values[TOP]
            signal_values[gate.name] = inst.output
            ideal_values[gate.name] = bool(
                evaluate_structure(gate.structure,
                                   {k: int(v) for k, v in ideal_values.items()},
                                   1))
            self._update_bodies(inst, signal_values)

        for po, signal in self.circuit.outputs.items():
            outputs[po] = bool(signal_values[signal])
            expected[po] = bool(ideal_values[signal])
        for po, const in self.circuit.const_outputs.items():
            outputs[po] = const
            expected[po] = const

        result = CycleResult(cycle=self.cycle, outputs=outputs,
                             expected=expected, events=events)
        self.cycle += 1
        return result

    # ------------------------------------------------------------------
    def _solve_phase(self, inst: _GateInstance,
                     signal_values: Dict[str, bool], precharge: bool) -> None:
        """Steady-state node values for one phase (updates ``inst.values``)."""
        flat = inst.flat
        parent: Dict[str, str] = {}

        def find(x: str) -> str:
            root = x
            while parent.get(root, root) != root:
                root = parent[root]
            while parent.get(x, x) != x:
                parent[x], x = root, parent[x]
            return root

        def union(a: str, b: str) -> None:
            ra, rb = find(a), find(b)
            if ra != rb:
                parent[ra] = rb

        nodes = [TOP, GND] + flat.internal_nodes
        if flat.gate.footed:
            nodes.append(FOOT)
            if not precharge:
                union(FOOT, GND)  # the n-clock foot conducts
        if precharge:
            for node in flat.discharge_nodes:
                union(node, GND)  # p-discharge transistors conduct
        for t in flat.transistors:
            if signal_values.get(t.signal, False):
                union(t.upper, t.lower)

        groups: Dict[str, List[str]] = {}
        for node in nodes:
            groups.setdefault(find(node), []).append(node)

        gnd_root = find(GND)
        top_root = find(TOP)
        new_values: Dict[str, bool] = {}
        new_ages: Dict[str, int] = {}
        retain = self.config.retain_phases
        for root, members in groups.items():
            if root == gnd_root:
                value = False
                age = 0
            elif root == top_root:
                value = True
                age = 0
            else:
                # Floating subnetwork: a previously high node keeps the
                # group high (the PBE-relevant direction), but parked
                # charge leaks away after `retain_phases` undriven phases.
                # Merging dilutes: the *oldest* high member's age governs
                # the group, so reconnecting stale nodes cannot refresh
                # each other's charge indefinitely.
                high_ages = [inst.ages[m] for m in members
                             if inst.values[m]]
                age = (max(high_ages) + 1) if high_ages else 0
                value = bool(high_ages) and age <= retain
            for m in members:
                new_values[m] = value
                new_ages[m] = age
        if precharge:
            # The precharge pmos holds the dynamic node high even if a
            # discharge transistor fights it through an on pulldown path.
            new_values[TOP] = True
            new_ages[TOP] = 0
        new_values[GND] = False
        new_ages[GND] = 0
        inst.values = new_values
        inst.ages = new_ages

    def _detect_pbe(self, inst: _GateInstance,
                    signal_values: Dict[str, bool],
                    prev_values: Dict[str, bool]) -> List[PBEEvent]:
        """Find parasitic bipolar firings in the just-solved evaluate phase."""
        events: List[PBEEvent] = []
        flat = inst.flat
        for t, body in zip(flat.transistors, inst.bodies):
            if signal_values.get(t.signal, False):
                continue  # device on: no bipolar action
            if not body.high:
                continue
            if not (prev_values[t.lower] and not inst.values[t.lower]):
                continue  # source was not yanked low this phase
            # The emitter dropped with a charged base: the bipolar fires.
            # It corrupts the evaluation iff the collector side sits at the
            # still-high dynamic node.
            misfire = bool(inst.values[TOP]) and bool(inst.values[t.upper])
            events.append(PBEEvent(cycle=self.cycle,
                                   gate=flat.gate.name,
                                   signal=t.signal,
                                   misfire=misfire))
        return events

    def _update_bodies(self, inst: _GateInstance,
                       signal_values: Dict[str, bool]) -> None:
        for t, body in zip(inst.flat.transistors, inst.bodies):
            body.update(
                device_on=signal_values.get(t.signal, False),
                upper_high=inst.values[t.upper],
                lower_high=inst.values[t.lower],
                config=self.config,
            )

    # ------------------------------------------------------------------
    def run(self, sequence: Iterable[Dict[str, bool]],
            keep_history: bool = False) -> SimulationReport:
        """Simulate a sequence of input vectors; aggregate the results."""
        report = SimulationReport()
        for pi_values in sequence:
            result = self.step(pi_values)
            report.cycles += 1
            report.events += len(result.events)
            report.misfires += len(result.misfires)
            if not result.correct:
                report.error_cycles += 1
                if report.first_error_cycle is None:
                    report.first_error_cycle = result.cycle
            if keep_history:
                report.history.append(result)
        return report


def random_stress(circuit: DominoCircuit, cycles: int = 200, seed: int = 0,
                  hold_probability: float = 0.7,
                  config: Optional[PBEModelConfig] = None) -> SimulationReport:
    """Random soak test designed to provoke the PBE.

    Bodies only charge when inputs are *held* for several cycles, so plain
    uniform-random vectors rarely arm the parasitic device.  This driver
    repeats the previous vector with probability ``hold_probability`` and
    otherwise flips a random subset of inputs — mimicking the paper's
    "steady state ... over a sufficiently large period of time" followed
    by a switching event.
    """
    base_inputs = [name for name in circuit.inputs
                   if not name.endswith(NEG_SUFFIX)]
    rng = random.Random(seed)
    sim = PBESimulator(circuit, config=config)

    def sequence():
        vector = {name: bool(rng.getrandbits(1)) for name in base_inputs}
        for _ in range(cycles):
            if rng.random() >= hold_probability:
                for name in base_inputs:
                    if rng.random() < 0.3:
                        vector[name] = not vector[name]
            yield dict(vector)

    return sim.run(sequence())
