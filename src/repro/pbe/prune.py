"""Input-aware discharge-transistor pruning (the paper's section VII).

The mapping algorithms assume the worst case: every discharge point that
*could* arm the parasitic bipolar effect gets a p-discharge transistor.
The paper's future-work observation is that "breakdown will only occur
for a particular sequence of input logic values.  We have not taken this
into account in our algorithm, and incorporating this information could
lead to better solutions."

This module implements that refinement as a sound post-processing pass.
A device ``T`` of a gate is *armable* if some input assignment charges
its floating body — i.e. holds both of its terminals high while ``T`` is
off — in either clock phase:

* **evaluate**: the n-clock foot conducts and the p-discharge transistors
  are off; a terminal is high when it connects to the (still-high)
  dynamic node through conducting transistors and the dynamic node has no
  path to ground (otherwise the gate simply evaluates low);
* **precharge**: the foot is off, every kept p-discharge transistor pulls
  its junction to ground, domino-driven inputs are low, and primary
  inputs are free — the phase that charges stack bottoms above the foot.

A discharge transistor may be removed only if the *whole gate* stays
unarmable without it (discharge transistors protect nodes transitively
through off branches, so removals interact); the pass therefore tries
removals greedily, re-checking global gate safety after each.  The check
enumerates all assignments of the distinct signals feeding the gate
exhaustively (bit-parallel over packed words) with complementary unate
phases (``x`` / ``x_bar``) tied to one variable — which is what kills the
false alarms in selector logic, where a branch can never conduct while
its complementary-select neighbour blocks.  Signals are otherwise treated
as independent, which over-approximates satisfiability, so pruning is
conservative (sound).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

from ..conventions import NEG_SUFFIX
from ..domino.circuit import DominoCircuit
from ..domino.gate import DominoGate
from .netlist import FOOT, GND, TOP, FlatGate, flatten_gate


@dataclass
class PruneReport:
    """Outcome of one pruning pass."""

    points_before: int = 0
    points_after: int = 0
    gates_skipped: int = 0  #: gates with too many signals for exact analysis
    per_gate: Dict[str, Tuple[int, int]] = field(default_factory=dict)

    @property
    def removed(self) -> int:
        return self.points_before - self.points_after

    def __str__(self) -> str:
        return (f"discharge transistors {self.points_before} -> "
                f"{self.points_after} ({self.removed} pruned, "
                f"{self.gates_skipped} gates skipped)")


def _signal_variables(flat: FlatGate, neg_suffix: str):
    """Map each leaf signal to (variable index, negated?)."""
    bases: List[str] = []
    index: Dict[str, int] = {}
    mapping: Dict[str, Tuple[int, bool]] = {}
    for t in flat.transistors:
        signal = t.signal
        if signal in mapping:
            continue
        if t.is_primary and signal.endswith(neg_suffix):
            base = signal[: -len(neg_suffix)]
            negated = True
        else:
            base = signal
            negated = False
        if base not in index:
            index[base] = len(bases)
            bases.append(base)
        mapping[signal] = (index[base], negated)
    return bases, mapping


def _reach_from(flat: FlatGate, source: str,
                edges: Sequence[Tuple[str, str, int]],
                mask: int) -> Dict[str, int]:
    """Bit-parallel connectivity: per node, the word of assignments under
    which the node connects to ``source`` through conducting edges."""
    nodes = [TOP, GND] + flat.internal_nodes
    if flat.gate.footed:
        nodes.append(FOOT)
    reach = {node: 0 for node in nodes}
    reach[source] = mask
    changed = True
    while changed:
        changed = False
        for a, b, word in edges:
            through = reach[a] & word
            if through & ~reach[b]:
                reach[b] |= through
                changed = True
            through = reach[b] & word
            if through & ~reach[a]:
                reach[a] |= through
                changed = True
    return reach


class _GateAnalyser:
    """Exhaustive two-phase armability analysis of one gate."""

    def __init__(self, gate: DominoGate, neg_suffix: str):
        self.gate = gate
        self.flat = flatten_gate(gate)
        self.bases, self.mapping = _signal_variables(self.flat, neg_suffix)
        k = len(self.bases)
        self.total = 1 << k
        self.mask = (1 << self.total) - 1

        var_words: List[int] = []
        for v in range(k):
            word = 0
            block = 1 << v
            for start in range(0, self.total, block * 2):
                word |= ((1 << block) - 1) << (start + block)
            var_words.append(word)

        self.on_eval: List[int] = []
        self.on_pre: List[int] = []
        for t in self.flat.transistors:
            var, negated = self.mapping[t.signal]
            word = var_words[var] ^ (self.mask if negated else 0)
            self.on_eval.append(word)
            # During precharge every domino output is low: only
            # primary-input-driven transistors can conduct.
            self.on_pre.append(word if t.is_primary else 0)

    def _edges(self, on_words: List[int], foot_on: bool,
               discharge_nodes: Sequence[str]) -> List[Tuple[str, str, int]]:
        edges = [(t.upper, t.lower, on_words[i])
                 for i, t in enumerate(self.flat.transistors)]
        if self.flat.gate.footed and foot_on:
            edges.append((FOOT, GND, self.mask))
        for node in discharge_nodes:
            edges.append((node, GND, self.mask))
        return edges

    def safe(self, kept_points: Sequence) -> bool:
        """True when no device can misfire, given that exactly the
        junctions of ``kept_points`` carry p-discharge transistors.

        A device ``T`` can misfire iff

        * its body is *chargeable*: some assignment holds both terminals
          high with ``T`` off, in the evaluate phase (dynamic node still
          high) or in the precharge phase, **and**
        * a *trigger* exists: its source can still be high at the end of a
          precharge phase — either driven high through conducting primary
          inputs, or floating (undriven and undischarged) and retaining a
          high evaluate-phase value — so that the evaluate phase can yank
          it low.  A p-discharge transistor at the source removes exactly
          this: the source is already low before evaluation starts.
        """
        flat = self.flat
        mask = self.mask

        # Evaluate phase: foot on, discharge transistors off.
        reach_e = _reach_from(flat, TOP,
                              self._edges(self.on_eval, True, ()), mask)
        dyn_high = mask & ~reach_e[GND]

        # Precharge phase: foot off, kept discharge transistors conduct.
        discharge_nodes = [flat.junction_of[p] for p in kept_points]
        edges_p = self._edges(self.on_pre, False, discharge_nodes)
        reach_pt = _reach_from(flat, TOP, edges_p, mask)
        reach_pg = _reach_from(flat, GND, edges_p, mask)

        def high_p(node: str) -> int:
            return reach_pt[node] & ~reach_pg[node]

        def float_p(node: str) -> int:
            return mask & ~reach_pt[node] & ~reach_pg[node]

        for i, t in enumerate(flat.transistors):
            if t.lower == GND:
                continue  # source hard-wired to ground: body cannot charge
            off_e = self.on_eval[i] ^ mask
            off_p = self.on_pre[i] ^ mask
            chargeable = (
                (off_e & reach_e[t.lower] & reach_e[t.upper] & dyn_high)
                or (off_p & high_p(t.lower) & high_p(t.upper)))
            if not chargeable:
                continue
            # Trigger: the source survives a precharge phase high.
            lower_high_e = reach_e[t.lower] & dyn_high
            triggerable = high_p(t.lower) or (float_p(t.lower)
                                              and lower_high_e)
            if triggerable:
                return False
        return True


def prune_gate(gate: DominoGate, max_signals: int = 16,
               neg_suffix: str = NEG_SUFFIX):
    """Greedily drop discharge points that the gate provably never needs.

    Returns ``(kept_points, skipped)``.  ``skipped`` is True when the gate
    has more than ``max_signals`` distinct signal variables and was left
    untouched.  Points are only removed while the *whole gate* remains
    unarmable, so removals that would expose another node (e.g. the stack
    bottom above the n-clock foot, which has no discharge transistor of
    its own) are refused.
    """
    if not gate.discharge_points:
        return (), False
    analyser = _GateAnalyser(gate, neg_suffix)
    if len(analyser.bases) > max_signals:
        return tuple(gate.discharge_points), True
    kept = list(gate.discharge_points)
    if not analyser.safe(kept):
        # Even the full worst-case set leaves an armable device (the
        # static model cannot discharge e.g. the foot node): keep all.
        return tuple(kept), False
    for point in list(kept):
        trial = [p for p in kept if p != point]
        if analyser.safe(trial):
            kept = trial
    return tuple(kept), False


def prune_discharges(circuit: DominoCircuit, max_signals: int = 16,
                     neg_suffix: str = NEG_SUFFIX
                     ) -> Tuple[DominoCircuit, PruneReport]:
    """Return a copy of ``circuit`` with unarmable discharge points removed.

    The result intentionally fails :meth:`DominoGate.validate`'s
    worst-case rule (committed points must carry discharge transistors):
    pruning is precisely the demonstration that the worst case is not
    always reachable.  The PBE simulator remains the dynamic judge — the
    test suite stress-checks pruned circuits for misfires.
    """
    pruned = DominoCircuit(circuit.name + "_pruned")
    for name in circuit.inputs:
        pruned.add_input(name)
    report = PruneReport()
    for gate in circuit.gates:
        report.points_before += gate.t_disch
        keep, skipped = prune_gate(gate, max_signals=max_signals,
                                   neg_suffix=neg_suffix)
        if skipped:
            report.gates_skipped += 1
        report.points_after += len(keep)
        report.per_gate[gate.name] = (gate.t_disch, len(keep))
        pruned.add_gate(DominoGate(
            name=gate.name,
            structure=gate.structure,
            footed=gate.footed,
            discharge_points=tuple(keep),
            level=gate.level,
            node_id=gate.node_id,
        ))
    for po, signal in circuit.outputs.items():
        pruned.connect_output(po, signal)
    for po, value in circuit.const_outputs.items():
        pruned.set_const_output(po, value)
    return pruned, report
