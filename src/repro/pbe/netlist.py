"""Flattening domino gates into electrical-node transistor netlists.

The PBE simulator (and the transistor-netlist writer) need the pulldown
*structure tree* expanded into explicit circuit nodes and two-terminal
transistor records.  Junction nodes are numbered so that they correspond
exactly to the path-addressed :data:`~repro.domino.analysis.DischargePoint`
identifiers produced by the static analysis: the junction below child
``i`` of the series composition at tree path ``p`` is ``(p, i)``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from ..domino.analysis import DischargePoint
from ..domino.gate import DominoGate
from ..domino.structure import Leaf, Parallel, Pulldown, Series

#: Reserved node ids inside a flattened gate.
TOP = "top"      #: the dynamic (precharged) node
GND = "gnd"      #: ground
FOOT = "foot"    #: stack bottom above the n-clock foot (footed gates only)


@dataclass(frozen=True)
class FlatTransistor:
    """One pulldown nmos device.

    ``upper`` is the terminal toward the dynamic node, ``lower`` the
    terminal toward ground; ``signal`` drives the transistor gate.
    """

    signal: str
    is_primary: bool
    upper: str
    lower: str


@dataclass
class FlatGate:
    """A domino gate flattened to electrical nodes.

    Attributes
    ----------
    gate:
        The source :class:`DominoGate`.
    transistors:
        Pulldown devices, in structure (leaf) order.
    internal_nodes:
        All junction node ids (excluding TOP/GND/FOOT).
    junction_of:
        Maps each :data:`DischargePoint` to its node id.
    discharge_nodes:
        Node ids that carry a p-discharge transistor.
    bottom:
        ``GND`` for footless gates, ``FOOT`` for footed ones.
    """

    gate: DominoGate
    transistors: List[FlatTransistor] = field(default_factory=list)
    internal_nodes: List[str] = field(default_factory=list)
    junction_of: Dict[DischargePoint, str] = field(default_factory=dict)
    discharge_nodes: List[str] = field(default_factory=list)
    bottom: str = GND


def flatten_gate(gate: DominoGate) -> FlatGate:
    """Expand ``gate``'s pulldown structure into a :class:`FlatGate`."""
    flat = FlatGate(gate=gate, bottom=FOOT if gate.footed else GND)
    counter = [0]

    def new_node() -> str:
        counter[0] += 1
        node = f"n{counter[0]}"
        flat.internal_nodes.append(node)
        return node

    def expand(structure: Pulldown, upper: str, lower: str,
               path: Tuple[int, ...]) -> None:
        if isinstance(structure, Leaf):
            flat.transistors.append(FlatTransistor(
                signal=structure.signal,
                is_primary=structure.is_primary,
                upper=upper,
                lower=lower,
            ))
            return
        if isinstance(structure, Parallel):
            for i, child in enumerate(structure.children):
                expand(child, upper, lower, path + (i,))
            return
        if isinstance(structure, Series):
            n = len(structure.children)
            node_above = upper
            for i, child in enumerate(structure.children):
                node_below = lower if i == n - 1 else new_node()
                expand(child, node_above, node_below, path + (i,))
                if i < n - 1:
                    flat.junction_of[(path, i)] = node_below
                node_above = node_below
            return
        raise TypeError(f"unknown structure node {type(structure)!r}")

    expand(gate.structure, TOP, flat.bottom, ())
    for point in gate.discharge_points:
        try:
            flat.discharge_nodes.append(flat.junction_of[point])
        except KeyError:
            raise ValueError(
                f"gate {gate.name}: discharge point {point} does not "
                "correspond to a junction of the structure") from None
    return flat
