"""Discrete floating-body device model for partially depleted SOI.

This is the behavioural substitute for the paper's silicon/SPICE evidence
(see DESIGN.md, "Substitutions").  It captures the mechanism of the
paper's section III-B at cycle granularity:

* an SOI nmos body is electrically floating;
* when the device is **off** with both source and drain **high** for an
  extended period, leakage and impact ionization charge the body high;
* a switching event on the device's gate couples the body low, and a
  grounded source drains it;
* if the source of a charged-body device is yanked low, the lateral
  parasitic bipolar transistor turns on and dumps charge from the drain
  side — if the drain side is the (supposedly undisturbed) dynamic node
  of a domino gate, the gate evaluates incorrectly.

The model is deliberately conservative and parameter-light: bodies charge
after ``charge_phases`` consecutive phases of the charging condition and
drain after ``decay_phases`` phases with the source low.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class PBEModelConfig:
    """Tunables of the floating-body model.

    Attributes
    ----------
    charge_phases:
        Consecutive simulator phases (two per clock cycle) the charging
        condition must hold before the body is considered high.
    decay_phases:
        Consecutive phases with the source at ground needed to drain a
        charged body (while the device stays off).
    retain_phases:
        How many phases a *floating* (undriven) internal node retains a
        high value before junction leakage pulls it low.  This is what
        makes a grounded stack safe in the paper's model: charge parked on
        a branch-internal junction decays once nothing drives it, so the
        neighbouring bodies never see the sustained source/drain-high
        condition.  A node held high through a *conducting* path (the
        PBE-critical case) never decays.
    inject_errors:
        When True, a parasitic bipolar misfire actually discharges the
        dynamic node, so the wrong value propagates into the fanout logic
        (the paper's "erroneous circuit behavior").  When False the
        simulator only records the event.
    """

    charge_phases: int = 3
    decay_phases: int = 2
    retain_phases: int = 2
    inject_errors: bool = True

    def __post_init__(self):
        if self.charge_phases < 1:
            raise ValueError("charge_phases must be >= 1")
        if self.decay_phases < 1:
            raise ValueError("decay_phases must be >= 1")
        if self.retain_phases < 1:
            raise ValueError("retain_phases must be >= 1")


class BodyState:
    """Floating-body state of one pulldown transistor."""

    __slots__ = ("charge", "decay", "high")

    def __init__(self):
        self.charge = 0
        self.decay = 0
        self.high = False

    def update(self, device_on: bool, upper_high: bool, lower_high: bool,
               config: PBEModelConfig) -> None:
        """Advance the body by one phase given terminal/gate conditions."""
        if device_on:
            # Gate switching/conduction couples and pins the body low.
            self.charge = 0
            self.decay = 0
            self.high = False
            return
        if upper_high and lower_high:
            self.charge += 1
            self.decay = 0
            if self.charge >= config.charge_phases:
                self.high = True
            return
        # Either terminal low: the corresponding body junction leaks the
        # accumulated charge away over a few phases.  (Without this leak,
        # alternating input vectors could pump the body up two phases at
        # a time and defeat any charge threshold.)
        self.decay += 1
        if self.decay >= config.decay_phases:
            self.charge = 0
            self.high = False

    def __repr__(self) -> str:
        return f"BodyState(high={self.high}, charge={self.charge})"
