"""Command-line interface: ``soidomino`` / ``python -m repro``.

Subcommands
-----------
``map``      map a circuit (built-in benchmark name or .bench/.blif/.pla
             file) with one of the three algorithms and print the cost
             summary (optionally the transistor netlist or DOT graph);
``tables``   reproduce the paper's Tables I-IV;
``circuits`` list the built-in benchmark suite;
``pbe``      run the PBE stress simulator on a mapped circuit.
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional

from .bench_suite import circuit_names, get_spec, load_circuit
from .errors import ReproError
from .io import circuit_netlist, circuit_to_dot, load_bench, load_blif, load_pla
from .mapping import ClockWeightedCost, DepthCost, domino_map, rs_map, soi_domino_map
from .network import LogicNetwork, network_stats
from .pbe import random_stress

_ALGORITHMS = {
    "domino": domino_map,
    "rs": rs_map,
    "soi": soi_domino_map,
}


def _load_network(source: str) -> LogicNetwork:
    if source.endswith(".bench"):
        return load_bench(source)
    if source.endswith(".blif"):
        return load_blif(source)
    if source.endswith(".pla"):
        return load_pla(source)
    return load_circuit(source)


def _cmd_map(args) -> int:
    network = _load_network(args.circuit)
    if args.cost == "area":
        model = None
    elif args.cost == "clock":
        model = ClockWeightedCost(args.k)
    else:
        model = DepthCost()
    flow = _ALGORITHMS[args.algorithm]
    result = flow(network, cost_model=model, w_max=args.w_max,
                  h_max=args.h_max)
    cost = result.cost
    print(f"circuit:   {network.name}")
    print(f"input:     {network_stats(network)}")
    if result.unate_report is not None:
        rep = result.unate_report
        print(f"unate:     {rep.unate_gates} AND/OR gates "
              f"(x{rep.duplication_ratio:.2f} duplication, "
              f"{rep.negated_pis} complemented inputs)")
    print(f"algorithm: {args.algorithm} ({args.cost} cost)")
    print(f"mapped:    {cost}")
    if args.netlist:
        print(circuit_netlist(result.circuit))
    if args.dot:
        print(circuit_to_dot(result.circuit))
    return 0


def _cmd_tables(args) -> int:
    from .evaluation import RUNNERS

    which = args.table or list(RUNNERS)
    for key in which:
        runner = RUNNERS[key]
        result = runner(circuits=args.circuits or None)
        print(result.text)
        print()
    return 0


def _cmd_circuits(_args) -> int:
    for name in circuit_names():
        spec = get_spec(name)
        print(f"{name:10s} [{spec.kind:10s}] {spec.description}")
    return 0


def _cmd_pbe(args) -> int:
    network = _load_network(args.circuit)
    result = _ALGORITHMS[args.algorithm](network)
    report = random_stress(result.circuit, cycles=args.cycles,
                           seed=args.seed)
    print(f"circuit {network.name}, {args.algorithm}-mapped: {report}")
    print("PBE-free" if report.pbe_free else "PBE MISFIRES OBSERVED")
    return 0 if report.pbe_free else 1


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="soidomino",
        description="Technology mapping for SOI domino logic with PBE "
                    "avoidance (DAC 2001 reproduction)")
    sub = parser.add_subparsers(dest="command", required=True)

    p_map = sub.add_parser("map", help="map a circuit to domino logic")
    p_map.add_argument("circuit",
                       help="benchmark name or .bench/.blif/.pla file")
    p_map.add_argument("-a", "--algorithm", choices=sorted(_ALGORITHMS),
                       default="soi")
    p_map.add_argument("-c", "--cost", choices=["area", "clock", "depth"],
                       default="area")
    p_map.add_argument("-k", type=float, default=2.0,
                       help="clock-transistor weight for --cost clock")
    p_map.add_argument("--w-max", type=int, default=5)
    p_map.add_argument("--h-max", type=int, default=8)
    p_map.add_argument("--netlist", action="store_true",
                       help="print the SPICE-style transistor netlist")
    p_map.add_argument("--dot", action="store_true",
                       help="print the mapped circuit as Graphviz DOT")
    p_map.set_defaults(func=_cmd_map)

    p_tab = sub.add_parser("tables", help="reproduce the paper's tables")
    p_tab.add_argument("-t", "--table", action="append",
                       choices=["table1", "table2", "table3", "table4"],
                       help="which table (repeatable; default: all)")
    p_tab.add_argument("--circuits", nargs="*",
                       help="restrict to these circuits")
    p_tab.set_defaults(func=_cmd_tables)

    p_list = sub.add_parser("circuits", help="list the benchmark suite")
    p_list.set_defaults(func=_cmd_circuits)

    p_pbe = sub.add_parser("pbe", help="stress a mapped circuit for PBE")
    p_pbe.add_argument("circuit")
    p_pbe.add_argument("-a", "--algorithm", choices=sorted(_ALGORITHMS),
                       default="soi")
    p_pbe.add_argument("--cycles", type=int, default=300)
    p_pbe.add_argument("--seed", type=int, default=0)
    p_pbe.set_defaults(func=_cmd_pbe)
    return parser


def main(argv: Optional[list] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except BrokenPipeError:
        # stdout closed early (e.g. piped into `head`): not an error.
        return 0


if __name__ == "__main__":
    sys.exit(main())
