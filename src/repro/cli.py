"""Command-line interface: ``soidomino`` / ``python -m repro``.

Subcommands
-----------
``map``      map a circuit (built-in benchmark name or .bench/.blif/.pla
             file) with one of the three algorithms and print the cost
             summary (optionally the transistor netlist or DOT graph);
``batch``    fan a circuits x flows sweep across the batch pipeline and
             print per-task costs, timings and engine instrumentation;
``tables``   reproduce the paper's Tables I-IV;
``circuits`` list the built-in benchmark suite;
``passes``   list the flow-pass registry and the preset pass lists;
``metrics``  map a circuit and dump its metrics registry (Prometheus
             text exposition, or JSON with ``--json``);
``pbe``      run the PBE stress simulator on a mapped circuit;
``chaos``    run the resilience fault-matrix drill: one scenario per
             registered fault point, each asserting its documented
             recovery and bit-identical digests for non-faulted work;
``serve``    run the mapping-as-a-service daemon: a JSON job API over
             a warm worker pool and the persistent cone cache
             (DESIGN.md §13);
``cache``    inspect or clear the persistent cross-process cone cache
             (``--json``, ``--clear``).

Every subcommand honours the ``REPRO_FAULTS`` environment variable
(a :func:`repro.resilience.plan_from_spec` spec string), which installs
a deterministic fault plan for the process — the hook chaos tooling and
operators use to rehearse failures against the real CLI surfaces.

``map``, ``batch`` and ``bench`` all speak the unified
``soidomino-report/2`` JSON schema (:mod:`repro.obs.report`) via
``--json`` / their payload files, and all accept ``--trace FILE`` to
export the run's span tree — ``.json``/``.trace`` writes Chrome
``trace_event`` format (load in Perfetto or ``chrome://tracing``),
``.jsonl`` writes one span per line.  ``map`` additionally supports
checkpoint/resume via ``--checkpoint DIR``.
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional

from .bench_suite import circuit_names, get_spec, load_circuit
from .errors import ReproError
from .io import circuit_netlist, circuit_to_dot, load_bench, load_blif, load_pla
from .mapping import FLOW_PRESETS, ClockWeightedCost, DepthCost, map_network
from .mapping.kernel import available_kernels
from .network import LogicNetwork, network_stats
from .pbe import random_stress
from .resilience import FAULT_POINTS, install_from_env

_FLOW_CHOICES = sorted(FLOW_PRESETS)


def _load_network(source: str) -> LogicNetwork:
    if source.endswith(".bench"):
        return load_bench(source)
    if source.endswith(".blif"):
        return load_blif(source)
    if source.endswith(".pla"):
        return load_pla(source)
    return load_circuit(source)


def _cost_model(cost: str, k: float):
    if cost == "area":
        return None
    if cost == "clock":
        return ClockWeightedCost(k)
    return DepthCost()


def _export_trace(spans, path: str, *, quiet: bool = False) -> None:
    """Write span trees to ``path``; format inferred from the extension.

    The confirmation line goes to stderr when ``quiet`` (JSON mode:
    stdout must stay machine-parseable).
    """
    from .obs import write_trace

    fmt = write_trace(spans, path)
    print(f"trace:     {path} ({fmt})",
          file=sys.stderr if quiet else sys.stdout)


def _cmd_map(args) -> int:
    from .mapping import MapperConfig

    network = _load_network(args.circuit)
    model = _cost_model(args.cost, args.k)
    kernel_kw = ({} if args.auto_threshold is None
                 else {"auto_threshold": args.auto_threshold})
    config = MapperConfig(w_max=args.w_max, h_max=args.h_max,
                          kernel=args.kernel, **kernel_kw)
    profiler = None
    if args.profile:
        import cProfile

        profiler = cProfile.Profile()
        profiler.enable()
    result = map_network(network, flow=args.algorithm, cost_model=model,
                         config=config, checkpoint_dir=args.checkpoint)
    if profiler is not None:
        profiler.disable()
    if args.trace:
        _export_trace([result.trace] if result.trace else [],
                      args.trace, quiet=args.json)
    if args.json:
        import json

        from .obs import flow_report

        payload = flow_report(result, cost_objective=args.cost,
                              input_stats=network_stats(network).as_dict(),
                              digest=result.circuit.digest())
        if args.netlist:
            payload["netlist"] = circuit_netlist(result.circuit)
        if args.dot:
            payload["dot"] = circuit_to_dot(result.circuit)
        print(json.dumps(payload, indent=1))
        return 0
    cost = result.cost
    print(f"circuit:   {network.name}")
    print(f"input:     {network_stats(network)}")
    if result.unate_report is not None:
        rep = result.unate_report
        print(f"unate:     {rep.unate_gates} AND/OR gates "
              f"(x{rep.duplication_ratio:.2f} duplication, "
              f"{rep.negated_pis} complemented inputs)")
    print(f"algorithm: {args.algorithm} ({args.cost} cost)")
    print(f"kernel:    {args.kernel} (active: {result.mapping.kernel})")
    print(f"mapped:    {cost}")
    print(f"stats:     {result.stats.summary()} "
          f"elapsed={result.elapsed_s:.3f}s")
    print("passes:    " + " ".join(
        f"{r.name}={r.elapsed_s:.3f}s" if r.ran else f"{r.name}[{r.status}]"
        for r in result.passes))
    if args.netlist:
        print(circuit_netlist(result.circuit))
    if args.dot:
        print(circuit_to_dot(result.circuit))
    if profiler is not None:
        import pstats

        print(f"\nprofile:   top 20 by cumulative time "
              f"({result.stats.summary()})")
        stats = pstats.Stats(profiler, stream=sys.stdout)
        stats.sort_stats("cumulative").print_stats(20)
    return 0


def _cmd_batch(args) -> int:
    from .evaluation.formats import render_table
    from .mapping import MapperConfig
    from .pipeline import BatchRunner

    flows = args.algorithm or ["soi"]
    runner = BatchRunner(max_workers=args.jobs, timeout_s=args.timeout,
                         retries=args.retries, use_cache=not args.no_cache,
                         store_path=args.store)
    tasks = BatchRunner.sweep_tasks(
        circuits=args.circuits or None, flows=flows,
        cost_models=[_cost_model(args.cost, args.k)],
        config=MapperConfig(kernel=args.kernel, **(
            {} if args.auto_threshold is None
            else {"auto_threshold": args.auto_threshold})))
    try:
        report = (runner.run_serial(tasks) if args.serial
                  else runner.run(tasks))
    finally:
        runner.close()

    if args.trace:
        _export_trace([report.build_trace()], args.trace, quiet=args.json)
    if args.json:
        import json

        from .obs import batch_report

        print(json.dumps(batch_report(report, cost_objective=args.cost),
                         indent=1))
        return 0 if report.ok else 1

    headers = ["circuit", "flow", "kernel", "T_total", "T_disch", "#G", "L",
               "tuples", "pruned", "combines", "cache", "time_s"]
    rows = []
    for r in report.results:
        if r.ok:
            s = r.stats
            rows.append([r.task.circuit, r.task.flow, r.kernel,
                         r.cost.t_total, r.cost.t_disch,
                         r.cost.num_gates, r.cost.levels,
                         s.tuples_created, s.tuples_pruned, s.combine_calls,
                         f"{s.cache_hits}/{s.cache_requests}",
                         f"{r.elapsed_s:.3f}"])
        else:
            rows.append([r.task.circuit, r.task.flow, "-", "-", "-", "-",
                         "-", "-", "-", "-", "-", f"{r.elapsed_s:.3f}"])
    title = (f"batch: {len(report.results)} tasks, mode={report.mode}, "
             f"{args.cost} cost")
    print(render_table(headers, rows, title=title))

    total = report.total_stats()
    print(f"\ntotals:    {total.summary()}")
    print(f"wall:      {report.wall_s:.2f}s "
          f"(task time {report.task_time_s:.2f}s)")
    for failure in report.failures:
        print(f"FAILED:    {failure.task.label}: {failure.error}",
              file=sys.stderr)
    return 0 if report.ok else 1


def _cmd_bench(args) -> int:
    from .evaluation.formats import render_table
    from .pipeline.bench import (DEFAULT_KERNELS, attach_baseline,
                                 load_payload, run_bench, validate_payload,
                                 write_payload)

    if args.check:
        try:
            payload = load_payload(args.check)
        except (OSError, ValueError) as exc:
            print(f"error: cannot read {args.check}: {exc}", file=sys.stderr)
            return 2
        problems = validate_payload(payload)
        for problem in problems:
            print(f"invalid: {problem}", file=sys.stderr)
        if not problems:
            print(f"{args.check}: valid {payload['schema']} payload, "
                  f"{payload['aggregate']['tasks']} tasks, "
                  f"task_time={payload['aggregate']['task_time_s']:.2f}s")
        return 0 if not problems else 1

    tracer = None
    if args.trace:
        from .obs import Tracer

        tracer = Tracer()
    payload = run_bench(circuits=args.circuits or None,
                        flows=args.algorithm or ["soi"],
                        orderings=args.orderings,
                        modes=args.modes,
                        kernels=args.kernels or DEFAULT_KERNELS,
                        w_max=args.w_max,
                        h_max=args.h_max,
                        jobs=args.jobs,
                        use_cache=args.cache,
                        repeat=args.repeat,
                        tracer=tracer)
    if tracer is not None:
        _export_trace(tracer.roots, args.trace)
    if args.baseline:
        try:
            baseline = load_payload(args.baseline)
        except (OSError, ValueError) as exc:
            print(f"error: cannot read {args.baseline}: {exc}",
                  file=sys.stderr)
            return 2
        attach_baseline(payload, baseline)

    headers = ["circuit", "flow", "ordering", "mode", "kernel", "time_s",
               "combine_s", "tuples", "ktuples/s", "combines", "digest"]
    rows = []
    for r in payload["results"]:
        rows.append([r["circuit"], r["flow"], r["ordering"], r["table_mode"],
                     r["kernel"],
                     f"{r['elapsed_s']:.3f}" if r["ok"] else "-",
                     f"{r['combine_s']:.3f}" if r["ok"] else "-",
                     r["tuples"], f"{r['tuples_per_s'] / 1e3:.0f}",
                     r["combines"],
                     (r["digest"] or "-")[:12]])
    aggregate = payload["aggregate"]
    print(render_table(headers, rows,
                       title=f"bench: {aggregate['tasks']} tasks, "
                             f"repeat={args.repeat}, "
                             f"cache={'on' if args.cache else 'off'}"))
    print(f"\naggregate: task_time={aggregate['task_time_s']:.2f}s "
          f"tuples={aggregate['tuples']} "
          f"({aggregate['tuples_per_s'] / 1e3:.0f}k tuples/s) "
          f"tuple_heavy={aggregate['tuple_heavy_task_time_s']:.2f}s "
          f"failures={aggregate['failures']}")
    kernels = payload.get("kernels", {})
    parity = kernels.get("parity", {})
    if parity.get("configs_checked"):
        verdict = ("IDENTICAL" if not parity["mismatches"]
                   else f"{len(parity['mismatches'])} MISMATCHES")
        speedups = ", ".join(
            f"{name}={ratio:.2f}x" if ratio else f"{name}=n/a"
            for name, ratio in sorted(
                kernels.get("tuple_heavy_throughput_speedup", {}).items()))
        pareto_speedups = ", ".join(
            f"{name}={ratio:.2f}x" if ratio else f"{name}=n/a"
            for name, ratio in sorted(
                kernels.get("pareto_heavy_throughput_speedup", {}).items()))
        print(f"kernels:   digests {verdict} across "
              f"{parity['configs_checked']} configs; tuple-heavy "
              f"throughput vs reference: {speedups or 'n/a'}; "
              f"pareto-heavy: {pareto_speedups or 'n/a'}")
    if "baseline" in payload:
        base = payload["baseline"]

        def fmt(x):
            return f"{x:.2f}x" if x else "n/a"

        print(f"baseline:  speedup={fmt(base['speedup'])} "
              f"tuple_heavy={fmt(base['tuple_heavy_speedup'])}")
    problems = validate_payload(payload)
    for problem in problems:
        print(f"invalid: {problem}", file=sys.stderr)
    write_payload(payload, args.output)
    print(f"wrote:     {args.output}")
    return 1 if (problems or aggregate["failures"]) else 0


def _cmd_tables(args) -> int:
    from .evaluation import RUNNERS

    which = args.table or list(RUNNERS)
    for key in which:
        runner = RUNNERS[key]
        result = runner(circuits=args.circuits or None)
        print(result.text)
        print()
    return 0


def _cmd_circuits(_args) -> int:
    for name in circuit_names():
        spec = get_spec(name)
        print(f"{name:10s} [{spec.kind:10s}] {spec.description}")
    return 0


def _cmd_passes(args) -> int:
    from .flow import available_passes
    from .mapping import FLOW_PASSES

    if args.json:
        import json

        payload = {
            "passes": [{"name": p.name,
                        "requires": list(p.requires),
                        "provides": list(p.provides),
                        "description": p.description}
                       for p in available_passes()],
            "flows": {flow: list(names)
                      for flow, names in FLOW_PASSES.items()},
        }
        print(json.dumps(payload, indent=1))
        return 0
    print("registered passes:")
    for p in available_passes():
        arrow = (f"{', '.join(p.requires) or '-'} -> "
                 f"{', '.join(p.provides) or '-'}")
        print(f"  {p.name:10s} [{arrow}]")
        print(f"             {p.description}")
    print("\nflow pass lists:")
    for flow, names in FLOW_PASSES.items():
        print(f"  {flow:8s} {' -> '.join(names)}")
    return 0


def _cmd_metrics(args) -> int:
    from .obs import prometheus_text

    network = _load_network(args.circuit)
    result = map_network(network, flow=args.algorithm,
                         cost_model=_cost_model(args.cost, args.k))
    if args.json:
        import json

        print(json.dumps(result.metrics.as_dict(), indent=1))
        return 0
    sys.stdout.write(prometheus_text(result.metrics))
    return 0


def _cmd_chaos(args) -> int:
    from .evaluation.formats import render_table
    from .resilience import run_chaos

    report = run_chaos(circuits=args.circuits or None, seed=args.seed,
                       jobs=args.jobs, sites=args.site or None)
    if args.json:
        import json

        print(json.dumps(report.as_dict(), indent=1))
        return 0 if report.ok else 1
    headers = ["site", "verdict", "digests", "detail"]
    rows = [[o.site, "PASS" if o.ok else "FAIL",
             {True: "match", False: "DIVERGED", None: "-"}[o.digests_ok],
             o.detail]
            for o in report.outcomes]
    good = sum(1 for o in report.outcomes if o.ok)
    print(render_table(headers, rows,
                       title=f"chaos: {good}/{len(report.outcomes)} "
                             f"scenarios recovered, seed={report.seed}, "
                             f"circuits={','.join(report.circuits)}"))
    for o in report.outcomes:
        if not o.ok:
            print(f"FAILED:    {o.site}: {o.detail} (spec {o.spec!r})",
                  file=sys.stderr)
    return 0 if report.ok else 1


def _cmd_serve(args) -> int:
    import asyncio
    import errno

    from .errors import ReproError
    from .pipeline import default_store_path
    from .service import MappingService, default_journal_path, serve

    store = None if args.no_store else (args.store or default_store_path())
    journal = args.journal or default_journal_path()
    if journal.lower() == "none":
        journal = None
    service = MappingService(max_workers=args.jobs,
                             store_path=store,
                             use_cache=not args.no_cache,
                             max_queued_per_tenant=args.max_queued,
                             journal_path=journal)
    if service.recovered_jobs:
        print(f"soidomino serve: recovered {service.recovered_jobs} "
              f"job(s) from the journal "
              f"({service.requeued_jobs} re-enqueued)", file=sys.stderr)
    print(f"soidomino serve: http://{args.host}:{args.port} "
          f"(workers={service.pool.width}, "
          f"store={store or 'disabled'}, "
          f"journal={journal or 'disabled'})", file=sys.stderr)
    try:
        asyncio.run(serve(service, host=args.host, port=args.port,
                          drain_grace_s=args.drain_grace))
    except KeyboardInterrupt:
        print("soidomino serve: shutting down", file=sys.stderr)
    except OSError as exc:
        service.close()
        if exc.errno == errno.EADDRINUSE:
            raise ReproError(
                f"cannot bind {args.host}:{args.port}: address already "
                "in use (is another soidomino serve running? pick "
                "another --port or stop it)") from None
        raise ReproError(
            f"cannot bind {args.host}:{args.port}: {exc}") from None
    return 0


def _cmd_cache(args) -> int:
    from .pipeline import CacheStore, default_store_path

    path = args.db or default_store_path()
    store = CacheStore(path)
    try:
        if args.clear:
            removed = store.clear()
            print(f"cleared:   {removed} entries from {path}")
            return 0
        stats = store.stats()
        if args.json:
            import json

            print(json.dumps(stats, indent=1))
            return 0
        print(f"store:     {path}")
        print(f"entries:   {stats['entries']} "
              f"({stats['size_bytes'] / 1024:.1f} KiB on disk)")
        print(f"traffic:   {stats['hits']} hits / "
              f"{stats['hits'] + stats['misses']} requests "
              f"({100.0 * stats['hit_rate']:.0f}%), "
              f"{stats['stores']} stores, "
              f"{stats['evictions']} evictions (cumulative)")
        return 0
    finally:
        store.close()


def _cmd_pbe(args) -> int:
    network = _load_network(args.circuit)
    result = map_network(network, flow=args.algorithm)
    report = random_stress(result.circuit, cycles=args.cycles,
                           seed=args.seed)
    print(f"circuit {network.name}, {args.algorithm}-mapped: {report}")
    print("PBE-free" if report.pbe_free else "PBE MISFIRES OBSERVED")
    return 0 if report.pbe_free else 1


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="soidomino",
        description="Technology mapping for SOI domino logic with PBE "
                    "avoidance (DAC 2001 reproduction)")
    sub = parser.add_subparsers(dest="command", required=True)

    p_map = sub.add_parser("map", help="map a circuit to domino logic")
    p_map.add_argument("circuit",
                       help="benchmark name or .bench/.blif/.pla file")
    p_map.add_argument("-a", "--algorithm", choices=_FLOW_CHOICES,
                       default="soi")
    p_map.add_argument("-c", "--cost", choices=["area", "clock", "depth"],
                       default="area")
    p_map.add_argument("-k", type=float, default=2.0,
                       help="clock-transistor weight for --cost clock")
    p_map.add_argument("--w-max", type=int, default=5)
    p_map.add_argument("--h-max", type=int, default=8)
    p_map.add_argument("--kernel", choices=list(available_kernels()),
                       default="auto",
                       help="DP combine kernel: reference (scalar oracle), "
                            "soa (numpy, bit-identical), auto (hybrid), "
                            "or any registered kernel")
    p_map.add_argument("--auto-threshold", type=int, default=None,
                       metavar="N",
                       help="auto kernel routing cutoff: combine calls "
                            "with at least N candidate pairs go to the "
                            "soa kernel (default 64)")
    p_map.add_argument("--netlist", action="store_true",
                       help="print the SPICE-style transistor netlist")
    p_map.add_argument("--dot", action="store_true",
                       help="print the mapped circuit as Graphviz DOT")
    p_map.add_argument("--json", action="store_true",
                       help="emit the result (cost, stats, per-pass "
                            "records, digest) as JSON")
    p_map.add_argument("--trace", metavar="FILE", default=None,
                       help="export the run's span tree: .json/.trace = "
                            "Chrome trace_event (Perfetto), .jsonl = "
                            "span-per-line")
    p_map.add_argument("--checkpoint", metavar="DIR", default=None,
                       help="flow checkpoint directory: artifacts are "
                            "saved after every pass and a rerun resumes "
                            "after the last completed one")
    p_map.add_argument("--profile", action="store_true",
                       help="run the mapping under cProfile and print the "
                            "top-20 cumulative entries")
    p_map.set_defaults(func=_cmd_map)

    p_batch = sub.add_parser(
        "batch", help="map many circuits through the batch pipeline")
    p_batch.add_argument("circuits", nargs="*",
                         help="benchmark names (default: full suite)")
    p_batch.add_argument("-a", "--algorithm", action="append",
                         choices=_FLOW_CHOICES,
                         help="flow to run (repeatable; default: soi)")
    p_batch.add_argument("-c", "--cost", choices=["area", "clock", "depth"],
                         default="area")
    p_batch.add_argument("-k", type=float, default=2.0,
                         help="clock-transistor weight for --cost clock")
    p_batch.add_argument("-j", "--jobs", type=int, default=None,
                         help="worker processes (default: CPU count; "
                              "1 = in-process serial)")
    p_batch.add_argument("--timeout", type=float, default=None,
                         help="per-task timeout in seconds (pool mode)")
    p_batch.add_argument("--retries", type=int, default=1,
                         help="retries per task on worker failure")
    p_batch.add_argument("--kernel", choices=list(available_kernels()),
                         default="auto",
                         help="DP combine kernel for every task")
    p_batch.add_argument("--auto-threshold", type=int, default=None,
                         metavar="N",
                         help="auto kernel routing cutoff in candidate "
                              "pairs (default 64)")
    p_batch.add_argument("--store", metavar="PATH", default=None,
                         help="mount the persistent cone cache at PATH "
                              "under every worker (see 'soidomino cache')")
    p_batch.add_argument("--no-cache", action="store_true",
                         help="disable the tree-level memoization cache")
    p_batch.add_argument("--serial", action="store_true",
                         help="force in-process serial execution")
    p_batch.add_argument("--json", action="store_true",
                         help="emit the unified batch report as JSON")
    p_batch.add_argument("--trace", metavar="FILE", default=None,
                         help="export the stitched batch span tree "
                              "(.json/.trace = Chrome, .jsonl = lines)")
    p_batch.set_defaults(func=_cmd_batch)

    p_bench = sub.add_parser(
        "bench", help="benchmark the mapping kernel and write "
                      "BENCH_mapping.json")
    p_bench.add_argument("circuits", nargs="*",
                         help="benchmark names (default: full suite)")
    p_bench.add_argument("-a", "--algorithm", action="append",
                         choices=_FLOW_CHOICES,
                         help="flow to sweep (repeatable; default: soi)")
    p_bench.add_argument("--orderings", nargs="+",
                         choices=["paper", "naive", "adverse", "exhaustive"],
                         default=["paper", "exhaustive"],
                         help="series orderings to sweep")
    p_bench.add_argument("--modes", nargs="+", choices=["single", "pareto"],
                         default=["single", "pareto"],
                         help="tuple-table modes to sweep")
    p_bench.add_argument("--kernels", nargs="+", choices=list(available_kernels()),
                         default=None,
                         help="DP kernels to sweep (default: reference "
                              "and soa when numpy is installed, else "
                              "reference); running both makes every "
                              "bench a cross-kernel bit-identity check "
                              "with per-kernel throughput")
    p_bench.add_argument("--w-max", type=int, default=None,
                         help="pulldown width limit (default: paper's 5); "
                              "larger limits grow candidate batches")
    p_bench.add_argument("--h-max", type=int, default=None,
                         help="pulldown height limit (default: paper's 8)")
    p_bench.add_argument("-j", "--jobs", type=int, default=1,
                         help="worker processes (default 1: serial, the "
                              "stable-timing mode)")
    p_bench.add_argument("--repeat", type=int, default=1,
                         help="sweep repetitions; per-task time is the min")
    p_bench.add_argument("--cache", action="store_true",
                         help="enable the tree cache (off by default so "
                              "tasks time the raw DP kernel)")
    p_bench.add_argument("-o", "--output", default="BENCH_mapping.json",
                         help="payload path (default: BENCH_mapping.json)")
    p_bench.add_argument("--baseline",
                         help="previous payload to embed and compare "
                              "speedup against")
    p_bench.add_argument("--check", metavar="PAYLOAD",
                         help="validate an existing payload's schema and "
                              "exit (runs no benchmark)")
    p_bench.add_argument("--trace", metavar="FILE", default=None,
                         help="export the bench span tree "
                              "(.json/.trace = Chrome, .jsonl = lines)")
    p_bench.set_defaults(func=_cmd_bench)

    p_tab = sub.add_parser("tables", help="reproduce the paper's tables")
    p_tab.add_argument("-t", "--table", action="append",
                       choices=["table1", "table2", "table3", "table4"],
                       help="which table (repeatable; default: all)")
    p_tab.add_argument("--circuits", nargs="*",
                       help="restrict to these circuits")
    p_tab.set_defaults(func=_cmd_tables)

    p_list = sub.add_parser("circuits", help="list the benchmark suite")
    p_list.set_defaults(func=_cmd_circuits)

    p_passes = sub.add_parser(
        "passes", help="list the flow-pass registry and preset pass lists")
    p_passes.add_argument("--json", action="store_true",
                          help="emit the registry as JSON")
    p_passes.set_defaults(func=_cmd_passes)

    p_metrics = sub.add_parser(
        "metrics", help="map a circuit and dump its metrics registry")
    p_metrics.add_argument("circuit",
                           help="benchmark name or .bench/.blif/.pla file")
    p_metrics.add_argument("-a", "--algorithm", choices=_FLOW_CHOICES,
                           default="soi")
    p_metrics.add_argument("-c", "--cost",
                           choices=["area", "clock", "depth"],
                           default="area")
    p_metrics.add_argument("-k", type=float, default=2.0,
                           help="clock-transistor weight for --cost clock")
    p_metrics.add_argument("--json", action="store_true",
                           help="emit the registry as JSON instead of "
                                "Prometheus text exposition")
    p_metrics.set_defaults(func=_cmd_metrics)

    p_pbe = sub.add_parser("pbe", help="stress a mapped circuit for PBE")
    p_pbe.add_argument("circuit")
    p_pbe.add_argument("-a", "--algorithm", choices=_FLOW_CHOICES,
                       default="soi")
    p_pbe.add_argument("--cycles", type=int, default=300)
    p_pbe.add_argument("--seed", type=int, default=0)
    p_pbe.set_defaults(func=_cmd_pbe)

    p_chaos = sub.add_parser(
        "chaos", help="run the resilience fault-matrix drill")
    p_chaos.add_argument("circuits", nargs="*",
                         help="workload circuits; the first is the fault "
                              "target, the rest are the bit-identity "
                              "control group (default: mux cm150 z4ml)")
    p_chaos.add_argument("--seed", type=int, default=0,
                         help="fault-plan seed (the whole drill is "
                              "deterministic in it)")
    p_chaos.add_argument("-j", "--jobs", type=int, default=2,
                         help="pool width for the batch scenarios")
    p_chaos.add_argument("--site", action="append",
                         choices=list(FAULT_POINTS),
                         help="restrict to these fault points "
                              "(repeatable; default: all)")
    p_chaos.add_argument("--json", action="store_true",
                         help="emit the chaos report as JSON")
    p_chaos.set_defaults(func=_cmd_chaos)

    p_serve = sub.add_parser(
        "serve", help="run the mapping-as-a-service HTTP daemon")
    p_serve.add_argument("--host", default="127.0.0.1")
    p_serve.add_argument("--port", type=int, default=8650)
    p_serve.add_argument("-j", "--jobs", type=int, default=None,
                         help="worker-pool width (default: CPU count; "
                              "1 maps in-process)")
    p_serve.add_argument("--store", metavar="PATH", default=None,
                         help="persistent cone-cache sqlite path "
                              "(default: the per-user cache, see "
                              "'soidomino cache')")
    p_serve.add_argument("--no-store", action="store_true",
                         help="disable the persistent cone cache")
    p_serve.add_argument("--no-cache", action="store_true",
                         help="disable tree caching entirely")
    p_serve.add_argument("--journal", metavar="PATH", default=None,
                         help="crash-safe job journal db (default: "
                              "$REPRO_JOURNAL or the per-user cache "
                              "path; 'none' disables journaling)")
    p_serve.add_argument("--drain-grace", type=float, default=30.0,
                         metavar="S",
                         help="seconds SIGTERM waits for queued/running "
                              "jobs before exiting (default 30; jobs "
                              "left over stay journaled)")
    p_serve.add_argument("--max-queued", type=int, default=16,
                         help="admission quota: queued jobs allowed per "
                              "tenant before 429")
    p_serve.set_defaults(func=_cmd_serve)

    p_cache = sub.add_parser(
        "cache", help="inspect or clear the persistent cone cache")
    p_cache.add_argument("--db", metavar="PATH", default=None,
                         help="store path (default: SOIDOMINO_CACHE_DB "
                              "or the per-user cache)")
    p_cache.add_argument("--clear", action="store_true",
                         help="drop every entry and reset counters")
    p_cache.add_argument("--json", action="store_true",
                         help="emit the store stats as JSON")
    p_cache.set_defaults(func=_cmd_cache)
    return parser


def main(argv: Optional[list] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    # honour REPRO_FAULTS for every subcommand (chaos rehearsal against
    # the real CLI surfaces; no-op when unset)
    install_from_env()
    try:
        return args.func(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except BrokenPipeError:
        # stdout closed early (e.g. piped into `head`): not an error.
        return 0


if __name__ == "__main__":
    sys.exit(main())
