"""Declarative pass lists executed over a :class:`FlowContext`.

A :class:`FlowPipeline` is a validated sequence of registered passes.
Validation is static: walking the list from the initial artifacts, every
pass's ``requires`` must be provided by an earlier pass (or be present
at the start), so a misassembled flow fails before any work happens.

Execution opens one :class:`~repro.obs.Span` per pass on the context's
tracer and records one :class:`PassRecord` — wall-clock time (the
span's duration), the movement of every
:class:`~repro.pipeline.MappingStats` counter during the pass, and the
pass's own structured diagnostics.  Records surface on
:attr:`FlowResult.passes`, ``soidomino map --json``, and the bench
harness; the span tree surfaces on :attr:`FlowResult.trace` and the
CLI's ``--trace FILE`` exports.  With a :class:`~repro.flow.FlowCheckpoint`
attached, artifacts are serialized after every pass and a re-run resumes
from the last completed one.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Union

from ..errors import FlowError
from .context import ARTIFACTS, FlowContext
from .passes import Pass, get_pass

#: Pass statuses a record can carry.
PASS_STATUSES = ("ok", "skipped", "resumed")


@dataclass
class PassRecord:
    """Observability record of one pass execution.

    ``status`` is ``"ok"`` for a pass that ran, ``"skipped"`` for one
    whose :meth:`Pass.skip_reason` declined (reason in ``detail``), and
    ``"resumed"`` for one restored from a checkpoint (not re-run).
    """

    name: str
    status: str = "ok"
    detail: Optional[str] = None
    elapsed_s: float = 0.0
    #: non-zero MappingStats counter movement during this pass
    stats_delta: Dict[str, float] = field(default_factory=dict)
    #: the pass's own structured diagnostics
    diagnostics: Dict[str, object] = field(default_factory=dict)

    @property
    def ran(self) -> bool:
        return self.status == "ok"

    def as_dict(self) -> Dict[str, object]:
        data: Dict[str, object] = {
            "name": self.name,
            "status": self.status,
            "elapsed_s": self.elapsed_s,
            "stats_delta": dict(self.stats_delta),
            "diagnostics": dict(self.diagnostics),
        }
        if self.detail is not None:
            data["detail"] = self.detail
        return data


class FlowPipeline:
    """An ordered, validated list of passes.

    Parameters
    ----------
    passes:
        Pass names (resolved in the registry) or :class:`Pass` instances.
    name:
        Flow label carried into records and checkpoints.
    initial:
        Artifacts the caller provides before the first pass runs
        (default: just ``network``).
    """

    def __init__(self, passes: Sequence[Union[str, Pass]],
                 name: str = "custom",
                 initial: Sequence[str] = ("network",)):
        if not passes:
            raise FlowError("a flow pipeline needs at least one pass")
        self.name = name
        self.passes: List[Pass] = [
            p if isinstance(p, Pass) else get_pass(p) for p in passes]
        self.initial = tuple(initial)
        self.validate()

    @property
    def pass_names(self) -> List[str]:
        return [p.name for p in self.passes]

    def validate(self) -> None:
        """Check the artifact chain (and name uniqueness) statically."""
        seen = set()
        for p in self.passes:
            if p.name in seen:
                raise FlowError(
                    f"flow {self.name!r}: pass {p.name!r} listed twice")
            seen.add(p.name)
        available = set(self.initial)
        for artifact in available:
            if artifact not in ARTIFACTS:
                raise FlowError(f"unknown initial artifact {artifact!r}")
        for p in self.passes:
            for artifact in (*p.requires, *p.provides):
                if artifact not in ARTIFACTS:
                    raise FlowError(
                        f"pass {p.name!r} declares unknown artifact "
                        f"{artifact!r}")
            missing = [a for a in p.requires if a not in available]
            if missing:
                raise FlowError(
                    f"flow {self.name!r}: pass {p.name!r} requires "
                    f"{', '.join(missing)} but no earlier pass provides "
                    f"it (available: {', '.join(sorted(available)) or '-'})")
            available.update(p.provides)
            # the decompose short-circuit publishes the unate network
            # early; account for conditional provides declared nowhere
            available.update(_CONDITIONAL_PROVIDES.get(p.name, ()))

    # -- execution -------------------------------------------------------
    def run(self, ctx: FlowContext,
            checkpoint=None) -> List[PassRecord]:
        """Execute the pipeline over ``ctx``; returns per-pass records.

        ``checkpoint`` (a :class:`~repro.flow.FlowCheckpoint`) makes the
        run resumable: artifacts are saved after every completed pass,
        and a later run with the same checkpoint directory restores them
        and re-executes only the remaining passes.
        """
        records: List[PassRecord] = []
        completed: List[str] = []
        if checkpoint is not None and checkpoint.exists():
            completed = checkpoint.restore(ctx, self)
            records.extend(
                PassRecord(name=name, status="resumed",
                           detail="restored from checkpoint")
                for name in completed)
        for p in self.passes[len(completed):]:
            for artifact in p.requires:
                if not ctx.has(artifact):
                    raise FlowError(
                        f"pass {p.name!r} requires artifact {artifact!r} "
                        f"which is not available at run time")
            reason = p.skip_reason(ctx)
            if reason is not None:
                records.append(PassRecord(name=p.name, status="skipped",
                                          detail=reason))
            else:
                # the span covers the pass's own bookkeeping too (stats
                # snapshot/delta, artifact checks): pass spans should
                # tile the flow span, leaving only loop overhead in the
                # gaps between them.
                with ctx.tracer.span(p.name, category="pass",
                                     flow=ctx.flow) as span:
                    before = ctx.snapshot_stats()
                    diagnostics = p.run(ctx) or {}
                    for artifact in p.provides:
                        if not ctx.has(artifact):
                            raise FlowError(
                                f"pass {p.name!r} declared artifact "
                                f"{artifact!r} but did not set it")
                    delta = ctx.stats_delta(before)
                if delta:
                    span.attributes["stats_delta"] = dict(delta)
                records.append(PassRecord(
                    name=p.name, elapsed_s=span.duration_s,
                    stats_delta=delta,
                    diagnostics=diagnostics))
            completed.append(p.name)
            if checkpoint is not None:
                checkpoint.save(ctx, self, completed)
        return records

    def __repr__(self) -> str:
        return f"FlowPipeline({self.name!r}: {' -> '.join(self.pass_names)})"


#: Artifacts a pass may set beyond its declared provides, keyed by pass
#: name (the decompose short-circuit for already-mappable networks).
_CONDITIONAL_PROVIDES = {"decompose": ("unate_network", "unate_report")}
