"""The mapping stages as named, independently instrumented passes.

Each :class:`Pass` declares the artifacts it consumes and produces (the
pipeline validates the chain before running anything) and implements one
stage of the paper's recipe:

``decompose -> sweep -> unate -> dp-map -> rearrange -> discharge ->
analyze``

The front-end trio reproduces :func:`repro.mapping.flows.prepare_network`
exactly: a network that is already mappable short-circuits in
``decompose`` (which publishes it as the unate network directly), and
the downstream front-end passes skip.  The back-end trio is the staged
form of :meth:`MappingEngine.run` — DP, series-stack rearrangement,
discharge insertion — split at the :class:`MappingPlan` boundary so each
stage can be timed, skipped, swapped, or checkpointed on its own.

Passes are stateless: all run state lives on the :class:`FlowContext`.
They register themselves in :data:`PASS_REGISTRY` at import time;
``soidomino passes`` lists the registry.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from ..errors import FlowError
from ..mapping.engine import (
    MappingEngine,
    apply_rearrangement,
    materialize_plan,
)
from ..synth import decompose, sweep, unate_with_sweep
from .context import FlowContext

#: name -> Pass instance, in registration (= canonical pipeline) order.
PASS_REGISTRY: Dict[str, "Pass"] = {}


def register(pass_cls):
    """Class decorator: instantiate and register a pass by its name."""
    instance = pass_cls()
    if instance.name in PASS_REGISTRY:
        raise FlowError(f"duplicate pass name {instance.name!r}")
    PASS_REGISTRY[instance.name] = instance
    return pass_cls


def get_pass(name: str) -> "Pass":
    try:
        return PASS_REGISTRY[name]
    except KeyError:
        raise FlowError(
            f"unknown pass {name!r}; registered passes: "
            f"{', '.join(PASS_REGISTRY)}") from None


def available_passes() -> Tuple["Pass", ...]:
    """Registered passes in registration order."""
    return tuple(PASS_REGISTRY.values())


class Pass:
    """One named stage of a mapping flow.

    Subclasses set the class attributes and implement :meth:`run`; the
    pipeline handles timing, stats deltas, artifact validation, and
    checkpointing around it.
    """

    #: registry name (kebab-case)
    name: str = ""
    #: artifacts read (must be available when the pass runs)
    requires: Tuple[str, ...] = ()
    #: artifacts written (checked present after a non-skipped run)
    provides: Tuple[str, ...] = ()
    #: one-line human description (``soidomino passes``)
    description: str = ""

    def skip_reason(self, ctx: FlowContext) -> Optional[str]:
        """Why this pass will not run for ``ctx`` (None = it runs)."""
        return None

    def run(self, ctx: FlowContext) -> Dict[str, object]:
        """Execute the stage; returns structured diagnostics."""
        raise NotImplementedError

    def __repr__(self) -> str:
        return (f"<Pass {self.name}: {', '.join(self.requires) or '-'} -> "
                f"{', '.join(self.provides) or '-'}>")


def _frontend_done(ctx: FlowContext) -> Optional[str]:
    if ctx.has("unate_network"):
        return "unate network already available"
    return None


@register
class DecomposePass(Pass):
    name = "decompose"
    requires = ("network",)
    provides = ("network",)
    description = ("decompose arbitrary-fanin gates to 2-input AND/OR + "
                   "INV (publishes an already-mappable input as the unate "
                   "network directly)")

    def skip_reason(self, ctx):
        return _frontend_done(ctx)

    def run(self, ctx):
        network = ctx.get("network")
        if network.is_mappable():
            # prepare_network's short-circuit: the input is already a
            # unate 2-input AND/OR network; the front end must not touch
            # it (sweep could dedup nodes and change the mapped netlist).
            ctx.set("unate_network", network)
            ctx.set("unate_report", None)
            return {"already_mappable": True}
        before = len(network)
        decomposed = decompose(network)
        ctx.set("network", decomposed)
        return {"already_mappable": False, "nodes_before": before,
                "nodes_after": len(decomposed)}


@register
class SweepPass(Pass):
    name = "sweep"
    requires = ("network",)
    provides = ("network",)
    description = "propagate constants, drop dead logic, dedup gates"

    def skip_reason(self, ctx):
        return _frontend_done(ctx)

    def run(self, ctx):
        network = ctx.get("network")
        before = len(network)
        swept = sweep(network)
        ctx.set("network", swept)
        return {"nodes_before": before, "nodes_after": len(swept)}


@register
class UnatePass(Pass):
    name = "unate"
    requires = ("network",)
    provides = ("unate_network", "unate_report")
    description = ("bubble-pushing unate conversion (with a final sweep) "
                   "to the 2-input AND/OR network the DP maps")

    def skip_reason(self, ctx):
        return _frontend_done(ctx)

    def run(self, ctx):
        unate, report = unate_with_sweep(ctx.get("network"))
        ctx.set("unate_network", unate)
        ctx.set("unate_report", report)
        return {"unate_gates": report.unate_gates,
                "duplication_ratio": report.duplication_ratio,
                "negated_pis": report.negated_pis}


@register
class DPMapPass(Pass):
    name = "dp-map"
    requires = ("unate_network",)
    provides = ("plan",)
    description = ("the {W,H} tuple dynamic program: per-node tables, "
                   "gate formation, gate selection into a mapping plan")

    def run(self, ctx):
        engine = MappingEngine(ctx.get("unate_network"), ctx.cost_model,
                               ctx.config, cache=ctx.cache, stats=ctx.stats,
                               tracer=ctx.tracer, metrics=ctx.metrics)
        engine.run_dp()
        plan = engine.plan()
        ctx.set("plan", plan)
        return {"gates_selected": len(plan.gates),
                "pbe_aware": ctx.config.pbe_aware,
                "ordering": ctx.config.ordering}


@register
class RearrangePass(Pass):
    name = "rearrange"
    requires = ("plan",)
    provides = ("plan",)
    description = ("RS_Map post-processing: sink parallel stacks toward "
                   "ground in every selected gate")

    def skip_reason(self, ctx):
        if not ctx.config.rearrange_gates:
            return "config.rearrange_gates is off"
        return None

    def run(self, ctx):
        rewritten = apply_rearrangement(ctx.get("plan"))
        return {"gates_rearranged": rewritten}


@register
class DischargePass(Pass):
    name = "discharge"
    requires = ("plan",)
    provides = ("mapping",)
    description = ("insert the discharge transistors the ground policy "
                   "demands and assemble the domino circuit")

    def run(self, ctx):
        mapping = materialize_plan(ctx.get("plan"))
        ctx.set("mapping", mapping)
        return {"gates": len(mapping.circuit),
                "ground_policy": ctx.config.ground_policy}


@register
class AnalyzePass(Pass):
    name = "analyze"
    requires = ("mapping",)
    provides = ("mapping",)
    description = ("cost/analysis readout: transistor accounting of the "
                   "mapped circuit (pure diagnostics, no transforms)")

    def run(self, ctx):
        cost = ctx.get("mapping").cost
        return dict(cost.as_dict())
