"""Typed artifacts and the shared context flow passes operate on.

A :class:`FlowContext` is the blackboard of one flow run: passes read
and write named **artifacts** (the evolving logic network, the unate
network, the mapping plan, the mapped result), and the pipeline checks
every read and write against the declared :data:`ARTIFACTS` schema — a
pass cannot silently publish the wrong type or consume an artifact that
no earlier pass provides.

The artifact names are the checkpoint vocabulary too: a flow checkpoint
is exactly the set of artifacts present after the last completed pass
(see ``flow/checkpoint.py``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Tuple

from ..errors import FlowError
from ..mapping.cost import CostModel
from ..mapping.engine import MapperConfig, MappingPlan, MappingResult
from ..network import LogicNetwork
from ..obs import MetricsRegistry, Tracer
from ..pipeline.metrics import MappingStats
from ..synth import UnateReport


@dataclass(frozen=True)
class ArtifactSpec:
    """Declared name, type, and meaning of one flow artifact."""

    name: str
    type: type
    description: str
    #: optional artifacts may legitimately hold ``None`` (e.g. the unate
    #: report of a network that needed no conversion)
    optional: bool = False


#: The artifact schema every pipeline is validated against.
ARTIFACTS: Dict[str, ArtifactSpec] = {
    spec.name: spec for spec in (
        ArtifactSpec("network", LogicNetwork,
                     "the evolving logic network (raw -> decomposed -> "
                     "swept)"),
        ArtifactSpec("unate_network", LogicNetwork,
                     "the unate 2-input AND/OR network the DP maps"),
        ArtifactSpec("unate_report", UnateReport,
                     "unate-conversion statistics (None when the input "
                     "was already mappable)", optional=True),
        ArtifactSpec("plan", MappingPlan,
                     "the DP's gate selection, before post-processing"),
        ArtifactSpec("mapping", MappingResult,
                     "the materialized domino circuit and its records"),
    )
}


@dataclass
class FlowContext:
    """Shared state of one flow-pipeline execution.

    The *configuration* fields (flow name, mapper config, cost model,
    cache, stats) are fixed for the run; the *artifacts* dict is what
    passes transform.  Artifact access goes through :meth:`get` /
    :meth:`set`, which enforce the :data:`ARTIFACTS` schema.
    """

    config: MapperConfig
    cost_model: CostModel
    flow: str = "custom"
    cache: Any = None
    stats: MappingStats = field(default_factory=MappingStats)
    #: span tracer the pipeline (pass spans) and engine (node spans)
    #: record into; always present so instrumentation never branches
    tracer: Tracer = field(default_factory=Tracer)
    #: typed metrics registry the run publishes into
    metrics: MetricsRegistry = field(default_factory=MetricsRegistry)
    artifacts: Dict[str, Any] = field(default_factory=dict)

    @classmethod
    def for_network(cls, network: LogicNetwork, config: MapperConfig,
                    cost_model: CostModel, *, flow: str = "custom",
                    cache: Any = None,
                    stats: Optional[MappingStats] = None,
                    tracer: Optional[Tracer] = None,
                    metrics: Optional[MetricsRegistry] = None
                    ) -> "FlowContext":
        """The standard starting context: one ``network`` artifact."""
        ctx = cls(config=config, cost_model=cost_model, flow=flow,
                  cache=cache,
                  stats=stats if stats is not None else MappingStats(),
                  tracer=tracer if tracer is not None else Tracer(),
                  metrics=(metrics if metrics is not None
                           else MetricsRegistry()))
        ctx.set("network", network)
        return ctx

    # -- artifact access -------------------------------------------------
    def has(self, name: str) -> bool:
        return name in self.artifacts

    def get(self, name: str) -> Any:
        spec = _spec(name)
        try:
            return self.artifacts[name]
        except KeyError:
            raise FlowError(
                f"artifact {spec.name!r} is not available; no completed "
                f"pass provided it") from None

    def set(self, name: str, value: Any) -> None:
        spec = _spec(name)
        if value is None:
            if not spec.optional:
                raise FlowError(f"artifact {name!r} cannot be None")
        elif not isinstance(value, spec.type):
            raise FlowError(
                f"artifact {name!r} must be {spec.type.__name__}, "
                f"got {type(value).__name__}")
        self.artifacts[name] = value

    def snapshot_stats(self) -> Tuple[float, ...]:
        """Flat copy of the stats counters (for per-pass deltas)."""
        from dataclasses import astuple

        return astuple(self.stats)

    def stats_delta(self, before: Tuple[float, ...]) -> Dict[str, float]:
        """Non-zero counter movement since ``before``, by field name."""
        from dataclasses import fields

        after = self.snapshot_stats()
        return {f.name: now - then
                for f, then, now in zip(fields(self.stats), before, after)
                if now != then}


def _spec(name: str) -> ArtifactSpec:
    try:
        return ARTIFACTS[name]
    except KeyError:
        raise FlowError(
            f"unknown artifact {name!r}; declared artifacts: "
            f"{', '.join(sorted(ARTIFACTS))}") from None
