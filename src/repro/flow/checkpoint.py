"""Flow checkpoints: serialize artifacts after any pass, resume later.

A checkpoint directory holds one pickle per artifact plus a JSON
``manifest.json`` describing the run: schema version, flow name, the
full pass list, the prefix of passes already completed, and the mapper
config that produced the artifacts.  :meth:`FlowCheckpoint.restore`
refuses to resume when any of those disagree with the resuming pipeline
— a checkpoint taken under a different config would silently produce a
different circuit, which is exactly the failure mode the digest tests
pin against.

Artifacts are pickled (they are plain dataclass/object trees: networks,
mapping plans, results); the manifest stays human-readable JSON so a
checkpoint can be inspected without loading it.
"""

from __future__ import annotations

import json
import pickle
from dataclasses import asdict
from pathlib import Path
from typing import List

from ..errors import FlowError
from .context import ARTIFACTS, FlowContext

#: Manifest format identifier; bump on breaking changes.
CHECKPOINT_SCHEMA = "soidomino-flow-checkpoint/1"

MANIFEST_NAME = "manifest.json"


class FlowCheckpoint:
    """Persistence of one flow run's artifacts under a directory."""

    def __init__(self, directory):
        self.directory = Path(directory)

    @property
    def manifest_path(self) -> Path:
        return self.directory / MANIFEST_NAME

    def exists(self) -> bool:
        return self.manifest_path.is_file()

    def _artifact_path(self, name: str) -> Path:
        return self.directory / f"artifact-{name}.pkl"

    # -- writing ---------------------------------------------------------
    def save(self, ctx: FlowContext, pipeline,
             completed: List[str]) -> None:
        """Serialize the context's artifacts after a completed pass."""
        self.directory.mkdir(parents=True, exist_ok=True)
        stored = {}
        for name, value in ctx.artifacts.items():
            path = self._artifact_path(name)
            with open(path, "wb") as handle:
                pickle.dump(value, handle, protocol=pickle.HIGHEST_PROTOCOL)
            stored[name] = path.name
        manifest = {
            "schema": CHECKPOINT_SCHEMA,
            "flow": ctx.flow,
            "passes": pipeline.pass_names,
            "completed": list(completed),
            "config": asdict(ctx.config),
            "artifacts": stored,
        }
        with open(self.manifest_path, "w", encoding="utf-8") as handle:
            json.dump(manifest, handle, indent=1)
            handle.write("\n")

    # -- reading ---------------------------------------------------------
    def load_manifest(self) -> dict:
        try:
            with open(self.manifest_path, encoding="utf-8") as handle:
                manifest = json.load(handle)
        except (OSError, ValueError) as exc:
            raise FlowError(
                f"cannot read checkpoint manifest {self.manifest_path}: "
                f"{exc}") from exc
        if manifest.get("schema") != CHECKPOINT_SCHEMA:
            raise FlowError(
                f"checkpoint {self.directory} has schema "
                f"{manifest.get('schema')!r}, expected "
                f"{CHECKPOINT_SCHEMA!r}")
        return manifest

    def restore(self, ctx: FlowContext, pipeline) -> List[str]:
        """Load artifacts into ``ctx``; returns the completed-pass prefix.

        Raises :class:`FlowError` when the checkpoint does not belong to
        this pipeline/configuration (different flow, pass list, config,
        or a completed list that is not a prefix of the pass list).
        """
        manifest = self.load_manifest()
        if manifest.get("flow") != ctx.flow:
            raise FlowError(
                f"checkpoint {self.directory} was taken for flow "
                f"{manifest.get('flow')!r}, cannot resume flow "
                f"{ctx.flow!r}")
        if manifest.get("passes") != pipeline.pass_names:
            raise FlowError(
                f"checkpoint {self.directory} was taken for pass list "
                f"{manifest.get('passes')}, cannot resume "
                f"{pipeline.pass_names}")
        if manifest.get("config") != asdict(ctx.config):
            raise FlowError(
                f"checkpoint {self.directory} was taken under a different "
                f"mapper config; refusing to resume (delete the "
                f"checkpoint to start over)")
        completed = list(manifest.get("completed", []))
        if completed != pipeline.pass_names[:len(completed)]:
            raise FlowError(
                f"checkpoint completed passes {completed} are not a "
                f"prefix of {pipeline.pass_names}")
        for name, filename in manifest.get("artifacts", {}).items():
            if name not in ARTIFACTS:
                raise FlowError(
                    f"checkpoint {self.directory} stores unknown artifact "
                    f"{name!r}")
            path = self.directory / filename
            try:
                with open(path, "rb") as handle:
                    ctx.set(name, pickle.load(handle))
            except (OSError, pickle.UnpicklingError, EOFError) as exc:
                raise FlowError(
                    f"cannot load checkpoint artifact {path}: "
                    f"{exc}") from exc
        return completed
