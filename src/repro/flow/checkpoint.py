"""Flow checkpoints: serialize artifacts after any pass, resume later.

A checkpoint directory holds one pickle per artifact plus a JSON
``manifest.json`` describing the run: schema version, flow name, the
full pass list, the prefix of passes already completed, the mapper
config that produced the artifacts, and a SHA-256 checksum per stored
artifact.  :meth:`FlowCheckpoint.restore` refuses to resume when the
run identity disagrees with the resuming pipeline — a checkpoint taken
under a different config would silently produce a different circuit,
which is exactly the failure mode the digest tests pin against.

Integrity failures are treated differently from identity mismatches.
Every write is atomic (temp file + ``os.replace``) so a crash mid-save
never leaves a half-written artifact behind a valid manifest, and every
restore re-hashes the artifact bytes against the manifest checksum
before unpickling.  When an artifact *is* corrupt — bad checksum,
truncated pickle, missing file — restore does not give up the whole
checkpoint: it recomputes the longest completed-pass prefix whose
artifacts all verify (see :meth:`restore`) and resumes from there,
recording the recovery on the context's tracer/metrics.  Only the work
derived from the corrupt bytes is repeated; in the worst case the flow
re-runs from the start, which is always correct.

Artifacts are pickled (they are plain dataclass/object trees: networks,
mapping plans, results); the manifest stays human-readable JSON so a
checkpoint can be inspected without loading it.
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
import tempfile
from dataclasses import asdict
from pathlib import Path
from typing import Dict, List, Optional

from ..errors import CheckpointCorruptError, FlowError
from ..resilience.faults import emit_recovery, fire
from .context import ARTIFACTS, FlowContext

#: Manifest format identifier; bump on breaking changes.
CHECKPOINT_SCHEMA = "soidomino-flow-checkpoint/2"

MANIFEST_NAME = "manifest.json"


def _sha256(payload: bytes) -> str:
    return hashlib.sha256(payload).hexdigest()


def _write_atomic(path: Path, payload: bytes) -> None:
    """All-or-nothing file write: temp file in the same directory, then
    ``os.replace`` (atomic on POSIX), so readers never observe a
    half-written artifact or manifest."""
    fd, tmp_name = tempfile.mkstemp(dir=path.parent,
                                    prefix=f".{path.name}.", suffix=".tmp")
    try:
        with os.fdopen(fd, "wb") as handle:
            handle.write(payload)
        os.replace(tmp_name, path)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise


class FlowCheckpoint:
    """Persistence of one flow run's artifacts under a directory."""

    def __init__(self, directory):
        self.directory = Path(directory)

    @property
    def manifest_path(self) -> Path:
        return self.directory / MANIFEST_NAME

    def exists(self) -> bool:
        return self.manifest_path.is_file()

    def _artifact_path(self, name: str) -> Path:
        return self.directory / f"artifact-{name}.pkl"

    # -- writing ---------------------------------------------------------
    def save(self, ctx: FlowContext, pipeline,
             completed: List[str]) -> None:
        """Serialize the context's artifacts after a completed pass.

        Artifacts are written first, each atomically and with its
        checksum recorded; the manifest referencing them is replaced
        last, so an interrupted save leaves the previous checkpoint
        fully intact (at worst plus some orphaned artifact files the
        next save overwrites).
        """
        self.directory.mkdir(parents=True, exist_ok=True)
        stored: Dict[str, str] = {}
        checksums: Dict[str, str] = {}
        for name, value in ctx.artifacts.items():
            path = self._artifact_path(name)
            payload = pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL)
            checksums[name] = _sha256(payload)
            if fire("checkpoint.corrupt", name, ctx.tracer,
                    ctx.metrics) is not None:
                # injected fault: damage the bytes *after* the checksum
                # was recorded, the signature of on-disk corruption
                payload = b"\xde\xad" + payload[2:]
            _write_atomic(path, payload)
            stored[name] = path.name
        manifest = {
            "schema": CHECKPOINT_SCHEMA,
            "flow": ctx.flow,
            "passes": pipeline.pass_names,
            "completed": list(completed),
            "config": asdict(ctx.config),
            "artifacts": stored,
            "checksums": checksums,
        }
        payload = (json.dumps(manifest, indent=1) + "\n").encode("utf-8")
        _write_atomic(self.manifest_path, payload)

    # -- reading ---------------------------------------------------------
    def load_manifest(self) -> dict:
        try:
            with open(self.manifest_path, encoding="utf-8") as handle:
                manifest = json.load(handle)
        except OSError as exc:
            raise FlowError(
                f"cannot read checkpoint manifest {self.manifest_path}: "
                f"{exc}") from exc
        except ValueError as exc:
            raise CheckpointCorruptError(
                f"checkpoint manifest {self.manifest_path} is not valid "
                f"JSON: {exc}") from exc
        if manifest.get("schema") != CHECKPOINT_SCHEMA:
            raise FlowError(
                f"checkpoint {self.directory} has schema "
                f"{manifest.get('schema')!r}, expected "
                f"{CHECKPOINT_SCHEMA!r}")
        return manifest

    def _load_verified(self, manifest: dict,
                       name: str) -> Optional[object]:
        """The artifact value if its bytes verify and unpickle, else None."""
        filename = manifest.get("artifacts", {}).get(name)
        if filename is None:
            return None
        path = self.directory / filename
        try:
            payload = path.read_bytes()
        except OSError:
            return None
        expected = manifest.get("checksums", {}).get(name)
        if expected is None or _sha256(payload) != expected:
            return None
        try:
            return pickle.loads(payload)
        except Exception:  # noqa: BLE001 - any unpickle failure is corruption
            return None

    def restore(self, ctx: FlowContext, pipeline) -> List[str]:
        """Load artifacts into ``ctx``; returns the completed-pass prefix.

        Raises :class:`FlowError` when the checkpoint does not belong to
        this pipeline/configuration (different flow, pass list, config,
        or a completed list that is not a prefix of the pass list) —
        those mismatches are deliberate refusals, never recovered.

        Corruption is recovered instead: each artifact's bytes are
        verified against the manifest checksum (and must unpickle); when
        any fail, the method finds the longest prefix of the completed
        passes whose input artifacts all verify — an artifact last
        provided *inside* the prefix must be good, and one last provided
        *at or beyond* the cut must not also have an earlier provider
        (its stored value would then belong to a pass being re-run) —
        loads only the artifacts that prefix produced, and returns the
        shortened prefix so the pipeline re-runs everything after it.
        """
        manifest = self.load_manifest()
        if manifest.get("flow") != ctx.flow:
            raise FlowError(
                f"checkpoint {self.directory} was taken for flow "
                f"{manifest.get('flow')!r}, cannot resume flow "
                f"{ctx.flow!r}")
        if manifest.get("passes") != pipeline.pass_names:
            raise FlowError(
                f"checkpoint {self.directory} was taken for pass list "
                f"{manifest.get('passes')}, cannot resume "
                f"{pipeline.pass_names}")
        if manifest.get("config") != asdict(ctx.config):
            raise FlowError(
                f"checkpoint {self.directory} was taken under a different "
                f"mapper config; refusing to resume (delete the "
                f"checkpoint to start over)")
        completed = list(manifest.get("completed", []))
        if completed != pipeline.pass_names[:len(completed)]:
            raise FlowError(
                f"checkpoint completed passes {completed} are not a "
                f"prefix of {pipeline.pass_names}")
        for name in manifest.get("artifacts", {}):
            if name not in ARTIFACTS:
                raise FlowError(
                    f"checkpoint {self.directory} stores unknown artifact "
                    f"{name!r}")

        values = {name: self._load_verified(manifest, name)
                  for name in manifest.get("artifacts", {})}
        corrupt = sorted(name for name, value in values.items()
                         if value is None)
        prefix = completed
        if corrupt:
            prefix = self._verified_prefix(pipeline, completed, values)
            emit_recovery(
                "checkpoint_rewind",
                f"corrupt artifact(s) {', '.join(corrupt)}; resuming "
                f"after {prefix[-1] if prefix else '<start>'}",
                tracer=ctx.tracer, metrics=ctx.metrics,
                corrupt=corrupt, resumed_passes=len(prefix))
        keep = self._artifacts_of_prefix(pipeline, completed, values,
                                         len(prefix))
        for name in keep:
            ctx.set(name, values[name])
        return prefix

    # -- corruption recovery ---------------------------------------------
    @staticmethod
    def _last_provider(pipeline, completed: List[str],
                       name: str) -> Optional[int]:
        """Index in ``completed`` of the last pass providing ``name``."""
        from .pipeline import _CONDITIONAL_PROVIDES

        last = None
        for index, pass_name in enumerate(completed):
            provides = pipeline.passes[index].provides
            if (name in provides
                    or name in _CONDITIONAL_PROVIDES.get(pass_name, ())):
                last = index
        return last

    @staticmethod
    def _providers(pipeline, completed: List[str], name: str) -> List[int]:
        from .pipeline import _CONDITIONAL_PROVIDES

        return [index for index, pass_name in enumerate(completed)
                if (name in pipeline.passes[index].provides
                    or name in _CONDITIONAL_PROVIDES.get(pass_name, ()))]

    def _verified_prefix(self, pipeline, completed: List[str],
                         values: Dict[str, object]) -> List[str]:
        """Longest prefix of ``completed`` resumable with good artifacts.

        A cut at ``k`` is valid iff for every stored artifact: if its
        last provider is inside the prefix (< k) the artifact verified
        good (the resumed run needs those bytes), and if its last
        provider is at/beyond the cut it has *no* provider inside the
        prefix (otherwise the stored value — corrupt or not — belongs to
        a re-run pass and the prefix's version of it is unrecoverable).
        ``k = 0`` is always valid: a full re-run needs nothing.
        """
        for k in range(len(completed), -1, -1):
            ok = True
            for name, value in values.items():
                providers = self._providers(pipeline, completed, name)
                if not providers:
                    continue
                if providers[-1] < k:
                    if value is None:
                        ok = False
                        break
                elif any(p < k for p in providers):
                    ok = False
                    break
            if ok:
                return completed[:k]
        return []

    def _artifacts_of_prefix(self, pipeline, completed: List[str],
                             values: Dict[str, object],
                             k: int) -> List[str]:
        """Stored artifact names the first ``k`` completed passes own."""
        return [name for name, value in values.items()
                if value is not None
                and (last := self._last_provider(pipeline, completed,
                                                 name)) is not None
                and last < k]
