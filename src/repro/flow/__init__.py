"""Pass-manager flow architecture (see DESIGN.md section 9).

The mapping stack is a pipeline of named passes over typed artifacts:

* :mod:`repro.flow.context` — the artifact schema (:data:`ARTIFACTS`)
  and the :class:`FlowContext` blackboard passes transform;
* :mod:`repro.flow.passes` — the stages (decompose, sweep, unate,
  dp-map, rearrange, discharge, analyze) and the :data:`PASS_REGISTRY`;
* :mod:`repro.flow.pipeline` — :class:`FlowPipeline`, which validates a
  declarative pass list and executes it with per-pass wall-clock,
  stats-delta and diagnostic records (:class:`PassRecord`);
* :mod:`repro.flow.checkpoint` — :class:`FlowCheckpoint`, artifact
  serialization after any pass and validated resume.

:func:`repro.mapping.map_network` assembles these for the paper's three
flow presets; this package is the mechanism, presets are policy.
"""

from .checkpoint import CHECKPOINT_SCHEMA, FlowCheckpoint
from .context import ARTIFACTS, ArtifactSpec, FlowContext
from .passes import PASS_REGISTRY, Pass, available_passes, get_pass, register
from .pipeline import FlowPipeline, PassRecord

__all__ = [
    "ARTIFACTS",
    "ArtifactSpec",
    "CHECKPOINT_SCHEMA",
    "FlowCheckpoint",
    "FlowContext",
    "FlowPipeline",
    "PASS_REGISTRY",
    "Pass",
    "PassRecord",
    "available_passes",
    "get_pass",
    "register",
]
