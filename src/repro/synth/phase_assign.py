"""Output phase assignment for unate conversion (Puri et al., ICCAD'96).

The paper's section IV notes that the minimum-duplication binate-to-unate
conversion of [22] chooses the *phase* in which each primary output is
realized ("needed logic inversions must be performed at either primary
inputs and/or primary outputs"), but uses plain bubble pushing "to avoid
the complexity of [22]".  This module implements the optimization the
paper skipped, as a greedy version of [22]: outputs are processed in
order of cone size, and each is realized in whichever phase needs fewer
*new* gates given everything already materialized for earlier outputs —
an output realized in the negative phase simply gets a static inverter at
the boundary, which domino methodology allows.

The result is returned together with the set of inverted outputs so the
simulators and mappers can account for the boundary inverters.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Set, Tuple

from ..conventions import NEG_SUFFIX
from ..errors import UnateConversionError
from ..network import LogicNetwork, NodeType
from .sweep import sweep
from .unate import UnateReport, _andor_depth, _realize_iterative


@dataclass(frozen=True)
class PhaseAssignment:
    """Result of a phase-assigned unate conversion."""

    network: LogicNetwork
    report: UnateReport
    inverted_outputs: FrozenSet[str]  #: POs realized in the negative phase

    @property
    def boundary_inverters(self) -> int:
        """Static inverters required at the primary outputs."""
        return len(self.inverted_outputs)


def _phase_cost(network: LogicNetwork, root: int, phase: bool,
                realized: Set[Tuple[int, bool]]) -> int:
    """Count the (node, phase) gate pairs a realization would add."""
    cost = 0
    seen: Set[Tuple[int, bool]] = set()
    stack = [(root, phase)]
    while stack:
        uid, ph = stack.pop()
        key = (uid, ph)
        if key in seen or key in realized:
            continue
        seen.add(key)
        node = network.node(uid)
        if node.type is NodeType.INV:
            stack.append((node.fanins[0], not ph))
        elif node.type in (NodeType.AND, NodeType.OR):
            cost += 1
            stack.extend((f, ph) for f in node.fanins)
        elif node.type is NodeType.PI or node.is_const:
            continue
        else:
            raise UnateConversionError(
                f"node {node.label} has type {node.type.value}; "
                "run decompose() first")
    return cost


def unate_with_phase_assignment(network: LogicNetwork,
                                neg_suffix: str = NEG_SUFFIX,
                                apply_sweep: bool = True) -> PhaseAssignment:
    """Unate conversion with per-output phase selection.

    Parameters
    ----------
    network:
        A decomposed AND/OR/INV network (see :func:`repro.synth.decompose`).
    apply_sweep:
        Clean the converted network before returning (recommended; the
        report's gate counts refer to the returned network either way).

    Returns
    -------
    PhaseAssignment
        The unate network (POs carry their original names; those listed in
        ``inverted_outputs`` realize the *complement* and need a static
        inverter at the boundary) plus conversion statistics.
    """
    out = LogicNetwork(network.name)
    memo: Dict[Tuple[int, bool], int] = {}
    pos_pi: Dict[int, int] = {}
    neg_pi: Dict[int, int] = {}
    phases_used: Dict[int, set] = {}
    for uid in network.pis:
        pos_pi[uid] = out.add_pi(network.node(uid).label)

    # Large cones first: they seed the memo table that later (smaller)
    # outputs get to share, which is where the greedy choice pays off.
    drivers = [(network.node(po).fanins[0], network.node(po).label)
               for po in network.pos]
    order = sorted(range(len(drivers)),
                   key=lambda i: -len(network.transitive_fanin(drivers[i][0])))

    inverted: Set[str] = set()
    realized_phase: Dict[int, bool] = {}
    for index in order:
        driver, _label = drivers[index]
        pos_cost = _phase_cost(network, driver, True, set(memo))
        neg_cost = _phase_cost(network, driver, False, set(memo))
        # Prefer the positive phase on ties: it avoids the boundary
        # inverter's two transistors and delay.
        phase = True if pos_cost <= neg_cost else False
        realized_phase[index] = phase
        _realize_iterative(network, out, driver, phase, memo, pos_pi,
                           neg_pi, phases_used, neg_suffix)

    # POs are added in the original order to keep the interface stable.
    for index, (driver, label) in enumerate(drivers):
        phase = realized_phase[index]
        out.add_po(memo[(driver, phase)], label)
        if not phase:
            inverted.add(label)

    if apply_sweep:
        out = sweep(out)

    duplicated = sum(1 for p in phases_used.values() if len(p) == 2)
    original_gates = sum(1 for n in network
                         if n.type in (NodeType.AND, NodeType.OR))
    unate_gates = sum(1 for n in out if n.type in (NodeType.AND, NodeType.OR))
    report = UnateReport(
        original_gates=original_gates,
        unate_gates=unate_gates,
        duplicated_nodes=duplicated,
        negated_pis=len(neg_pi),
        original_depth=_andor_depth(network),
        unate_depth=_andor_depth(out),
    )
    return PhaseAssignment(network=out, report=report,
                           inverted_outputs=frozenset(inverted))


def check_phase_assignment(original: LogicNetwork,
                           assignment: PhaseAssignment,
                           vectors: int = 512, seed: int = 0,
                           neg_suffix: str = NEG_SUFFIX):
    """Verify a phase-assigned network against the original.

    Outputs in ``assignment.inverted_outputs`` are compared against the
    *complement* of the original output.  Returns ``None`` on success or
    a mismatch description.
    """
    import random

    from ..sim.logic_sim import evaluate_vectors

    unate = assignment.network
    orig_pis = {original.node(u).label: u for u in original.pis}
    orig_pos = {original.node(u).label: u for u in original.pos}
    unate_pos = {unate.node(u).label: u for u in unate.pos}
    if set(orig_pos) != set(unate_pos):
        return f"PO sets differ: {sorted(orig_pos)} vs {sorted(unate_pos)}"

    rng = random.Random(seed)
    words = {name: rng.getrandbits(vectors) for name in orig_pis}
    mask = (1 << vectors) - 1
    unate_words = {}
    for uid in unate.pis:
        label = unate.node(uid).label
        if label in orig_pis:
            unate_words[uid] = words[label]
        elif (label.endswith(neg_suffix)
              and label[: -len(neg_suffix)] in orig_pis):
            unate_words[uid] = words[label[: -len(neg_suffix)]] ^ mask
        else:
            return f"unexplained PI {label!r}"
    out_a = evaluate_vectors(
        original, {orig_pis[n]: w for n, w in words.items()}, vectors)
    out_b = evaluate_vectors(unate, unate_words, vectors)
    for name in orig_pos:
        expected = out_a[orig_pos[name]]
        got = out_b[unate_pos[name]]
        if name in assignment.inverted_outputs:
            got ^= mask
        if expected != got:
            return f"output {name} differs"
    return None
