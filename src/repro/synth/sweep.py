"""Network clean-up: constant propagation, redundancy removal, dedup.

``sweep`` is run between synthesis passes so the mapper sees a clean
2-input AND/OR(/INV) network: no constants feeding gates, no double
inverters, no structurally duplicate gates, no dangling logic.
"""

from __future__ import annotations

from typing import Dict, Tuple

from ..network import LogicNetwork, NodeType


def sweep(network: LogicNetwork) -> LogicNetwork:
    """Return a cleaned structural copy of ``network``.

    Applies, in one topological pass:

    * constant propagation through AND/OR/INV/BUF gates,
    * single-fanin AND/OR collapsing and BUF elimination,
    * double-inverter elimination (``!!a -> a``),
    * idempotence (``a*a -> a``, ``a+a -> a``),
    * structural hashing (two gates with the same function and fanins
      are merged; AND/OR fanins are treated as unordered),

    then drops any logic not reachable from a PO.  PIs are always kept.
    """
    out = LogicNetwork(network.name)
    new_id: Dict[int, int] = {}
    strash: Dict[Tuple, int] = {}
    const_cache: Dict[bool, int] = {}
    inv_of: Dict[int, int] = {}   # new-id -> id of its inverter output
    inv_src: Dict[int, int] = {}  # inverter new-id -> its fanin new-id

    def make_const(value: bool) -> int:
        if value not in const_cache:
            const_cache[value] = out.add_const(value)
        return const_cache[value]

    def const_value(uid: int):
        t = out.node(uid).type
        if t is NodeType.CONST0:
            return False
        if t is NodeType.CONST1:
            return True
        return None

    def make_inv(fanin: int, name: str = "") -> int:
        value = const_value(fanin)
        if value is not None:
            return make_const(not value)
        if fanin in inv_src:          # !!a -> a
            return inv_src[fanin]
        if fanin in inv_of:           # reuse an existing inverter
            return inv_of[fanin]
        uid = out.add_inv(fanin, name)
        inv_of[fanin] = uid
        inv_src[uid] = fanin
        return uid

    def complementary(a: int, b: int) -> bool:
        return inv_src.get(a) == b or inv_src.get(b) == a

    def make_gate(t: NodeType, a: int, b: int, name: str = "") -> int:
        ca, cb = const_value(a), const_value(b)
        if t is NodeType.AND:
            if ca is False or cb is False:
                return make_const(False)
            if ca is True:
                return b
            if cb is True:
                return a
            if complementary(a, b):  # a * !a
                return make_const(False)
        else:  # OR
            if ca is True or cb is True:
                return make_const(True)
            if ca is False:
                return b
            if cb is False:
                return a
            if complementary(a, b):  # a + !a
                return make_const(True)
        if a == b:
            return a
        key = (t, min(a, b), max(a, b))
        if key in strash:
            return strash[key]
        uid = out.add_gate(t, (a, b), name)
        strash[key] = uid
        return uid

    for uid in network.topological_order():
        node = network.node(uid)
        t = node.type
        if t is NodeType.PI:
            new_id[uid] = out.add_pi(node.name)
        elif t is NodeType.PO:
            new_id[uid] = out.add_po(new_id[node.fanins[0]], node.name)
        elif t is NodeType.CONST0:
            new_id[uid] = make_const(False)
        elif t is NodeType.CONST1:
            new_id[uid] = make_const(True)
        elif t is NodeType.BUF:
            new_id[uid] = new_id[node.fanins[0]]
        elif t is NodeType.INV:
            new_id[uid] = make_inv(new_id[node.fanins[0]], node.name)
        elif t in (NodeType.AND, NodeType.OR) and len(node.fanins) == 2:
            a, b = (new_id[f] for f in node.fanins)
            new_id[uid] = make_gate(t, a, b, node.name)
        elif t in (NodeType.AND, NodeType.OR) and len(node.fanins) == 1:
            new_id[uid] = new_id[node.fanins[0]]
        else:
            # Wider or non-AND/OR gates: copy verbatim (sweep may be called
            # before decomposition).
            new_id[uid] = out.add_gate(
                t, tuple(new_id[f] for f in node.fanins), node.name)

    out.remove_unused()
    return out
