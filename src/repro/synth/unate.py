"""Bubble-pushing unate conversion (paper section IV).

Domino logic is non-inverting, so the mapper's input must be a *unate*
network: 2-input AND/OR gates only, with all inversions absorbed at the
primary inputs.  Following the paper, "we simply attempt to push inverters
as far back as possible (i.e., towards the primary inputs), by applying
DeMorgan's laws where necessary.  If inverters cannot be pushed through a
gate, e.g., when both positive and negative phases of a signal are
required, logic duplication is necessary."

The implementation computes, for every (node, phase) pair that is actually
needed, an equivalent node in the output network:

* PI, positive phase -> the PI itself;
* PI, negative phase -> a complementary PI named ``<name><suffix>``
  (inversions at primary inputs are free in domino methodology: both
  register phases are available);
* AND/OR, negative phase -> the DeMorgan dual gate over the fanins'
  negative phases;
* INV -> the fanin in the opposite phase.

Nodes whose both phases are required are therefore duplicated, exactly the
"logic duplication" the paper describes.  The conversion at most doubles
the gate count and never increases the number of logic levels.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from ..errors import UnateConversionError
from ..network import LogicNetwork, NodeType
from ..sim.logic_sim import evaluate_vectors
from .sweep import sweep

from ..conventions import NEG_SUFFIX


@dataclass(frozen=True)
class UnateReport:
    """Statistics of one unate conversion."""

    original_gates: int        #: AND/OR gates before conversion (INVs excluded)
    unate_gates: int           #: AND/OR gates after conversion
    duplicated_nodes: int      #: original AND/OR nodes materialized in both phases
    negated_pis: int           #: complementary-phase PIs created
    original_depth: int
    unate_depth: int

    @property
    def duplication_ratio(self) -> float:
        """Gate growth factor caused by duplication (>= 1.0, paper: <= 2.0)."""
        if self.original_gates == 0:
            return 1.0
        return self.unate_gates / self.original_gates


def unate_convert(network: LogicNetwork,
                  neg_suffix: str = NEG_SUFFIX) -> Tuple[LogicNetwork, UnateReport]:
    """Convert a decomposed AND/OR/INV network into a unate AND/OR network.

    Parameters
    ----------
    network:
        A decomposed network (2-input AND/OR + INV; see
        :func:`repro.synth.decompose`).  Constants must have been swept out
        of gate fanins (:func:`repro.synth.sweep`), though constant POs are
        tolerated.
    neg_suffix:
        Suffix for complementary-phase PI names.

    Returns
    -------
    (unate_network, report)
        ``unate_network`` contains only PI/PO and 2-input AND/OR nodes and
        satisfies ``unate_network.is_mappable()``.
    """
    out = LogicNetwork(network.name)
    # (original uid, phase) -> uid in out.  phase True = positive.
    memo: Dict[Tuple[int, bool], int] = {}
    pos_pi: Dict[int, int] = {}
    neg_pi: Dict[int, int] = {}
    phases_used: Dict[int, set] = {}

    # PIs are created eagerly in original order so the positive-phase
    # interface is stable regardless of which phases the logic needs.
    for uid in network.pis:
        pos_pi[uid] = out.add_pi(network.node(uid).label)

    # The phase realization is iterative (explicit worklist) because the
    # recursion depth would exceed Python's limit on deep benchmark circuits.
    for po in network.pos:
        _realize_iterative(network, out, network.node(po).fanins[0], True,
                           memo, pos_pi, neg_pi, phases_used, neg_suffix)
        out.add_po(memo[(network.node(po).fanins[0], True)],
                   network.node(po).label)

    duplicated = sum(1 for phases in phases_used.values() if len(phases) == 2)
    original_gates = sum(1 for n in network
                         if n.type in (NodeType.AND, NodeType.OR))
    unate_gates = sum(1 for n in out if n.type in (NodeType.AND, NodeType.OR))
    report = UnateReport(
        original_gates=original_gates,
        unate_gates=unate_gates,
        duplicated_nodes=duplicated,
        negated_pis=len(neg_pi),
        original_depth=_andor_depth(network),
        unate_depth=_andor_depth(out),
    )
    return out, report


def _realize_iterative(network, out, root, root_phase, memo, pos_pi, neg_pi,
                       phases_used, neg_suffix):
    """Iterative version of the recursive ``realize`` above."""
    stack = [(root, root_phase, False)]
    while stack:
        uid, phase, expanded = stack.pop()
        key = (uid, phase)
        if key in memo:
            continue
        node = network.node(uid)
        t = node.type
        if t is NodeType.PI:
            if phase:
                memo[key] = pos_pi[uid]
            else:
                if uid not in neg_pi:
                    neg_pi[uid] = out.add_pi(node.label + neg_suffix)
                memo[key] = neg_pi[uid]
            continue
        if t in (NodeType.CONST0, NodeType.CONST1):
            memo[key] = out.add_const((t is NodeType.CONST1) == phase)
            continue
        if t is NodeType.INV:
            child = (node.fanins[0], not phase)
            if child in memo:
                memo[key] = memo[child]
            else:
                stack.append((uid, phase, False))
                stack.append((node.fanins[0], not phase, False))
            continue
        if t in (NodeType.AND, NodeType.OR):
            children = [(f, phase) for f in node.fanins]
            if expanded or all(c in memo for c in children):
                phases_used.setdefault(uid, set()).add(phase)
                op = t if phase else t.dual
                memo[key] = out.add_gate(op, tuple(memo[c] for c in children))
            else:
                stack.append((uid, phase, True))
                for c in children:
                    if c not in memo:
                        stack.append((c[0], c[1], False))
            continue
        raise UnateConversionError(
            f"node {node.label} has type {t.value}; run decompose() first")


def _andor_depth(network: LogicNetwork) -> int:
    """Depth counting only AND/OR gates (inverters are free in this metric)."""
    level: Dict[int, int] = {}
    for uid in network.topological_order():
        node = network.node(uid)
        if not node.fanins:
            level[uid] = 0
        else:
            base = max(level[f] for f in node.fanins)
            bump = 1 if node.type in (NodeType.AND, NodeType.OR) else 0
            level[uid] = base + bump
    return max((level[p] for p in network.pos), default=0)


def unate_with_sweep(network: LogicNetwork,
                     neg_suffix: str = NEG_SUFFIX) -> Tuple[LogicNetwork, UnateReport]:
    """:func:`unate_convert` followed by :func:`repro.synth.sweep`.

    The report's gate counts refer to the swept result.
    """
    unate, report = unate_convert(network, neg_suffix=neg_suffix)
    swept = sweep(unate)
    swept_gates = sum(1 for n in swept
                      if n.type in (NodeType.AND, NodeType.OR))
    report = UnateReport(
        original_gates=report.original_gates,
        unate_gates=swept_gates,
        duplicated_nodes=report.duplicated_nodes,
        negated_pis=report.negated_pis,
        original_depth=report.original_depth,
        unate_depth=_andor_depth(swept),
    )
    return swept, report


def check_unate_equivalent(original: LogicNetwork, unate: LogicNetwork,
                           vectors: int = 512, seed: int = 0,
                           neg_suffix: str = NEG_SUFFIX) -> Optional[str]:
    """Verify a unate network against its pre-conversion original.

    Complementary PIs (``X_bar``) are driven with the complement of ``X``.
    Returns ``None`` on success, or a human-readable mismatch description.
    """
    import random

    orig_pis = {original.node(u).label: u for u in original.pis}
    orig_pos = {original.node(u).label: u for u in original.pos}
    unate_pos = {unate.node(u).label: u for u in unate.pos}
    if set(orig_pos) != set(unate_pos):
        return f"PO sets differ: {sorted(orig_pos)} vs {sorted(unate_pos)}"

    rng = random.Random(seed)
    words = {name: rng.getrandbits(vectors) for name in orig_pis}
    mask = (1 << vectors) - 1

    unate_words = {}
    for uid in unate.pis:
        label = unate.node(uid).label
        if label in orig_pis:
            unate_words[uid] = words[label]
        elif label.endswith(neg_suffix) and label[: -len(neg_suffix)] in orig_pis:
            unate_words[uid] = words[label[: -len(neg_suffix)]] ^ mask
        else:
            return f"unate network has unexplained PI {label!r}"

    out_a = evaluate_vectors(
        original, {orig_pis[n]: w for n, w in words.items()}, vectors)
    out_b = evaluate_vectors(unate, unate_words, vectors)
    for name in orig_pos:
        if out_a[orig_pos[name]] != out_b[unate_pos[name]]:
            return f"output {name} differs between original and unate network"
    return None
