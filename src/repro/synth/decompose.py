"""Decomposition into 2-input AND/OR + inverter networks.

The mappers (paper §IV) start "from an initial decomposed network
consisting of 2-input AND-OR gates and inverters".  This pass takes the
richer node vocabulary produced by the netlist readers (wide gates, NAND,
NOR, XOR, XNOR, BUF) and rewrites everything into that form.

Wide AND/OR gates become *balanced* binary trees, which minimizes the
decomposed depth and is the conventional starting point for tree-based
domino mapping.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from ..errors import NetworkError
from ..network import LogicNetwork, NodeType


def _balanced_tree(network: LogicNetwork, op: NodeType,
                   leaves: Sequence[int], name: str = "") -> int:
    """Reduce ``leaves`` with 2-input ``op`` gates arranged as a balanced tree."""
    if not leaves:
        raise NetworkError(f"cannot build {op.value} tree with no leaves")
    layer: List[int] = list(leaves)
    while len(layer) > 1:
        nxt: List[int] = []
        for i in range(0, len(layer) - 1, 2):
            nxt.append(network.add_gate(op, (layer[i], layer[i + 1])))
        if len(layer) % 2:
            nxt.append(layer[-1])
        layer = nxt
    if name:
        network.node(layer[0]).name = network.node(layer[0]).name or name
    return layer[0]


def decompose(network: LogicNetwork) -> LogicNetwork:
    """Return an equivalent network of 2-input AND/OR gates and inverters.

    PI and PO names are preserved, so the result can be equivalence-checked
    against the input with :func:`repro.sim.assert_equivalent`.
    """
    out = LogicNetwork(network.name)
    new_id: Dict[int, int] = {}

    for uid in network.topological_order():
        node = network.node(uid)
        t = node.type
        fanins = [new_id[f] for f in node.fanins]

        if t is NodeType.PI:
            new_id[uid] = out.add_pi(node.name)
        elif t is NodeType.PO:
            new_id[uid] = out.add_po(fanins[0], node.name)
        elif t in (NodeType.CONST0, NodeType.CONST1):
            new_id[uid] = out.add_const(t is NodeType.CONST1, node.name)
        elif t is NodeType.BUF:
            new_id[uid] = fanins[0]
        elif t is NodeType.INV:
            new_id[uid] = out.add_inv(fanins[0], node.name)
        elif t in (NodeType.AND, NodeType.OR):
            if len(fanins) == 1:
                new_id[uid] = fanins[0]
            else:
                new_id[uid] = _balanced_tree(out, t, fanins, node.name)
        elif t in (NodeType.NAND, NodeType.NOR):
            base = NodeType.AND if t is NodeType.NAND else NodeType.OR
            inner = fanins[0] if len(fanins) == 1 else _balanced_tree(
                out, base, fanins)
            new_id[uid] = out.add_inv(inner, node.name)
        elif t in (NodeType.XOR, NodeType.XNOR):
            new_id[uid] = _decompose_xor_chain(
                out, fanins, invert=(t is NodeType.XNOR), name=node.name)
        else:  # pragma: no cover - the enum is closed
            raise NetworkError(f"cannot decompose node type {t}")

    return out


def _decompose_xor_chain(network: LogicNetwork, fanins: Sequence[int],
                         invert: bool, name: str = "") -> int:
    """XOR/XNOR of ``fanins`` as 2-input AND/OR/INV logic.

    ``a ^ b`` is expanded to ``(a * !b) + (!a * b)``; wide XORs become a
    left-to-right chain of those expansions.
    """
    acc = fanins[0]
    for rhs in fanins[1:]:
        not_acc = network.add_inv(acc)
        not_rhs = network.add_inv(rhs)
        left = network.add_and(acc, not_rhs)
        right = network.add_and(not_acc, rhs)
        acc = network.add_or(left, right)
    if invert:
        acc = network.add_inv(acc)
    if name:
        network.node(acc).name = network.node(acc).name or name
    return acc


def is_decomposed(network: LogicNetwork) -> bool:
    """True if the network is 2-input AND/OR + INV (plus PI/PO/constants)."""
    for node in network:
        t = node.type
        if t in (NodeType.PI, NodeType.PO, NodeType.INV,
                 NodeType.CONST0, NodeType.CONST1):
            continue
        if t in (NodeType.AND, NodeType.OR) and len(node.fanins) == 2:
            continue
        return False
    return True
