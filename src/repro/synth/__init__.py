"""Synthesis front end: decomposition, sweeping, unate conversion."""

from .decompose import decompose, is_decomposed
from .phase_assign import (
    PhaseAssignment,
    check_phase_assignment,
    unate_with_phase_assignment,
)
from .sweep import sweep
from .unate import (
    NEG_SUFFIX,
    UnateReport,
    check_unate_equivalent,
    unate_convert,
    unate_with_sweep,
)

__all__ = [
    "decompose",
    "is_decomposed",
    "sweep",
    "PhaseAssignment",
    "check_phase_assignment",
    "unate_with_phase_assignment",
    "NEG_SUFFIX",
    "UnateReport",
    "check_unate_equivalent",
    "unate_convert",
    "unate_with_sweep",
]
