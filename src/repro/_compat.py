"""Backwards-compatibility shims: the one place deprecations live.

Every legacy API surface the package still honours funnels through
:func:`deprecated`, so the warning category, the ``stacklevel``
arithmetic, and the message style stay consistent — and a grep for
``_compat.deprecated`` enumerates every shim left to retire.
"""

from __future__ import annotations

import warnings

#: Default stacklevel: the caller of the shimmed public function.
#: (1 = deprecated(), 2 = the shim itself, 3 = the user's call site.)
_CALLER = 3


def deprecated(message: str, *, stacklevel: int = _CALLER) -> None:
    """Emit the package-standard :class:`DeprecationWarning`.

    ``message`` should name the legacy spelling and its replacement
    ("X is deprecated; use Y instead").  ``stacklevel`` defaults to the
    user's call site when called directly from a shim function; property
    shims (one frame shallower) pass ``stacklevel=2``.
    """
    warnings.warn(message, DeprecationWarning, stacklevel=stacklevel)
