"""Backwards-compatibility shims: the one place deprecations live.

Every legacy API surface the package still honours funnels through
:func:`deprecated`, so the warning category, the ``stacklevel``
arithmetic, and the message style stay consistent — and
:data:`SHIMS` enumerates every shim left to retire: its legacy
spelling, the replacement the warning names, and the release the shim
is scheduled to disappear in.  ``tests/test_compat.py`` asserts the
table and the emitted warnings agree.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass
from typing import Optional, Tuple

#: Default stacklevel: the caller of the shimmed public function.
#: (1 = deprecated(), 2 = the shim itself, 3 = the user's call site.)
_CALLER = 3


@dataclass(frozen=True)
class Shim:
    """One legacy spelling still honoured, and its retirement plan."""

    #: the legacy spelling users may still have in code
    name: str
    #: what the deprecation warning tells them to use instead
    replacement: str
    #: the release this shim is scheduled to be removed in
    remove_in: str


#: Every deprecation shim left in the package.  Each entry corresponds
#: to exactly one ``deprecated(...)`` call site; retiring a shim means
#: deleting both the call site and its row here.  (The three 0.5 shims
#: — the positional-CostModel ``map_network`` call form, the loose
#: ``soi_domino_map`` keyword switches, and the
#: ``MappingResult.tuples_created`` alias — were removed on schedule.)
SHIMS: Tuple[Shim, ...] = (
    Shim(name="repro.mapping.soa.SoAKernel() direct construction",
         replacement="the kernel registry (MapperConfig(kernel='soa') "
                     "/ register_kernel)",
         remove_in="0.7"),
)


def deprecated(message: str, *, remove_in: Optional[str] = None,
               stacklevel: int = _CALLER) -> None:
    """Emit the package-standard :class:`DeprecationWarning`.

    ``message`` should name the legacy spelling and its replacement
    ("X is deprecated; use Y instead"); ``remove_in`` appends the
    scheduled removal release, matching the shim's :data:`SHIMS` row.
    ``stacklevel`` defaults to the user's call site when called directly
    from a shim function; property shims (one frame shallower) pass
    ``stacklevel=2``.
    """
    if remove_in is not None:
        message = f"{message} (scheduled for removal in {remove_in})"
    warnings.warn(message, DeprecationWarning, stacklevel=stacklevel)
