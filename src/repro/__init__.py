"""repro — reproduction of "Technology Mapping for SOI Domino Logic
Incorporating Solutions for the Parasitic Bipolar Effect"
(Karandikar & Sapatnekar, DAC 2001).

The package builds domino-logic implementations of random logic networks
for SOI technology, minimizing the clock-driven pmos pre-discharge
transistors required to suppress the Parasitic Bipolar Effect (PBE).

Quick start::

    from repro import network_from_expression, soi_domino_map

    net = network_from_expression("(A + B + C) * D")
    result = soi_domino_map(net)
    print(result.cost)

See README.md for the full tour and DESIGN.md for the system inventory.
"""

from .errors import (
    BatchDeadlineError,
    BenchmarkError,
    CacheIntegrityError,
    CheckpointCorruptError,
    FlowError,
    MappingError,
    NetworkError,
    ParseError,
    ReproError,
    ResourceLimitError,
    SimulationError,
    StructureError,
    UnateConversionError,
    WorkerCrashError,
    is_retryable,
)
from .network import (
    LogicNetwork,
    LogicNode,
    NodeType,
    network_from_expression,
    network_from_expressions,
    network_stats,
)
from .synth import decompose, sweep, unate_convert, unate_with_sweep
from .domino import (
    CircuitCost,
    DominoCircuit,
    DominoGate,
    Leaf,
    Parallel,
    Series,
    analyse,
    count_discharge_transistors,
    parallel,
    rearrange,
    series,
)
from .flow import (
    FlowCheckpoint,
    FlowContext,
    FlowPipeline,
    Pass,
    PassRecord,
    available_passes,
)
from .mapping import (
    FLOW_PASSES,
    FLOW_PRESETS,
    AreaCost,
    ClockWeightedCost,
    CostModel,
    DepthCost,
    FlowResult,
    KernelProtocol,
    MapperConfig,
    MappingEngine,
    MappingResult,
    available_kernels,
    domino_map,
    flow_config,
    flow_passes,
    map_network,
    prepare_network,
    register_kernel,
    rs_map,
    soi_domino_map,
    unregister_kernel,
)
from .obs import (
    MetricsRegistry,
    Span,
    Tracer,
    batch_report,
    flow_report,
    prometheus_text,
    write_trace,
)
from .pipeline import (
    BatchReport,
    BatchResult,
    BatchRunner,
    BatchTask,
    CacheStore,
    MappingStats,
    TreeCache,
    WorkerPool,
)
from .resilience import (
    FAULT_POINTS,
    FaultPlan,
    FaultPoint,
    FaultRule,
    plan_from_spec,
)

__version__ = "0.6.0"

__all__ = [
    "BatchDeadlineError",
    "BenchmarkError",
    "CacheIntegrityError",
    "CheckpointCorruptError",
    "FlowError",
    "MappingError",
    "NetworkError",
    "ParseError",
    "ReproError",
    "ResourceLimitError",
    "SimulationError",
    "StructureError",
    "UnateConversionError",
    "WorkerCrashError",
    "is_retryable",
    "LogicNetwork",
    "LogicNode",
    "NodeType",
    "network_from_expression",
    "network_from_expressions",
    "network_stats",
    "decompose",
    "sweep",
    "unate_convert",
    "unate_with_sweep",
    "CircuitCost",
    "DominoCircuit",
    "DominoGate",
    "Leaf",
    "Parallel",
    "Series",
    "analyse",
    "count_discharge_transistors",
    "parallel",
    "rearrange",
    "series",
    "AreaCost",
    "FLOW_PASSES",
    "FLOW_PRESETS",
    "FlowCheckpoint",
    "FlowContext",
    "FlowPipeline",
    "Pass",
    "PassRecord",
    "available_passes",
    "flow_passes",
    "ClockWeightedCost",
    "CostModel",
    "DepthCost",
    "FlowResult",
    "KernelProtocol",
    "MapperConfig",
    "MappingEngine",
    "MappingResult",
    "available_kernels",
    "register_kernel",
    "unregister_kernel",
    "domino_map",
    "flow_config",
    "map_network",
    "prepare_network",
    "rs_map",
    "soi_domino_map",
    "BatchReport",
    "BatchResult",
    "BatchRunner",
    "BatchTask",
    "CacheStore",
    "MappingStats",
    "TreeCache",
    "WorkerPool",
    "FAULT_POINTS",
    "FaultPlan",
    "FaultPoint",
    "FaultRule",
    "plan_from_spec",
    "MetricsRegistry",
    "Span",
    "Tracer",
    "batch_report",
    "flow_report",
    "prometheus_text",
    "write_trace",
    "__version__",
]
