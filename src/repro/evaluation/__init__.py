"""Reproduction harness for the paper's evaluation (Tables I-IV)."""

from . import paper_data
from .formats import percent, render_table
from .tables import (
    RUNNERS,
    TableResult,
    run_all,
    run_table1,
    run_table2,
    run_table3,
    run_table4,
)

__all__ = [
    "paper_data",
    "percent",
    "render_table",
    "RUNNERS",
    "TableResult",
    "run_all",
    "run_table1",
    "run_table2",
    "run_table3",
    "run_table4",
]
