"""Plain-text table rendering for the evaluation harness."""

from __future__ import annotations

from typing import List, Sequence


def render_table(headers: Sequence[str], rows: Sequence[Sequence[object]],
                 title: str = "") -> str:
    """Render rows as an aligned ASCII table (numbers right-aligned)."""
    cells: List[List[str]] = [[_fmt(v) for v in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in cells:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    sep = "-+-".join("-" * w for w in widths)
    lines = []
    if title:
        lines.append(title)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append(sep)
    for row in cells:
        lines.append(" | ".join(
            cell.rjust(w) if _numeric(cell) else cell.ljust(w)
            for cell, w in zip(row, widths)))
    return "\n".join(lines)


def _fmt(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.2f}"
    return str(value)


def _numeric(cell: str) -> bool:
    try:
        float(cell)
        return True
    except ValueError:
        return cell.endswith("%") and _numeric(cell[:-1])


def percent(before: float, after: float) -> float:
    """Percentage reduction from ``before`` to ``after`` (0 when before=0)."""
    if before == 0:
        return 0.0
    return 100.0 * (before - after) / before
