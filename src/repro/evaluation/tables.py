"""Reproduction runners for the paper's Tables I-IV.

Each ``run_tableN`` maps the benchmark suite with the relevant algorithm
pair, assembles a :class:`TableResult` whose rows mirror the paper's
columns, and attaches the paper's reported numbers for side-by-side
comparison.  The benchmark harness under ``benchmarks/`` and the CLI both
delegate here.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from ..bench_suite import load_circuit
from ..mapping import (
    ClockWeightedCost,
    DepthCost,
    MapperConfig,
    domino_map,
    prepare_network,
    rs_map,
    soi_domino_map,
)
from . import paper_data
from .formats import percent, render_table


@dataclass
class TableResult:
    """One reproduced table."""

    name: str
    headers: List[str]
    rows: List[List[object]] = field(default_factory=list)
    averages: Dict[str, float] = field(default_factory=dict)
    paper_averages: Dict[str, float] = field(default_factory=dict)

    @property
    def text(self) -> str:
        body = render_table(self.headers, self.rows, title=self.name)
        lines = [body, ""]
        for key, value in self.averages.items():
            paper = self.paper_averages.get(key)
            suffix = f"   (paper: {paper:.2f})" if paper is not None else ""
            lines.append(f"average {key}: {value:.2f}{suffix}")
        return "\n".join(lines)

    def average(self, key: str) -> float:
        return self.averages[key]


def _mean(values: Sequence[float]) -> float:
    return sum(values) / len(values) if values else 0.0


# ---------------------------------------------------------------------------
# Table I: Domino_Map vs RS_Map (area objective).
# ---------------------------------------------------------------------------
def run_table1(circuits: Optional[Sequence[str]] = None,
               bench_dir: Optional[str] = None) -> TableResult:
    """Reproduce Table I: the baseline against stack rearrangement."""
    names = list(circuits) if circuits else list(paper_data.TABLE1)
    result = TableResult(
        name="Table I: Domino_Map vs Rearrange_Stacks_Map",
        headers=["circuit", "Tl_base", "Td_base", "Tt_base",
                 "Tl_rs", "Td_rs", "Tt_rs",
                 "dTd%", "dTt%", "paper_dTd%"],
    )
    disch_red, total_red = [], []
    for name in names:
        network = load_circuit(name, bench_dir=bench_dir)
        base = domino_map(network).cost
        rs = rs_map(network).cost
        d_red = percent(base.t_disch, rs.t_disch)
        t_red = percent(base.t_total, rs.t_total)
        disch_red.append(d_red)
        total_red.append(t_red)
        paper = paper_data.TABLE1.get(name)
        paper_d = percent(paper[0][1], paper[1][1]) if paper else float("nan")
        result.rows.append([
            name, base.t_logic, base.t_disch, base.t_total,
            rs.t_logic, rs.t_disch, rs.t_total,
            d_red, t_red, paper_d,
        ])
    result.averages = {"discharge reduction %": _mean(disch_red),
                       "total reduction %": _mean(total_red)}
    result.paper_averages = {"discharge reduction %": paper_data.TABLE1_AVG[0],
                             "total reduction %": paper_data.TABLE1_AVG[1]}
    return result


# ---------------------------------------------------------------------------
# Table II: Domino_Map vs SOI_Domino_Map (area objective).
# ---------------------------------------------------------------------------
def run_table2(circuits: Optional[Sequence[str]] = None,
               bench_dir: Optional[str] = None) -> TableResult:
    """Reproduce Table II: the baseline against the paper's algorithm."""
    names = list(circuits) if circuits else list(paper_data.TABLE2)
    result = TableResult(
        name="Table II: Domino_Map vs SOI_Domino_Map",
        headers=["circuit", "Tl_base", "Td_base", "Tt_base",
                 "Tl_soi", "Td_soi", "Tt_soi",
                 "dTd%", "dTt%", "paper_dTd%", "paper_dTt%"],
    )
    disch_red, total_red = [], []
    for name in names:
        network = load_circuit(name, bench_dir=bench_dir)
        base = domino_map(network).cost
        soi = soi_domino_map(network).cost
        d_red = percent(base.t_disch, soi.t_disch)
        t_red = percent(base.t_total, soi.t_total)
        disch_red.append(d_red)
        total_red.append(t_red)
        paper = paper_data.TABLE2.get(name)
        paper_d = percent(paper[0][1], paper[1][1]) if paper else float("nan")
        paper_t = percent(paper[0][2], paper[1][2]) if paper else float("nan")
        result.rows.append([
            name, base.t_logic, base.t_disch, base.t_total,
            soi.t_logic, soi.t_disch, soi.t_total,
            d_red, t_red, paper_d, paper_t,
        ])
    result.averages = {"discharge reduction %": _mean(disch_red),
                       "total reduction %": _mean(total_red)}
    result.paper_averages = {"discharge reduction %": paper_data.TABLE2_AVG[0],
                             "total reduction %": paper_data.TABLE2_AVG[1]}
    return result


# ---------------------------------------------------------------------------
# Table III: clock-connected transistor weighting k=1 vs k=2.
# ---------------------------------------------------------------------------
def run_table3(circuits: Optional[Sequence[str]] = None,
               k: float = 2.0,
               bench_dir: Optional[str] = None,
               duplication: bool = False) -> TableResult:
    """Reproduce Table III: penalizing clock-connected transistors.

    Runs ``SOI_Domino_Map`` with the clock-weighted cost at weight 1 and
    at weight ``k`` (the paper reports k=2) and reports the reduction in
    clock-connected transistors ``T_clock``.

    Unlike the other tables this defaults to the duplication-free tree
    regime: there the per-tree DP is exact, and the exchange argument
    (L1+C1 <= L2+C2 and L2+kC2 <= L1+kC1 imply C2 <= C1) guarantees the
    k-weighted solution never loads the clock more.  Under the
    area-flow-amortized duplication heuristic the realized clock count is
    only approximately optimized and small regressions appear (see
    EXPERIMENTS.md).
    """
    names = list(circuits) if circuits else list(paper_data.TABLE3)
    result = TableResult(
        name=f"Table III: clock-transistor weight k=1 vs k={k:g}",
        headers=["circuit",
                 "Tl_k1", "Td_k1", "Tt_k1", "#G_k1", "Tclk_k1",
                 "Tl_k", "Td_k", "Tt_k", "#G_k", "Tclk_k",
                 "improv%", "paper_improv%"],
    )
    improvements = []
    for name in names:
        network = load_circuit(name, bench_dir=bench_dir)
        config = MapperConfig(duplication=duplication)
        c1 = soi_domino_map(network, cost_model=ClockWeightedCost(1.0),
                            config=config).cost
        ck = soi_domino_map(network, cost_model=ClockWeightedCost(k),
                            config=config).cost
        improv = percent(c1.t_clock, ck.t_clock)
        improvements.append(improv)
        paper = paper_data.TABLE3.get(name)
        paper_improv = paper[2] if paper else float("nan")
        result.rows.append([
            name,
            c1.t_logic, c1.t_disch, c1.t_total, c1.num_gates, c1.t_clock,
            ck.t_logic, ck.t_disch, ck.t_total, ck.num_gates, ck.t_clock,
            improv, paper_improv,
        ])
    result.averages = {"Tclock reduction %": _mean(improvements)}
    result.paper_averages = {"Tclock reduction %": paper_data.TABLE3_AVG}
    return result


# ---------------------------------------------------------------------------
# Table IV: depth optimization.
# ---------------------------------------------------------------------------
def run_table4(circuits: Optional[Sequence[str]] = None,
               level_weight: float = 10.0,
               bench_dir: Optional[str] = None) -> TableResult:
    """Reproduce Table IV: the depth objective.

    Both mappers run with :class:`DepthCost`; the baseline ignores
    discharge transistors during the DP (they are post-processed in), the
    SOI mapper includes them, trading levels against discharges.
    """
    names = list(circuits) if circuits else list(paper_data.TABLE4)
    result = TableResult(
        name="Table IV: depth and discharge transistor optimization",
        headers=["circuit", "L0",
                 "Tl_base", "Td_base", "Tt_base", "L_base",
                 "Tl_soi", "Td_soi", "Tt_soi", "L_soi",
                 "dTd%", "dL%", "paper_dTd%", "paper_dL%"],
    )
    disch_red, level_red = [], []
    for name in names:
        network = load_circuit(name, bench_dir=bench_dir)
        unate, _ = prepare_network(network)
        l0 = unate.depth()
        cost = DepthCost(level_weight=level_weight)
        base = domino_map(network, cost_model=cost).cost
        soi = soi_domino_map(network, cost_model=cost).cost
        d_red = percent(base.t_disch, soi.t_disch)
        l_red = percent(base.levels, soi.levels)
        disch_red.append(d_red)
        level_red.append(l_red)
        paper = paper_data.TABLE4.get(name)
        if paper:
            paper_d = percent(paper[1][1], paper[2][1])
            paper_l = percent(paper[1][3], paper[2][3])
        else:
            paper_d = paper_l = float("nan")
        result.rows.append([
            name, l0,
            base.t_logic, base.t_disch, base.t_total, base.levels,
            soi.t_logic, soi.t_disch, soi.t_total, soi.levels,
            d_red, l_red, paper_d, paper_l,
        ])
    result.averages = {"discharge reduction %": _mean(disch_red),
                       "level reduction %": _mean(level_red)}
    result.paper_averages = {"discharge reduction %": paper_data.TABLE4_AVG[0],
                             "level reduction %": paper_data.TABLE4_AVG[1]}
    return result


#: All reproduction runners keyed by experiment id (DESIGN.md section 5).
RUNNERS: Dict[str, Callable[..., TableResult]] = {
    "table1": run_table1,
    "table2": run_table2,
    "table3": run_table3,
    "table4": run_table4,
}


def run_all(circuits: Optional[Sequence[str]] = None) -> Dict[str, TableResult]:
    """Run every table; returns experiment id -> result."""
    return {key: runner(circuits=circuits) for key, runner in RUNNERS.items()}
