"""Tree-level memoization for the mapping dynamic program.

The DP is exact over fanout-free trees, and benchmark suites repeat tree
shapes constantly (mux trees, parity trees, adder slices, the calibrated
random networks).  For a cache-eligible node — an AND/OR node whose whole
transitive fanin cone consists of primary inputs and single-fanout AND/OR
nodes — the node's tuple table depends only on

* the *shape* of that cone (node types in fanin order),
* the :class:`~repro.mapping.engine.MapperConfig`, and
* the cost model,

never on signal names or node ids.  :class:`TreeCache` therefore keys
entries by ``(config fingerprint, cost-model fingerprint, shape
signature)`` and stores the node's finished tuple table with its leaf
labels abstracted to positions in a canonical preorder traversal.  A hit
rebuilds the table for the new cone by substituting the actual primary-
input labels and interior node ids — bit-identical to what the DP would
have produced, because the stored tuples *are* what the DP produced for
an identical shape — and skips the combine/prune loop entirely.

Shape signatures are hash-consed: every distinct ``(op, left, right)``
triple gets a small integer id, so signing a network is O(nodes) and
comparing signatures is integer equality.  Nodes whose cone repeats a
primary-input label (the same PI feeding two leaves) are skipped — the
positional relabeling would be ambiguous — as are nodes with any
multi-fanout interior, whose DP view depends on sharing amortization.

``TreeCache(enabled=False)`` (or flipping :attr:`TreeCache.enabled` at
any time) is the correctness-preserving bypass: lookups miss, nothing is
stored, and mapping proceeds exactly as without a cache.

Residency is bounded and deterministic: entries live in an LRU order
(storing and hitting an entry both refresh it), and once ``max_entries``
is reached every new store evicts the least-recently-used entry — so
which shapes stay resident is a pure function of the lookup sequence,
never of hash order or timing.  Evictions are counted
(:attr:`evictions`, with the LRU subset in :attr:`lru_evictions`) and
surface in :meth:`stats`, in ``MappingStats.cache_evictions``, and in
the batch report.

A :class:`~repro.pipeline.store.CacheStore` can be attached as a
persistent second tier (``TreeCache(store=...)``): an in-memory miss
consults the store under a *stable* key — sha256 of the canonical cone
shape plus the config/cost-model fingerprints, independent of this
process's hash-consed signature ids — and a computed table is written
through.  Store payloads are pickled templates, checksummed by the
store; a payload that fails to unpickle is evicted as poison.  Because
templates are bit-identical whichever process computes them, warm state
survives process pools, daemon restarts, and concurrent writers without
any cross-process coordination beyond sqlite's.

Entries are integrity-checked: :meth:`TreeCache.put` fingerprints the
stored template and :meth:`TreeCache.fetch` re-derives the fingerprint
before instantiating a hit.  A mismatch — memory corruption, or a bug
mutating a template that is supposed to be immutable shared state — is
*poison*: reusing the entry would silently map a different circuit, the
worst failure mode a memoization layer has.  The poisoned entry is
evicted, the fetch reports a miss (the DP recomputes the table, which
is always correct), and the recovery is counted/traced via
:meth:`TreeCache.bind_obs`.  The ``cache.poison`` fault point of
:mod:`repro.resilience` mutates a fetched template in exactly this way
so the detection path stays tested.
"""

from __future__ import annotations

import hashlib
import pickle
from collections import OrderedDict
from typing import Dict, List, Optional, Tuple

from ..domino.structure import Leaf, Pulldown
from ..mapping.tuples import MapTuple, TupleTable
from ..network import LogicNetwork, NodeType
from ..resilience.faults import emit_recovery, fire
from .store import SCHEMA_VERSION, CacheStore

#: Signature id reserved for a primary-input leaf.
_PI_SIG = 0

#: One cached table: ``[(shape, [tuple templates in slot order]), ...]``
#: in slot-insertion order, so a rebuilt table iterates identically.
_Template = List[Tuple[Tuple[int, int], List[MapTuple]]]


class TreeCache:
    """Cross-run memoization of per-node DP tables.

    Parameters
    ----------
    enabled:
        The bypass switch; a disabled cache never hits and never stores.
    max_entries:
        Residency cap; once reached, each new store evicts the
        least-recently-used entry (deterministic LRU: stores and hits
        both refresh recency).
    store:
        Optional :class:`~repro.pipeline.store.CacheStore` persistent
        second tier — consulted on in-memory misses, written through on
        stores, keyed by :meth:`stable_key`.
    """

    def __init__(self, enabled: bool = True, max_entries: int = 200_000,
                 store: Optional[CacheStore] = None):
        self.enabled = enabled
        self.max_entries = max_entries
        self.store = store
        self._entries: "OrderedDict[tuple, _Template]" = OrderedDict()
        self._fingerprints: Dict[tuple, int] = {}
        self._intern: Dict[Tuple[str, int, int], int] = {}
        self._canon: Dict[int, object] = {_PI_SIG: 0}
        self._next_sig = _PI_SIG + 1
        self.hits = 0
        self.misses = 0
        self.stores = 0
        self.skipped = 0       #: store attempts dropped (ambiguity)
        self.evictions = 0     #: total entries dropped (integrity + LRU)
        self.lru_evictions = 0  #: the LRU-capacity subset of evictions
        self._tracer = None
        self._metrics = None

    def bind_obs(self, tracer=None, metrics=None) -> None:
        """Attach obs handles so integrity evictions are traced/counted."""
        self._tracer = tracer
        self._metrics = metrics

    # ------------------------------------------------------------------
    # shape signatures
    # ------------------------------------------------------------------
    def signatures(self, network: LogicNetwork) -> Dict[int, Optional[int]]:
        """Signature id per node; ``None`` marks cache-ineligible nodes."""
        sigs: Dict[int, Optional[int]] = {}
        for uid in network.topological_order():
            node = network.node(uid)
            if node.type is NodeType.PI:
                sigs[uid] = _PI_SIG
            elif node.type in (NodeType.AND, NodeType.OR):
                sigs[uid] = self._sign_gate(network, node, sigs)
            else:
                sigs[uid] = None
        return sigs

    def _sign_gate(self, network, node, sigs) -> Optional[int]:
        if len(node.fanins) != 2:
            return None
        parts: List[int] = []
        for fanin in node.fanins:
            sub = sigs.get(fanin)
            if sub is None:
                return None
            # Interior gates must be single-fanout: a shared node's view
            # depends on its fanout count (cost amortization / forcing).
            if (network.node(fanin).type is not NodeType.PI
                    and network.fanout_count(fanin) != 1):
                return None
            parts.append(sub)
        key = (node.type.value, parts[0], parts[1])
        sig = self._intern.get(key)
        if sig is None:
            sig = self._next_sig
            self._next_sig += 1
            self._intern[key] = sig
            # canonical (process-independent) form of the cone shape,
            # the basis of the persistent store's stable key
            self._canon[sig] = (node.type.value, self._canon[parts[0]],
                                self._canon[parts[1]])
        return sig

    def stable_key(self, prefix: tuple, sig: int) -> Optional[str]:
        """Cross-process identity of one cached cone: sha256 over the
        canonical shape and the config/cost-model fingerprint prefix.

        Unlike the hash-consed ``sig`` (a small integer private to this
        cache instance), the stable key is identical in every process
        that signs the same shape under the same configuration — it is
        what the persistent :class:`CacheStore` tier is keyed by.
        """
        canon = self._canon.get(sig)
        if canon is None:
            return None
        raw = repr(("cone-template", SCHEMA_VERSION, prefix, canon))
        return hashlib.sha256(raw.encode("utf-8")).hexdigest()

    # ------------------------------------------------------------------
    # lookup / store
    # ------------------------------------------------------------------
    def fetch(self, prefix: tuple, sig: int, network: LogicNetwork,
              uid: int, key_fn, pareto: bool) -> Optional[TupleTable]:
        """Rebuild the cached table for ``uid``'s cone, or None on miss."""
        if not self.enabled:
            return None
        key = (prefix, sig)
        template = self._entries.get(key)
        if template is not None:
            self._entries.move_to_end(key)
        elif self.store is not None:
            template = self._fetch_store(key)
        if template is None:
            self.misses += 1
            return None
        rule = fire("cache.poison", f"sig:{sig}", self._tracer,
                    self._metrics)
        if rule is not None and template and template[0][1]:
            # injected fault: mutate the stored template without
            # refreshing its fingerprint — the shape real poison takes
            template[0][1][0].wcost += 1.0
        if _template_fingerprint(template) != self._fingerprints.get(key):
            # Poisoned entry: instantiating it would silently map a
            # different circuit.  Evict and miss; the DP recomputes.
            del self._entries[key]
            self._fingerprints.pop(key, None)
            self.evictions += 1
            self.misses += 1
            emit_recovery("cache_evict",
                          f"integrity fingerprint mismatch for sig {sig}",
                          tracer=self._tracer, metrics=self._metrics,
                          sig=sig)
            return None
        maps = _subtree_maps(network, uid)
        if maps is None:
            self.misses += 1
            return None
        labels, uids, _, _ = maps
        slots = [(shape, [_instantiate(t, labels, uids) for t in slot])
                 for shape, slot in template]
        self.hits += 1
        return TupleTable.from_slots(key_fn, pareto, slots)

    def put(self, prefix: tuple, sig: int, network: LogicNetwork,
            uid: int, table: TupleTable) -> bool:
        """Store ``uid``'s finished table; returns True if cached."""
        if not self.enabled:
            return False
        key = (prefix, sig)
        if key in self._entries:
            return False
        maps = _subtree_maps(network, uid)
        if maps is None:
            self.skipped += 1
            return False
        _, _, label_pos, uid_pos = maps
        template: _Template = []
        for shape, slot in table.slots():
            templated = []
            for t in slot:
                abstract = _abstract(t, label_pos, uid_pos)
                if abstract is None:
                    self.skipped += 1
                    return False
                templated.append(abstract)
            template.append((shape, templated))
        self._admit(key, template)
        self.stores += 1
        if self.store is not None:
            stable = self.stable_key(prefix, sig)
            if stable is not None:
                self.store.put(stable, pickle.dumps(
                    template, protocol=pickle.HIGHEST_PROTOCOL))
        return True

    # ------------------------------------------------------------------
    # residency and the persistent tier
    # ------------------------------------------------------------------
    def _admit(self, key: tuple, template: _Template) -> None:
        """Install one entry, evicting LRU entries to stay under cap."""
        while len(self._entries) >= self.max_entries:
            victim, _ = self._entries.popitem(last=False)
            self._fingerprints.pop(victim, None)
            self.evictions += 1
            self.lru_evictions += 1
        self._entries[key] = template
        self._fingerprints[key] = _template_fingerprint(template)

    def _fetch_store(self, key: tuple) -> Optional[_Template]:
        """Second-tier lookup: load, deserialize and admit a stored
        template; ``None`` misses.  The store verified the payload
        checksum already; a payload that still fails to deserialize
        (stale pickle schema, foreign bytes) is evicted as poison."""
        prefix, sig = key
        stable = self.stable_key(prefix, sig)
        if stable is None:
            return None
        payload = self.store.get(stable)
        if payload is None:
            return None
        try:
            template = pickle.loads(payload)
            if not isinstance(template, list):
                raise TypeError(f"expected template list, "
                                f"got {type(template).__name__}")
        except Exception:  # noqa: BLE001 - any bad payload is poison
            self.store.delete(stable, poison=True)
            emit_recovery("cache_evict",
                          f"undeserializable store payload for sig {sig}",
                          tracer=self._tracer, metrics=self._metrics,
                          sig=sig)
            return None
        self._admit(key, template)
        return template

    # ------------------------------------------------------------------
    # accounting
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._entries)

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def stats(self) -> Dict[str, object]:
        data: Dict[str, object] = {
            "entries": len(self._entries),
            "hits": self.hits,
            "misses": self.misses,
            "stores": self.stores,
            "skipped": self.skipped,
            "evictions": self.evictions,
            "lru_evictions": self.lru_evictions,
            "hit_rate": self.hit_rate,
        }
        if self.store is not None:
            data["store"] = self.store.stats()
        return data

    def clear(self) -> None:
        """Reset the in-memory tier (the persistent store, if any, is
        cleared separately via :meth:`CacheStore.clear`)."""
        self._entries.clear()
        self._fingerprints.clear()
        self.hits = self.misses = self.stores = self.skipped = 0
        self.evictions = 0
        self.lru_evictions = 0

    def __repr__(self) -> str:
        return (f"TreeCache(enabled={self.enabled}, entries={len(self)}, "
                f"hits={self.hits}, misses={self.misses})")


# ---------------------------------------------------------------------------
# entry integrity
# ---------------------------------------------------------------------------
def _structure_key(structure: Pulldown) -> tuple:
    if isinstance(structure, Leaf):
        return ("L", structure.signal, structure.is_primary,
                structure.source_gate)
    return (type(structure).__name__,
            tuple(_structure_key(c) for c in structure.children))


def _tuple_key(t: MapTuple) -> tuple:
    return (t.width, t.height, t.wcost, t.trans, t.disch, t.levels,
            t.p_dis, t.par_b, t.has_pi, t.p_tail, t.ends_par,
            _structure_key(t.structure))


def _template_fingerprint(template: _Template) -> int:
    """Structural hash of a stored template (every field that feeds a
    rebuilt table).  Derived at store time and re-derived on fetch, so
    any later mutation of the shared entry is detected before its bytes
    are instantiated into a live DP table.  In-process only (uses
    ``hash``), which matches the cache's lifetime."""
    return hash(tuple((shape, tuple(_tuple_key(t) for t in slot))
                      for shape, slot in template))


# ---------------------------------------------------------------------------
# canonical cone traversal and structure (de)templating
# ---------------------------------------------------------------------------
def _subtree_maps(network: LogicNetwork, uid: int):
    """Preorder maps of ``uid``'s cone: leaf labels and interior uids.

    Returns ``(labels, uids, label_pos, uid_pos)`` or None when a primary
    input appears at more than one leaf position (positional relabeling
    would be ambiguous, so such cones are never cached).
    """
    labels: List[str] = []
    uids: List[int] = []
    label_pos: Dict[str, int] = {}
    uid_pos: Dict[int, int] = {}
    stack = [uid]
    while stack:
        node = network.node(stack.pop())
        if node.type is NodeType.PI:
            if node.label in label_pos:
                return None
            label_pos[node.label] = len(labels)
            labels.append(node.label)
        else:
            uid_pos[node.uid] = len(uids)
            uids.append(node.uid)
            stack.extend(reversed(node.fanins))
    return labels, uids, label_pos, uid_pos


def _abstract_structure(structure: Pulldown, label_pos, uid_pos):
    if isinstance(structure, Leaf):
        if structure.is_primary:
            pos = label_pos.get(structure.signal)
            if pos is None:
                return None
            return Leaf(str(pos), is_primary=True)
        pos = uid_pos.get(structure.source_gate)
        if pos is None:
            return None
        return Leaf(str(pos), is_primary=False, source_gate=pos)
    children = []
    for child in structure.children:
        templated = _abstract_structure(child, label_pos, uid_pos)
        if templated is None:
            return None
        children.append(templated)
    return type(structure)(tuple(children))


def _instantiate_structure(structure: Pulldown, labels, uids) -> Pulldown:
    if isinstance(structure, Leaf):
        if structure.is_primary:
            return Leaf(labels[int(structure.signal)], is_primary=True)
        gate_uid = uids[structure.source_gate]
        return Leaf(f"g{gate_uid}", is_primary=False, source_gate=gate_uid)
    return type(structure)(tuple(_instantiate_structure(c, labels, uids)
                                 for c in structure.children))


def _copy_tuple(t: MapTuple, structure: Pulldown) -> MapTuple:
    return MapTuple(width=t.width, height=t.height, wcost=t.wcost,
                    trans=t.trans, disch=t.disch, levels=t.levels,
                    p_dis=t.p_dis, par_b=t.par_b, has_pi=t.has_pi,
                    structure=structure, p_tail=t.p_tail,
                    ends_par=t.ends_par)


def _abstract(t: MapTuple, label_pos, uid_pos) -> Optional[MapTuple]:
    structure = _abstract_structure(t.structure, label_pos, uid_pos)
    if structure is None:
        return None
    return _copy_tuple(t, structure)


def _instantiate(t: MapTuple, labels, uids) -> MapTuple:
    return _copy_tuple(t, _instantiate_structure(t.structure, labels, uids))
