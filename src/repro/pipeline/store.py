"""Persistent cross-process cone cache: the :class:`TreeCache` second tier.

:class:`CacheStore` is a sqlite-backed key/value store for templated DP
tables.  Keys are *stable* cone identities — a sha256 over the canonical
cone shape plus the :class:`~repro.mapping.engine.MapperConfig` and cost-
model fingerprints (see :meth:`TreeCache.stable_key`) — so entries
written by one process (or one daemon lifetime) are valid in any other:
the hash-consed small-integer signatures :class:`TreeCache` uses
in-memory never leak into the store.

Every entry is checksummed: :meth:`put` stores ``sha256(payload)``
alongside the payload and :meth:`get` re-derives it before returning the
bytes.  A mismatch — a torn write, disk corruption, a foreign writer —
is *poison* exactly as in the in-memory tier (DESIGN.md §11): the row is
deleted, the lookup reports a miss (the DP recomputes, which is always
correct), and the eviction is counted.  Unpicklable or stale-schema
payloads are handled the same way by the caller (:meth:`TreeCache.fetch`).

Concurrency: the store is written by every pool worker and read by the
parent, so the connection runs in WAL mode with a busy timeout, writes
are single-statement transactions, and inserts are first-writer-wins
(``INSERT OR IGNORE``) — the same determinism contract as the in-memory
tier, where whichever process computes a shape first defines the stored
template (all of them compute bit-identical templates by construction).
Connections are opened lazily per process: a :class:`CacheStore` object
that crosses a ``fork`` reopens rather than sharing the parent's handle.

A sqlite failure must never fail a mapping: every operation degrades to
a miss / no-op and bumps the ``errors`` counter instead of raising.

Cumulative counters (hits / misses / stores / evictions) are persisted
in the database itself, so ``soidomino cache`` reports totals across
every process and daemon restart that ever touched the file.
"""

from __future__ import annotations

import hashlib
import os
import sqlite3
import threading
import time
from typing import Dict, Optional

#: Bump when the entry payload format (pickled template schema) changes;
#: stores written under another version are cleared on open.
SCHEMA_VERSION = 1

_COUNTERS = ("hits", "misses", "stores", "evictions")


def default_store_path() -> str:
    """Where the persistent cone cache lives unless overridden.

    ``SOIDOMINO_CACHE_DB`` wins; otherwise a per-user cache path.
    """
    env = os.environ.get("SOIDOMINO_CACHE_DB")
    if env:
        return env
    base = os.environ.get("XDG_CACHE_HOME",
                          os.path.join(os.path.expanduser("~"), ".cache"))
    return os.path.join(base, "soidomino", "cones.sqlite")


class CacheStore:
    """Checksummed sqlite key/value store for templated DP tables.

    Parameters
    ----------
    path:
        Database file; parent directories are created on first open.
        ``":memory:"`` is supported for tests (single-process only).
    """

    def __init__(self, path: str):
        self.path = path
        self._lock = threading.Lock()
        self._conn: Optional[sqlite3.Connection] = None
        self._pid: Optional[int] = None
        #: session-local (this process, this object) op counters
        self.hits = 0
        self.misses = 0
        self.stores = 0
        self.evictions = 0
        self.errors = 0

    # ------------------------------------------------------------------
    # connection / schema
    # ------------------------------------------------------------------
    def _connect(self) -> sqlite3.Connection:
        """The process-local connection, (re)opened after a fork."""
        pid = os.getpid()
        if self._conn is None or self._pid != pid:
            if self._conn is not None and self._pid == pid:
                self._conn.close()
            if self.path != ":memory:":
                parent = os.path.dirname(os.path.abspath(self.path))
                os.makedirs(parent, exist_ok=True)
            conn = sqlite3.connect(self.path, timeout=30.0,
                                   check_same_thread=False)
            conn.execute("PRAGMA journal_mode=WAL")
            conn.execute("PRAGMA synchronous=NORMAL")
            self._init_schema(conn)
            self._conn = conn
            self._pid = pid
        return self._conn

    @staticmethod
    def _init_schema(conn: sqlite3.Connection) -> None:
        with conn:
            conn.execute(
                "CREATE TABLE IF NOT EXISTS meta ("
                " key TEXT PRIMARY KEY, value TEXT)")
            conn.execute(
                "CREATE TABLE IF NOT EXISTS entries ("
                " key TEXT PRIMARY KEY,"
                " payload BLOB NOT NULL,"
                " checksum TEXT NOT NULL,"
                " created_s REAL NOT NULL,"
                " last_used_s REAL NOT NULL,"
                " hits INTEGER NOT NULL DEFAULT 0)")
            conn.execute(
                "CREATE TABLE IF NOT EXISTS counters ("
                " name TEXT PRIMARY KEY, value INTEGER NOT NULL)")
            row = conn.execute(
                "SELECT value FROM meta WHERE key='schema_version'"
            ).fetchone()
            if row is None:
                conn.execute(
                    "INSERT INTO meta (key, value) VALUES (?, ?)",
                    ("schema_version", str(SCHEMA_VERSION)))
            elif row[0] != str(SCHEMA_VERSION):
                # a store written by an incompatible payload schema:
                # templates would not unpickle meaningfully — start over
                conn.execute("DELETE FROM entries")
                conn.execute("DELETE FROM counters")
                conn.execute(
                    "UPDATE meta SET value=? WHERE key='schema_version'",
                    (str(SCHEMA_VERSION),))

    def _bump(self, conn: sqlite3.Connection, name: str,
              amount: int = 1) -> None:
        conn.execute(
            "INSERT INTO counters (name, value) VALUES (?, ?) "
            "ON CONFLICT(name) DO UPDATE SET value = value + ?",
            (name, amount, amount))

    # ------------------------------------------------------------------
    # key/value operations
    # ------------------------------------------------------------------
    @staticmethod
    def checksum(payload: bytes) -> str:
        return hashlib.sha256(payload).hexdigest()

    def get(self, key: str) -> Optional[bytes]:
        """Fetch and integrity-check one payload; ``None`` on miss.

        A checksum mismatch deletes the row (poison eviction) and
        reports a miss.
        """
        try:
            with self._lock:
                conn = self._connect()
                row = conn.execute(
                    "SELECT payload, checksum FROM entries WHERE key=?",
                    (key,)).fetchone()
                if row is None:
                    self.misses += 1
                    with conn:
                        self._bump(conn, "misses")
                    return None
                payload, stored_sum = row
                payload = bytes(payload)
                if self.checksum(payload) != stored_sum:
                    self.evictions += 1
                    self.misses += 1
                    with conn:
                        conn.execute("DELETE FROM entries WHERE key=?",
                                     (key,))
                        self._bump(conn, "evictions")
                        self._bump(conn, "misses")
                    return None
                self.hits += 1
                with conn:
                    conn.execute(
                        "UPDATE entries SET last_used_s=?, hits=hits+1 "
                        "WHERE key=?", (time.time(), key))
                    self._bump(conn, "hits")
                return payload
        except sqlite3.Error:
            self.errors += 1
            return None

    def put(self, key: str, payload: bytes) -> bool:
        """Store one payload (first writer wins); True if inserted."""
        try:
            with self._lock:
                conn = self._connect()
                now = time.time()
                with conn:
                    cursor = conn.execute(
                        "INSERT OR IGNORE INTO entries "
                        "(key, payload, checksum, created_s, last_used_s) "
                        "VALUES (?, ?, ?, ?, ?)",
                        (key, payload, self.checksum(payload), now, now))
                    if cursor.rowcount:
                        self._bump(conn, "stores")
                if cursor.rowcount:
                    self.stores += 1
                    return True
                return False
        except sqlite3.Error:
            self.errors += 1
            return False

    def delete(self, key: str, *, poison: bool = False) -> None:
        """Drop one entry; ``poison=True`` also counts an eviction
        (used by the caller when a checksum-valid payload fails to
        deserialize — stale pickle schema, foreign bytes)."""
        try:
            with self._lock:
                conn = self._connect()
                with conn:
                    conn.execute("DELETE FROM entries WHERE key=?", (key,))
                    if poison:
                        self._bump(conn, "evictions")
                if poison:
                    self.evictions += 1
        except sqlite3.Error:
            self.errors += 1

    # ------------------------------------------------------------------
    # accounting / lifecycle
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        try:
            with self._lock:
                conn = self._connect()
                return conn.execute(
                    "SELECT COUNT(*) FROM entries").fetchone()[0]
        except sqlite3.Error:
            self.errors += 1
            return 0

    def size_bytes(self) -> int:
        """Size on disk (main file + WAL sidecars, when present)."""
        if self.path == ":memory:":
            return 0
        total = 0
        for suffix in ("", "-wal", "-shm"):
            try:
                total += os.path.getsize(self.path + suffix)
            except OSError:
                pass
        return total

    def stats(self) -> Dict[str, object]:
        """Cross-process cumulative counters plus this-session ones."""
        cumulative = dict.fromkeys(_COUNTERS, 0)
        entries = 0
        try:
            with self._lock:
                conn = self._connect()
                for name, value in conn.execute(
                        "SELECT name, value FROM counters"):
                    if name in cumulative:
                        cumulative[name] = value
                entries = conn.execute(
                    "SELECT COUNT(*) FROM entries").fetchone()[0]
        except sqlite3.Error:
            self.errors += 1
        requests = cumulative["hits"] + cumulative["misses"]
        return {
            "path": self.path,
            "entries": entries,
            "size_bytes": self.size_bytes(),
            "hit_rate": cumulative["hits"] / requests if requests else 0.0,
            **cumulative,
            "session": {"hits": self.hits, "misses": self.misses,
                        "stores": self.stores, "evictions": self.evictions,
                        "errors": self.errors},
        }

    def clear(self) -> int:
        """Drop every entry and reset the cumulative counters; returns
        the number of entries removed."""
        try:
            with self._lock:
                conn = self._connect()
                with conn:
                    removed = conn.execute(
                        "SELECT COUNT(*) FROM entries").fetchone()[0]
                    conn.execute("DELETE FROM entries")
                    conn.execute("DELETE FROM counters")
                conn.execute("VACUUM")
                return removed
        except sqlite3.Error:
            self.errors += 1
            return 0

    def close(self) -> None:
        with self._lock:
            if self._conn is not None and self._pid == os.getpid():
                self._conn.close()
            self._conn = None
            self._pid = None

    def __repr__(self) -> str:
        return f"CacheStore(path={self.path!r})"
