"""Perf benchmark harness: the repo's mapping wall-time trajectory.

``soidomino bench`` sweeps the benchmark suite across flows, series
orderings, and table modes through :class:`~repro.pipeline.BatchRunner`,
and records per-task wall time, tuple throughput, the engine's
instrumentation counters, and the sha256 netlist digest of every mapped
circuit.  The digests double as a bit-identity witness: two bench runs of
the same sweep on different kernel implementations must agree on every
digest, or one of them is wrong.

The payload is written to ``BENCH_mapping.json`` at the invocation
directory (the repo root, by convention) and is the unit every future
perf PR regresses against: pass the previous payload via ``--baseline``
and the harness embeds its aggregate and the measured speedup.

The sweep defaults are the *tuple-heavy* configurations — the SOI flow
under both the paper and exhaustive orderings, with single-best and
Pareto tables — because those dominate mapping cost and are where kernel
regressions show first.  The tree cache is off by default so every task
times the raw DP kernel; ``use_cache=True`` measures the production
configuration instead.  Schema invariants are centralized in
:func:`validate_payload`, which the CI perf-smoke job runs against the
artifact it uploads.
"""

from __future__ import annotations

import json
import platform
import time
from typing import Dict, List, Optional, Sequence

from ..mapping.engine import ORDERING_RULES, MapperConfig
from ..mapping.flows import flow_config
from ..mapping.kernel import available_kernels
from .runner import BatchReport, BatchRunner, BatchTask

#: Payload format identifier; bump on breaking schema changes.
BENCH_SCHEMA = "soidomino-bench/1"

#: Default payload location — the repo root's perf trajectory file.
DEFAULT_BENCH_PATH = "BENCH_mapping.json"

#: Per-slot table regimes the sweep can exercise.
TABLE_MODES = ("single", "pareto")

#: Tuple-heavy defaults: the configurations kernel PRs must not regress.
DEFAULT_FLOWS = ("soi",)
DEFAULT_ORDERINGS = ("paper", "exhaustive")
DEFAULT_MODES = TABLE_MODES

#: DP kernels the sweep exercises.  Both by default when numpy is
#: importable: every bench run is then also a cross-kernel bit-identity
#: witness, and the per-kernel aggregates are what kernel PRs regress
#: against.  Without numpy the *default* drops to the reference kernel
#: alone — an explicit ``kernels=("soa",)`` request still hard-errors
#: through the registry rather than silently downgrading.
try:
    import numpy as _np  # noqa: F401

    DEFAULT_KERNELS = ("reference", "soa")
except ImportError:  # pragma: no cover - exercised on the no-numpy leg
    DEFAULT_KERNELS = ("reference",)

#: Keys every result row must carry (CI asserts them on the artifact).
#: ``pass_times`` (per-flow-pass wall clock) is additive and therefore
#: not required of older payloads passed via ``--baseline``; the same
#: goes for ``kernel``/``kernel_active``/``combine_s``.
RESULT_KEYS = ("circuit", "flow", "ordering", "table_mode", "ok",
               "elapsed_s", "digest", "tuples", "pruned", "bound_skips",
               "combines", "cache_hits", "cache_requests", "tuples_per_s",
               "t_total", "t_disch", "gates", "levels")


def bench_tasks(circuits: Sequence[str],
                flows: Sequence[str] = DEFAULT_FLOWS,
                orderings: Sequence[str] = DEFAULT_ORDERINGS,
                modes: Sequence[str] = DEFAULT_MODES,
                kernels: Sequence[str] = DEFAULT_KERNELS,
                w_max: Optional[int] = None,
                h_max: Optional[int] = None) -> List[BatchTask]:
    """The sweep's cross product as batch tasks, in deterministic order.

    Flow presets pin their defining fields — ``domino``/``rs`` force the
    adverse ordering — so requested orderings that a preset overrides
    collapse to one effective configuration; duplicates are dropped.
    The kernel is *not* part of :meth:`MapperConfig.fingerprint` (it
    cannot change results), so the dedup identity carries it explicitly:
    the sweep intentionally runs the same configuration once per kernel.
    ``w_max``/``h_max`` override the paper's pulldown limits — larger
    limits grow the candidate batches, which is how the tuple-heavy
    throughput sweep is produced.
    """
    for ordering in orderings:
        if ordering not in ORDERING_RULES:
            raise ValueError(f"unknown ordering {ordering!r}; expected one "
                             f"of {', '.join(ORDERING_RULES)}")
    for mode in modes:
        if mode not in TABLE_MODES:
            raise ValueError(f"unknown table mode {mode!r}; expected one "
                             f"of {', '.join(TABLE_MODES)}")
    for kernel in kernels:
        if kernel not in available_kernels():
            raise ValueError(
                f"unknown kernel {kernel!r}; expected one of "
                f"{', '.join(available_kernels())}")
    limits = {}
    if w_max is not None:
        limits["w_max"] = w_max
    if h_max is not None:
        limits["h_max"] = h_max
    tasks: List[BatchTask] = []
    seen = set()
    for name in circuits:
        for flow in flows:
            for ordering in orderings:
                for mode in modes:
                    for kernel in kernels:
                        config = MapperConfig(ordering=ordering,
                                              pareto=(mode == "pareto"),
                                              kernel=kernel, **limits)
                        effective = flow_config(flow, config)
                        identity = (name, flow, effective.fingerprint(),
                                    kernel)
                        if identity in seen:
                            continue
                        seen.add(identity)
                        tasks.append(BatchTask(circuit=name, flow=flow,
                                               config=effective))
    return tasks


def _result_row(result, repeats_elapsed: List[float],
                repeats_combine: List[float]) -> Dict:
    task = result.task
    elapsed = min(repeats_elapsed)
    combine_s = min(repeats_combine) if repeats_combine else 0.0
    row: Dict = {
        "circuit": task.circuit,
        "flow": task.flow,
        "ordering": task.config.ordering,
        "table_mode": "pareto" if task.config.pareto else "single",
        "kernel": task.config.kernel,
        "kernel_active": result.kernel,
        "ok": result.ok,
        "elapsed_s": elapsed,
        "combine_s": combine_s,
        "digest": result.digest,
        "pass_times": dict(result.pass_times or {}),
        "tuples": 0, "pruned": 0, "bound_skips": 0, "combines": 0,
        "cache_hits": 0, "cache_requests": 0,
        "tuples_per_s": 0.0,
        "t_total": None, "t_disch": None, "gates": None, "levels": None,
    }
    if result.stats is not None:
        s = result.stats
        row.update(tuples=s.tuples_created, pruned=s.tuples_pruned,
                   bound_skips=s.bound_skips, combines=s.combine_calls,
                   cache_hits=s.cache_hits, cache_requests=s.cache_requests)
        if elapsed > 0:
            row["tuples_per_s"] = s.tuples_created / elapsed
    if result.cost is not None:
        row.update(t_total=result.cost.t_total, t_disch=result.cost.t_disch,
                   gates=result.cost.num_gates, levels=result.cost.levels)
    if not result.ok:
        row["error"] = result.error
    return row


#: The tuple-heavy *throughput* subset: single-best tables under the
#: exhaustive ordering.  Those configurations stream the largest
#: candidate batches through pure vectorized selection (no per-slot
#: front replay), so they are where kernel throughput — tuples priced
#: per second of combine time — is compared.
def _throughput_row(row: Dict) -> bool:
    return (row["ok"] and row["table_mode"] == "single"
            and row["ordering"] == "exhaustive")


#: The pareto-heavy throughput subset: bounded Pareto fronts under the
#: exhaustive ordering — the PBE-aware regime the paper actually runs,
#: where every candidate is priced by the keep/evict/truncate front
#: recurrence rather than a plain argmin.  This is the subset the
#: columnwise-front reducer (DESIGN.md §12) is measured on.
def _pareto_heavy_row(row: Dict) -> bool:
    return (row["ok"] and row["table_mode"] == "pareto"
            and row["ordering"] == "exhaustive")


def kernel_comparison(rows: List[Dict]) -> Dict:
    """Cross-kernel parity and throughput blocks of a bench payload.

    ``parity`` pairs every non-kernel configuration and asserts digests
    and work counters agree across kernels — the sweep-wide bit-identity
    witness.  ``by_kernel`` aggregates per kernel; ``speedup`` compares
    aggregate tuple throughput (tuples per second of combine time) of
    each kernel against the reference kernel, over two subsets: the
    tuple-heavy one (single/exhaustive — pure vectorized selection) and
    the pareto-heavy one (pareto/exhaustive — the bounded-front
    recurrence).
    """
    by_kernel: Dict[str, Dict] = {}
    for r in rows:
        if not r["ok"]:
            continue
        group = by_kernel.setdefault(
            r["kernel"], {"tasks": 0, "task_time_s": 0.0,
                          "combine_time_s": 0.0, "tuples": 0,
                          "heavy_combine_s": 0.0, "heavy_tuples": 0,
                          "pareto_combine_s": 0.0, "pareto_tuples": 0})
        group["tasks"] += 1
        group["task_time_s"] += r["elapsed_s"]
        group["combine_time_s"] += r["combine_s"]
        group["tuples"] += r["tuples"]
        if _throughput_row(r):
            group["heavy_combine_s"] += r["combine_s"]
            group["heavy_tuples"] += r["tuples"]
        if _pareto_heavy_row(r):
            group["pareto_combine_s"] += r["combine_s"]
            group["pareto_tuples"] += r["tuples"]
    for group in by_kernel.values():
        heavy_s = group.pop("heavy_combine_s")
        heavy_t = group.pop("heavy_tuples")
        group["tuple_heavy_tuples_per_combine_s"] = (
            heavy_t / heavy_s if heavy_s > 0 else None)
        pareto_s = group.pop("pareto_combine_s")
        pareto_t = group.pop("pareto_tuples")
        group["pareto_heavy_tuples_per_combine_s"] = (
            pareto_t / pareto_s if pareto_s > 0 else None)

    configs: Dict[tuple, Dict[str, Dict]] = {}
    for r in rows:
        if r["ok"]:
            key = (r["circuit"], r["flow"], r["ordering"], r["table_mode"])
            configs.setdefault(key, {})[r["kernel"]] = r
    checked = 0
    mismatches: List[Dict] = []
    for key, per_kernel in sorted(configs.items()):
        if len(per_kernel) < 2:
            continue
        checked += 1
        witness = {k: (r["digest"], r["tuples"], r["pruned"],
                       r["bound_skips"]) for k, r in per_kernel.items()}
        if len(set(witness.values())) > 1:
            mismatches.append({"circuit": key[0], "flow": key[1],
                               "ordering": key[2], "table_mode": key[3],
                               "witness": {k: list(v)
                                           for k, v in witness.items()}})

    reference = by_kernel.get("reference", {})
    ref_thru = reference.get("tuple_heavy_tuples_per_combine_s")
    ref_pareto = reference.get("pareto_heavy_tuples_per_combine_s")
    speedup = {}
    pareto_speedup = {}
    for kernel, group in by_kernel.items():
        if kernel == "reference":
            continue
        thru = group["tuple_heavy_tuples_per_combine_s"]
        speedup[kernel] = (thru / ref_thru
                           if thru and ref_thru else None)
        pthru = group["pareto_heavy_tuples_per_combine_s"]
        pareto_speedup[kernel] = (pthru / ref_pareto
                                  if pthru and ref_pareto else None)
    return {
        "by_kernel": by_kernel,
        "parity": {"configs_checked": checked,
                   "mismatches": mismatches},
        "tuple_heavy_throughput_speedup": speedup,
        "pareto_heavy_throughput_speedup": pareto_speedup,
    }


def _aggregate(rows: List[Dict]) -> Dict:
    ok_rows = [r for r in rows if r["ok"]]
    task_time = sum(r["elapsed_s"] for r in ok_rows)
    tuples = sum(r["tuples"] for r in ok_rows)
    by_config: Dict[str, Dict] = {}
    for r in ok_rows:
        label = f"{r['flow']}/{r['ordering']}/{r['table_mode']}"
        group = by_config.setdefault(
            label, {"tasks": 0, "task_time_s": 0.0, "tuples": 0})
        group["tasks"] += 1
        group["task_time_s"] += r["elapsed_s"]
        group["tuples"] += r["tuples"]
    heavy = [r for r in ok_rows
             if r["table_mode"] == "pareto" or r["ordering"] == "exhaustive"]
    pass_time_s: Dict[str, float] = {}
    for r in ok_rows:
        for name, seconds in r.get("pass_times", {}).items():
            pass_time_s[name] = pass_time_s.get(name, 0.0) + seconds
    return {
        "tasks": len(rows),
        "failures": len(rows) - len(ok_rows),
        "task_time_s": task_time,
        "tuples": tuples,
        "combines": sum(r["combines"] for r in ok_rows),
        "bound_skips": sum(r["bound_skips"] for r in ok_rows),
        "tuples_per_s": tuples / task_time if task_time else 0.0,
        "tuple_heavy_task_time_s": sum(r["elapsed_s"] for r in heavy),
        "pass_time_s": pass_time_s,
        "by_config": by_config,
    }


def run_bench(circuits: Optional[Sequence[str]] = None,
              flows: Sequence[str] = DEFAULT_FLOWS,
              orderings: Sequence[str] = DEFAULT_ORDERINGS,
              modes: Sequence[str] = DEFAULT_MODES,
              kernels: Sequence[str] = DEFAULT_KERNELS,
              w_max: Optional[int] = None,
              h_max: Optional[int] = None,
              jobs: int = 1,
              use_cache: bool = False,
              repeat: int = 1,
              tracer=None) -> Dict:
    """Run the sweep and return the bench payload (not yet written).

    ``repeat > 1`` re-runs the whole sweep and keeps each task's minimum
    wall time (counters and digests are checked to be identical across
    repeats — a mismatch marks the payload as non-deterministic).

    ``tracer`` (a :class:`~repro.obs.Tracer`) collects the per-case span
    trees: each repeat's stitched batch trace is attached under a
    ``bench`` root span, which ``soidomino bench --trace FILE`` exports.
    """
    if repeat < 1:
        raise ValueError(f"repeat must be >= 1, got {repeat}")
    from ..bench_suite import circuit_names

    names = list(circuits) if circuits else circuit_names()
    tasks = bench_tasks(names, flows=flows, orderings=orderings, modes=modes,
                        kernels=kernels, w_max=w_max, h_max=h_max)
    started = time.perf_counter()
    reports: List[BatchReport] = []
    for _ in range(repeat):
        runner = BatchRunner(max_workers=jobs, use_cache=use_cache)
        report = (runner.run_serial(tasks) if jobs == 1
                  else runner.run(tasks))
        reports.append(report)
    wall_s = time.perf_counter() - started

    deterministic = True
    rows = []
    first = reports[0]
    for index, result in enumerate(first.results):
        elapsed = [rep.results[index].elapsed_s for rep in reports]
        combine = [rep.results[index].stats.combine_time_s
                   for rep in reports
                   if rep.results[index].stats is not None]
        if any(rep.results[index].digest != result.digest
               for rep in reports[1:]):
            deterministic = False
        rows.append(_result_row(result, elapsed, combine))

    if tracer is not None:
        from ..obs import stitch

        repeat_trees = []
        for number, report in enumerate(reports):
            tree = report.build_trace()
            tree.name = f"repeat:{number}"
            tree.attributes["repeat"] = number
            repeat_trees.append(tree)
        tracer.attach(stitch("bench", repeat_trees, category="bench",
                             attributes={"tasks": len(tasks),
                                         "repeat": repeat}))
    total_metrics = first.total_metrics()

    flow_list = list(dict.fromkeys(flows))
    payload = {
        "schema": BENCH_SCHEMA,
        "generated_unix": time.time(),
        "methodology": (
            "Serial sweep of the benchmark suite through BatchRunner; "
            "per-task wall time is the minimum over "
            f"{repeat} repeat(s); tree cache "
            f"{'enabled' if use_cache else 'disabled'} so each task times "
            "the raw DP kernel; digests are sha256 of the mapped "
            "transistor netlist and must be bit-identical across kernel "
            "implementations (the kernels block cross-checks them). "
            "tuple-heavy = pareto tables or exhaustive ordering, the "
            "configurations perf PRs regress against; kernel throughput "
            "(tuples per second of combine time) is compared over the "
            "single/exhaustive subset, where the largest candidate "
            "batches run pure vectorized selection."),
        "environment": {
            "python": platform.python_version(),
            "platform": platform.platform(),
            "jobs": jobs,
            "cache": use_cache,
            "repeat": repeat,
            "mode": first.mode,
        },
        "sweep": {
            "circuits": names,
            "flows": flow_list,
            "orderings": list(dict.fromkeys(orderings)),
            "table_modes": list(dict.fromkeys(modes)),
            "kernels": list(dict.fromkeys(kernels)),
            "w_max": w_max,
            "h_max": h_max,
        },
        "deterministic": deterministic,
        "wall_s": wall_s,
        "results": rows,
        "aggregate": _aggregate(rows),
        "kernels": kernel_comparison(rows),
    }
    from ..obs import extend_bench_payload

    return extend_bench_payload(payload, metrics=total_metrics)


def attach_baseline(payload: Dict, baseline: Dict) -> Dict:
    """Embed ``baseline``'s aggregate and the measured speedups.

    Speedups compare summed per-task wall time (serial-equivalent work),
    overall and over the tuple-heavy subset; per-config ratios are added
    for every configuration present in both payloads.  Returns
    ``payload`` for chaining.
    """
    base_agg = baseline.get("aggregate", {})
    cur_agg = payload["aggregate"]

    def ratio(base: float, cur: float) -> Optional[float]:
        return (base / cur) if base and cur else None

    by_config = {}
    for label, group in cur_agg.get("by_config", {}).items():
        base_group = base_agg.get("by_config", {}).get(label)
        if base_group:
            by_config[label] = ratio(base_group["task_time_s"],
                                     group["task_time_s"])
    payload["baseline"] = {
        "generated_unix": baseline.get("generated_unix"),
        "aggregate": base_agg,
        "speedup": ratio(base_agg.get("task_time_s", 0.0),
                         cur_agg["task_time_s"]),
        "tuple_heavy_speedup": ratio(
            base_agg.get("tuple_heavy_task_time_s", 0.0),
            cur_agg["tuple_heavy_task_time_s"]),
        "speedup_by_config": by_config,
    }
    return payload


def validate_payload(payload: Dict) -> List[str]:
    """Schema problems in a bench payload ([] when it is well-formed).

    This is the CI perf-smoke contract: required keys present, every
    result carries a digest, and the work counters are positive.  No
    wall-clock thresholds — runtimes flake, schemas do not.
    """
    problems: List[str] = []
    for required in ("schema", "methodology", "environment", "sweep",
                     "results", "aggregate", "wall_s"):
        if required not in payload:
            problems.append(f"missing top-level key {required!r}")
    if payload.get("schema") != BENCH_SCHEMA:
        problems.append(f"schema is {payload.get('schema')!r}, "
                        f"expected {BENCH_SCHEMA!r}")
    results = payload.get("results", [])
    if not results:
        problems.append("no results")
    for index, row in enumerate(results):
        for key in RESULT_KEYS:
            if key not in row:
                problems.append(f"results[{index}] missing key {key!r}")
        if row.get("ok"):
            if not row.get("digest"):
                problems.append(f"results[{index}] has no netlist digest")
            for counter in ("tuples", "combines"):
                if not row.get(counter, 0) > 0:
                    problems.append(
                        f"results[{index}] counter {counter!r} is not > 0")
            if not row.get("elapsed_s", 0) > 0:
                problems.append(f"results[{index}] elapsed_s is not > 0")
    aggregate = payload.get("aggregate", {})
    for counter in ("tasks", "task_time_s", "tuples", "combines"):
        if not aggregate.get(counter, 0) > 0:
            problems.append(f"aggregate counter {counter!r} is not > 0")
    kernels = payload.get("kernels")
    if kernels is not None:
        for mismatch in kernels.get("parity", {}).get("mismatches", []):
            problems.append(
                "cross-kernel digest/counter mismatch on "
                f"{mismatch.get('circuit')}/{mismatch.get('ordering')}/"
                f"{mismatch.get('table_mode')}")
    return problems


def write_payload(payload: Dict, path: str) -> None:
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=1, sort_keys=False)
        handle.write("\n")


def load_payload(path: str) -> Dict:
    with open(path, "r", encoding="utf-8") as handle:
        return json.load(handle)
