"""Batch mapping pipeline: parallel fan-out, memoization, instrumentation.

Three cooperating layers (see DESIGN.md, "Batch pipeline &
instrumentation"):

* :class:`MappingStats` (``metrics.py``) — per-run counters the engine
  fills in and every result surfaces via ``MappingResult.stats``;
* :class:`TreeCache` (``cache.py``) — memoizes DP tables by fanout-free
  cone shape + config/cost-model fingerprint, bit-identically, with
  deterministic LRU eviction and an optional persistent second tier;
* :class:`CacheStore` (``store.py``) — that second tier: a sqlite
  cross-process cone-template store with checksummed entries;
* :class:`WorkerPool` (``pool.py``) — warm worker processes whose
  lifetime spans batches (rebuild-on-hang, retries, backoff);
* :class:`BatchRunner` (``runner.py``) — fans ``BatchTask`` work-lists
  across a :class:`WorkerPool` with timeouts and serial degradation.

``runner`` (and ``cache``'s mapping-facing pieces) import the mapping
package, which itself imports ``metrics`` — so only ``metrics`` is
imported eagerly here and the rest resolves lazily on first attribute
access (PEP 562), keeping the import graph acyclic.
"""

from __future__ import annotations

from .metrics import MappingStats

_LAZY = {
    "TreeCache": ("cache", "TreeCache"),
    "WorkerPool": ("pool", "WorkerPool"),
    "CacheStore": ("store", "CacheStore"),
    "default_store_path": ("store", "default_store_path"),
    "BatchTask": ("runner", "BatchTask"),
    "BatchResult": ("runner", "BatchResult"),
    "BatchReport": ("runner", "BatchReport"),
    "BatchRunner": ("runner", "BatchRunner"),
    "execute_task": ("runner", "execute_task"),
    "BENCH_SCHEMA": ("bench", "BENCH_SCHEMA"),
    "DEFAULT_BENCH_PATH": ("bench", "DEFAULT_BENCH_PATH"),
    "bench_tasks": ("bench", "bench_tasks"),
    "run_bench": ("bench", "run_bench"),
    "attach_baseline": ("bench", "attach_baseline"),
    "validate_payload": ("bench", "validate_payload"),
    "write_payload": ("bench", "write_payload"),
    "load_payload": ("bench", "load_payload"),
}

__all__ = ["MappingStats", *_LAZY]


def __getattr__(name: str):
    try:
        module_name, attr = _LAZY[name]
    except KeyError:
        raise AttributeError(
            f"module {__name__!r} has no attribute {name!r}") from None
    from importlib import import_module

    return getattr(import_module(f".{module_name}", __name__), attr)


def __dir__():
    return sorted(__all__)
