"""Long-lived worker pool: process lifetime decoupled from batch lifetime.

:class:`WorkerPool` owns everything about worker *processes* that
:class:`~repro.pipeline.runner.BatchRunner` used to rebuild per batch:

* the :class:`~concurrent.futures.ProcessPoolExecutor` itself, built
  lazily on first use and **kept warm across** :meth:`run_tasks` calls —
  imports, numpy kernel state, each worker's private
  :class:`~repro.pipeline.TreeCache` and parsed-network memo all survive
  from one batch (or service job) to the next;
* the resilience machinery around it: per-task timeouts, classified
  retries with deterministic-jitter exponential backoff, pool rebuild on
  hang/crash (a running future cannot be cancelled, so replacing the
  executor is the only way to reclaim a hung slot), and the whole-batch
  deadline budget;
* worker initialization: the fault plan and — when a ``store_path`` is
  configured — a :class:`~repro.pipeline.store.CacheStore` persistent
  tier behind every worker's TreeCache, so warm state additionally
  survives pool rebuilds, daemon restarts, and process boundaries.

:meth:`run_tasks` executes one batch against the warm pool and returns
``(results, attempts)`` by task index; indices absent from ``results``
ran out of retries (or budget) and are the *caller's* to degrade — the
runner falls back to in-process execution, keeping batch semantics out
of this class.  Degradation decisions are reported through the caller's
``record`` callback, so events/metrics land in the same stream
(``retry`` / ``pool_rebuild`` / ``fail_fast`` kinds, exactly as before
the split).

The pool survives everything except :meth:`close` (and interpreter
exit): a broken executor is replaced, a deadline-abandoned run discards
the executor rather than inheriting hung futures, and the next
:meth:`run_tasks` simply builds a fresh one.  ``pools_built`` /
``rebuilds`` / ``runs`` make warmth observable (and testable).
"""

from __future__ import annotations

import multiprocessing
import os
import time
from collections import deque
from concurrent.futures import BrokenExecutor, ProcessPoolExecutor
from concurrent.futures import TimeoutError as FuturesTimeoutError
from typing import Callable, Deque, Dict, List, Optional, Tuple

from ..errors import is_retryable
from ..resilience.faults import (
    FaultPlan,
    hash_fraction,
    install,
    install_from_env,
)
from .cache import TreeCache
from .store import CacheStore

#: Per-worker-process cache, installed by the pool initializer.
_WORKER_CACHE: Optional[TreeCache] = None

#: Lazily-chosen multiprocessing context shared by every pool.
_MP_CONTEXT: Optional[multiprocessing.context.BaseContext] = None


def _mp_context() -> multiprocessing.context.BaseContext:
    """The start method for pool workers: ``forkserver`` when available.

    Plain ``fork`` children duplicate every open file descriptor of the
    parent at fork time.  Now that pools outlive batches, a pool may be
    (re)built while the owning process holds live sockets — a serving
    daemon's listener or an accepted event-stream connection — and a
    forked worker keeps those sockets open for its whole lifetime: the
    port stays bound after the daemon dies and clients never see EOF.
    ``forkserver`` forks workers from a clean, exec'd server process
    that holds no such descriptors.  The server preloads this module so
    per-worker fork cost stays fork-like after the one-time launch.
    """
    global _MP_CONTEXT
    if _MP_CONTEXT is None:
        if "forkserver" in multiprocessing.get_all_start_methods():
            context = multiprocessing.get_context("forkserver")
            try:
                context.set_forkserver_preload(["repro.pipeline.pool"])
            except (AttributeError, ValueError):  # pragma: no cover
                pass
            _MP_CONTEXT = context
        else:  # pragma: no cover - non-Unix fallback
            _MP_CONTEXT = multiprocessing.get_context()
    return _MP_CONTEXT


def _init_worker(cache_enabled: bool,
                 plan: Optional[FaultPlan] = None,
                 store_path: Optional[str] = None) -> None:
    global _WORKER_CACHE
    if cache_enabled:
        store = CacheStore(store_path) if store_path else None
        _WORKER_CACHE = TreeCache(store=store)
    else:
        _WORKER_CACHE = None
    if plan is not None:
        install(plan)
    else:
        install_from_env()


def _pool_execute(task, attempt: int = 1):
    from .runner import execute_task

    return execute_task(task, cache=_WORKER_CACHE, mode="pool",
                        attempt=attempt)


def worker_cache() -> Optional[TreeCache]:
    """This process's pool-worker TreeCache (None outside a worker)."""
    return _WORKER_CACHE


class WorkerPool:
    """A resident process pool that outlives individual batches.

    Parameters
    ----------
    max_workers:
        Pool width; ``None`` uses the CPU count.
    timeout_s:
        Per-task result deadline; a task that misses it is retried on a
        rebuilt pool.  ``None`` waits forever.
    retries:
        Resubmissions allowed per task for *retryable* failures before
        the task is handed back unfinished.
    backoff_base_s, backoff_cap_s:
        Exponential-backoff schedule: retry *n* waits
        ``min(cap, base * 2**(n-1))`` scaled by a deterministic jitter
        factor in [0.5, 1.5) derived from the task label.
    use_cache:
        Give each worker process a private :class:`TreeCache`.
    store_path:
        Optional :class:`CacheStore` database path mounted behind every
        worker's TreeCache as the persistent second tier.
    fault_plan:
        Default :class:`FaultPlan` installed in workers when
        :meth:`run_tasks` is not given one explicitly.
    """

    def __init__(self, max_workers: Optional[int] = None,
                 timeout_s: Optional[float] = None,
                 retries: int = 1,
                 backoff_base_s: float = 0.05,
                 backoff_cap_s: float = 5.0,
                 use_cache: bool = True,
                 store_path: Optional[str] = None,
                 fault_plan: Optional[FaultPlan] = None):
        if max_workers is not None and max_workers < 1:
            raise ValueError(f"max_workers must be >= 1, got {max_workers}")
        if retries < 0:
            raise ValueError(f"retries must be >= 0, got {retries}")
        if backoff_base_s < 0 or backoff_cap_s < 0:
            raise ValueError("backoff times must be >= 0")
        self.width = max_workers or os.cpu_count() or 1
        self.timeout_s = timeout_s
        self.retries = retries
        self.backoff_base_s = backoff_base_s
        self.backoff_cap_s = backoff_cap_s
        self.use_cache = use_cache
        self.store_path = store_path
        self.fault_plan = fault_plan
        self._executor: Optional[ProcessPoolExecutor] = None
        self._built_plan: Optional[FaultPlan] = None
        self.closed = False
        #: executors ever built (1 after warm reuse, +1 per rebuild)
        self.pools_built = 0
        #: mid-run executor replacements (hangs, crashes)
        self.rebuilds = 0
        #: completed :meth:`run_tasks` calls
        self.runs = 0
        #: rebuilds consumed by the most recent run alone
        self.last_run_rebuilds = 0
        #: tasks the most recent run handed back unfinished
        self.last_run_unfinished = 0
        #: runs in a row that rebuilt or left work unfinished — the
        #: service circuit breaker's pool-health signal
        self.consecutive_degraded_runs = 0

    # ------------------------------------------------------------------
    # executor lifecycle
    # ------------------------------------------------------------------
    @property
    def warm(self) -> bool:
        """True when a live executor is resident."""
        return self._executor is not None

    def _build(self, plan: Optional[FaultPlan]) -> ProcessPoolExecutor:
        self.pools_built += 1
        self._built_plan = plan
        return ProcessPoolExecutor(
            max_workers=self.width, initializer=_init_worker,
            initargs=(self.use_cache, plan, self.store_path),
            mp_context=_mp_context())

    def _ensure(self, plan: Optional[FaultPlan]) -> ProcessPoolExecutor:
        if self.closed:
            raise RuntimeError("WorkerPool is closed")
        if self._executor is not None and plan is not self._built_plan:
            # a different fault plan must reach the workers' initializer
            self._discard()
        if self._executor is None:
            self._executor = self._build(plan)
        return self._executor

    def _discard(self, wait: bool = False) -> None:
        if self._executor is not None:
            self._executor.shutdown(wait=wait, cancel_futures=True)
            self._executor = None

    def close(self) -> None:
        """Shut the resident executor down, joining its (idle) worker
        processes so inherited resources — a daemon's forked listening
        socket, sqlite handles — are actually released; idempotent.
        (Mid-run discards stay non-blocking: a hung worker must not
        block recovery, see :meth:`run_tasks`.)"""
        self._discard(wait=True)
        self.closed = True

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # ------------------------------------------------------------------
    # one batch against the warm pool
    # ------------------------------------------------------------------
    def _backoff_s(self, label: str, attempt: int, seed: int) -> float:
        """Deterministic-jitter exponential backoff before retry
        ``attempt + 1`` of the task labelled ``label``."""
        base = min(self.backoff_cap_s,
                   self.backoff_base_s * (2.0 ** max(0, attempt - 1)))
        jitter = 0.5 + hash_fraction(seed, "backoff", f"{label}#{attempt}")
        return base * jitter

    def run_tasks(self, tasks: List, *,
                  deadline: Optional[float] = None,
                  plan: Optional[FaultPlan] = None,
                  record: Optional[Callable[..., None]] = None,
                  on_result: Optional[Callable[[int, object], None]] = None
                  ) -> Tuple[Dict[int, object], Dict[int, int]]:
        """Run ``tasks`` on the (warm) pool.

        Parameters
        ----------
        deadline:
            Absolute ``time.perf_counter()`` budget; once reached the
            run stops and unfinished tasks are handed back.
        plan:
            Fault plan for the workers (default: the pool's own);
            changing plans rebuilds the executor so initializers see it.
        record:
            ``record(kind, **fields)`` callback for degradation events
            (``retry`` / ``pool_rebuild`` / ``fail_fast``).
        on_result:
            Called as ``on_result(index, result)`` the moment a task's
            result is accepted — the service's progress-event hook.

        Returns ``(results, attempts)`` keyed by task index.  An index
        missing from ``results`` exhausted its retries or the deadline;
        the caller decides how to degrade it (``attempts`` says how many
        pool submissions it consumed).
        """
        if plan is None:
            plan = self.fault_plan
        seed = plan.seed if plan is not None else 0
        record = record if record is not None else (lambda kind, **kw: None)
        results: Dict[int, object] = {}
        attempts: Dict[int, int] = dict.fromkeys(range(len(tasks)), 0)
        rebuilds_before = self.rebuilds
        pool = self._ensure(plan)
        inflight: Deque[Tuple[int, object]] = deque()
        scheduled: List[Tuple[float, int]] = []  # (ready_at, index)

        def accept(index: int, result) -> None:
            result.attempts = attempts[index]
            results[index] = result
            if on_result is not None:
                on_result(index, result)

        def submit(index: int, count_attempt: bool = True) -> None:
            if count_attempt:
                attempts[index] += 1
            inflight.append((index, pool.submit(_pool_execute, tasks[index],
                                                attempts[index])))

        def schedule_retry(index: int, reason: str) -> None:
            delay = self._backoff_s(tasks[index].label, attempts[index],
                                    seed)
            scheduled.append((time.perf_counter() + delay, index))
            record("retry", task=tasks[index].label, detail=reason,
                   attempt=attempts[index], backoff_s=round(delay, 4))

        def rebuild_pool(reason: str, victim: Optional[int] = None) -> None:
            # cancel() is a no-op on running futures, so a hung or dead
            # worker would keep its slot forever; replacing the whole
            # executor is the only way to guarantee retries real
            # capacity.
            nonlocal pool
            resubmit: List[int] = []
            for i, f in list(inflight):
                if i == victim:
                    continue
                if f.done() and not f.cancelled() and f.exception() is None:
                    accept(i, f.result())
                else:
                    f.cancel()
                    resubmit.append(i)
            inflight.clear()
            self._discard()
            self.rebuilds += 1
            pool = self._executor = self._build(plan)
            for i in resubmit:
                submit(i, count_attempt=False)
            record("pool_rebuild", detail=reason, resubmitted=len(resubmit))

        try:
            for i in range(len(tasks)):
                submit(i)
            while inflight or scheduled:
                now = time.perf_counter()
                if deadline is not None and now >= deadline:
                    break
                if scheduled:
                    due = [e for e in scheduled if e[0] <= now]
                    if due:
                        scheduled = [e for e in scheduled if e[0] > now]
                        for _, i in due:
                            submit(i)
                if not inflight:
                    # everything left is waiting out its backoff
                    wake = min(ready for ready, _ in scheduled)
                    if deadline is not None:
                        wake = min(wake, deadline)
                    pause = wake - time.perf_counter()
                    if pause > 0:
                        time.sleep(pause)
                    continue
                index, future = inflight.popleft()
                timeout = self.timeout_s
                if deadline is not None:
                    remaining = deadline - time.perf_counter()
                    if remaining <= 0:
                        inflight.appendleft((index, future))
                        break
                    timeout = (remaining if timeout is None
                               else min(timeout, remaining))
                try:
                    result = future.result(timeout=timeout)
                except FuturesTimeoutError:
                    if (deadline is not None
                            and time.perf_counter() >= deadline
                            and (self.timeout_s is None
                                 or timeout < self.timeout_s)):
                        # the *batch* budget cut this wait short, not
                        # the per-task timeout: let the caller's
                        # deadline path account for the task
                        inflight.appendleft((index, future))
                        break
                    future.cancel()
                    rebuild_pool(f"task {tasks[index].label} exceeded "
                                 f"timeout {self.timeout_s}s",
                                 victim=index)
                    if attempts[index] <= self.retries:
                        schedule_retry(index, "per-task timeout")
                    # else: left unfinished -> the caller degrades it
                    continue
                except BrokenExecutor as exc:
                    rebuild_pool(f"pool broke under {tasks[index].label}: "
                                 f"{type(exc).__name__}", victim=index)
                    if attempts[index] <= self.retries:
                        schedule_retry(
                            index, f"worker died: {type(exc).__name__}")
                    # else: left unfinished -> the caller degrades it
                    continue
                except Exception as exc:  # noqa: BLE001 - classified below
                    if is_retryable(exc):
                        if attempts[index] <= self.retries:
                            schedule_retry(
                                index, f"{type(exc).__name__}: {exc}")
                        # else: retries exhausted -> caller degrades
                        continue
                    # deterministic task failure (parse/pickling/...):
                    # retrying or falling back would reproduce it
                    from .runner import BatchResult

                    accept(index, BatchResult(
                        task=tasks[index],
                        error=f"{type(exc).__name__}: {exc}",
                        mode="pool", attempts=attempts[index]))
                    record("fail_fast", task=tasks[index].label,
                           detail=f"{type(exc).__name__}: {exc}")
                    continue
                accept(index, result)
        except (BrokenExecutor, OSError):
            # the executor itself died and could not be rebuilt:
            # everything unfinished degrades in the caller; drop the
            # carcass so the next run starts from a clean build
            self._discard()
        finally:
            if inflight:
                # hung or budget-abandoned futures must not haunt the
                # warm pool: discard the executor, keep the warm path
                # for clean completions only
                self._discard()
            self.runs += 1
            self.last_run_rebuilds = self.rebuilds - rebuilds_before
            self.last_run_unfinished = len(tasks) - len(results)
            if self.last_run_rebuilds or self.last_run_unfinished:
                self.consecutive_degraded_runs += 1
            else:
                self.consecutive_degraded_runs = 0
        return results, attempts
