"""Batch mapping pipeline: fan a work-list of mapping tasks out.

A :class:`BatchTask` names one mapping run — circuit, flow preset, cost
model, :class:`~repro.mapping.engine.MapperConfig` — by value, so tasks
pickle across a :class:`concurrent.futures.ProcessPoolExecutor`.
:class:`BatchRunner` executes a list of them with

* **parallel fan-out** across a :class:`~repro.pipeline.WorkerPool`
  (``max_workers`` processes, each owning a private
  :class:`~repro.pipeline.TreeCache` so repeated tree shapes are mapped
  once per worker),
* **per-task timeouts**, **classified retries** with exponential
  backoff and deterministic jitter (only *retryable* infrastructure
  failures — a hung or crashed worker — are resubmitted; deterministic
  task failures fail fast, see :func:`repro.errors.is_retryable`),
* **hung-slot reclamation**: a timed-out future cannot be cancelled
  once running, so the runner rebuilds the pool instead of leaking the
  slot — retries always get real capacity,
* a **whole-batch deadline budget** (``deadline_s``) after which
  unfinished tasks are reported as structured
  ``BatchDeadlineError`` failures instead of stalling the sweep, and
* **graceful degradation**: ``max_workers=1`` — or a broken pool, or a
  task that exhausted its retries — runs in-process serially with the
  runner's own shared cache, so a sweep always completes.

Workers return :class:`BatchResult` values: the circuit *cost* and a
netlist digest (not the circuit object — a mapped c7552 is megabytes),
the run's :class:`~repro.pipeline.MappingStats`, per-flow-pass wall
times, the worker's span tree and metrics registry (stitched by
:meth:`BatchReport.build_trace` / merged by
:meth:`BatchReport.total_metrics` in the parent), total wall time, and
the error string for failed tasks.  Results come back in task order and are
bit-identical between pool and serial execution: each task is a
deterministic function of its fields, and cache reuse reconstructs DP
tables exactly (see ``pipeline/cache.py``).

Every degradation decision the runner takes — a retry, a pool rebuild,
a fail-fast, a fallback — is recorded on :attr:`BatchReport.events`
and counted in :attr:`BatchReport.runner_metrics`
(``repro_resilience_*``), and the fault points of
:mod:`repro.resilience` (worker crash, task hang, parse failure, ...)
inject exactly those failures deterministically, so the whole recovery
surface is testable (``tests/resilience``, ``soidomino chaos``).

**Pool lifetime is decoupled from batch lifetime** (DESIGN.md §13): the
process-lifecycle half of the old runner lives in
:class:`~repro.pipeline.WorkerPool` (``pipeline/pool.py``), which stays
warm across :meth:`BatchRunner.run` calls — a runner reused for several
batches (or a :mod:`repro.service` daemon serving jobs) keeps worker
processes, their private caches, and their parsed-network memos
resident.  A ``BatchRunner`` builds its own pool lazily and owns it
(close with :meth:`BatchRunner.close` / ``with``), or accepts a shared
long-lived pool via ``pool=``.
"""

from __future__ import annotations

import os
import time
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Sequence

from ..domino.circuit import CircuitCost
from ..errors import ParseError, WorkerCrashError, is_retryable
from ..mapping import CostModel, MapperConfig, map_network
from ..mapping.flows import FLOW_PRESETS
from ..network import LogicNetwork
from ..obs import MetricsRegistry, Span, Tracer, stitch
from ..resilience.faults import (
    FaultPlan,
    active_plan,
    emit_recovery,
    fire,
    install,
)
from .cache import TreeCache
from .metrics import MappingStats
from .pool import WorkerPool
from .store import CacheStore


@dataclass(frozen=True)
class BatchTask:
    """One unit of batch work, picklable by construction.

    ``circuit`` is a benchmark-registry name or a path to a
    ``.bench``/``.blif``/``.pla`` file — resolved inside the worker, so
    only strings and small configs cross the process boundary.
    """

    circuit: str
    flow: str = "soi"
    cost_model: Optional[CostModel] = None
    config: Optional[MapperConfig] = None

    @property
    def label(self) -> str:
        model = self.cost_model.name if self.cost_model is not None else "area"
        return f"{self.circuit}/{self.flow}/{model}"


@dataclass
class BatchResult:
    """Outcome of one task (success or failure)."""

    task: BatchTask
    cost: Optional[CircuitCost] = None
    stats: Optional[MappingStats] = None
    #: sha256 of the mapped transistor netlist (bit-identity witness)
    digest: Optional[str] = None
    #: pass name -> wall-clock seconds for the flow passes that ran
    pass_times: Optional[Dict[str, float]] = None
    #: the task's span tree (root ``task`` span, pass/node spans nested
    #: inside); recorded in the executing process and pickled back
    trace: Optional[Span] = None
    #: the task's metrics registry (merged into the report's aggregate)
    metrics: Optional[MetricsRegistry] = None
    #: the DP kernel that actually ran ("reference", "soa", "hybrid")
    kernel: Optional[str] = None
    elapsed_s: float = 0.0
    error: Optional[str] = None
    #: "pool", "serial", "serial-fallback" (pool gave up on this task),
    #: or "deadline" (the batch budget expired before it could run)
    mode: str = "serial"
    #: pool submissions made for this task (the in-process fallback run,
    #: if any, is not counted)
    attempts: int = 1

    @property
    def ok(self) -> bool:
        return self.error is None


@dataclass
class BatchReport:
    """All results of one :meth:`BatchRunner.run`, in task order."""

    results: List[BatchResult] = field(default_factory=list)
    wall_s: float = 0.0
    mode: str = "serial"
    #: runner-side degradation log: one dict per retry / rebuild /
    #: fail-fast / fallback / deadline decision, in the order taken
    events: List[Dict[str, object]] = field(default_factory=list)
    #: runner-side ``repro_resilience_*`` counters (parent process);
    #: worker-side counters ride each result's ``metrics``
    runner_metrics: Optional[MetricsRegistry] = None

    @property
    def ok(self) -> bool:
        return all(r.ok for r in self.results)

    @property
    def failures(self) -> List[BatchResult]:
        return [r for r in self.results if not r.ok]

    def total_stats(self) -> MappingStats:
        total = MappingStats()
        for r in self.results:
            if r.stats is not None:
                total.merge(r.stats)
        return total

    def total_metrics(self) -> MetricsRegistry:
        """All task registries merged (deterministic: fixed buckets),
        plus the runner's own recovery counters."""
        total = MetricsRegistry()
        for r in self.results:
            if r.metrics is not None:
                total.merge(r.metrics)
        if self.runner_metrics is not None:
            total.merge(self.runner_metrics)
        return total

    def build_trace(self) -> Span:
        """Stitch the workers' span trees under per-circuit root spans.

        Worker clocks are private to their processes, so the stitched
        timeline is schematic — circuits (and tasks within a circuit)
        are laid end-to-end in task order — but every task subtree's
        internal nesting and durations are real.  Runner-side
        degradation events are appended as a ``resilience`` lane of
        zero-duration marker spans.  The returned root is what
        ``soidomino batch --trace FILE`` exports.
        """
        by_circuit: Dict[str, List[Span]] = {}
        for r in self.results:
            if r.trace is not None:
                by_circuit.setdefault(r.task.circuit, []).append(r.trace)
        circuit_spans = [
            stitch(f"circuit:{name}", trees, category="circuit",
                   attributes={"tasks": len(trees)})
            for name, trees in by_circuit.items()]
        root = stitch("batch", circuit_spans, category="batch",
                      attributes={"mode": self.mode,
                                  "results": len(self.results)})
        if self.events:
            lane = Span(name="resilience", category="resilience",
                        start_s=root.start_s, end_s=root.end_s,
                        attributes={"events": len(self.events)})
            for event in self.events:
                at = float(event.get("t_s", 0.0))
                lane.children.append(Span(
                    name=f"{event.get('kind', 'event')}",
                    category="recovery", start_s=at, end_s=at,
                    attributes={k: v for k, v in event.items()
                                if k != "t_s"}))
            root.children.append(lane)
        return root

    @property
    def task_time_s(self) -> float:
        """Summed per-task wall time (serial-equivalent work)."""
        return sum(r.elapsed_s for r in self.results)

    def __repr__(self) -> str:
        done = sum(1 for r in self.results if r.ok)
        return (f"BatchReport({done}/{len(self.results)} ok, "
                f"wall={self.wall_s:.2f}s, mode={self.mode!r})")


# ---------------------------------------------------------------------------
# task execution (top-level functions so the process pool can import them)
# ---------------------------------------------------------------------------
def _load_network(source: str):
    from ..bench_suite import load_circuit
    from ..io import load_bench, load_blif, load_pla

    if source.endswith(".bench"):
        return load_bench(source)
    if source.endswith(".blif"):
        return load_blif(source)
    if source.endswith(".pla"):
        return load_pla(source)
    return load_circuit(source)


#: Per-process memo of parsed/generated networks, so retries of the same
#: task — and warm-pool re-runs of the same circuit — skip the parse.
#: Safe because the mapping flow never mutates its input network (every
#: front-end pass returns a fresh network).  Bounded LRU.
_NETWORK_MEMO: "OrderedDict[object, LogicNetwork]" = OrderedDict()
_NETWORK_MEMO_MAX = 256
_network_memo_hits = 0
_network_memo_misses = 0


def _network_memo_key(source: str):
    """Memo key for a circuit source; files key on (path, mtime, size)
    so an edited file re-parses, ``None`` marks unkeyable sources."""
    if source.endswith((".bench", ".blif", ".pla")):
        try:
            stat = os.stat(source)
        except OSError:
            return None  # let the loader raise its structured error
        return (source, stat.st_mtime_ns, stat.st_size)
    return source


def load_network_cached(source: str) -> LogicNetwork:
    """:func:`_load_network` with the per-process memo in front."""
    global _network_memo_hits, _network_memo_misses
    key = _network_memo_key(source)
    if key is not None and key in _NETWORK_MEMO:
        _NETWORK_MEMO.move_to_end(key)
        _network_memo_hits += 1
        return _NETWORK_MEMO[key]
    network = _load_network(source)
    _network_memo_misses += 1
    if key is not None:
        _NETWORK_MEMO[key] = network
        while len(_NETWORK_MEMO) > _NETWORK_MEMO_MAX:
            _NETWORK_MEMO.popitem(last=False)
    return network


def network_memo_stats() -> Dict[str, int]:
    """This process's parse-memo counters (observable warmth)."""
    return {"entries": len(_NETWORK_MEMO), "hits": _network_memo_hits,
            "misses": _network_memo_misses}


def clear_network_memo() -> None:
    global _network_memo_hits, _network_memo_misses
    _NETWORK_MEMO.clear()
    _network_memo_hits = 0
    _network_memo_misses = 0


def execute_task(task: BatchTask, cache: Optional[TreeCache] = None,
                 mode: str = "serial", attempt: int = 1) -> BatchResult:
    """Run one task to completion; failures become error results.

    Each task records into a private tracer/registry: the root ``task``
    span (tagged with the worker pid so Chrome-trace lanes separate)
    and the registry ride the picklable :class:`BatchResult` back to
    the parent, which stitches and merges them.

    ``attempt`` is the submission number the runner is on for this
    task; fault rules with an ``max_attempt`` window read it, which is
    how chaos runs make first attempts fail and retries succeed.  In
    pool mode, *retryable* errors (see :func:`repro.errors.is_retryable`)
    propagate to the parent as future exceptions so the retry policy
    can classify them; everything else is reported as an error result.
    """
    started = time.perf_counter()
    tracer = Tracer(name=f"task:{task.label}")
    metrics = MetricsRegistry()
    plan = active_plan()
    if plan is not None:
        plan.attempt = attempt
    try:
        with tracer.span(f"task:{task.label}", category="task",
                         circuit=task.circuit, flow=task.flow,
                         pid=os.getpid(), mode=mode,
                         attempt=attempt) as root:
            rule = fire("worker.crash", task.label, tracer, metrics)
            if rule is not None:
                if rule.hard and mode == "pool":
                    os._exit(13)
                raise WorkerCrashError(
                    f"injected worker crash executing {task.label}")
            rule = fire("task.hang", task.label, tracer, metrics)
            if rule is not None:
                time.sleep(rule.sleep_s)
            if fire("parse.fail", task.circuit, tracer, metrics) is not None:
                raise ParseError("injected parse failure",
                                 filename=task.circuit)
            network = load_network_cached(task.circuit)
            result = map_network(network, flow=task.flow,
                                 cost_model=task.cost_model,
                                 config=task.config, cache=cache,
                                 tracer=tracer, metrics=metrics)
        return BatchResult(task=task, cost=result.cost, stats=result.stats,
                           digest=result.circuit.digest(),
                           pass_times=result.pass_times(),
                           trace=root, metrics=metrics,
                           kernel=result.mapping.kernel,
                           elapsed_s=time.perf_counter() - started,
                           mode=mode, attempts=attempt)
    except Exception as exc:  # noqa: BLE001 - one bad task must not kill a sweep
        if mode == "pool" and is_retryable(exc):
            # infrastructure failure: let the parent's retry policy see
            # the real exception instead of a flattened error string
            raise
        return BatchResult(task=task, error=f"{type(exc).__name__}: {exc}",
                           trace=tracer.roots[0] if tracer.roots else None,
                           metrics=metrics,
                           elapsed_s=time.perf_counter() - started,
                           mode=mode, attempts=attempt)


# ---------------------------------------------------------------------------
# the runner
# ---------------------------------------------------------------------------
class BatchRunner:
    """Execute batch mapping tasks, in parallel where possible.

    The runner is a thin *per-batch client* of a long-lived
    :class:`WorkerPool`: it validates and orders tasks, decides
    pool-vs-serial, degrades unfinished work, and assembles the
    :class:`BatchReport` — while the pool owns process lifecycle and
    stays warm across :meth:`run` calls.  Call :meth:`run` repeatedly on
    one runner (or share one pool between runners via ``pool=``) and
    worker processes, their caches, and their parsed-network memos are
    reused; call :meth:`close` (or use the runner as a context manager)
    to release the owned pool.

    Parameters
    ----------
    max_workers:
        Process-pool width; ``None`` uses the CPU count, ``1`` runs
        serially in-process (no pool at all).
    timeout_s:
        Per-task result deadline in pool mode; a task that misses it is
        retried (on a rebuilt pool, so the hung worker's slot is not
        leaked) and finally degraded to in-process execution.  ``None``
        waits forever.  (Serial execution cannot enforce timeouts.)
    retries:
        Resubmissions allowed per task for *retryable* failures
        (timeout, worker crash) before degrading to serial.
        Non-retryable errors fail fast regardless.
    backoff_base_s, backoff_cap_s:
        Exponential-backoff schedule for retries: attempt *n* waits
        ``min(cap, base * 2**(n-1))`` scaled by a deterministic jitter
        factor in [0.5, 1.5) derived from the task label, so a sweep's
        retry timing is reproducible yet uncorrelated across tasks.
    deadline_s:
        Whole-batch wall-clock budget.  Once expired, no further
        retries or fallbacks run; unfinished tasks are reported as
        ``BatchDeadlineError`` failures with ``mode="deadline"``.
        ``None`` (default) means no budget.
    use_cache:
        Attach :class:`TreeCache` memoization — the runner's shared
        cache in serial mode, one private cache per pool worker.
    store_path:
        Optional :class:`CacheStore` sqlite path: mounts the persistent
        cone cache behind the runner's serial cache *and* behind every
        pool worker's cache, so warm DP state survives processes and
        restarts.
    pool:
        Optional shared :class:`WorkerPool`.  When given, the runner
        uses it for pooled execution and never closes it (the pool's
        own width/timeout/retry settings govern); otherwise the runner
        lazily builds a pool from its own parameters and owns it.
    fault_plan:
        Optional :class:`~repro.resilience.FaultPlan` installed for the
        run (parent process and every pool worker).  Default: the
        ambient plan (:func:`repro.resilience.active_plan`), if any, is
        forwarded to workers.
    """

    def __init__(self, max_workers: Optional[int] = None,
                 timeout_s: Optional[float] = None,
                 retries: int = 1,
                 use_cache: bool = True,
                 cache: Optional[TreeCache] = None,
                 backoff_base_s: float = 0.05,
                 backoff_cap_s: float = 5.0,
                 deadline_s: Optional[float] = None,
                 store_path: Optional[str] = None,
                 pool: Optional[WorkerPool] = None,
                 fault_plan: Optional[FaultPlan] = None):
        if max_workers is not None and max_workers < 1:
            raise ValueError(f"max_workers must be >= 1, got {max_workers}")
        if retries < 0:
            raise ValueError(f"retries must be >= 0, got {retries}")
        if backoff_base_s < 0 or backoff_cap_s < 0:
            raise ValueError("backoff times must be >= 0")
        if deadline_s is not None and deadline_s <= 0:
            raise ValueError(f"deadline_s must be > 0, got {deadline_s}")
        self.max_workers = max_workers
        self.timeout_s = timeout_s
        self.retries = retries
        self.backoff_base_s = backoff_base_s
        self.backoff_cap_s = backoff_cap_s
        self.deadline_s = deadline_s
        self.store_path = store_path
        self.fault_plan = fault_plan
        self.use_cache = use_cache or cache is not None
        self._owned_store: Optional[CacheStore] = None
        if cache is not None:
            self.cache = cache
        elif self.use_cache:
            if store_path is not None:
                self._owned_store = CacheStore(store_path)
            self.cache = TreeCache(store=self._owned_store)
        else:
            self.cache = None
        self._shared_pool = pool
        self._pool: Optional[WorkerPool] = None

    # -- pool lifetime ----------------------------------------------------
    @property
    def pool(self) -> Optional[WorkerPool]:
        """The pool this runner would execute on (shared or owned);
        ``None`` until an owned pool has been built."""
        return self._shared_pool if self._shared_pool is not None \
            else self._pool

    def _ensure_pool(self) -> WorkerPool:
        if self._shared_pool is not None:
            return self._shared_pool
        if self._pool is None or self._pool.closed:
            self._pool = WorkerPool(
                max_workers=self.max_workers,
                timeout_s=self.timeout_s,
                retries=self.retries,
                backoff_base_s=self.backoff_base_s,
                backoff_cap_s=self.backoff_cap_s,
                use_cache=self.use_cache,
                store_path=self.store_path,
                fault_plan=self.fault_plan)
        return self._pool

    def close(self) -> None:
        """Release the owned pool (a shared ``pool=`` is left alone)."""
        if self._pool is not None:
            self._pool.close()
            self._pool = None
        if self._owned_store is not None:
            self._owned_store.close()

    def __enter__(self) -> "BatchRunner":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- task construction ----------------------------------------------
    @staticmethod
    def sweep_tasks(circuits: Optional[Sequence[str]] = None,
                    flows: Sequence[str] = ("soi",),
                    cost_models: Sequence[Optional[CostModel]] = (None,),
                    config: Optional[MapperConfig] = None) -> List[BatchTask]:
        """Cross product of circuits x flows x cost models.

        ``circuits=None`` takes the full benchmark registry.
        """
        from ..bench_suite import circuit_names

        names = list(circuits) if circuits else circuit_names()
        return [BatchTask(circuit=name, flow=flow, cost_model=model,
                          config=config)
                for name in names
                for flow in flows
                for model in cost_models]

    # -- execution -------------------------------------------------------
    def run(self, tasks: Iterable[BatchTask], *,
            on_result: Optional[Callable[[int, BatchResult], None]] = None
            ) -> BatchReport:
        """Run every task; the report lists results in task order.

        ``on_result(index, result)`` — when given — fires the moment
        each task's result is accepted (out of task order in pool mode):
        the progress hook the service's event stream rides on.
        """
        tasks = list(tasks)
        for task in tasks:
            if task.flow not in FLOW_PRESETS:
                raise ValueError(
                    f"task {task.label!r}: unknown flow {task.flow!r}; "
                    f"expected one of {', '.join(FLOW_PRESETS)}")
        started = time.perf_counter()
        previous = (install(self.fault_plan)
                    if self.fault_plan is not None else None)
        try:
            if self._shared_pool is not None:
                # a shared long-lived pool: its width governs, and even
                # single-task batches ride the warm workers
                pooled = bool(tasks) and self._shared_pool.width > 1
            else:
                workers = self.max_workers or os.cpu_count() or 1
                workers = min(workers, max(1, len(tasks)))
                pooled = workers > 1
            if pooled:
                report = self._run_pool(tasks, started, on_result)
            else:
                report = self._run_serial_list(tasks, started, on_result)
        finally:
            if self.fault_plan is not None:
                install(previous)
        report.wall_s = time.perf_counter() - started
        return report

    def run_serial(self, tasks: Iterable[BatchTask], *,
                   on_result: Optional[Callable[[int, BatchResult],
                                                None]] = None
                   ) -> BatchReport:
        """Force in-process serial execution (shared cache, no pool)."""
        tasks = list(tasks)
        started = time.perf_counter()
        previous = (install(self.fault_plan)
                    if self.fault_plan is not None else None)
        try:
            report = self._run_serial_list(tasks, started, on_result)
        finally:
            if self.fault_plan is not None:
                install(previous)
        report.wall_s = time.perf_counter() - started
        return report

    def _run_serial_list(self, tasks: List[BatchTask], started: float,
                         on_result: Optional[Callable[[int, BatchResult],
                                                      None]] = None
                         ) -> BatchReport:
        """In-process execution honouring the batch deadline budget."""
        deadline = (started + self.deadline_s
                    if self.deadline_s is not None else None)
        metrics = MetricsRegistry()
        events: List[Dict[str, object]] = []
        results: List[BatchResult] = []
        for index, task in enumerate(tasks):
            if deadline is not None and time.perf_counter() >= deadline:
                result = self._deadline_result(task, attempts=0)
                self._record(events, metrics, started, "deadline_abandon",
                             task=task.label,
                             detail=f"budget {self.deadline_s}s expired")
            else:
                result = execute_task(task, cache=self.cache)
            results.append(result)
            if on_result is not None:
                on_result(index, result)
        return BatchReport(results=results, mode="serial", events=events,
                           runner_metrics=metrics)

    # -- pool delegation -------------------------------------------------
    def _deadline_result(self, task: BatchTask,
                         attempts: int) -> BatchResult:
        return BatchResult(
            task=task, mode="deadline", attempts=max(0, attempts),
            error=(f"BatchDeadlineError: batch deadline "
                   f"{self.deadline_s}s expired before task completed"))

    @staticmethod
    def _record(events: List[Dict[str, object]], metrics: MetricsRegistry,
                started: float, kind: str, **fields_) -> None:
        """Log one degradation decision (event list + counters)."""
        event: Dict[str, object] = {
            "kind": kind, "t_s": time.perf_counter() - started}
        event.update(fields_)
        events.append(event)
        emit_recovery(kind, str(fields_.get("detail", "")), metrics=metrics)

    def _run_pool(self, tasks: List[BatchTask], started: float,
                  on_result: Optional[Callable[[int, BatchResult],
                                               None]] = None
                  ) -> BatchReport:
        """Delegate one batch to the (warm) :class:`WorkerPool`, then
        degrade whatever the pool handed back unfinished."""
        plan = (self.fault_plan if self.fault_plan is not None
                else active_plan())
        deadline = (started + self.deadline_s
                    if self.deadline_s is not None else None)
        metrics = MetricsRegistry()
        events: List[Dict[str, object]] = []

        def record(kind: str, **fields_) -> None:
            self._record(events, metrics, started, kind, **fields_)

        pool = self._ensure_pool()
        results, attempts = pool.run_tasks(
            tasks, deadline=deadline, plan=plan, record=record,
            on_result=on_result)

        deadline_hit = (deadline is not None
                        and time.perf_counter() >= deadline)
        for index in range(len(tasks)):
            if index in results:
                continue
            task = tasks[index]
            if deadline_hit:
                results[index] = self._deadline_result(
                    task, attempts=attempts[index])
                record("deadline_abandon", task=task.label,
                       detail=f"budget {self.deadline_s}s expired")
            else:
                record("serial_fallback", task=task.label,
                       detail=f"after {attempts[index]} pool attempts")
                result = execute_task(task, cache=self.cache,
                                      mode="serial-fallback",
                                      attempt=attempts[index] + 1)
                result.attempts = max(1, attempts[index])
                results[index] = result
            if on_result is not None:
                on_result(index, results[index])
        return BatchReport(results=[results[i] for i in range(len(tasks))],
                           mode="pool", events=events,
                           runner_metrics=metrics)
