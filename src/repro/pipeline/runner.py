"""Batch mapping pipeline: fan a work-list of mapping tasks out.

A :class:`BatchTask` names one mapping run — circuit, flow preset, cost
model, :class:`~repro.mapping.engine.MapperConfig` — by value, so tasks
pickle across a :class:`concurrent.futures.ProcessPoolExecutor`.
:class:`BatchRunner` executes a list of them with

* **parallel fan-out** across a process pool (``max_workers`` processes,
  each owning a private :class:`~repro.pipeline.TreeCache` so repeated
  tree shapes are mapped once per worker),
* **per-task timeouts** and **bounded retries** for infrastructure
  failures (a hung or crashed worker), and
* **graceful degradation**: ``max_workers=1`` — or a broken pool, or a
  task that exhausted its retries — runs in-process serially with the
  runner's own shared cache, so a sweep always completes.

Workers return :class:`BatchResult` values: the circuit *cost* and a
netlist digest (not the circuit object — a mapped c7552 is megabytes),
the run's :class:`~repro.pipeline.MappingStats`, per-flow-pass wall
times, the worker's span tree and metrics registry (stitched by
:meth:`BatchReport.build_trace` / merged by
:meth:`BatchReport.total_metrics` in the parent), total wall time, and
the error string for failed tasks.  Results come back in task order and are
bit-identical between pool and serial execution: each task is a
deterministic function of its fields, and cache reuse reconstructs DP
tables exactly (see ``pipeline/cache.py``).
"""

from __future__ import annotations

import os
import time
from collections import deque
from concurrent.futures import BrokenExecutor, ProcessPoolExecutor
from concurrent.futures import TimeoutError as FuturesTimeoutError
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence

from ..domino.circuit import CircuitCost
from ..mapping import CostModel, MapperConfig, map_network
from ..mapping.flows import FLOW_PRESETS
from ..obs import MetricsRegistry, Span, Tracer, stitch
from .cache import TreeCache
from .metrics import MappingStats


@dataclass(frozen=True)
class BatchTask:
    """One unit of batch work, picklable by construction.

    ``circuit`` is a benchmark-registry name or a path to a
    ``.bench``/``.blif``/``.pla`` file — resolved inside the worker, so
    only strings and small configs cross the process boundary.
    """

    circuit: str
    flow: str = "soi"
    cost_model: Optional[CostModel] = None
    config: Optional[MapperConfig] = None

    @property
    def label(self) -> str:
        model = self.cost_model.name if self.cost_model is not None else "area"
        return f"{self.circuit}/{self.flow}/{model}"


@dataclass
class BatchResult:
    """Outcome of one task (success or failure)."""

    task: BatchTask
    cost: Optional[CircuitCost] = None
    stats: Optional[MappingStats] = None
    #: sha256 of the mapped transistor netlist (bit-identity witness)
    digest: Optional[str] = None
    #: pass name -> wall-clock seconds for the flow passes that ran
    pass_times: Optional[Dict[str, float]] = None
    #: the task's span tree (root ``task`` span, pass/node spans nested
    #: inside); recorded in the executing process and pickled back
    trace: Optional[Span] = None
    #: the task's metrics registry (merged into the report's aggregate)
    metrics: Optional[MetricsRegistry] = None
    elapsed_s: float = 0.0
    error: Optional[str] = None
    #: "pool", "serial", or "serial-fallback" (pool gave up on this task)
    mode: str = "serial"
    attempts: int = 1

    @property
    def ok(self) -> bool:
        return self.error is None


@dataclass
class BatchReport:
    """All results of one :meth:`BatchRunner.run`, in task order."""

    results: List[BatchResult] = field(default_factory=list)
    wall_s: float = 0.0
    mode: str = "serial"

    @property
    def ok(self) -> bool:
        return all(r.ok for r in self.results)

    @property
    def failures(self) -> List[BatchResult]:
        return [r for r in self.results if not r.ok]

    def total_stats(self) -> MappingStats:
        total = MappingStats()
        for r in self.results:
            if r.stats is not None:
                total.merge(r.stats)
        return total

    def total_metrics(self) -> MetricsRegistry:
        """All task registries merged (deterministic: fixed buckets)."""
        total = MetricsRegistry()
        for r in self.results:
            if r.metrics is not None:
                total.merge(r.metrics)
        return total

    def build_trace(self) -> Span:
        """Stitch the workers' span trees under per-circuit root spans.

        Worker clocks are private to their processes, so the stitched
        timeline is schematic — circuits (and tasks within a circuit)
        are laid end-to-end in task order — but every task subtree's
        internal nesting and durations are real.  The returned root is
        what ``soidomino batch --trace FILE`` exports.
        """
        by_circuit: Dict[str, List[Span]] = {}
        for r in self.results:
            if r.trace is not None:
                by_circuit.setdefault(r.task.circuit, []).append(r.trace)
        circuit_spans = [
            stitch(f"circuit:{name}", trees, category="circuit",
                   attributes={"tasks": len(trees)})
            for name, trees in by_circuit.items()]
        return stitch("batch", circuit_spans, category="batch",
                      attributes={"mode": self.mode,
                                  "results": len(self.results)})

    @property
    def task_time_s(self) -> float:
        """Summed per-task wall time (serial-equivalent work)."""
        return sum(r.elapsed_s for r in self.results)

    def __repr__(self) -> str:
        done = sum(1 for r in self.results if r.ok)
        return (f"BatchReport({done}/{len(self.results)} ok, "
                f"wall={self.wall_s:.2f}s, mode={self.mode!r})")


# ---------------------------------------------------------------------------
# task execution (top-level functions so the process pool can import them)
# ---------------------------------------------------------------------------
def _load_network(source: str):
    from ..bench_suite import load_circuit
    from ..io import load_bench, load_blif, load_pla

    if source.endswith(".bench"):
        return load_bench(source)
    if source.endswith(".blif"):
        return load_blif(source)
    if source.endswith(".pla"):
        return load_pla(source)
    return load_circuit(source)


def execute_task(task: BatchTask, cache: Optional[TreeCache] = None,
                 mode: str = "serial") -> BatchResult:
    """Run one task to completion; failures become error results.

    Each task records into a private tracer/registry: the root ``task``
    span (tagged with the worker pid so Chrome-trace lanes separate)
    and the registry ride the picklable :class:`BatchResult` back to
    the parent, which stitches and merges them.
    """
    started = time.perf_counter()
    tracer = Tracer(name=f"task:{task.label}")
    metrics = MetricsRegistry()
    try:
        with tracer.span(f"task:{task.label}", category="task",
                         circuit=task.circuit, flow=task.flow,
                         pid=os.getpid(), mode=mode) as root:
            network = _load_network(task.circuit)
            result = map_network(network, flow=task.flow,
                                 cost_model=task.cost_model,
                                 config=task.config, cache=cache,
                                 tracer=tracer, metrics=metrics)
        return BatchResult(task=task, cost=result.cost, stats=result.stats,
                           digest=result.circuit.digest(),
                           pass_times=result.pass_times(),
                           trace=root, metrics=metrics,
                           elapsed_s=time.perf_counter() - started,
                           mode=mode)
    except Exception as exc:  # noqa: BLE001 - one bad task must not kill a sweep
        return BatchResult(task=task, error=f"{type(exc).__name__}: {exc}",
                           trace=tracer.roots[0] if tracer.roots else None,
                           metrics=metrics,
                           elapsed_s=time.perf_counter() - started,
                           mode=mode)


#: Per-worker-process cache, installed by the pool initializer.
_WORKER_CACHE: Optional[TreeCache] = None


def _init_worker(cache_enabled: bool) -> None:
    global _WORKER_CACHE
    _WORKER_CACHE = TreeCache() if cache_enabled else None


def _pool_execute(task: BatchTask) -> BatchResult:
    return execute_task(task, cache=_WORKER_CACHE, mode="pool")


# ---------------------------------------------------------------------------
# the runner
# ---------------------------------------------------------------------------
class BatchRunner:
    """Execute batch mapping tasks, in parallel where possible.

    Parameters
    ----------
    max_workers:
        Process-pool width; ``None`` uses the CPU count, ``1`` runs
        serially in-process (no pool at all).
    timeout_s:
        Per-task result deadline in pool mode; a task that misses it is
        retried and finally degraded to in-process execution.  ``None``
        waits forever.  (Serial execution cannot enforce timeouts.)
    retries:
        Resubmissions allowed per task for infrastructure failures
        (timeout, worker crash) before degrading to serial.
    use_cache:
        Attach :class:`TreeCache` memoization — the runner's shared
        cache in serial mode, one private cache per pool worker.
    """

    def __init__(self, max_workers: Optional[int] = None,
                 timeout_s: Optional[float] = None,
                 retries: int = 1,
                 use_cache: bool = True,
                 cache: Optional[TreeCache] = None):
        if max_workers is not None and max_workers < 1:
            raise ValueError(f"max_workers must be >= 1, got {max_workers}")
        if retries < 0:
            raise ValueError(f"retries must be >= 0, got {retries}")
        self.max_workers = max_workers
        self.timeout_s = timeout_s
        self.retries = retries
        self.use_cache = use_cache or cache is not None
        self.cache = cache if cache is not None else (
            TreeCache() if use_cache else None)

    # -- task construction ----------------------------------------------
    @staticmethod
    def sweep_tasks(circuits: Optional[Sequence[str]] = None,
                    flows: Sequence[str] = ("soi",),
                    cost_models: Sequence[Optional[CostModel]] = (None,),
                    config: Optional[MapperConfig] = None) -> List[BatchTask]:
        """Cross product of circuits x flows x cost models.

        ``circuits=None`` takes the full benchmark registry.
        """
        from ..bench_suite import circuit_names

        names = list(circuits) if circuits else circuit_names()
        return [BatchTask(circuit=name, flow=flow, cost_model=model,
                          config=config)
                for name in names
                for flow in flows
                for model in cost_models]

    # -- execution -------------------------------------------------------
    def run(self, tasks: Iterable[BatchTask]) -> BatchReport:
        """Run every task; the report lists results in task order."""
        tasks = list(tasks)
        for task in tasks:
            if task.flow not in FLOW_PRESETS:
                raise ValueError(
                    f"task {task.label!r}: unknown flow {task.flow!r}; "
                    f"expected one of {', '.join(FLOW_PRESETS)}")
        started = time.perf_counter()
        workers = self.max_workers or os.cpu_count() or 1
        workers = min(workers, max(1, len(tasks)))
        if workers == 1 or not tasks:
            results = [execute_task(t, cache=self.cache) for t in tasks]
            mode = "serial"
        else:
            results = self._run_pool(tasks, workers)
            mode = "pool"
        return BatchReport(results=results,
                           wall_s=time.perf_counter() - started, mode=mode)

    def run_serial(self, tasks: Iterable[BatchTask]) -> BatchReport:
        """Force in-process serial execution (shared cache, no pool)."""
        tasks = list(tasks)
        started = time.perf_counter()
        results = [execute_task(t, cache=self.cache) for t in tasks]
        return BatchReport(results=results,
                           wall_s=time.perf_counter() - started,
                           mode="serial")

    def _run_pool(self, tasks: List[BatchTask],
                  workers: int) -> List[BatchResult]:
        results: dict = {}
        attempts = dict.fromkeys(range(len(tasks)), 1)
        try:
            with ProcessPoolExecutor(
                    max_workers=workers, initializer=_init_worker,
                    initargs=(self.use_cache,)) as pool:
                inflight = deque(
                    (i, pool.submit(_pool_execute, tasks[i]))
                    for i in range(len(tasks)))
                while inflight:
                    index, future = inflight.popleft()
                    try:
                        result = future.result(timeout=self.timeout_s)
                        result.attempts = attempts[index]
                        results[index] = result
                    except FuturesTimeoutError:
                        future.cancel()
                        if attempts[index] <= self.retries:
                            attempts[index] += 1
                            inflight.append(
                                (index, pool.submit(_pool_execute,
                                                    tasks[index])))
                        # else: left unfinished -> serial fallback below
                    except BrokenExecutor:
                        raise
                    except Exception:
                        # submission/pickling failure for this future
                        if attempts[index] <= self.retries:
                            attempts[index] += 1
                            inflight.append(
                                (index, pool.submit(_pool_execute,
                                                    tasks[index])))
        except (BrokenExecutor, OSError):
            # the pool itself died: everything unfinished degrades
            pass
        for index in range(len(tasks)):
            if index not in results:
                result = execute_task(tasks[index], cache=self.cache,
                                      mode="serial-fallback")
                result.attempts = attempts[index]
                results[index] = result
        return [results[i] for i in range(len(tasks))]
