"""Engine instrumentation: counters surfaced on ``MappingResult.stats``.

A :class:`MappingStats` object rides along one :class:`MappingEngine` run
and counts the events that dominate mapping cost: DP tuples created and
pruned, combine calls, gate formations, tree-cache hits/misses, and
per-node wall time.  The counters are plain integers/floats so a stats
object pickles cleanly across the :class:`~repro.pipeline.BatchRunner`
process pool and merges cheaply when aggregating a sweep.

This module intentionally has no intra-package imports: the mapping
engine imports it, and the pipeline package re-exports it.
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from typing import Dict

#: Stats fields that aggregate by max (not sum) when merging runs.
MAX_MERGED_FIELDS = ("max_node_time_s", "soa_max_batch")


@dataclass
class MappingStats:
    """Counters for one mapping run (or an aggregate of several).

    Attributes
    ----------
    tuples_created:
        DP candidate sub-solutions produced by the combine step (feasible
        ``{W, H}`` combinations, whether or not a tuple was allocated).
    tuples_pruned:
        Candidates rejected at table insertion (dominated or beaten by
        the incumbent of their ``{W, H}`` slot), including those the
        incumbent-bound fast path rejected before allocation.
    bound_skips:
        The subset of ``tuples_pruned`` rejected by the scalar
        incumbent-bound check before a ``MapTuple`` was ever allocated
        (the lazy kernel's cheap rejections).
    combine_calls:
        Fanin-pair combinations attempted (each may yield 0-2 tuples).
    gate_formations:
        Formed-gate records built (one per processed node, including
        nodes restored from the tree cache).
    cache_hits, cache_misses:
        Tree-cache outcomes for cache-eligible nodes; both stay zero when
        no cache is attached or the cache is disabled.
    cache_evictions:
        Tree-cache entries dropped while this run was mapping — the LRU
        capacity evictions plus integrity (poison) evictions the run
        triggered.  Zero for unbounded caches on healthy entries.
    nodes_processed:
        AND/OR nodes the DP visited.
    node_time_s, max_node_time_s:
        Total and worst single-node wall time spent in the per-node DP.
    combine_time_s:
        The subset of ``node_time_s`` spent inside the DP kernel's
        combine step — the denominator for kernel tuple-throughput
        comparisons (gate formation, fanin views and cache traffic are
        excluded because they are identical across kernels).
    soa_batches, soa_candidates, soa_max_batch:
        Vectorized-kernel activity: combine calls executed by the
        structure-of-arrays kernel, candidates those calls processed as
        numpy columns, and the largest single vectorized batch.  All
        zero for pure reference-kernel runs.
    kernel_fallbacks:
        Runs where the soa kernel was requested (or auto-eligible) but
        the cost model was not vectorizable, so the reference kernel
        ran instead (once per affected engine construction).
    auto_routed_soa, auto_routed_reference:
        The ``"auto"`` kernel's per-call routing decisions: combine
        calls sent to the soa kernel (batch at least
        ``MapperConfig.auto_threshold`` candidate pairs) versus kept on
        the reference kernel.  Both zero unless the hybrid ran.
    """

    tuples_created: int = 0
    tuples_pruned: int = 0
    bound_skips: int = 0
    combine_calls: int = 0
    gate_formations: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    cache_evictions: int = 0
    nodes_processed: int = 0
    node_time_s: float = 0.0
    max_node_time_s: float = 0.0
    combine_time_s: float = 0.0
    soa_batches: int = 0
    soa_candidates: int = 0
    soa_max_batch: int = 0
    kernel_fallbacks: int = 0
    auto_routed_soa: int = 0
    auto_routed_reference: int = 0

    @property
    def tuples_kept(self) -> int:
        return self.tuples_created - self.tuples_pruned

    @property
    def cache_requests(self) -> int:
        return self.cache_hits + self.cache_misses

    @property
    def cache_hit_rate(self) -> float:
        """Hits over cache-eligible lookups (0.0 when none were made)."""
        requests = self.cache_requests
        return self.cache_hits / requests if requests else 0.0

    def merge(self, other: "MappingStats") -> "MappingStats":
        """Accumulate ``other`` into self (returns self for chaining)."""
        for f in fields(self):
            if f.name in MAX_MERGED_FIELDS:
                setattr(self, f.name, max(getattr(self, f.name),
                                          getattr(other, f.name)))
            else:
                setattr(self, f.name,
                        getattr(self, f.name) + getattr(other, f.name))
        return self

    def as_dict(self) -> Dict[str, float]:
        """All counters plus every derived property.

        ``tuples_kept`` and ``cache_requests`` are included so JSON
        consumers (batch/bench payloads) never have to recompute them.
        """
        data: Dict[str, float] = {f.name: getattr(self, f.name)
                                  for f in fields(self)}
        data["tuples_kept"] = self.tuples_kept
        data["cache_requests"] = self.cache_requests
        data["cache_hit_rate"] = self.cache_hit_rate
        return data

    def summary(self) -> str:
        """One-line human-readable rendering (CLI output)."""
        parts = [
            f"tuples={self.tuples_created}",
            f"pruned={self.tuples_pruned}",
            f"combines={self.combine_calls}",
            f"gates={self.gate_formations}",
        ]
        if self.bound_skips:
            parts.insert(2, f"bound_skips={self.bound_skips}")
        if self.soa_batches:
            parts.append(f"soa={self.soa_batches}x"
                         f"/{self.soa_candidates}")
        if self.kernel_fallbacks:
            parts.append(f"kernel_fallbacks={self.kernel_fallbacks}")
        if self.auto_routed_soa or self.auto_routed_reference:
            parts.append(f"auto_routed=soa:{self.auto_routed_soa}"
                         f"/ref:{self.auto_routed_reference}")
        if self.cache_requests:
            parts.append(f"cache={self.cache_hits}/{self.cache_requests}"
                         f" ({100.0 * self.cache_hit_rate:.0f}%)")
        parts.append(f"dp_time={self.node_time_s:.3f}s")
        return " ".join(parts)
