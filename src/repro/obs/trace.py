"""Hierarchical span tracing for the mapping stack.

A :class:`Span` is one named, timed interval — a flow, a pass, a DP
node, a batch task — with attributes and nested children.  A
:class:`Tracer` builds span trees with a context-manager API over a
monotonic clock (``time.perf_counter``), records already-measured
intervals retroactively (the engine's per-node hot path measures first
and records only survivors of the duration threshold), and adopts
finished trees produced elsewhere (batch workers pickle their trees
across the process pool; the parent stitches them under per-circuit
roots).

Timestamps are seconds relative to the owning tracer's *epoch* (the
``perf_counter`` reading at construction), so a span tree is
self-consistent but carries no wall-clock meaning; trees merged from
other processes are re-based onto the adopting tracer's timeline.
Exporters (``obs/export.py``) turn span trees into JSONL or Chrome
``trace_event`` JSON loadable in Perfetto / ``chrome://tracing``.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence

#: Engine nodes faster than this produce no span (hot-path guard).
DEFAULT_NODE_SPAN_THRESHOLD_S = 1e-4

#: The engine observes its per-node histograms every Nth node.
DEFAULT_SAMPLE_EVERY = 8


@dataclass
class Span:
    """One named, timed interval in a trace tree.

    ``start_s``/``end_s`` are seconds relative to the owning tracer's
    epoch.  Spans are plain data (picklable, no tracer back-reference),
    which is what lets batch workers ship their trees across a process
    pool.
    """

    name: str
    category: str = "flow"
    start_s: float = 0.0
    end_s: float = 0.0
    attributes: Dict[str, object] = field(default_factory=dict)
    children: List["Span"] = field(default_factory=list)

    @property
    def duration_s(self) -> float:
        return max(0.0, self.end_s - self.start_s)

    def shift(self, delta_s: float) -> "Span":
        """Move this span (and its whole subtree) by ``delta_s``."""
        self.start_s += delta_s
        self.end_s += delta_s
        for child in self.children:
            child.shift(delta_s)
        return self

    def walk(self) -> Iterator["Span"]:
        """Depth-first iteration: this span, then its subtree."""
        yield self
        for child in self.children:
            yield from child.walk()

    def find(self, name: str) -> Optional["Span"]:
        """First span named ``name`` in depth-first order (or None)."""
        for span in self.walk():
            if span.name == name:
                return span
        return None

    def span_count(self) -> int:
        return sum(1 for _ in self.walk())

    def as_dict(self) -> Dict[str, object]:
        """Nested JSON-ready rendering (children inline)."""
        return {
            "name": self.name,
            "category": self.category,
            "start_s": self.start_s,
            "end_s": self.end_s,
            "attributes": dict(self.attributes),
            "children": [child.as_dict() for child in self.children],
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "Span":
        return cls(
            name=data["name"],
            category=data.get("category", "flow"),
            start_s=float(data.get("start_s", 0.0)),
            end_s=float(data.get("end_s", 0.0)),
            attributes=dict(data.get("attributes") or {}),
            children=[cls.from_dict(c) for c in data.get("children") or []],
        )

    def __repr__(self) -> str:
        return (f"Span({self.name!r}, {self.category}, "
                f"{self.duration_s * 1e3:.3f}ms, "
                f"{len(self.children)} children)")


class _SpanContext:
    """The ``with tracer.span(...)`` handle; enters/exits one span."""

    __slots__ = ("_tracer", "_name", "_category", "_attributes", "span")

    def __init__(self, tracer: "Tracer", name: str, category: str,
                 attributes: Dict[str, object]):
        self._tracer = tracer
        self._name = name
        self._category = category
        self._attributes = attributes
        self.span: Optional[Span] = None

    def __enter__(self) -> Span:
        self.span = self._tracer.begin(self._name, self._category,
                                       self._attributes)
        return self.span

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is not None and self.span is not None:
            self.span.attributes.setdefault("error", exc_type.__name__)
        self._tracer.end(self.span)


class Tracer:
    """Builds span trees over a monotonic clock.

    Parameters
    ----------
    name:
        Label for the tracer (carried into exports as the process name).
    node_span_threshold_s:
        Engine nodes whose DP finished faster than this emit no span —
        the guard that keeps tracing off the kernel's hot path.
    sample_every:
        The engine observes its per-node histograms every Nth node.
    """

    def __init__(self, name: str = "repro", *,
                 node_span_threshold_s: float = DEFAULT_NODE_SPAN_THRESHOLD_S,
                 sample_every: int = DEFAULT_SAMPLE_EVERY):
        if node_span_threshold_s < 0:
            raise ValueError("node_span_threshold_s must be >= 0")
        if sample_every < 1:
            raise ValueError("sample_every must be >= 1")
        self.name = name
        self.node_span_threshold_s = node_span_threshold_s
        self.sample_every = sample_every
        self.roots: List[Span] = []
        self._stack: List[Span] = []
        self._epoch = time.perf_counter()

    # -- clock -----------------------------------------------------------
    @property
    def epoch(self) -> float:
        """The ``perf_counter`` reading all span times are relative to."""
        return self._epoch

    def now(self) -> float:
        """Seconds since the tracer's epoch (monotonic)."""
        return time.perf_counter() - self._epoch

    # -- span construction ----------------------------------------------
    def span(self, name: str, category: str = "flow",
             **attributes) -> _SpanContext:
        """Context manager opening a child span of the current span."""
        return _SpanContext(self, name, category, attributes)

    def begin(self, name: str, category: str = "flow",
              attributes: Optional[Dict[str, object]] = None) -> Span:
        """Open a span explicitly (prefer :meth:`span` where possible)."""
        span = Span(name=name, category=category, start_s=self.now(),
                    attributes=dict(attributes or {}))
        self._attach(span)
        self._stack.append(span)
        return span

    def end(self, span: Optional[Span] = None) -> None:
        """Close the current span (must match the innermost open one)."""
        if not self._stack:
            raise ValueError("no open span to end")
        top = self._stack.pop()
        if span is not None and span is not top:
            raise ValueError(
                f"span nesting violated: ending {span.name!r} while "
                f"{top.name!r} is innermost")
        top.end_s = self.now()

    def event(self, name: str, category: str = "event",
              **attributes) -> Span:
        """Record a zero-duration marker span at the current instant.

        Events ride the normal span tree (children of the innermost
        open span, roots otherwise), so fault injections and recovery
        actions show up inline on the Perfetto timeline exactly where
        they happened.
        """
        now = self.now()
        span = Span(name=name, category=category, start_s=now, end_s=now,
                    attributes=dict(attributes))
        self._attach(span)
        return span

    def record_abs(self, name: str, start_pc: float, end_pc: float,
                   category: str = "node",
                   attributes: Optional[Dict[str, object]] = None) -> Span:
        """Retroactively record an interval measured with ``perf_counter``.

        The engine's per-node path times every node anyway (for
        :class:`~repro.pipeline.MappingStats`); nodes that clear the
        duration threshold are recorded here after the fact, so the
        fast path never opens a context manager.
        """
        span = Span(name=name, category=category,
                    start_s=start_pc - self._epoch,
                    end_s=end_pc - self._epoch,
                    attributes=dict(attributes or {}))
        self._attach(span)
        return span

    def attach(self, tree: Span, *, at_s: Optional[float] = None) -> Span:
        """Adopt a finished (possibly foreign) span tree.

        The tree is re-based so it starts at ``at_s`` on this tracer's
        timeline (default: now) and becomes a child of the current span
        (or a root).  Used to stitch worker trees into the parent trace.
        """
        base = self.now() if at_s is None else at_s
        tree.shift(base - tree.start_s)
        self._attach(tree)
        return tree

    def _attach(self, span: Span) -> None:
        if self._stack:
            self._stack[-1].children.append(span)
        else:
            self.roots.append(span)

    # -- introspection ---------------------------------------------------
    @property
    def current(self) -> Optional[Span]:
        """The innermost open span (None outside any span)."""
        return self._stack[-1] if self._stack else None

    def total_duration_s(self) -> float:
        return sum(root.duration_s for root in self.roots)

    def __repr__(self) -> str:
        return (f"Tracer({self.name!r}, {len(self.roots)} roots, "
                f"depth={len(self._stack)})")


def stitch(name: str, trees: Sequence[Span], *, category: str = "flow",
           attributes: Optional[Dict[str, object]] = None) -> Span:
    """Lay finished span trees end-to-end under a new root span.

    Used for trees whose clocks are not comparable (batch workers each
    have a private epoch): the result is a *schematic* timeline — tasks
    appear sequential in recorded order — but every subtree's internal
    nesting and durations are real.  Trees are shifted in place.
    """
    root = Span(name=name, category=category,
                attributes=dict(attributes or {}))
    cursor = 0.0
    for tree in trees:
        tree.shift(cursor - tree.start_s)
        root.children.append(tree)
        cursor = tree.end_s
    root.end_s = cursor
    return root
