"""Typed metrics registry: counters, gauges, fixed-bucket histograms.

A :class:`MetricsRegistry` owns named metrics created through
``counter()`` / ``gauge()`` / ``histogram()`` — get-or-create with a
type check, so two call sites can never register the same name with
different kinds.  Histograms use *fixed* bucket boundaries declared at
creation, which makes :meth:`MetricsRegistry.merge` deterministic:
merging worker registries in any order yields identical counts, the
property the batch pipeline's process-pool fan-out relies on.

The registry is also the single source of truth behind
:class:`~repro.pipeline.MappingStats`: a finished run publishes its
stats into the registry (:meth:`record_mapping_stats`) and summaries
re-derive them (:meth:`mapping_stats`), so the two surfaces cannot
disagree.  ``obs/export.py`` renders a registry in Prometheus text
exposition format.
"""

from __future__ import annotations

from bisect import bisect_left
from dataclasses import dataclass, field, fields
from typing import Dict, Iterator, List, Optional, Tuple, Union

from ..errors import ObsError
from ..pipeline.metrics import MAX_MERGED_FIELDS, MappingStats

#: Fixed buckets for the engine's tuples-per-node histogram.
TUPLES_PER_NODE_BUCKETS: Tuple[float, ...] = (
    1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 4096, 16384)

#: Fixed buckets for per-node DP / combine-call latency (seconds).
NODE_SECONDS_BUCKETS: Tuple[float, ...] = (
    1e-5, 3e-5, 1e-4, 3e-4, 1e-3, 3e-3, 1e-2, 3e-2, 0.1, 0.3, 1.0, 3.0)

#: Registry prefix under which MappingStats counters are published.
MAPPING_STATS_PREFIX = "repro_mapping_"


@dataclass
class Counter:
    """Monotonically increasing value (int or float)."""

    name: str
    help: str = ""
    value: Union[int, float] = 0

    kind = "counter"

    def inc(self, amount: Union[int, float] = 1) -> None:
        if amount < 0:
            raise ObsError(f"counter {self.name!r} cannot decrease "
                           f"(inc by {amount})")
        self.value += amount

    def _merge(self, other: "Counter") -> None:
        self.value += other.value

    def as_dict(self) -> Dict[str, object]:
        return {"kind": self.kind, "name": self.name, "value": self.value}


@dataclass
class Gauge:
    """Last-written value; ``mode="max"`` keeps the maximum on merge."""

    name: str
    help: str = ""
    value: float = 0.0
    mode: str = "last"

    kind = "gauge"

    def __post_init__(self):
        if self.mode not in ("last", "max"):
            raise ObsError(f"gauge {self.name!r}: unknown mode "
                           f"{self.mode!r} (expected 'last' or 'max')")

    def set(self, value: float) -> None:
        if self.mode == "max":
            self.value = max(self.value, value)
        else:
            self.value = value

    def _merge(self, other: "Gauge") -> None:
        if self.mode == "max":
            self.value = max(self.value, other.value)
        else:
            self.value = other.value

    def as_dict(self) -> Dict[str, object]:
        return {"kind": self.kind, "name": self.name, "value": self.value,
                "mode": self.mode}


@dataclass
class Histogram:
    """Fixed-boundary histogram (Prometheus-style cumulative export).

    ``buckets`` are upper bounds in strictly increasing order; an
    implicit ``+Inf`` bucket catches the rest.  Counts are stored
    per-bucket (not cumulative) and merged element-wise, which is only
    well-defined because the boundaries are fixed at creation — the
    reason results merge deterministically across batch workers.
    """

    name: str
    buckets: Tuple[float, ...]
    help: str = ""
    counts: List[int] = field(default_factory=list)
    sum: float = 0.0
    count: int = 0

    kind = "histogram"

    def __post_init__(self):
        self.buckets = tuple(self.buckets)
        if not self.buckets:
            raise ObsError(f"histogram {self.name!r} needs bucket bounds")
        if any(b >= a for b, a in zip(self.buckets, self.buckets[1:])):
            raise ObsError(f"histogram {self.name!r}: bucket bounds must "
                           "be strictly increasing")
        if not self.counts:
            self.counts = [0] * (len(self.buckets) + 1)

    def observe(self, value: float) -> None:
        self.counts[bisect_left(self.buckets, value)] += 1
        self.sum += value
        self.count += 1

    def cumulative(self) -> List[Tuple[float, int]]:
        """Prometheus-style ``(le, cumulative_count)`` rows, +Inf last."""
        rows: List[Tuple[float, int]] = []
        running = 0
        for bound, count in zip(self.buckets, self.counts):
            running += count
            rows.append((bound, running))
        rows.append((float("inf"), running + self.counts[-1]))
        return rows

    def _merge(self, other: "Histogram") -> None:
        if other.buckets != self.buckets:
            raise ObsError(
                f"histogram {self.name!r}: cannot merge differing bucket "
                f"bounds {other.buckets} into {self.buckets}")
        self.counts = [a + b for a, b in zip(self.counts, other.counts)]
        self.sum += other.sum
        self.count += other.count

    def as_dict(self) -> Dict[str, object]:
        return {"kind": self.kind, "name": self.name,
                "buckets": list(self.buckets), "counts": list(self.counts),
                "sum": self.sum, "count": self.count}


Metric = Union[Counter, Gauge, Histogram]


class MetricsRegistry:
    """Named metrics, created once and looked up by every instrument.

    Metrics keep insertion order, so exports and ``as_dict`` renderings
    are deterministic for a deterministic program.
    """

    def __init__(self):
        self._metrics: Dict[str, Metric] = {}

    # -- creation / lookup ----------------------------------------------
    def _get_or_create(self, name: str, kind: str, factory) -> Metric:
        metric = self._metrics.get(name)
        if metric is None:
            metric = self._metrics[name] = factory()
        elif metric.kind != kind:
            raise ObsError(
                f"metric {name!r} is a {metric.kind}, not a {kind}")
        return metric

    def counter(self, name: str, help: str = "") -> Counter:
        return self._get_or_create(
            name, "counter", lambda: Counter(name=name, help=help))

    def gauge(self, name: str, help: str = "",
              mode: str = "last") -> Gauge:
        gauge = self._get_or_create(
            name, "gauge", lambda: Gauge(name=name, help=help, mode=mode))
        if gauge.mode != mode:
            raise ObsError(f"gauge {name!r} registered with mode "
                           f"{gauge.mode!r}, requested {mode!r}")
        return gauge

    def histogram(self, name: str, buckets: Tuple[float, ...],
                  help: str = "") -> Histogram:
        hist = self._get_or_create(
            name, "histogram",
            lambda: Histogram(name=name, buckets=buckets, help=help))
        if hist.buckets != tuple(buckets):
            raise ObsError(
                f"histogram {name!r} registered with buckets "
                f"{hist.buckets}, requested {tuple(buckets)}")
        return hist

    def get(self, name: str) -> Optional[Metric]:
        return self._metrics.get(name)

    def __contains__(self, name: str) -> bool:
        return name in self._metrics

    def __len__(self) -> int:
        return len(self._metrics)

    def __iter__(self) -> Iterator[Metric]:
        return iter(self._metrics.values())

    # -- aggregation -----------------------------------------------------
    def merge(self, other: "MetricsRegistry") -> "MetricsRegistry":
        """Accumulate ``other`` into self (returns self for chaining).

        Counters and histograms add; gauges follow their mode.  A metric
        present only in ``other`` is copied over whole.  Deterministic:
        merging the same registries in any order gives equal contents
        (up to gauge ``mode="last"``, which takes the merge-order last).
        """
        for name, metric in other._metrics.items():
            mine = self._metrics.get(name)
            if mine is None:
                if metric.kind == "counter":
                    mine = self.counter(name, metric.help)
                elif metric.kind == "gauge":
                    mine = self.gauge(name, metric.help, mode=metric.mode)
                else:
                    mine = self.histogram(name, metric.buckets, metric.help)
            elif mine.kind != metric.kind:
                raise ObsError(
                    f"metric {name!r} is a {mine.kind} here but a "
                    f"{metric.kind} in the merged registry")
            mine._merge(metric)
        return self

    def as_dict(self) -> Dict[str, Dict[str, object]]:
        return {name: metric.as_dict()
                for name, metric in self._metrics.items()}

    # -- the MappingStats bridge ----------------------------------------
    def record_mapping_stats(self, stats: MappingStats,
                             prefix: str = MAPPING_STATS_PREFIX) -> None:
        """Publish a run's stats counters into the registry.

        Every :class:`MappingStats` field becomes a counter (suffixed
        ``_total``) except the max-aggregated fields
        (:data:`~repro.pipeline.metrics.MAX_MERGED_FIELDS`, e.g.
        ``max_node_time_s``/``soa_max_batch``), which are max-mode
        gauges.  Summary surfaces then re-derive their stats through
        :meth:`mapping_stats`, keeping one source of truth.
        """
        for f in fields(stats):
            value = getattr(stats, f.name)
            if f.name in MAX_MERGED_FIELDS:
                self.gauge(f"{prefix}{f.name}", mode="max").set(value)
            else:
                self.counter(f"{prefix}{f.name}_total").inc(value)

    def mapping_stats(self,
                      prefix: str = MAPPING_STATS_PREFIX) -> MappingStats:
        """Re-derive a :class:`MappingStats` from the published counters."""
        values: Dict[str, float] = {}
        for f in fields(MappingStats):
            if f.name in MAX_MERGED_FIELDS:
                metric = self.get(f"{prefix}{f.name}")
            else:
                metric = self.get(f"{prefix}{f.name}_total")
            raw = metric.value if metric is not None else 0
            values[f.name] = raw if f.type in ("float", float) else int(raw)
        return MappingStats(**values)

    def __repr__(self) -> str:
        return f"MetricsRegistry({len(self._metrics)} metrics)"
