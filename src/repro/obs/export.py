"""Exporters: JSONL spans, Chrome ``trace_event`` JSON, Prometheus text.

Three stable on-disk renderings of the obs data model:

* **JSONL** (``*.jsonl``) — one flat JSON object per span with ``id`` /
  ``parent`` links, machine-friendly and streamable; round-trips back
  into :class:`~repro.obs.Span` trees via :func:`read_jsonl`.
* **Chrome trace** (``*.json``) — the ``trace_event`` "complete event"
  (``ph: "X"``) format, loadable in Perfetto or ``chrome://tracing``;
  span attributes surface as event ``args``.  Spans carrying ``pid`` /
  ``tid`` attributes (batch worker roots) keep their lanes; others
  inherit from their nearest ancestor.
* **Prometheus text** (``*.prom`` / ``*.txt``) — plain text exposition
  of a :class:`~repro.obs.MetricsRegistry` (counters, gauges, and
  cumulative histogram buckets).

:func:`write_trace` picks the span format from the file extension — the
contract behind ``soidomino map|batch|bench --trace FILE``.
"""

from __future__ import annotations

import json
import math
from typing import Dict, List, Sequence

from ..errors import ObsError
from .metrics import MetricsRegistry
from .trace import Span

#: Trace-file extensions and the format each selects.
TRACE_FORMATS = {".jsonl": "jsonl", ".json": "chrome", ".trace": "chrome"}

#: Stable field names of one JSONL span row (tests pin these).
JSONL_FIELDS = ("id", "parent", "name", "cat", "start_s", "end_s", "attrs")


def infer_trace_format(path: str) -> str:
    """``"jsonl"`` or ``"chrome"`` from the file extension."""
    lowered = str(path).lower()
    for extension, fmt in TRACE_FORMATS.items():
        if lowered.endswith(extension):
            return fmt
    raise ObsError(
        f"cannot infer trace format from {path!r}; use one of "
        f"{', '.join(sorted(TRACE_FORMATS))}")


# ---------------------------------------------------------------------------
# JSONL spans
# ---------------------------------------------------------------------------
def span_rows(spans: Sequence[Span]) -> List[Dict[str, object]]:
    """Flatten span trees into JSONL rows with ``id``/``parent`` links.

    Ids are depth-first visit order, so the flattening is deterministic
    and a parent always precedes its children (streaming consumers can
    build the tree in one pass).
    """
    rows: List[Dict[str, object]] = []

    def visit(span: Span, parent: int) -> None:
        row_id = len(rows)
        rows.append({
            "id": row_id,
            "parent": parent,
            "name": span.name,
            "cat": span.category,
            "start_s": span.start_s,
            "end_s": span.end_s,
            "attrs": dict(span.attributes),
        })
        for child in span.children:
            visit(child, row_id)

    for root in spans:
        visit(root, -1)
    return rows


def rows_to_spans(rows: Sequence[Dict[str, object]]) -> List[Span]:
    """Rebuild span trees from JSONL rows (inverse of :func:`span_rows`)."""
    spans: Dict[int, Span] = {}
    roots: List[Span] = []
    for row in rows:
        span = Span(name=row["name"], category=row.get("cat", "flow"),
                    start_s=float(row.get("start_s", 0.0)),
                    end_s=float(row.get("end_s", 0.0)),
                    attributes=dict(row.get("attrs") or {}))
        spans[int(row["id"])] = span
        parent = int(row.get("parent", -1))
        if parent < 0:
            roots.append(span)
        else:
            try:
                spans[parent].children.append(span)
            except KeyError:
                raise ObsError(
                    f"span row {row['id']} references unknown parent "
                    f"{parent}") from None
    return roots


def spans_to_jsonl(spans: Sequence[Span]) -> str:
    return "".join(json.dumps(row, sort_keys=False) + "\n"
                   for row in span_rows(spans))


def write_jsonl(spans: Sequence[Span], path: str) -> None:
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(spans_to_jsonl(spans))


def read_jsonl(path: str) -> List[Span]:
    with open(path, "r", encoding="utf-8") as handle:
        rows = [json.loads(line) for line in handle if line.strip()]
    return rows_to_spans(rows)


# ---------------------------------------------------------------------------
# Chrome trace_event
# ---------------------------------------------------------------------------
def spans_to_chrome(spans: Sequence[Span],
                    process_name: str = "soidomino") -> Dict[str, object]:
    """Span trees as a Chrome ``trace_event`` JSON object.

    Every span becomes one complete event (``ph: "X"``) with
    microsecond ``ts``/``dur``; attributes become ``args``.  ``pid`` /
    ``tid`` attributes are honoured and inherited down the tree, so
    batch worker subtrees stay on their own lanes.
    """
    events: List[Dict[str, object]] = [{
        "name": "process_name", "ph": "M", "pid": 1, "tid": 1,
        "args": {"name": process_name},
    }]

    def visit(span: Span, pid: int, tid: int) -> None:
        pid = int(span.attributes.get("pid", pid))
        tid = int(span.attributes.get("tid", tid))
        args = {k: v for k, v in span.attributes.items()
                if k not in ("pid", "tid")}
        events.append({
            "name": span.name,
            "cat": span.category,
            "ph": "X",
            "ts": span.start_s * 1e6,
            "dur": span.duration_s * 1e6,
            "pid": pid,
            "tid": tid,
            "args": args,
        })
        for child in span.children:
            visit(child, pid, tid)

    for root in spans:
        visit(root, 1, 1)
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def write_chrome(spans: Sequence[Span], path: str,
                 process_name: str = "soidomino") -> None:
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(spans_to_chrome(spans, process_name=process_name),
                  handle, indent=1)
        handle.write("\n")


def write_trace(spans: Sequence[Span], path: str) -> str:
    """Write span trees to ``path``, format inferred from the extension.

    Returns the format written (``"jsonl"`` or ``"chrome"``) — the
    engine behind the CLI's ``--trace FILE`` flags.
    """
    fmt = infer_trace_format(path)
    if fmt == "jsonl":
        write_jsonl(spans, path)
    else:
        write_chrome(spans, path)
    return fmt


# ---------------------------------------------------------------------------
# Prometheus text exposition
# ---------------------------------------------------------------------------
def _format_value(value: float) -> str:
    if isinstance(value, float):
        if math.isinf(value):
            return "+Inf" if value > 0 else "-Inf"
        if value == int(value) and abs(value) < 1e15:
            return str(int(value))
        return repr(value)
    return str(value)


def prometheus_text(registry: MetricsRegistry) -> str:
    """Render a registry in Prometheus text exposition format."""
    lines: List[str] = []
    for metric in registry:
        if metric.help:
            lines.append(f"# HELP {metric.name} {metric.help}")
        lines.append(f"# TYPE {metric.name} {metric.kind}")
        if metric.kind == "histogram":
            for bound, cumulative in metric.cumulative():
                le = "+Inf" if math.isinf(bound) else _format_value(bound)
                lines.append(
                    f'{metric.name}_bucket{{le="{le}"}} {cumulative}')
            lines.append(f"{metric.name}_sum {_format_value(metric.sum)}")
            lines.append(f"{metric.name}_count {metric.count}")
        else:
            lines.append(f"{metric.name} {_format_value(metric.value)}")
    return "\n".join(lines) + ("\n" if lines else "")


def write_metrics(registry: MetricsRegistry, path: str) -> None:
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(prometheus_text(registry))
