"""The one JSON report schema behind ``map --json``, ``batch``, ``bench``.

Before this module the three CLI surfaces emitted three divergent JSON
shapes.  Every report now shares the same top-level keys:

``schema_version``
    :data:`REPORT_SCHEMA_VERSION` — bump on breaking changes.
``kind``
    ``"map"``, ``"batch"`` or ``"bench"``.
``circuit`` / ``flow``
    The mapped circuit and flow preset (a single name for ``map``,
    the swept name lists for ``batch``/``bench``).
``stats``
    :class:`~repro.pipeline.MappingStats` counters.  Re-derived from
    the run's :class:`~repro.obs.MetricsRegistry` whenever one is
    attached, so the summary API and the metrics registry cannot
    disagree.
``timings``
    ``elapsed_s`` / ``wall_s`` plus a ``passes`` name→seconds map.

Pre-existing keys of each surface (``elapsed_s``, ``config``, ``cost``,
``passes`` records, bench's ``aggregate``…) are kept as aliases for one
release, so existing consumers keep parsing.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from .metrics import MetricsRegistry

#: Unified report format identifier; bump on breaking schema changes.
REPORT_SCHEMA_VERSION = "soidomino-report/2"

#: Top-level keys every report kind shares (tests pin these).
SHARED_REPORT_KEYS = ("schema_version", "kind", "circuit", "flow",
                      "stats", "timings")


def _stats_dict(stats, metrics: Optional[MetricsRegistry]) -> Optional[Dict]:
    """The ``stats`` block: registry-derived whenever a registry exists.

    The registry is authoritative — when a run carries one, its
    published counters are what the report serializes, so the stable
    :class:`MappingStats` summary and the metrics registry can never
    disagree.  Runs without a registry fall back to the stats object.
    """
    if metrics is not None:
        return metrics.mapping_stats().as_dict()
    return stats.as_dict() if stats is not None else None


def flow_report(result, *, cost_objective: Optional[str] = None,
                input_stats: Optional[Dict] = None,
                digest: Optional[str] = None) -> Dict[str, object]:
    """Unified report of one :class:`~repro.mapping.FlowResult`.

    Extends the pre-obs ``map --json`` payload (every old key survives
    as an alias) with the shared header and ``timings`` block.
    """
    from dataclasses import asdict

    pass_seconds = result.pass_times()
    data: Dict[str, object] = {
        "schema_version": REPORT_SCHEMA_VERSION,
        "kind": "map",
        "circuit": result.circuit.name,
        "flow": result.flow,
        "stats": _stats_dict(result.stats, getattr(result, "metrics", None)),
        "kernel": {
            "requested": result.config.kernel,
            "active": result.mapping.kernel,
            "auto_threshold": result.config.auto_threshold,
            "routed": {
                "soa": (result.stats.auto_routed_soa
                        if result.stats is not None else 0),
                "reference": (result.stats.auto_routed_reference
                              if result.stats is not None else 0),
            },
        },
        "timings": {
            "elapsed_s": result.elapsed_s,
            "passes": pass_seconds,
        },
        # pre-schema_version aliases (kept for one release)
        "elapsed_s": result.elapsed_s,
        "config": asdict(result.config),
        "cost": result.cost.as_dict(),
        "passes": [r.as_dict() for r in result.passes],
    }
    trace = getattr(result, "trace", None)
    if trace is not None:
        data["trace_summary"] = {
            "spans": trace.span_count(),
            "duration_s": trace.duration_s,
        }
    if result.unate_report is not None:
        report = asdict(result.unate_report)
        report["duplication_ratio"] = result.unate_report.duplication_ratio
        data["unate_report"] = report
    else:
        data["unate_report"] = None
    if cost_objective is not None:
        data["cost_objective"] = cost_objective
    if input_stats is not None:
        data["input"] = input_stats
    if digest is not None:
        data["digest"] = digest
    return data


def batch_report(report, *,
                 cost_objective: Optional[str] = None) -> Dict[str, object]:
    """Unified report of one :class:`~repro.pipeline.BatchReport`."""
    circuits: List[str] = []
    flows: List[str] = []
    entries: List[Dict[str, object]] = []
    for r in report.results:
        if r.task.circuit not in circuits:
            circuits.append(r.task.circuit)
        if r.task.flow not in flows:
            flows.append(r.task.flow)
        entry: Dict[str, object] = {
            "circuit": r.task.circuit,
            "flow": r.task.flow,
            "ok": r.ok,
            "stats": _stats_dict(r.stats, getattr(r, "metrics", None)),
            "timings": {
                "elapsed_s": r.elapsed_s,
                "passes": dict(r.pass_times or {}),
            },
            "cost": r.cost.as_dict() if r.cost is not None else None,
            "digest": r.digest,
            "kernel": r.kernel,
            "mode": r.mode,
            "attempts": r.attempts,
        }
        if r.error is not None:
            entry["error"] = r.error
        entries.append(entry)
    pass_seconds: Dict[str, float] = {}
    for r in report.results:
        for name, seconds in (r.pass_times or {}).items():
            pass_seconds[name] = pass_seconds.get(name, 0.0) + seconds
    return {
        "schema_version": REPORT_SCHEMA_VERSION,
        "kind": "batch",
        "circuit": circuits,
        "flow": flows,
        "stats": _stats_dict(report.total_stats(),
                             report.total_metrics() or None),
        "timings": {
            "wall_s": report.wall_s,
            "task_time_s": report.task_time_s,
            "passes": pass_seconds,
        },
        "mode": report.mode,
        "ok": report.ok,
        "cost_objective": cost_objective,
        "results": entries,
    }


def job_report(job) -> Dict[str, object]:
    """The ``job`` block of a service result payload.

    Identity plus durability evidence: execution attempts (1 for an
    uninterrupted run, 2+ when the journal re-enqueued it after a
    crash) and whether the job was recovered at daemon startup —
    everything a client needs to see that a result it received came
    from a replayed run rather than the original submission.
    """
    return {
        "id": job.id,
        "tenant": job.spec.tenant,
        "attempts": job.attempts,
        "recovered": job.recovered,
        "idempotency_key": job.spec.idempotency_key,
    }


def extend_bench_payload(payload: Dict, *,
                         metrics: Optional[MetricsRegistry] = None) -> Dict:
    """Graft the shared report header onto a bench payload, in place.

    The bench payload keeps its committed ``soidomino-bench/1`` schema
    (CI validates it; ``--baseline`` compares it) and additionally
    carries the unified header so all three CLI surfaces parse alike.
    """
    aggregate = payload.get("aggregate", {})
    sweep = payload.get("sweep", {})
    payload["schema_version"] = REPORT_SCHEMA_VERSION
    payload["kind"] = "bench"
    payload["circuit"] = list(sweep.get("circuits", []))
    payload["flow"] = list(sweep.get("flows", []))
    payload["stats"] = (metrics.mapping_stats().as_dict()
                        if metrics is not None else None)
    payload["timings"] = {
        "wall_s": payload.get("wall_s"),
        "task_time_s": aggregate.get("task_time_s"),
        "passes": dict(aggregate.get("pass_time_s", {})),
    }
    return payload
