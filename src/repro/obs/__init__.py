"""Unified observability: span tracing, metrics, exporters, reports.

The obs subsystem (DESIGN.md section 10) is the one instrumentation
layer every part of the mapping stack reports through:

* :mod:`repro.obs.trace` — :class:`Tracer` / :class:`Span`, the
  hierarchical span model over monotonic clocks (context-manager API,
  retroactive hot-path recording, cross-process tree stitching);
* :mod:`repro.obs.metrics` — :class:`MetricsRegistry` with typed
  counters, gauges, and fixed-bucket histograms that merge
  deterministically across batch workers, plus the bridge that keeps
  :class:`~repro.pipeline.MappingStats` re-derivable from the registry;
* :mod:`repro.obs.export` — JSONL spans, Chrome ``trace_event`` JSON
  (Perfetto / ``chrome://tracing``), Prometheus text exposition;
* :mod:`repro.obs.report` — the shared JSON report schema behind
  ``soidomino map --json``, ``batch --json``, and the bench payload.

`FlowPipeline` opens one span per pass, `MappingEngine` records
thresholded per-node spans and sampled histograms, `BatchRunner`
workers ship their span trees across the process pool, and the CLI's
``--trace FILE`` flags export the result.
"""

from .export import (
    JSONL_FIELDS,
    TRACE_FORMATS,
    infer_trace_format,
    prometheus_text,
    read_jsonl,
    rows_to_spans,
    span_rows,
    spans_to_chrome,
    spans_to_jsonl,
    write_chrome,
    write_jsonl,
    write_metrics,
    write_trace,
)
from .metrics import (
    MAPPING_STATS_PREFIX,
    NODE_SECONDS_BUCKETS,
    TUPLES_PER_NODE_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from .report import (
    REPORT_SCHEMA_VERSION,
    SHARED_REPORT_KEYS,
    batch_report,
    extend_bench_payload,
    flow_report,
    job_report,
)
from .trace import (
    DEFAULT_NODE_SPAN_THRESHOLD_S,
    DEFAULT_SAMPLE_EVERY,
    Span,
    Tracer,
    stitch,
)

__all__ = [
    "Counter",
    "DEFAULT_NODE_SPAN_THRESHOLD_S",
    "DEFAULT_SAMPLE_EVERY",
    "Gauge",
    "Histogram",
    "JSONL_FIELDS",
    "MAPPING_STATS_PREFIX",
    "MetricsRegistry",
    "NODE_SECONDS_BUCKETS",
    "REPORT_SCHEMA_VERSION",
    "SHARED_REPORT_KEYS",
    "Span",
    "TRACE_FORMATS",
    "TUPLES_PER_NODE_BUCKETS",
    "Tracer",
    "batch_report",
    "extend_bench_payload",
    "flow_report",
    "infer_trace_format",
    "job_report",
    "prometheus_text",
    "read_jsonl",
    "rows_to_spans",
    "span_rows",
    "spans_to_chrome",
    "spans_to_jsonl",
    "stitch",
    "write_chrome",
    "write_jsonl",
    "write_metrics",
    "write_trace",
]
