"""Functional (evaluate-phase) simulation of mapped domino circuits.

A domino gate's output after a full precharge/evaluate cycle equals its
pulldown network's steady-state conduction: series composition is AND,
parallel composition is OR.  This module evaluates a whole
:class:`DominoCircuit` bit-parallel over packed input words and provides
equivalence checking of a mapped circuit against the unate network it was
mapped from (and, through the unate phase convention, against the original
binate network).
"""

from __future__ import annotations

import random
from typing import Dict, Optional

from ..domino.circuit import DominoCircuit
from ..domino.structure import Leaf, Parallel, Pulldown, Series
from ..errors import SimulationError
from ..network import LogicNetwork
from ..conventions import NEG_SUFFIX
from .logic_sim import evaluate_vectors


def evaluate_structure(structure: Pulldown, values: Dict[str, int],
                       mask: int) -> int:
    """Conduction word of a pulldown structure under packed leaf values."""
    if isinstance(structure, Leaf):
        try:
            return values[structure.signal] & mask
        except KeyError:
            raise SimulationError(
                f"no value for signal {structure.signal!r}") from None
    if isinstance(structure, Series):
        word = mask
        for child in structure.children:
            word &= evaluate_structure(child, values, mask)
            if not word:
                return 0
        return word
    if isinstance(structure, Parallel):
        word = 0
        for child in structure.children:
            word |= evaluate_structure(child, values, mask)
            if word == mask:
                return word
        return word
    raise SimulationError(f"unknown structure node {type(structure)!r}")


def evaluate_circuit(circuit: DominoCircuit, input_words: Dict[str, int],
                     width: int) -> Dict[str, int]:
    """Evaluate every PO of ``circuit`` over ``width`` packed patterns.

    ``input_words`` maps primary-input names (including complemented
    phases like ``A_bar``) to packed words.
    """
    mask = (1 << width) - 1
    values: Dict[str, int] = {}
    for name in circuit.inputs:
        try:
            values[name] = input_words[name] & mask
        except KeyError:
            raise SimulationError(f"no stimulus for input {name!r}") from None

    for gate in circuit._topological_gates():
        values[gate.name] = evaluate_structure(gate.structure, values, mask)

    out: Dict[str, int] = {}
    for po, signal in circuit.outputs.items():
        out[po] = values[signal]
    for po, const in circuit.const_outputs.items():
        out[po] = mask if const else 0
    return out


def check_circuit_against_network(circuit: DominoCircuit,
                                  network: LogicNetwork,
                                  vectors: int = 256, seed: int = 0,
                                  neg_suffix: str = NEG_SUFFIX) -> Optional[str]:
    """Compare a mapped circuit against a logic network, matching by name.

    The network may be either the unate network the circuit was mapped
    from, or the *original* binate network: complemented-phase circuit
    inputs (``X_bar``) are synthesized as the complement of the network's
    ``X`` input when the network has no PI of that exact name.

    Returns ``None`` when every sampled pattern agrees, otherwise a
    human-readable description of the first mismatch.
    """
    net_pis = {network.node(u).label: u for u in network.pis}
    net_pos = {network.node(u).label: u for u in network.pos}
    if set(net_pos) != set(circuit.outputs) | set(circuit.const_outputs):
        return ("PO sets differ: network has "
                f"{sorted(net_pos)}, circuit drives "
                f"{sorted(set(circuit.outputs) | set(circuit.const_outputs))}")

    rng = random.Random(seed)
    mask = (1 << vectors) - 1
    base_words = {name: rng.getrandbits(vectors) for name in net_pis}

    circuit_words: Dict[str, int] = {}
    for name in circuit.inputs:
        if name in base_words:
            circuit_words[name] = base_words[name]
        elif (name.endswith(neg_suffix)
              and name[: -len(neg_suffix)] in base_words):
            circuit_words[name] = base_words[name[: -len(neg_suffix)]] ^ mask
        else:
            return f"circuit input {name!r} has no counterpart in the network"

    net_out = evaluate_vectors(
        network, {net_pis[n]: w for n, w in base_words.items()}, vectors)
    circ_out = evaluate_circuit(circuit, circuit_words, vectors)
    for po in net_pos:
        if net_out[net_pos[po]] != circ_out[po]:
            diff = net_out[net_pos[po]] ^ circ_out[po]
            bit = (diff & -diff).bit_length() - 1
            assign = {n: bool((w >> bit) & 1) for n, w in base_words.items()}
            return (f"output {po!r} differs (pattern {assign}): network="
                    f"{(net_out[net_pos[po]] >> bit) & 1}, circuit="
                    f"{(circ_out[po] >> bit) & 1}")
    return None
