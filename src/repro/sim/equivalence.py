"""Equivalence checking between logic networks.

Two flavours:

* :func:`equivalent_exhaustive` — exact, for networks with few inputs.
* :func:`equivalent_random` — Monte-Carlo over shared input names, used to
  sanity-check synthesis passes on large benchmark circuits.

Networks are matched by PI/PO *names*, so passes that rebuild a network
from scratch (decomposition, unate conversion) can still be compared
against the original.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from ..errors import SimulationError
from ..network import LogicNetwork
from .logic_sim import evaluate_vectors


@dataclass(frozen=True)
class Mismatch:
    """A counterexample found during equivalence checking."""

    po_name: str
    pi_values: Dict[str, bool]
    expected: bool
    actual: bool

    def __str__(self) -> str:
        assign = ", ".join(f"{k}={int(v)}" for k, v in sorted(self.pi_values.items()))
        return (f"output {self.po_name}: expected {int(self.expected)}, "
                f"got {int(self.actual)} under {assign}")


def _name_maps(network: LogicNetwork) -> Tuple[Dict[str, int], Dict[str, int]]:
    pis = {network.node(u).label: u for u in network.pis}
    pos = {network.node(u).label: u for u in network.pos}
    if len(pis) != len(network.pis):
        raise SimulationError(f"{network.name}: duplicate PI names")
    if len(pos) != len(network.pos):
        raise SimulationError(f"{network.name}: duplicate PO names")
    return pis, pos


def _check_interfaces(a: LogicNetwork, b: LogicNetwork):
    a_pis, a_pos = _name_maps(a)
    b_pis, b_pos = _name_maps(b)
    if set(a_pis) != set(b_pis):
        raise SimulationError(
            "PI name mismatch: only-in-first="
            f"{sorted(set(a_pis) - set(b_pis))}, only-in-second="
            f"{sorted(set(b_pis) - set(a_pis))}")
    if set(a_pos) != set(b_pos):
        raise SimulationError(
            "PO name mismatch: only-in-first="
            f"{sorted(set(a_pos) - set(b_pos))}, only-in-second="
            f"{sorted(set(b_pos) - set(a_pos))}")
    return a_pis, a_pos, b_pis, b_pos


def find_mismatch_random(a: LogicNetwork, b: LogicNetwork,
                         vectors: int = 1024, seed: int = 0,
                         batch: int = 256) -> Optional[Mismatch]:
    """Search for a differing input pattern; return the first found or None."""
    a_pis, a_pos, b_pis, b_pos = _check_interfaces(a, b)
    rng = random.Random(seed)
    names = sorted(a_pis)
    done = 0
    while done < vectors:
        width = min(batch, vectors - done)
        words = {name: rng.getrandbits(width) for name in names}
        out_a = evaluate_vectors(a, {a_pis[n]: w for n, w in words.items()}, width)
        out_b = evaluate_vectors(b, {b_pis[n]: w for n, w in words.items()}, width)
        for po_name in a_pos:
            wa = out_a[a_pos[po_name]]
            wb = out_b[b_pos[po_name]]
            diff = wa ^ wb
            if diff:
                bit = (diff & -diff).bit_length() - 1
                pattern = {n: bool((words[n] >> bit) & 1) for n in names}
                return Mismatch(po_name, pattern,
                                expected=bool((wa >> bit) & 1),
                                actual=bool((wb >> bit) & 1))
        done += width
    return None


def equivalent_random(a: LogicNetwork, b: LogicNetwork,
                      vectors: int = 1024, seed: int = 0) -> bool:
    """True if no mismatch was found over ``vectors`` random patterns."""
    return find_mismatch_random(a, b, vectors=vectors, seed=seed) is None


def equivalent_exhaustive(a: LogicNetwork, b: LogicNetwork) -> bool:
    """Exact equivalence over all input patterns (small networks only)."""
    a_pis, a_pos, b_pis, b_pos = _check_interfaces(a, b)
    names = sorted(a_pis)
    n = len(names)
    if n > 16:
        raise SimulationError(
            f"{n} inputs is too many for exhaustive checking; "
            "use equivalent_random")
    total = 1 << n
    words: Dict[str, int] = {}
    for k, name in enumerate(names):
        word = 0
        for i in range(total):
            if (i >> k) & 1:
                word |= 1 << i
        words[name] = word
    out_a = evaluate_vectors(a, {a_pis[n_]: w for n_, w in words.items()}, total)
    out_b = evaluate_vectors(b, {b_pis[n_]: w for n_, w in words.items()}, total)
    return all(out_a[a_pos[p]] == out_b[b_pos[p]] for p in a_pos)


def assert_equivalent(a: LogicNetwork, b: LogicNetwork, vectors: int = 1024,
                      seed: int = 0) -> None:
    """Raise :class:`SimulationError` with a counterexample on mismatch.

    Uses exhaustive checking when the interface has at most 12 inputs,
    random vectors otherwise.
    """
    if len(a.pis) <= 12:
        if not equivalent_exhaustive(a, b):
            mismatch = find_mismatch_random(a, b, vectors=4096, seed=seed)
            raise SimulationError(f"networks differ: {mismatch}")
        return
    mismatch = find_mismatch_random(a, b, vectors=vectors, seed=seed)
    if mismatch is not None:
        raise SimulationError(f"networks differ: {mismatch}")
