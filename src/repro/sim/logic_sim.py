"""Bit-parallel evaluation of logic networks.

Values are Python integers used as bit vectors: one call evaluates up to
``width`` input patterns at once (machine-word tricks are unnecessary since
Python integers are arbitrary precision).
"""

from __future__ import annotations

import random
from typing import Dict, List

from ..errors import SimulationError
from ..network import LogicNetwork, NodeType


def evaluate(network: LogicNetwork, pi_values: Dict[int, bool]) -> Dict[int, bool]:
    """Evaluate ``network`` for a single input pattern.

    Parameters
    ----------
    pi_values:
        Mapping from PI node id to boolean value.  Every PI must be covered.

    Returns
    -------
    dict
        Mapping from PO node id to its boolean value.
    """
    packed = {u: (1 if v else 0) for u, v in pi_values.items()}
    out = evaluate_vectors(network, packed, width=1)
    return {u: bool(v & 1) for u, v in out.items()}


def evaluate_by_name(network: LogicNetwork,
                     pi_values: Dict[str, bool]) -> Dict[str, bool]:
    """Like :func:`evaluate` but keyed by PI/PO names instead of node ids."""
    by_name = {network.node(u).label: u for u in network.pis}
    missing = set(by_name) - set(pi_values)
    if missing:
        raise SimulationError(f"missing values for inputs: {sorted(missing)}")
    result = evaluate(network, {by_name[k]: v for k, v in pi_values.items()
                                if k in by_name})
    return {network.node(u).label: v for u, v in result.items()}


def evaluate_vectors(network: LogicNetwork, pi_words: Dict[int, int],
                     width: int) -> Dict[int, int]:
    """Evaluate ``width`` patterns at once.

    Each entry of ``pi_words`` is an integer whose bit ``i`` is the value of
    that PI in pattern ``i``.  Returns a PO-id -> word mapping.
    """
    mask = (1 << width) - 1
    values: Dict[int, int] = {}
    for uid in network.topological_order():
        node = network.node(uid)
        t = node.type
        if t is NodeType.PI:
            try:
                values[uid] = pi_words[uid] & mask
            except KeyError:
                raise SimulationError(f"no stimulus for PI {node.label}") from None
        elif t is NodeType.CONST0:
            values[uid] = 0
        elif t is NodeType.CONST1:
            values[uid] = mask
        else:
            ins = [values[f] for f in node.fanins]
            values[uid] = _apply(t, ins, mask)
    return {p: values[network.node(p).fanins[0]] for p in network.pos}


def _apply(node_type: NodeType, ins: List[int], mask: int) -> int:
    """Apply a gate function to packed words."""
    if node_type is NodeType.AND:
        word = mask
        for w in ins:
            word &= w
        return word
    if node_type is NodeType.OR:
        word = 0
        for w in ins:
            word |= w
        return word
    if node_type is NodeType.NAND:
        return _apply(NodeType.AND, ins, mask) ^ mask
    if node_type is NodeType.NOR:
        return _apply(NodeType.OR, ins, mask) ^ mask
    if node_type in (NodeType.XOR, NodeType.XNOR):
        word = 0
        for w in ins:
            word ^= w
        if node_type is NodeType.XNOR:
            word ^= mask
        return word
    if node_type is NodeType.INV:
        return ins[0] ^ mask
    if node_type in (NodeType.BUF, NodeType.PO):
        return ins[0]
    raise SimulationError(f"cannot evaluate node type {node_type}")


def random_vectors(network: LogicNetwork, count: int,
                   seed: int = 0) -> Dict[int, int]:
    """Generate ``count`` random patterns for every PI, packed into words."""
    rng = random.Random(seed)
    return {u: rng.getrandbits(count) for u in network.pis}


def exhaustive_vectors(network: LogicNetwork) -> Dict[int, int]:
    """All ``2**n`` patterns for an ``n``-input network, packed into words.

    Pattern ``i`` assigns PI ``k`` (in ``network.pis`` order) the value of
    bit ``k`` of ``i``.  Intended for small ``n`` (raises above 20 inputs).
    """
    n = len(network.pis)
    if n > 20:
        raise SimulationError(f"exhaustive simulation of {n} inputs is too large")
    words: Dict[int, int] = {}
    total = 1 << n
    for k, uid in enumerate(network.pis):
        word = 0
        for i in range(total):
            if (i >> k) & 1:
                word |= 1 << i
        words[uid] = word
    return words


def truth_table(network: LogicNetwork) -> Dict[str, int]:
    """Exhaustive truth table of every PO, keyed by PO label.

    Bit ``i`` of each returned word is the PO value under pattern ``i``
    (see :func:`exhaustive_vectors` for the pattern encoding).
    """
    words = exhaustive_vectors(network)
    out = evaluate_vectors(network, words, 1 << len(network.pis))
    return {network.node(p).label: out[p] for p in network.pos}
