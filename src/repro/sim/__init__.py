"""Simulation and equivalence checking utilities."""

from .logic_sim import (
    evaluate,
    evaluate_by_name,
    evaluate_vectors,
    exhaustive_vectors,
    random_vectors,
    truth_table,
)
from .domino_sim import (
    check_circuit_against_network,
    evaluate_circuit,
    evaluate_structure,
)
from .equivalence import (
    Mismatch,
    assert_equivalent,
    equivalent_exhaustive,
    equivalent_random,
    find_mismatch_random,
)

__all__ = [
    "evaluate",
    "evaluate_by_name",
    "evaluate_vectors",
    "exhaustive_vectors",
    "random_vectors",
    "truth_table",
    "check_circuit_against_network",
    "evaluate_circuit",
    "evaluate_structure",
    "Mismatch",
    "assert_equivalent",
    "equivalent_exhaustive",
    "equivalent_random",
    "find_mismatch_random",
]
