"""Job model and fair queue for the mapping service.

A :class:`JobSpec` is the validated request payload — which circuits,
flow presets, cost objective and kernel to sweep — and compiles to the
same :class:`~repro.pipeline.BatchTask` list ``soidomino batch`` builds,
so a job's digests are bit-identical to the CLI's by construction.

:class:`JobQueue` decides *which* job runs next:

* **round-robin across tenants** — the queue keeps one priority heap
  per tenant and rotates through tenants that have work, so a tenant
  that enqueues 50 jobs cannot starve a tenant that enqueues one
  (fairness beats priority across tenants);
* **priority within a tenant** — higher ``priority`` first, FIFO among
  equals (heap key ``(-priority, seq)``);
* **admission quotas** — at most ``max_queued_per_tenant`` jobs may
  wait per tenant; beyond that :meth:`push` raises
  :class:`QuotaExceededError`, a *retryable* :class:`ReproError` the
  HTTP layer maps to 429.

The queue is single-consumer and lives on the service's event loop:
:meth:`push`/:meth:`pop` are plain synchronous calls, :meth:`get`
awaits work.  Cancelled jobs stay in their heap and are skipped at pop
time (lazy deletion), which keeps cancellation O(1).
"""

from __future__ import annotations

import heapq
import itertools
import time
import uuid
from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Optional, Tuple

from ..errors import ReproError
from ..mapping import FLOW_PRESETS
from ..mapping.kernel import KERNELS

#: Job lifecycle states.
QUEUED = "queued"
RUNNING = "running"
DONE = "done"
FAILED = "failed"
CANCELLED = "cancelled"

TERMINAL = (DONE, FAILED, CANCELLED)

_COSTS = ("area", "clock", "depth")


class JobSpecError(ReproError):
    """The submitted job payload is invalid (HTTP 400, not retryable)."""


class QuotaExceededError(ReproError):
    """The tenant's queue quota is full (HTTP 429; retry later)."""

    retryable = True


class OverloadError(ReproError):
    """Admission control shed this submit (HTTP 429; back off).

    Raised when the estimated queue wait crosses the service watermark
    (or the ``queue.overload`` fault fires).  Carries ``retry_after_s``
    so the HTTP layer can emit a ``Retry-After`` header.
    """

    retryable = True

    def __init__(self, message: str, retry_after_s: float = 1.0):
        super().__init__(message)
        self.retry_after_s = retry_after_s


class ServiceUnavailableError(ReproError):
    """The daemon is alive but not admitting work (HTTP 503; back off).

    Raised while draining (SIGTERM received) or while the circuit
    breaker is open.  Carries ``retry_after_s`` for ``Retry-After``.
    """

    retryable = True

    def __init__(self, message: str, retry_after_s: float = 1.0):
        super().__init__(message)
        self.retry_after_s = retry_after_s


@dataclass(frozen=True)
class JobSpec:
    """One validated mapping-sweep request.

    Compiles to ``circuits x flows`` batch tasks under a single cost
    objective and kernel — the same cross product as
    ``soidomino batch CIRCUITS -a FLOW -c COST --kernel K``.
    """

    circuits: Tuple[str, ...]
    flows: Tuple[str, ...] = ("soi",)
    cost: str = "area"
    k: float = 2.0
    kernel: str = "auto"
    tenant: str = "default"
    priority: int = 0
    #: client-supplied dedupe token: two submits with the same key are
    #: the same job, even across a daemon restart (journal-persisted)
    idempotency_key: Optional[str] = None

    @classmethod
    def from_payload(cls, payload: object) -> "JobSpec":
        """Validate an untrusted JSON payload into a spec.

        Raises :class:`JobSpecError` with a message naming the first
        offending field — the service's 400 contract.
        """
        if not isinstance(payload, dict):
            raise JobSpecError("job payload must be a JSON object, "
                               f"got {type(payload).__name__}")
        unknown = set(payload) - {"circuits", "flows", "cost", "k",
                                  "kernel", "tenant", "priority",
                                  "idempotency_key"}
        if unknown:
            raise JobSpecError(
                f"unknown job field(s): {', '.join(sorted(unknown))}")
        circuits = payload.get("circuits")
        if (not isinstance(circuits, (list, tuple)) or not circuits
                or not all(isinstance(c, str) and c for c in circuits)):
            raise JobSpecError(
                "'circuits' must be a non-empty list of circuit names")
        flows = payload.get("flows", ["soi"])
        if (not isinstance(flows, (list, tuple)) or not flows
                or not all(isinstance(f, str) for f in flows)):
            raise JobSpecError("'flows' must be a non-empty list of "
                               f"flow names (one of {', '.join(FLOW_PRESETS)})")
        for flow in flows:
            if flow not in FLOW_PRESETS:
                raise JobSpecError(
                    f"unknown flow {flow!r}; expected one of "
                    f"{', '.join(FLOW_PRESETS)}")
        cost = payload.get("cost", "area")
        if cost not in _COSTS:
            raise JobSpecError(f"unknown cost {cost!r}; expected one of "
                               f"{', '.join(_COSTS)}")
        k = payload.get("k", 2.0)
        if not isinstance(k, (int, float)) or isinstance(k, bool) or k <= 0:
            raise JobSpecError(f"'k' must be a positive number, got {k!r}")
        kernel = payload.get("kernel", "auto")
        if kernel not in KERNELS:
            raise JobSpecError(f"unknown kernel {kernel!r}; expected one "
                               f"of {', '.join(KERNELS)}")
        tenant = payload.get("tenant", "default")
        if not isinstance(tenant, str) or not tenant:
            raise JobSpecError("'tenant' must be a non-empty string")
        priority = payload.get("priority", 0)
        if not isinstance(priority, int) or isinstance(priority, bool):
            raise JobSpecError(
                f"'priority' must be an integer, got {priority!r}")
        idempotency_key = payload.get("idempotency_key")
        if idempotency_key is not None and (
                not isinstance(idempotency_key, str) or not idempotency_key
                or len(idempotency_key) > 200):
            raise JobSpecError(
                "'idempotency_key' must be a non-empty string "
                "(at most 200 chars)")
        return cls(circuits=tuple(circuits), flows=tuple(flows), cost=cost,
                   k=float(k), kernel=kernel, tenant=tenant,
                   priority=priority, idempotency_key=idempotency_key)

    def tasks(self):
        """The batch-task list this job maps (CLI-identical)."""
        from ..mapping import ClockWeightedCost, DepthCost, MapperConfig
        from ..pipeline import BatchRunner

        if self.cost == "clock":
            model = ClockWeightedCost(self.k)
        elif self.cost == "depth":
            model = DepthCost()
        else:
            model = None
        return BatchRunner.sweep_tasks(
            circuits=list(self.circuits), flows=self.flows,
            cost_models=[model], config=MapperConfig(kernel=self.kernel))

    def as_dict(self) -> Dict[str, object]:
        payload: Dict[str, object] = {
            "circuits": list(self.circuits), "flows": list(self.flows),
            "cost": self.cost, "k": self.k, "kernel": self.kernel,
            "tenant": self.tenant, "priority": self.priority}
        if self.idempotency_key is not None:
            payload["idempotency_key"] = self.idempotency_key
        return payload

    @property
    def label(self) -> str:
        """A human/fault-matchable summary, e.g. ``mux/soi/area``."""
        return (f"{'+'.join(self.circuits)}/{'+'.join(self.flows)}"
                f"/{self.cost}")


@dataclass
class Job:
    """One submitted job and everything observable about it."""

    spec: JobSpec
    id: str = field(default_factory=lambda: uuid.uuid4().hex[:12])
    state: str = QUEUED
    created_s: float = field(default_factory=time.time)
    started_s: Optional[float] = None
    finished_s: Optional[float] = None
    #: progress events, monotonically numbered (``seq``) for ``?since=``
    events: List[Dict[str, object]] = field(default_factory=list)
    #: the full result payload once DONE (report + cache evidence)
    result: Optional[Dict[str, object]] = None
    #: the typed error payload once FAILED
    error: Optional[Dict[str, object]] = None
    #: execution attempts (bumped when the scheduler picks the job up;
    #: a journal-recovered rerun is attempt 2)
    attempts: int = 0
    #: True for a job replayed from the journal after a restart
    recovered: bool = False

    @property
    def label(self) -> str:
        return self.spec.label

    def add_event(self, kind: str, **fields_) -> Dict[str, object]:
        event: Dict[str, object] = {"seq": len(self.events), "kind": kind,
                                    "ts": time.time()}
        event.update(fields_)
        self.events.append(event)
        return event

    @property
    def finished(self) -> bool:
        return self.state in TERMINAL

    def status(self) -> Dict[str, object]:
        """The ``GET /v1/jobs/{id}`` body (everything but the result)."""
        return {
            "id": self.id,
            "state": self.state,
            "spec": self.spec.as_dict(),
            "created_s": self.created_s,
            "started_s": self.started_s,
            "finished_s": self.finished_s,
            "events": len(self.events),
            "error": self.error,
            "attempts": self.attempts,
            "recovered": self.recovered,
        }


class JobQueue:
    """Per-tenant priority heaps drained round-robin (see module doc)."""

    def __init__(self, max_queued_per_tenant: int = 16):
        if max_queued_per_tenant < 1:
            raise ValueError("max_queued_per_tenant must be >= 1, got "
                             f"{max_queued_per_tenant}")
        self.max_queued_per_tenant = max_queued_per_tenant
        self._heaps: Dict[str, List[Tuple[int, int, Job]]] = {}
        self._ring: Deque[str] = deque()
        self._seq = itertools.count()
        self._available = None  # asyncio.Event, created on the loop

    def _event(self):
        import asyncio

        if self._available is None:
            self._available = asyncio.Event()
        return self._available

    def queued_count(self, tenant: Optional[str] = None) -> int:
        """Jobs still waiting (cancelled ones excluded)."""
        heaps = ([self._heaps.get(tenant, [])] if tenant is not None
                 else self._heaps.values())
        return sum(1 for heap in heaps
                   for _, _, job in heap if job.state == QUEUED)

    def push(self, job: Job, enforce_quota: bool = True) -> None:
        """Admit one job, or raise :class:`QuotaExceededError`.

        Journal recovery re-enqueues with ``enforce_quota=False``: the
        jobs were already admitted once, and recovery must not drop
        accepted work just because it exceeds today's quota.
        """
        tenant = job.spec.tenant
        if enforce_quota and \
                self.queued_count(tenant) >= self.max_queued_per_tenant:
            raise QuotaExceededError(
                f"tenant {tenant!r} already has "
                f"{self.max_queued_per_tenant} queued job(s); "
                "retry after one finishes")
        heap = self._heaps.setdefault(tenant, [])
        if tenant not in self._ring:
            self._ring.append(tenant)
        heapq.heappush(heap, (-job.spec.priority, next(self._seq), job))
        if self._available is not None:
            self._available.set()

    def pop(self) -> Optional[Job]:
        """The next job to run, or ``None`` when idle.

        Takes the highest-priority live job of the tenant at the front
        of the rotation, then moves that tenant to the back.
        """
        while self._ring:  # every non-yielding turn drains one tenant
            tenant = self._ring[0]
            heap = self._heaps.get(tenant, [])
            job = None
            while heap:
                _, _, candidate = heapq.heappop(heap)
                if candidate.state == QUEUED:
                    job = candidate
                    break
            if heap:
                self._ring.rotate(-1)
            else:
                # tenant drained: drop it from the rotation entirely
                self._ring.popleft()
                self._heaps.pop(tenant, None)
            if job is not None:
                return job
        return None

    async def get(self) -> Job:
        """Await the next runnable job (single consumer)."""
        event = self._event()
        while True:
            job = self.pop()
            if job is not None:
                return job
            event.clear()
            await event.wait()

    def __len__(self) -> int:
        return self.queued_count()
