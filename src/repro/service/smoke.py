"""End-to-end service drill: ``python -m repro.service.smoke``.

The CI job for the daemon.  Against real subprocesses (no in-process
shortcuts), it asserts the four promises of mapping-as-a-service:

1. **Parity** — a sweep submitted over HTTP produces bit-identical
   digests and equal costs to ``soidomino batch --json`` run directly;
2. **Warmth** — a second identical submission rides the same worker
   pool (no executor rebuild) and is not slower to set up: the job
   result's cache evidence shows ``pools_built`` unchanged and worker
   tree caches hitting;
3. **Persistence** — after a full daemon restart, the new process
   reuses the sqlite cone store: cumulative store hits grow while the
   entry count stays flat, and digests still match;
4. **Durability** — a daemon killed with ``SIGKILL`` mid-job is
   restarted against the same ``--journal`` database and the recovered
   job completes with digests bit-identical to the CLI baseline, its
   event-stream cursor intact (DESIGN.md §14).

Finally it scrapes ``/metrics`` for the live ``repro_mapping_*`` /
``repro_service_*`` families.  Exit code 0 on success, 1 with a FAIL
line per broken assertion.
"""

from __future__ import annotations

import argparse
import json
import os
import signal
import socket
import subprocess
import sys
import tempfile
import time
from typing import Dict, List, Optional, Tuple

from .client import ServiceClient

DEFAULT_CIRCUITS = ("cm150", "mux", "z4ml")


def _free_port() -> int:
    with socket.socket() as sock:
        sock.bind(("127.0.0.1", 0))
        return sock.getsockname()[1]


def _python() -> List[str]:
    return [sys.executable, "-m", "repro"]


def _start_daemon(port: int, store: str, jobs: int,
                  journal: str = "none") -> subprocess.Popen:
    process = subprocess.Popen(
        _python() + ["serve", "--port", str(port), "--store", store,
                     "-j", str(jobs), "--journal", journal],
        stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL,
        env=os.environ.copy())
    client = ServiceClient(port=port, timeout=5.0)
    deadline = time.monotonic() + 30.0
    while time.monotonic() < deadline:
        if process.poll() is not None:
            raise RuntimeError(
                f"daemon exited early with code {process.returncode}")
        try:
            if client.health().get("status") == "ok":
                return process
        except OSError:
            time.sleep(0.1)
    process.terminate()
    raise RuntimeError("daemon did not become healthy within 30s")


def _stop_daemon(process: subprocess.Popen) -> None:
    process.terminate()
    try:
        process.wait(timeout=15)
    except subprocess.TimeoutExpired:
        process.kill()
        process.wait(timeout=15)


def _cli_batch(circuits: Tuple[str, ...],
               jobs: int) -> Dict[str, Tuple[str, object]]:
    """Digest + cost per circuit from ``soidomino batch --json``."""
    completed = subprocess.run(
        _python() + ["batch", "--json", "-j", str(jobs), *circuits],
        capture_output=True, text=True, check=True, env=os.environ.copy())
    payload = json.loads(completed.stdout)
    return {entry["circuit"]: (entry["digest"], entry["cost"])
            for entry in payload["results"]}


def _cache_stats(store: str) -> Dict[str, object]:
    completed = subprocess.run(
        _python() + ["cache", "--db", store, "--json"],
        capture_output=True, text=True, check=True, env=os.environ.copy())
    return json.loads(completed.stdout)


def _submit_and_wait(client: ServiceClient,
                     circuits: Tuple[str, ...]) -> Dict[str, object]:
    job = client.submit({"circuits": list(circuits), "flows": ["soi"]})
    result = client.wait(job["id"], timeout=600.0)
    if result["state"] != "done":
        raise RuntimeError(f"job {job['id']} ended {result['state']}: "
                           f"{result.get('error')}")
    return result["result"]


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="end-to-end drill for soidomino serve")
    parser.add_argument("--circuits", nargs="+",
                        default=list(DEFAULT_CIRCUITS))
    parser.add_argument("-j", "--jobs", type=int, default=2)
    args = parser.parse_args(argv)
    circuits = tuple(args.circuits)
    failures: List[str] = []

    def check(ok: bool, what: str) -> None:
        print(f"{'ok  ' if ok else 'FAIL'} {what}")
        if not ok:
            failures.append(what)

    with tempfile.TemporaryDirectory(prefix="soidomino-smoke-") as tmp:
        store = os.path.join(tmp, "cones.sqlite")
        port = _free_port()

        print(f"baseline: soidomino batch --json {' '.join(circuits)}")
        baseline = _cli_batch(circuits, args.jobs)

        print(f"daemon:   soidomino serve --port {port} (pass 1)")
        daemon = _start_daemon(port, store, args.jobs)
        try:
            client = ServiceClient(port=port, timeout=30.0)
            started = time.monotonic()
            first = _submit_and_wait(client, circuits)
            cold_s = time.monotonic() - started
            served = {e["circuit"]: (e["digest"], e["cost"])
                      for e in first["results"]}
            check(served == baseline,
                  "served digests and costs are bit-identical to the CLI")
            pool1 = first["cache"]["pool"]
            check(pool1["pools_built"] == 1 and pool1["warm"],
                  "first job built exactly one warm pool")

            started = time.monotonic()
            second = _submit_and_wait(client, circuits)
            warm_s = time.monotonic() - started
            served2 = {e["circuit"]: (e["digest"], e["cost"])
                       for e in second["results"]}
            check(served2 == baseline,
                  "warm resubmission digests unchanged")
            pool2 = second["cache"]["pool"]
            check(pool2["pools_built"] == pool1["pools_built"]
                  and pool2["runs"] == pool1["runs"] + 1,
                  "resubmission reused the warm pool (no rebuild)")
            total_hits = sum(e["stats"]["cache_hits"]
                             for e in second["results"])
            check(total_hits > 0,
                  "warm workers served cone-cache hits")
            print(f"          cold {cold_s:.2f}s -> warm {warm_s:.2f}s")

            metrics = client.metrics_text()
            for family in ("repro_mapping_tuples_created_total",
                           "repro_mapping_cache_hits_total",
                           "repro_mapping_cache_evictions_total",
                           "repro_service_jobs_done_total"):
                check(family in metrics, f"/metrics exposes {family}")
        finally:
            _stop_daemon(daemon)

        before = _cache_stats(store)
        check(before["entries"] > 0,
              "persistent store holds cone templates after shutdown")

        print(f"daemon:   soidomino serve --port {port} (restarted)")
        daemon = _start_daemon(port, store, args.jobs)
        try:
            client = ServiceClient(port=port, timeout=30.0)
            third = _submit_and_wait(client, circuits)
            served3 = {e["circuit"]: (e["digest"], e["cost"])
                       for e in third["results"]}
            check(served3 == baseline,
                  "post-restart digests still bit-identical")
        finally:
            _stop_daemon(daemon)
        after = _cache_stats(store)
        check(after["hits"] > before["hits"],
              "restarted daemon hit the persistent store "
              f"({before['hits']} -> {after['hits']} cumulative hits)")
        check(after["entries"] == before["entries"],
              "restart recomputed nothing new "
              f"({after['entries']} entries, unchanged)")

        # ---- durability: kill -9 mid-job, restart, same digests ----
        journal = os.path.join(tmp, "journal.sqlite")
        print(f"daemon:   soidomino serve --port {port} (kill -9 drill)")
        daemon = _start_daemon(port, store, args.jobs, journal=journal)
        killed_mid_job = False
        job: Dict[str, object] = {}
        try:
            client = ServiceClient(port=port, timeout=30.0)
            job = client.submit({"circuits": list(circuits),
                                 "flows": ["soi"]})
            deadline = time.monotonic() + 60.0
            while time.monotonic() < deadline:
                if client.status(job["id"])["state"] == "running":
                    killed_mid_job = True
                    break
                time.sleep(0.005)
            daemon.send_signal(signal.SIGKILL)
            daemon.wait(timeout=15)
        except BaseException:
            _stop_daemon(daemon)
            raise
        check(killed_mid_job,
              "daemon killed -9 while the job was running")

        print(f"daemon:   soidomino serve --port {port} (resurrected)")
        daemon = _start_daemon(port, store, args.jobs, journal=journal)
        try:
            client = ServiceClient(port=port, timeout=30.0, retries=3)
            result = client.wait(job["id"], timeout=600.0)
            check(result["state"] == "done",
                  "journal-recovered job ran to completion")
            served4 = {e["circuit"]: (e["digest"], e["cost"])
                       for e in result["result"]["results"]}
            check(served4 == baseline,
                  "recovered job digests bit-identical to the CLI")
            status = client.status(job["id"])
            check(bool(status["recovered"]) and status["attempts"] >= 2,
                  "status shows journal recovery (attempt 2)")
            events = list(client.events(job["id"]))
            seqs = [e["seq"] for e in events]
            check(seqs == sorted(set(seqs)),
                  "event stream cursor survived the crash "
                  f"({len(seqs)} events, no gaps or duplicates)")
            health = client.health()
            check(health["journal"]["non_terminal"] == 0,
                  "journal holds no unfinished jobs after recovery")
        finally:
            _stop_daemon(daemon)

    if failures:
        print(f"\nsmoke: {len(failures)} assertion(s) failed",
              file=sys.stderr)
        return 1
    print("\nsmoke: all assertions passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
