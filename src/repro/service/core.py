"""The mapping service: a warm pool and a fair queue behind an API.

:class:`MappingService` is the long-lived object a daemon (or a test)
holds: one :class:`~repro.pipeline.WorkerPool` kept warm for the
process lifetime, one :class:`~repro.pipeline.CacheStore` persistent
cone cache under every worker (and under the in-process fallback
cache), and one :class:`~repro.service.jobs.JobQueue` deciding which
tenant's job runs next.

Jobs execute **one at a time**: the scheduler coroutine awaits the
queue and pushes each job's batch through the warm pool in a worker
thread (``asyncio.to_thread``), so the event loop — and therefore
status queries, event streams and ``/metrics`` — stays responsive while
a sweep runs.  Per-task completions are bridged back onto the loop with
``call_soon_threadsafe`` and appended to the job's event log, which is
what ``GET /v1/jobs/{id}/events`` streams.

Results carry *warmth evidence*: alongside the standard batch report
(bit-identical digests to ``soidomino batch`` by construction), each
job reports the runner's tree-cache stats (with the persistent-store
tier), the parsed-network memo, and the pool's build/run counters — so
a client can see that its second submission hit a warm pool and a
primed cache.

Failures follow the resilience taxonomy: :func:`error_payload` renders
any exception as the service's typed error contract
(``{type, message, retryable, kind}``), with :class:`ReproError`
subclasses keeping their classification (DESIGN.md §13).

Durability and self-healing (DESIGN.md §14) layer on top:

* a :class:`~repro.service.journal.JobJournal` write-ahead journals
  every admitted job, state transition, progress event and checksummed
  result, and :meth:`MappingService.recover` (run at construction)
  replays it — restart-safe jobs, idempotent resubmission, event
  cursors that survive ``kill -9``;
* a :class:`~repro.service.breaker.CircuitBreaker` trips after
  consecutive retryable job failures and gates admission (503) until a
  half-open probe succeeds — readiness, separate from liveness;
* admission control sheds load (retryable 429 + ``Retry-After``) when
  the estimated queue wait (queued jobs x an EWMA of job duration)
  crosses a watermark;
* :meth:`MappingService.drain` stops admission and lets in-flight work
  finish (or stay journaled for the successor) — the SIGTERM path.
"""

from __future__ import annotations

import asyncio
import functools
import os
import re
import time
from typing import Dict, Optional

from ..errors import ReproError, WorkerCrashError, is_retryable
from ..obs import MetricsRegistry, batch_report, job_report
from ..pipeline import BatchRunner, WorkerPool
from ..resilience.faults import fire_at_attempt
from .breaker import OPEN, STATE_CODES, CircuitBreaker
from .jobs import (
    CANCELLED,
    DONE,
    FAILED,
    QUEUED,
    RUNNING,
    Job,
    JobQueue,
    JobSpec,
    JobSpecError,
    OverloadError,
    QuotaExceededError,
    ServiceUnavailableError,
)
from .journal import JobJournal


def error_payload(exc: BaseException) -> Dict[str, object]:
    """The service's typed error contract for any exception."""
    return {
        "type": type(exc).__name__,
        "message": str(exc),
        "retryable": is_retryable(exc),
        "kind": ("repro" if isinstance(exc, ReproError) else "internal"),
    }


class MappingService:
    """Mapping-as-a-service: submit sweeps, stream progress, reuse warmth.

    Parameters
    ----------
    max_workers:
        Pool width for every job; ``1`` maps in-process (no pool).
    store_path:
        Persistent :class:`~repro.pipeline.CacheStore` path mounted
        under every worker cache; ``None`` disables the second tier.
    use_cache:
        Attach tree caches at all (workers and in-process fallback).
    max_queued_per_tenant:
        Admission quota forwarded to :class:`JobQueue`.
    keep_jobs:
        Finished jobs retained for status/result queries (oldest
        finished jobs are dropped beyond this).
    journal_path:
        sqlite path for the crash-safe job journal; ``None`` disables
        journaling entirely — bit-identical to the pre-journal service,
        zero overhead.  The journal is recovered at construction.
    breaker_threshold / breaker_reset_s:
        Circuit-breaker tuning (consecutive retryable job failures to
        trip; seconds before a half-open probe).
    queue_wait_watermark_s:
        Shed submits (retryable 429) once the estimated queue wait
        crosses this; ``None`` disables backpressure.
    """

    def __init__(self, max_workers: Optional[int] = None,
                 store_path: Optional[str] = None,
                 use_cache: bool = True,
                 max_queued_per_tenant: int = 16,
                 keep_jobs: int = 256,
                 journal_path: Optional[str] = None,
                 breaker_threshold: int = 3,
                 breaker_reset_s: float = 30.0,
                 queue_wait_watermark_s: Optional[float] = 120.0):
        self.queue = JobQueue(max_queued_per_tenant=max_queued_per_tenant)
        self.jobs: Dict[str, Job] = {}
        self.keep_jobs = keep_jobs
        self.started_s = time.time()
        self.pool = WorkerPool(max_workers=max_workers, use_cache=use_cache,
                               store_path=store_path)
        self.runner = BatchRunner(
            max_workers=max_workers, use_cache=use_cache,
            store_path=store_path,
            pool=self.pool if self.pool.width > 1 else None)
        #: cumulative mapping counters across every finished job — the
        #: live ``/metrics`` endpoint merges this with service counters
        self._mapping_metrics = MetricsRegistry()
        self._service_metrics = MetricsRegistry()
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._scheduler_task: Optional[asyncio.Task] = None
        self._closing = False
        self.journal = JobJournal(journal_path) if journal_path else None
        self.breaker = CircuitBreaker(threshold=breaker_threshold,
                                      reset_s=breaker_reset_s)
        self.queue_wait_watermark_s = queue_wait_watermark_s
        self.draining = False
        self._running_job: Optional[Job] = None
        #: idempotency key -> job id (journal-backed across restarts)
        self._idempotent: Dict[str, str] = {}
        #: shed count per submission identity (drives the
        #: ``queue.overload`` fault's attempt window)
        self._sheds: Dict[str, int] = {}
        #: EWMA of job wall time, the backpressure estimator's unit
        self._job_ewma_s = 0.0
        self.recovered_jobs = 0
        self.requeued_jobs = 0
        if self.journal is not None:
            self._recover()

    # ------------------------------------------------------------------
    # journal recovery (construction time, before the loop exists)
    # ------------------------------------------------------------------
    def _recover(self) -> None:
        """Replay the journal: restore terminal jobs, re-enqueue the
        rest.  Recovered reruns are digest-identical by determinism."""
        restored, requeue = self.journal.recover()
        for rec in restored + requeue:
            try:
                spec = JobSpec.from_payload(rec.spec_payload)
            except JobSpecError:
                continue  # journaled under an older validation contract
            job = Job(spec=spec, id=rec.job_id, state=rec.state,
                      created_s=rec.created_s, started_s=rec.started_s,
                      finished_s=rec.finished_s, error=rec.error,
                      result=rec.result, attempts=rec.attempts,
                      recovered=True)
            job.events = list(rec.events)
            if rec in requeue:
                job.state = QUEUED
                job.result = None
                job.error = None
                job.finished_s = None
                self._log_event(job, "state", state=QUEUED, recovered=True,
                                attempt=job.attempts)
                self.journal.record_state(job)
                self.queue.push(job, enforce_quota=False)
                self.requeued_jobs += 1
            self.jobs[job.id] = job
            if spec.idempotency_key:
                self._idempotent[spec.idempotency_key] = job.id
            self.recovered_jobs += 1
        if self.recovered_jobs:
            self._service_metrics.counter(
                "repro_service_jobs_recovered_total",
                "jobs replayed from the journal at startup").inc(
                self.recovered_jobs)
            self._service_metrics.counter(
                "repro_service_jobs_requeued_total",
                "non-terminal jobs re-enqueued at startup").inc(
                self.requeued_jobs)

    # ------------------------------------------------------------------
    # job lifecycle (event-loop side)
    # ------------------------------------------------------------------
    def submit(self, payload: object) -> Job:
        """Validate and enqueue one job.

        Admission runs in a fixed order, each gate with its own typed
        error: spec validation (400), idempotency dedupe (returns the
        existing job), draining (503), backpressure shed (429), tenant
        quota (429), circuit breaker (503) — then the job is journaled
        and queued.
        """
        if self._closing:
            raise ReproError("service is shutting down")
        spec = JobSpec.from_payload(payload)
        if spec.idempotency_key:
            existing = self._find_idempotent(spec.idempotency_key)
            if existing is not None:
                self._count("deduped", tenant=spec.tenant)
                return existing
        if self.draining:
            raise ServiceUnavailableError(
                "service is draining; not admitting new jobs",
                retry_after_s=5.0)
        self._check_overload(spec)
        if (self.queue.queued_count(spec.tenant)
                >= self.queue.max_queued_per_tenant):
            raise QuotaExceededError(
                f"tenant {spec.tenant!r} already has "
                f"{self.queue.max_queued_per_tenant} queued job(s); "
                "retry after one finishes")
        if not self.breaker.allow():
            self._count("breaker_rejected", tenant=spec.tenant)
            raise ServiceUnavailableError(
                f"circuit breaker {self.breaker.state} after "
                f"{self.breaker.failures} consecutive failures; "
                "not admitting new jobs",
                retry_after_s=max(0.5, self.breaker.retry_after_s()))
        job = Job(spec=spec)
        self.queue.push(job)  # quota pre-checked above
        self.jobs[job.id] = job
        if spec.idempotency_key:
            self._idempotent[spec.idempotency_key] = job.id
        if self.journal is not None:
            self.journal.record_submit(job)
        self._log_event(job, "state", state=QUEUED, tenant=spec.tenant)
        self._count("submitted", tenant=spec.tenant)
        self._trim_finished()
        return job

    def _find_idempotent(self, key: str) -> Optional[Job]:
        """The live job a previous submit journaled under ``key``."""
        job_id = self._idempotent.get(key)
        if job_id is None and self.journal is not None:
            job_id = self.journal.find_idempotent(key)
            if job_id is not None:
                self._idempotent[key] = job_id
        return self.jobs.get(job_id) if job_id is not None else None

    def _check_overload(self, spec: JobSpec) -> None:
        """Backpressure gate: shed when the queue-wait estimate (or the
        ``queue.overload`` fault) says the caller would wait too long."""
        shed_key = spec.idempotency_key or f"{spec.tenant}/{spec.label}"
        attempt = self._sheds.get(shed_key, 0) + 1
        injected = fire_at_attempt("queue.overload", spec.label, attempt)
        wait_s = self.estimated_queue_wait_s()
        breached = (self.queue_wait_watermark_s is not None
                    and wait_s > self.queue_wait_watermark_s)
        if injected is None and not breached:
            return
        self._sheds[shed_key] = attempt
        self._count("shed", tenant=spec.tenant)
        retry_after = max(0.5, round(self._job_ewma_s, 3))
        if injected is not None:
            raise OverloadError(
                "overloaded (injected queue.overload); retry later",
                retry_after_s=retry_after)
        raise OverloadError(
            f"estimated queue wait {wait_s:.1f}s exceeds the "
            f"{self.queue_wait_watermark_s:.1f}s watermark; retry later",
            retry_after_s=retry_after)

    def estimated_queue_wait_s(self) -> float:
        """Queued jobs x the job-duration EWMA (+ half a job if one is
        running) — the admission-control latency estimate."""
        wait = self.queue.queued_count() * self._job_ewma_s
        if self._running_job is not None:
            wait += self._job_ewma_s / 2.0
        return wait

    def cancel(self, job_id: str) -> Job:
        """Cancel a *queued* job (running jobs finish their batch)."""
        job = self.jobs[job_id]
        if job.state == QUEUED:
            job.state = CANCELLED
            job.finished_s = time.time()
            self._log_event(job, "state", state=CANCELLED)
            if self.journal is not None:
                self.journal.record_state(job)
            self._count("cancelled", tenant=job.spec.tenant)
        return job

    def _trim_finished(self) -> None:
        finished = [j for j in self.jobs.values() if j.finished]
        excess = len(finished) - self.keep_jobs
        if excess > 0:
            finished.sort(key=lambda j: j.finished_s or 0.0)
            for job in finished[:excess]:
                self.jobs.pop(job.id, None)

    def _count(self, what: str, tenant: str = "default") -> None:
        self._service_metrics.counter(
            f"repro_service_jobs_{what}_total",
            f"jobs {what} since service start").inc()
        safe = re.sub(r"[^A-Za-z0-9_]", "_", tenant)
        self._service_metrics.counter(
            f"repro_service_tenant_{safe}_jobs_{what}_total",
            f"jobs {what} for tenant {tenant}").inc()

    # ------------------------------------------------------------------
    # the scheduler
    # ------------------------------------------------------------------
    async def scheduler(self) -> None:
        """Run queued jobs one at a time until cancelled.

        Every state transition is journaled *before* the next step
        runs, so a crash at any point leaves a replayable journal; job
        outcomes drive the circuit breaker (retryable failure counts
        against it, anything else proves the pool works).
        """
        self._loop = asyncio.get_running_loop()
        while True:
            job = await self.queue.get()
            self._running_job = job
            job.state = RUNNING
            job.started_s = time.time()
            job.attempts += 1
            self._log_event(job, "state", state=RUNNING,
                            attempt=job.attempts)
            if self.journal is not None:
                self.journal.record_state(job)
            try:
                result = await asyncio.to_thread(self._run_job, job)
            except Exception as exc:  # noqa: BLE001 - typed error contract
                job.state = FAILED
                job.error = error_payload(exc)
                job.finished_s = time.time()
                self._log_event(job, "state", state=FAILED,
                                error=job.error)
                self._count("failed", tenant=job.spec.tenant)
                if is_retryable(exc):
                    self.breaker.record_failure()
                else:
                    self.breaker.record_success()
            else:
                job.result = result
                job.state = DONE if not result.get("failures") else FAILED
                if job.state == FAILED:
                    job.error = {
                        "type": "BatchTaskError",
                        "message": "; ".join(result["failures"]),
                        "retryable": False, "kind": "repro"}
                job.finished_s = time.time()
                if self.journal is not None:
                    corrupt = fire_at_attempt(
                        "journal.corrupt", job.label,
                        job.attempts) is not None
                    self.journal.record_result(job, result,
                                               corrupt=corrupt)
                self._log_event(job, "state", state=job.state)
                self._count("done" if job.state == DONE else "failed",
                            tenant=job.spec.tenant)
                self.breaker.record_success()
            finally:
                if job.finished_s is None:
                    job.finished_s = time.time()
                if self.journal is not None:
                    self.journal.record_state(job)
                duration = job.finished_s - (job.started_s
                                             or job.finished_s)
                self._job_ewma_s = (duration if self._job_ewma_s == 0.0
                                    else 0.3 * duration
                                    + 0.7 * self._job_ewma_s)
                self._running_job = None

    def start(self) -> None:
        """Launch the scheduler on the running loop (idempotent)."""
        if self._scheduler_task is None or self._scheduler_task.done():
            self._scheduler_task = asyncio.get_running_loop().create_task(
                self.scheduler())

    async def drain(self, grace_s: float = 30.0) -> Dict[str, object]:
        """Graceful-shutdown phase one: stop admission, let work finish.

        Sets :attr:`draining` (submits now 503 with ``Retry-After``
        while status/result/metrics keep serving), then waits up to
        ``grace_s`` for the queue to empty and the running job to
        finish.  Jobs still pending at the deadline stay journaled —
        the successor daemon recovers and runs them.
        """
        self.draining = True
        deadline = time.monotonic() + grace_s
        while time.monotonic() < deadline:
            if self.queue.queued_count() == 0 and self._running_job is None:
                break
            await asyncio.sleep(0.05)
        remaining = self.queue.queued_count() + (
            1 if self._running_job is not None else 0)
        return {"drained": remaining == 0, "remaining": remaining,
                "grace_s": grace_s}

    async def aclose(self) -> None:
        self._closing = True
        if self._scheduler_task is not None:
            self._scheduler_task.cancel()
            try:
                await self._scheduler_task
            except asyncio.CancelledError:
                pass
            self._scheduler_task = None
        self.close()

    def close(self) -> None:
        self._closing = True
        self.runner.close()
        self.pool.close()
        if self.journal is not None:
            self.journal.close()

    # ------------------------------------------------------------------
    # job execution (worker-thread side)
    # ------------------------------------------------------------------
    def _log_event(self, job: Job, kind: str, **fields_) -> None:
        """Append a job event and write it through to the journal."""
        event = job.add_event(kind, **fields_)
        if self.journal is not None:
            self.journal.record_event(job.id, event)

    def _emit(self, job: Job, kind: str, **fields_) -> None:
        """Append a job event from the worker thread, loop-safely."""
        if self._loop is not None:
            self._loop.call_soon_threadsafe(
                functools.partial(self._log_event, job, kind, **fields_))
        else:  # direct (test) use without a loop
            self._log_event(job, kind, **fields_)

    def _run_job(self, job: Job) -> Dict[str, object]:
        """Execute one job's batch on the warm pool; returns the result
        payload.  Runs in a worker thread."""
        if fire_at_attempt("pool.breaker", job.label, job.attempts):
            raise WorkerCrashError(
                "injected pool failure (pool.breaker): worker pool "
                "kept dying through rebuilds")
        tasks = job.spec.tasks()
        total = len(tasks)
        done_count = 0

        def on_result(index: int, result) -> None:
            nonlocal done_count
            self._emit(job, "task_done", index=index,
                       label=result.task.label, ok=result.ok,
                       digest=result.digest,
                       attempts=result.attempts, total=total)
            done_count += 1
            if done_count == 1 and fire_at_attempt(
                    "service.crash", job.label, job.attempts):
                # a deliberate kill -9 mid-batch: no cleanup, no
                # journal flush beyond what WAL already committed
                os._exit(86)

        report = self.runner.run(tasks, on_result=on_result)
        self._mapping_metrics.merge(report.total_metrics())
        payload = batch_report(report, cost_objective=job.spec.cost)
        payload["job"] = job_report(job)
        payload["failures"] = [f"{r.task.label}: {r.error}"
                               for r in report.failures]
        payload["cache"] = self.warmth()
        return payload

    # ------------------------------------------------------------------
    # observability
    # ------------------------------------------------------------------
    def warmth(self) -> Dict[str, object]:
        """Evidence of reuse: pool, tree-cache/store and memo counters."""
        from ..pipeline.runner import network_memo_stats

        return {
            "pool": {"width": self.pool.width, "warm": self.pool.warm,
                     "pools_built": self.pool.pools_built,
                     "rebuilds": self.pool.rebuilds,
                     "runs": self.pool.runs,
                     "consecutive_degraded_runs":
                         self.pool.consecutive_degraded_runs},
            "tree_cache": (self.runner.cache.stats()
                           if self.runner.cache is not None else None),
            "network_memo": network_memo_stats(),
        }

    def counts(self) -> Dict[str, int]:
        by_state: Dict[str, int] = {}
        for job in self.jobs.values():
            by_state[job.state] = by_state.get(job.state, 0) + 1
        return by_state

    def health(self) -> Dict[str, object]:
        """The ``/healthz`` body: liveness is implicit (we answered),
        readiness is explicit (admitting new work right now?)."""
        ready = not self.draining and self.breaker.state != OPEN
        return {
            "status": "ok",
            "ready": ready,
            "draining": self.draining,
            "breaker": self.breaker.snapshot(),
            "jobs": self.counts(),
            "queued": len(self.queue),
            "queue_wait_s": round(self.estimated_queue_wait_s(), 3),
            "journal": (self.journal.stats()
                        if self.journal is not None else None),
            "warmth": self.warmth(),
        }

    def metrics_registry(self) -> MetricsRegistry:
        """Everything ``/metrics`` exposes: cumulative mapping counters
        from every job plus service-level counters and gauges."""
        merged = MetricsRegistry()
        merged.merge(self._mapping_metrics)
        merged.merge(self._service_metrics)
        merged.gauge("repro_service_jobs_queued",
                     "jobs waiting in the fair queue").set(len(self.queue))
        merged.gauge("repro_service_uptime_seconds",
                     "seconds since service start").set(
            time.time() - self.started_s)
        merged.gauge("repro_service_pool_warm",
                     "1 when a live worker pool is resident").set(
            1 if self.pool.warm else 0)
        merged.gauge("repro_service_breaker_state",
                     "circuit breaker: 0 closed, 1 open, 2 half-open"
                     ).set(STATE_CODES[self.breaker.state])
        merged.gauge("repro_service_breaker_opens",
                     "times the circuit breaker tripped").set(
            self.breaker.opens)
        merged.gauge("repro_service_draining",
                     "1 while graceful drain is in progress").set(
            1 if self.draining else 0)
        merged.gauge("repro_service_queue_wait_seconds",
                     "estimated queue wait for a new submission").set(
            self.estimated_queue_wait_s())
        if self.journal is not None:
            merged.gauge("repro_service_journal_errors",
                         "journal operations degraded to no-ops").set(
                self.journal.errors)
        return merged
