"""The mapping service: a warm pool and a fair queue behind an API.

:class:`MappingService` is the long-lived object a daemon (or a test)
holds: one :class:`~repro.pipeline.WorkerPool` kept warm for the
process lifetime, one :class:`~repro.pipeline.CacheStore` persistent
cone cache under every worker (and under the in-process fallback
cache), and one :class:`~repro.service.jobs.JobQueue` deciding which
tenant's job runs next.

Jobs execute **one at a time**: the scheduler coroutine awaits the
queue and pushes each job's batch through the warm pool in a worker
thread (``asyncio.to_thread``), so the event loop — and therefore
status queries, event streams and ``/metrics`` — stays responsive while
a sweep runs.  Per-task completions are bridged back onto the loop with
``call_soon_threadsafe`` and appended to the job's event log, which is
what ``GET /v1/jobs/{id}/events`` streams.

Results carry *warmth evidence*: alongside the standard batch report
(bit-identical digests to ``soidomino batch`` by construction), each
job reports the runner's tree-cache stats (with the persistent-store
tier), the parsed-network memo, and the pool's build/run counters — so
a client can see that its second submission hit a warm pool and a
primed cache.

Failures follow the resilience taxonomy: :func:`error_payload` renders
any exception as the service's typed error contract
(``{type, message, retryable, kind}``), with :class:`ReproError`
subclasses keeping their classification (DESIGN.md §13).
"""

from __future__ import annotations

import asyncio
import functools
import re
import time
from typing import Dict, List, Optional

from ..errors import ReproError, is_retryable
from ..obs import MetricsRegistry, batch_report
from ..pipeline import BatchRunner, WorkerPool
from .jobs import (
    CANCELLED,
    DONE,
    FAILED,
    QUEUED,
    RUNNING,
    Job,
    JobQueue,
    JobSpec,
)


def error_payload(exc: BaseException) -> Dict[str, object]:
    """The service's typed error contract for any exception."""
    return {
        "type": type(exc).__name__,
        "message": str(exc),
        "retryable": is_retryable(exc),
        "kind": ("repro" if isinstance(exc, ReproError) else "internal"),
    }


class MappingService:
    """Mapping-as-a-service: submit sweeps, stream progress, reuse warmth.

    Parameters
    ----------
    max_workers:
        Pool width for every job; ``1`` maps in-process (no pool).
    store_path:
        Persistent :class:`~repro.pipeline.CacheStore` path mounted
        under every worker cache; ``None`` disables the second tier.
    use_cache:
        Attach tree caches at all (workers and in-process fallback).
    max_queued_per_tenant:
        Admission quota forwarded to :class:`JobQueue`.
    keep_jobs:
        Finished jobs retained for status/result queries (oldest
        finished jobs are dropped beyond this).
    """

    def __init__(self, max_workers: Optional[int] = None,
                 store_path: Optional[str] = None,
                 use_cache: bool = True,
                 max_queued_per_tenant: int = 16,
                 keep_jobs: int = 256):
        self.queue = JobQueue(max_queued_per_tenant=max_queued_per_tenant)
        self.jobs: Dict[str, Job] = {}
        self.keep_jobs = keep_jobs
        self.started_s = time.time()
        self.pool = WorkerPool(max_workers=max_workers, use_cache=use_cache,
                               store_path=store_path)
        self.runner = BatchRunner(
            max_workers=max_workers, use_cache=use_cache,
            store_path=store_path,
            pool=self.pool if self.pool.width > 1 else None)
        #: cumulative mapping counters across every finished job — the
        #: live ``/metrics`` endpoint merges this with service counters
        self._mapping_metrics = MetricsRegistry()
        self._service_metrics = MetricsRegistry()
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._scheduler_task: Optional[asyncio.Task] = None
        self._closing = False

    # ------------------------------------------------------------------
    # job lifecycle (event-loop side)
    # ------------------------------------------------------------------
    def submit(self, payload: object) -> Job:
        """Validate and enqueue one job (raises JobSpecError / Quota…)."""
        if self._closing:
            raise ReproError("service is shutting down")
        spec = JobSpec.from_payload(payload)
        job = Job(spec=spec)
        self.queue.push(job)  # may raise QuotaExceededError
        self.jobs[job.id] = job
        job.add_event("state", state=QUEUED, tenant=spec.tenant)
        self._count("submitted", tenant=spec.tenant)
        self._trim_finished()
        return job

    def cancel(self, job_id: str) -> Job:
        """Cancel a *queued* job (running jobs finish their batch)."""
        job = self.jobs[job_id]
        if job.state == QUEUED:
            job.state = CANCELLED
            job.finished_s = time.time()
            job.add_event("state", state=CANCELLED)
            self._count("cancelled", tenant=job.spec.tenant)
        return job

    def _trim_finished(self) -> None:
        finished = [j for j in self.jobs.values() if j.finished]
        excess = len(finished) - self.keep_jobs
        if excess > 0:
            finished.sort(key=lambda j: j.finished_s or 0.0)
            for job in finished[:excess]:
                self.jobs.pop(job.id, None)

    def _count(self, what: str, tenant: str = "default") -> None:
        self._service_metrics.counter(
            f"repro_service_jobs_{what}_total",
            f"jobs {what} since service start").inc()
        safe = re.sub(r"[^A-Za-z0-9_]", "_", tenant)
        self._service_metrics.counter(
            f"repro_service_tenant_{safe}_jobs_{what}_total",
            f"jobs {what} for tenant {tenant}").inc()

    # ------------------------------------------------------------------
    # the scheduler
    # ------------------------------------------------------------------
    async def scheduler(self) -> None:
        """Run queued jobs one at a time until cancelled."""
        self._loop = asyncio.get_running_loop()
        while True:
            job = await self.queue.get()
            job.state = RUNNING
            job.started_s = time.time()
            job.add_event("state", state=RUNNING)
            try:
                result = await asyncio.to_thread(self._run_job, job)
            except Exception as exc:  # noqa: BLE001 - typed error contract
                job.state = FAILED
                job.error = error_payload(exc)
                job.add_event("state", state=FAILED, error=job.error)
                self._count("failed", tenant=job.spec.tenant)
            else:
                job.result = result
                job.state = DONE if not result.get("failures") else FAILED
                if job.state == FAILED:
                    job.error = {
                        "type": "BatchTaskError",
                        "message": "; ".join(result["failures"]),
                        "retryable": False, "kind": "repro"}
                job.add_event("state", state=job.state)
                self._count("done" if job.state == DONE else "failed",
                            tenant=job.spec.tenant)
            finally:
                job.finished_s = time.time()

    def start(self) -> None:
        """Launch the scheduler on the running loop (idempotent)."""
        if self._scheduler_task is None or self._scheduler_task.done():
            self._scheduler_task = asyncio.get_running_loop().create_task(
                self.scheduler())

    async def aclose(self) -> None:
        self._closing = True
        if self._scheduler_task is not None:
            self._scheduler_task.cancel()
            try:
                await self._scheduler_task
            except asyncio.CancelledError:
                pass
            self._scheduler_task = None
        self.close()

    def close(self) -> None:
        self._closing = True
        self.runner.close()
        self.pool.close()

    # ------------------------------------------------------------------
    # job execution (worker-thread side)
    # ------------------------------------------------------------------
    def _emit(self, job: Job, kind: str, **fields_) -> None:
        """Append a job event from the worker thread, loop-safely."""
        if self._loop is not None:
            self._loop.call_soon_threadsafe(
                functools.partial(job.add_event, kind, **fields_))
        else:  # direct (test) use without a loop
            job.add_event(kind, **fields_)

    def _run_job(self, job: Job) -> Dict[str, object]:
        """Execute one job's batch on the warm pool; returns the result
        payload.  Runs in a worker thread."""
        tasks = job.spec.tasks()
        total = len(tasks)

        def on_result(index: int, result) -> None:
            self._emit(job, "task_done", index=index,
                       label=result.task.label, ok=result.ok,
                       digest=result.digest,
                       attempts=result.attempts, total=total)

        report = self.runner.run(tasks, on_result=on_result)
        self._mapping_metrics.merge(report.total_metrics())
        payload = batch_report(report, cost_objective=job.spec.cost)
        payload["job"] = {"id": job.id, "tenant": job.spec.tenant}
        payload["failures"] = [f"{r.task.label}: {r.error}"
                               for r in report.failures]
        payload["cache"] = self.warmth()
        return payload

    # ------------------------------------------------------------------
    # observability
    # ------------------------------------------------------------------
    def warmth(self) -> Dict[str, object]:
        """Evidence of reuse: pool, tree-cache/store and memo counters."""
        from ..pipeline.runner import network_memo_stats

        return {
            "pool": {"width": self.pool.width, "warm": self.pool.warm,
                     "pools_built": self.pool.pools_built,
                     "rebuilds": self.pool.rebuilds,
                     "runs": self.pool.runs},
            "tree_cache": (self.runner.cache.stats()
                           if self.runner.cache is not None else None),
            "network_memo": network_memo_stats(),
        }

    def counts(self) -> Dict[str, int]:
        by_state: Dict[str, int] = {}
        for job in self.jobs.values():
            by_state[job.state] = by_state.get(job.state, 0) + 1
        return by_state

    def metrics_registry(self) -> MetricsRegistry:
        """Everything ``/metrics`` exposes: cumulative mapping counters
        from every job plus service-level counters and gauges."""
        merged = MetricsRegistry()
        merged.merge(self._mapping_metrics)
        merged.merge(self._service_metrics)
        merged.gauge("repro_service_jobs_queued",
                     "jobs waiting in the fair queue").set(len(self.queue))
        merged.gauge("repro_service_uptime_seconds",
                     "seconds since service start").set(
            time.time() - self.started_s)
        merged.gauge("repro_service_pool_warm",
                     "1 when a live worker pool is resident").set(
            1 if self.pool.warm else 0)
        return merged
