"""Crash-safe write-ahead job journal: durability for the mapping service.

:class:`JobJournal` is the :class:`~repro.pipeline.store.CacheStore`
pattern applied to *jobs* instead of cones: a sqlite database in WAL
mode that records every job at submit (the validated spec payload,
tenant, priority, client-supplied idempotency key), every state
transition (queued → running → done/failed/cancelled, with execution
attempts), every progress event (so the NDJSON ``?since=`` cursor
survives a restart), and — for finished jobs — the full result payload
as a sha256-checksummed blob.

On daemon startup :meth:`recover` replays the journal:

* **terminal** jobs whose result blob verifies are restored read-only,
  so ``GET /v1/jobs/{id}/result`` and the event stream keep answering
  across restarts;
* **queued and running** jobs are handed back for re-enqueueing — a
  ``kill -9`` mid-batch therefore loses no accepted work, and because
  mapping is deterministic the recovered rerun produces digests
  identical to an uninterrupted run;
* a terminal job whose blob fails its checksum (torn write, disk
  corruption, the ``journal.corrupt`` fault) is *demoted*: the blob is
  dropped, the eviction counted, and the job re-enqueued — recompute is
  always correct, exactly like cache poisoning (DESIGN.md §11).

Idempotency keys make retried submissions safe: :meth:`find_idempotent`
answers "has this key ever been journaled?" so a client that re-sends a
submit after a connection error gets the original job back instead of
double-running it.

Like the cone store, a journal failure must never fail a job: every
operation degrades to a no-op/miss and bumps ``errors`` instead of
raising, connections are per-pid (fork safety), and writes are
single-statement WAL transactions.  A service constructed with
``journal_path=None`` skips every call — today's in-memory behaviour,
bit-identically, at zero overhead.
"""

from __future__ import annotations

import hashlib
import json
import os
import sqlite3
import threading
from typing import Dict, List, Optional, Tuple

#: Bump when the row payload format changes; journals written under
#: another version are cleared on open (jobs would not restore
#: meaningfully).
SCHEMA_VERSION = 1

#: Environment variable naming the journal database for ``soidomino
#: serve`` (``none`` disables; ``--journal`` wins over it).
JOURNAL_ENV = "REPRO_JOURNAL"

_COUNTERS = ("submitted", "finished", "recovered", "requeued",
             "corrupt_results")


def default_journal_path() -> str:
    """Where the job journal lives unless overridden.

    ``REPRO_JOURNAL`` wins; otherwise a per-user cache path next to the
    cone store.
    """
    env = os.environ.get(JOURNAL_ENV)
    if env:
        return env
    base = os.environ.get("XDG_CACHE_HOME",
                          os.path.join(os.path.expanduser("~"), ".cache"))
    return os.path.join(base, "soidomino", "journal.sqlite")


class RecoveredJob:
    """One journal row, decoded for the service to rebuild a Job from."""

    __slots__ = ("job_id", "spec_payload", "state", "attempts",
                 "idempotency_key", "created_s", "started_s", "finished_s",
                 "error", "result", "events")

    def __init__(self, job_id: str, spec_payload: Dict[str, object],
                 state: str, attempts: int,
                 idempotency_key: Optional[str],
                 created_s: float, started_s: Optional[float],
                 finished_s: Optional[float],
                 error: Optional[Dict[str, object]],
                 result: Optional[Dict[str, object]],
                 events: List[Dict[str, object]]):
        self.job_id = job_id
        self.spec_payload = spec_payload
        self.state = state
        self.attempts = attempts
        self.idempotency_key = idempotency_key
        self.created_s = created_s
        self.started_s = started_s
        self.finished_s = finished_s
        self.error = error
        self.result = result
        self.events = events


class JobJournal:
    """Checksummed sqlite write-ahead journal for service jobs.

    Parameters
    ----------
    path:
        Database file; parent directories are created on first open.
        ``":memory:"`` is supported for tests (single-process only).
    """

    def __init__(self, path: str):
        self.path = path
        self._lock = threading.Lock()
        self._conn: Optional[sqlite3.Connection] = None
        self._pid: Optional[int] = None
        #: operations that hit a sqlite error and degraded to a no-op
        self.errors = 0

    # ------------------------------------------------------------------
    # connection / schema
    # ------------------------------------------------------------------
    def _connect(self) -> sqlite3.Connection:
        pid = os.getpid()
        if self._conn is None or self._pid != pid:
            if self._conn is not None and self._pid == pid:
                self._conn.close()
            if self.path != ":memory:":
                parent = os.path.dirname(os.path.abspath(self.path))
                os.makedirs(parent, exist_ok=True)
            conn = sqlite3.connect(self.path, timeout=30.0,
                                   check_same_thread=False)
            conn.execute("PRAGMA journal_mode=WAL")
            conn.execute("PRAGMA synchronous=NORMAL")
            self._init_schema(conn)
            self._conn = conn
            self._pid = pid
        return self._conn

    @staticmethod
    def _init_schema(conn: sqlite3.Connection) -> None:
        with conn:
            conn.execute(
                "CREATE TABLE IF NOT EXISTS meta ("
                " key TEXT PRIMARY KEY, value TEXT)")
            conn.execute(
                "CREATE TABLE IF NOT EXISTS jobs ("
                " id TEXT PRIMARY KEY,"
                " idempotency_key TEXT,"
                " tenant TEXT NOT NULL,"
                " priority INTEGER NOT NULL,"
                " spec TEXT NOT NULL,"
                " state TEXT NOT NULL,"
                " attempts INTEGER NOT NULL DEFAULT 0,"
                " created_s REAL NOT NULL,"
                " started_s REAL,"
                " finished_s REAL,"
                " error TEXT,"
                " result BLOB,"
                " result_checksum TEXT)")
            conn.execute(
                "CREATE INDEX IF NOT EXISTS jobs_idempotency"
                " ON jobs (idempotency_key)")
            conn.execute(
                "CREATE TABLE IF NOT EXISTS events ("
                " job_id TEXT NOT NULL,"
                " seq INTEGER NOT NULL,"
                " event TEXT NOT NULL,"
                " PRIMARY KEY (job_id, seq))")
            conn.execute(
                "CREATE TABLE IF NOT EXISTS counters ("
                " name TEXT PRIMARY KEY, value INTEGER NOT NULL)")
            row = conn.execute(
                "SELECT value FROM meta WHERE key='schema_version'"
            ).fetchone()
            if row is None:
                conn.execute(
                    "INSERT INTO meta (key, value) VALUES (?, ?)",
                    ("schema_version", str(SCHEMA_VERSION)))
            elif row[0] != str(SCHEMA_VERSION):
                conn.execute("DELETE FROM jobs")
                conn.execute("DELETE FROM events")
                conn.execute("DELETE FROM counters")
                conn.execute(
                    "UPDATE meta SET value=? WHERE key='schema_version'",
                    (str(SCHEMA_VERSION),))

    def _bump(self, conn: sqlite3.Connection, name: str,
              amount: int = 1) -> None:
        conn.execute(
            "INSERT INTO counters (name, value) VALUES (?, ?) "
            "ON CONFLICT(name) DO UPDATE SET value = value + ?",
            (name, amount, amount))

    @staticmethod
    def checksum(payload: bytes) -> str:
        return hashlib.sha256(payload).hexdigest()

    # ------------------------------------------------------------------
    # the write-ahead path (called by MappingService, degrade-to-no-op)
    # ------------------------------------------------------------------
    def record_submit(self, job) -> None:
        """Persist one admitted job before it is observable as queued."""
        try:
            with self._lock:
                conn = self._connect()
                with conn:
                    conn.execute(
                        "INSERT OR REPLACE INTO jobs (id, idempotency_key,"
                        " tenant, priority, spec, state, attempts,"
                        " created_s, started_s, finished_s, error,"
                        " result, result_checksum)"
                        " VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?)",
                        (job.id, job.spec.idempotency_key,
                         job.spec.tenant, job.spec.priority,
                         json.dumps(job.spec.as_dict(), sort_keys=True),
                         job.state, job.attempts, job.created_s,
                         job.started_s, job.finished_s, None, None, None))
                    self._bump(conn, "submitted")
        except sqlite3.Error:
            self.errors += 1

    def record_state(self, job) -> None:
        """Persist a state transition (and the attempt/error columns)."""
        try:
            with self._lock:
                conn = self._connect()
                with conn:
                    conn.execute(
                        "UPDATE jobs SET state=?, attempts=?, started_s=?,"
                        " finished_s=?, error=? WHERE id=?",
                        (job.state, job.attempts, job.started_s,
                         job.finished_s,
                         json.dumps(job.error) if job.error else None,
                         job.id))
                    if job.finished:
                        self._bump(conn, "finished")
        except sqlite3.Error:
            self.errors += 1

    def record_result(self, job, payload: Dict[str, object],
                      corrupt: bool = False) -> None:
        """Persist the finished job's result as a checksummed blob.

        The checksum is computed first; ``corrupt=True`` (the
        ``journal.corrupt`` fault, decided by the scheduler) flips a
        byte *after* it — simulating a torn write that :meth:`recover`
        must detect and demote.
        """
        blob = json.dumps(payload, sort_keys=True).encode("utf-8")
        digest = self.checksum(blob)
        if corrupt:
            corrupted = bytearray(blob)
            corrupted[len(corrupted) // 2] ^= 0xFF
            blob = bytes(corrupted)
        try:
            with self._lock:
                conn = self._connect()
                with conn:
                    conn.execute(
                        "UPDATE jobs SET result=?, result_checksum=?"
                        " WHERE id=?", (blob, digest, job.id))
        except sqlite3.Error:
            self.errors += 1

    def record_event(self, job_id: str, event: Dict[str, object]) -> None:
        """Append one progress event (keyed by its ``seq`` cursor)."""
        try:
            with self._lock:
                conn = self._connect()
                with conn:
                    conn.execute(
                        "INSERT OR REPLACE INTO events (job_id, seq, event)"
                        " VALUES (?, ?, ?)",
                        (job_id, event.get("seq", 0), json.dumps(event)))
        except sqlite3.Error:
            self.errors += 1

    def forget(self, job_id: str) -> None:
        """Drop one job and its events (keep_jobs trimming)."""
        try:
            with self._lock:
                conn = self._connect()
                with conn:
                    conn.execute("DELETE FROM jobs WHERE id=?", (job_id,))
                    conn.execute("DELETE FROM events WHERE job_id=?",
                                 (job_id,))
        except sqlite3.Error:
            self.errors += 1

    # ------------------------------------------------------------------
    # recovery (daemon startup)
    # ------------------------------------------------------------------
    def recover(self) -> Tuple[List[RecoveredJob], List[RecoveredJob]]:
        """Replay the journal: ``(restored, requeue)``.

        ``restored`` holds terminal jobs whose result blob (when one
        exists) verified — the service re-registers them read-only.
        ``requeue`` holds queued/running jobs *plus* any done job whose
        blob failed its checksum (demoted, ``corrupt_results`` bumped):
        the service re-enqueues them, and determinism guarantees the
        rerun matches the digests the lost run would have produced.
        """
        restored: List[RecoveredJob] = []
        requeue: List[RecoveredJob] = []
        try:
            with self._lock:
                conn = self._connect()
                rows = conn.execute(
                    "SELECT id, idempotency_key, spec, state, attempts,"
                    " created_s, started_s, finished_s, error,"
                    " result, result_checksum FROM jobs"
                    " ORDER BY created_s, id").fetchall()
                events_by_job: Dict[str, List[Dict[str, object]]] = {}
                for job_id, payload in conn.execute(
                        "SELECT job_id, event FROM events"
                        " ORDER BY job_id, seq"):
                    try:
                        events_by_job.setdefault(job_id, []).append(
                            json.loads(payload))
                    except ValueError:
                        continue
                demoted: List[str] = []
                for (job_id, idem, spec_json, state, attempts, created_s,
                     started_s, finished_s, error_json, blob,
                     stored_sum) in rows:
                    try:
                        spec_payload = json.loads(spec_json)
                    except ValueError:
                        continue  # unreadable spec: nothing to rerun
                    error = None
                    if error_json:
                        try:
                            error = json.loads(error_json)
                        except ValueError:
                            error = None
                    result = None
                    corrupt = False
                    if blob is not None:
                        blob = bytes(blob)
                        if (stored_sum is not None
                                and self.checksum(blob) == stored_sum):
                            try:
                                result = json.loads(blob)
                            except ValueError:
                                corrupt = True
                        else:
                            corrupt = True
                    recovered = RecoveredJob(
                        job_id=job_id, spec_payload=spec_payload,
                        state=state, attempts=attempts,
                        idempotency_key=idem, created_s=created_s,
                        started_s=started_s, finished_s=finished_s,
                        error=error, result=result,
                        events=events_by_job.get(job_id, []))
                    if state == "done" and (corrupt or result is None):
                        demoted.append(job_id)
                        requeue.append(recovered)
                    elif state in ("done", "failed", "cancelled"):
                        restored.append(recovered)
                    else:
                        requeue.append(recovered)
                with conn:
                    for job_id in demoted:
                        conn.execute(
                            "UPDATE jobs SET result=NULL,"
                            " result_checksum=NULL WHERE id=?", (job_id,))
                    if demoted:
                        self._bump(conn, "corrupt_results", len(demoted))
                    if restored or requeue:
                        self._bump(conn, "recovered",
                                   len(restored) + len(requeue))
                    if requeue:
                        self._bump(conn, "requeued", len(requeue))
        except sqlite3.Error:
            self.errors += 1
            return [], []
        return restored, requeue

    def find_idempotent(self, key: str) -> Optional[str]:
        """The job id previously journaled under ``key``, or None."""
        try:
            with self._lock:
                conn = self._connect()
                row = conn.execute(
                    "SELECT id FROM jobs WHERE idempotency_key=?"
                    " ORDER BY created_s LIMIT 1", (key,)).fetchone()
                return row[0] if row else None
        except sqlite3.Error:
            self.errors += 1
            return None

    # ------------------------------------------------------------------
    # accounting / lifecycle
    # ------------------------------------------------------------------
    def non_terminal_count(self) -> int:
        """Jobs the journal still owes a run (queued/running rows)."""
        try:
            with self._lock:
                conn = self._connect()
                return conn.execute(
                    "SELECT COUNT(*) FROM jobs WHERE state IN"
                    " ('queued', 'running')").fetchone()[0]
        except sqlite3.Error:
            self.errors += 1
            return 0

    def stats(self) -> Dict[str, object]:
        """Row counts by state plus the cumulative counters."""
        by_state: Dict[str, int] = {}
        cumulative = dict.fromkeys(_COUNTERS, 0)
        try:
            with self._lock:
                conn = self._connect()
                for state, count in conn.execute(
                        "SELECT state, COUNT(*) FROM jobs GROUP BY state"):
                    by_state[state] = count
                for name, value in conn.execute(
                        "SELECT name, value FROM counters"):
                    if name in cumulative:
                        cumulative[name] = value
        except sqlite3.Error:
            self.errors += 1
        return {
            "path": self.path,
            "jobs": by_state,
            "non_terminal": (by_state.get("queued", 0)
                             + by_state.get("running", 0)),
            **cumulative,
            "errors": self.errors,
        }

    def close(self) -> None:
        with self._lock:
            if self._conn is not None and self._pid == os.getpid():
                self._conn.close()
            self._conn = None
            self._pid = None

    def __repr__(self) -> str:
        return f"JobJournal(path={self.path!r})"
