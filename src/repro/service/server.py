"""Stdlib asyncio HTTP front end for :class:`MappingService`.

A deliberately small HTTP/1.1 server on ``asyncio`` streams — the
container ships no aiohttp, and the API is six routes:

========  ==========================  =====================================
method    path                        body
========  ==========================  =====================================
GET       ``/healthz``                liveness + job counts
GET       ``/metrics``                Prometheus text exposition (live)
POST      ``/v1/jobs``                submit a job (JSON spec) → 202
GET       ``/v1/jobs``                list job statuses
GET       ``/v1/jobs/{id}``           one job's status
GET       ``/v1/jobs/{id}/result``    the finished job's full payload
GET       ``/v1/jobs/{id}/events``    NDJSON progress stream (``?since=N``)
DELETE    ``/v1/jobs/{id}``           cancel (queued jobs only)
========  ==========================  =====================================

Error contract: every failure body is ``{"error": {type, message,
retryable, kind}}`` (:func:`~repro.service.core.error_payload`), with
status 400 for invalid specs, 404 for unknown jobs, 429 for tenant
quota and backpressure sheds (``retryable: true``, with a
``Retry-After`` header), 503 while draining or with the circuit
breaker open (also ``Retry-After``) and 500 for
anything unexpected.  The events route streams each event as one JSON
line the moment it is appended and closes after the terminal state
event; ``?since=N`` resumes from sequence number ``N``.

Connections are one-request (``Connection: close``): clients poll or
stream, they do not pipeline.  :func:`start_in_thread` runs the whole
loop+server in a daemon thread and returns a handle with the bound
port — the harness tests and the smoke driver use it, while
``soidomino serve`` runs :func:`serve` on the main thread.
"""

from __future__ import annotations

import asyncio
import json
import threading
from typing import Dict, Optional, Tuple
from urllib.parse import parse_qs, urlsplit

from ..errors import ReproError
from ..obs import prometheus_text
from .core import MappingService, error_payload
from .jobs import (
    CANCELLED,
    JobSpecError,
    OverloadError,
    QuotaExceededError,
    ServiceUnavailableError,
)

_MAX_BODY = 4 * 1024 * 1024


class _HttpError(Exception):
    """Internal: carry a status + payload to the response writer."""

    def __init__(self, status: int, payload: Dict[str, object],
                 headers: Optional[Dict[str, str]] = None):
        super().__init__(payload.get("error", {}).get("message", ""))
        self.status = status
        self.payload = payload
        self.headers = headers or {}


def _error(status: int, exc: BaseException,
           headers: Optional[Dict[str, str]] = None) -> _HttpError:
    return _HttpError(status, {"error": error_payload(exc)},
                      headers=headers)


def _retry_after(exc: BaseException) -> Dict[str, str]:
    """The ``Retry-After`` header for a backoff-carrying error."""
    seconds = getattr(exc, "retry_after_s", 1.0)
    return {"Retry-After": str(max(1, int(round(seconds))))}


_REASONS = {200: "OK", 202: "Accepted", 400: "Bad Request",
            404: "Not Found", 405: "Method Not Allowed",
            409: "Conflict", 429: "Too Many Requests",
            500: "Internal Server Error", 503: "Service Unavailable"}


def _response(status: int, body: bytes,
              content_type: str = "application/json",
              headers: Optional[Dict[str, str]] = None) -> bytes:
    reason = _REASONS.get(status, "")
    extra = "".join(f"{name}: {value}\r\n"
                    for name, value in (headers or {}).items())
    head = (f"HTTP/1.1 {status} {reason}\r\n"
            f"Content-Type: {content_type}\r\n"
            f"Content-Length: {len(body)}\r\n"
            f"{extra}"
            f"Connection: close\r\n\r\n")
    return head.encode("ascii") + body


def _json_response(status: int, payload: object,
                   headers: Optional[Dict[str, str]] = None) -> bytes:
    return _response(status, json.dumps(payload).encode("utf-8"),
                     headers=headers)


async def _read_request(reader: asyncio.StreamReader
                        ) -> Optional[Tuple[str, str, Dict[str, str], bytes]]:
    """Parse one request; ``None`` on a closed/garbage connection."""
    try:
        request_line = await reader.readline()
    except (ConnectionError, asyncio.LimitOverrunError):
        return None
    parts = request_line.decode("latin-1").split()
    if len(parts) != 3:
        return None
    method, target, _version = parts
    headers: Dict[str, str] = {}
    while True:
        line = await reader.readline()
        if line in (b"\r\n", b"\n", b""):
            break
        name, _, value = line.decode("latin-1").partition(":")
        headers[name.strip().lower()] = value.strip()
    length = int(headers.get("content-length", "0") or "0")
    if length < 0 or length > _MAX_BODY:
        return None
    body = await reader.readexactly(length) if length else b""
    return method.upper(), target, headers, body


class ServiceServer:
    """One :class:`MappingService` behind the HTTP API above."""

    def __init__(self, service: MappingService,
                 host: str = "127.0.0.1", port: int = 0):
        self.service = service
        self.host = host
        self.port = port
        self._server: Optional[asyncio.base_events.Server] = None

    async def start(self) -> None:
        """Bind and start serving; resolves ``port`` when it was 0."""
        self.service.start()
        self._server = await asyncio.start_server(
            self._handle, self.host, self.port)
        self.port = self._server.sockets[0].getsockname()[1]

    async def aclose(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        await self.service.aclose()

    async def serve_forever(self) -> None:
        assert self._server is not None, "call start() first"
        await self._server.serve_forever()

    # ------------------------------------------------------------------
    # request handling
    # ------------------------------------------------------------------
    async def _handle(self, reader: asyncio.StreamReader,
                      writer: asyncio.StreamWriter) -> None:
        try:
            request = await _read_request(reader)
            if request is None:
                return
            method, target, _headers, body = request
            split = urlsplit(target)
            path = split.path.rstrip("/") or "/"
            query = {k: v[-1] for k, v in parse_qs(split.query).items()}
            try:
                await self._route(method, path, query, body, writer)
            except _HttpError as exc:
                writer.write(_json_response(exc.status, exc.payload,
                                            headers=exc.headers))
            except Exception as exc:  # noqa: BLE001 - 500 contract
                writer.write(_json_response(500, {"error":
                                                  error_payload(exc)}))
            await writer.drain()
        except (ConnectionError, asyncio.IncompleteReadError):
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    def _job(self, job_id: str):
        try:
            return self.service.jobs[job_id]
        except KeyError:
            raise _error(404, ReproError(f"unknown job {job_id!r}")) \
                from None

    async def _route(self, method: str, path: str, query: Dict[str, str],
                     body: bytes, writer: asyncio.StreamWriter) -> None:
        if path == "/healthz" and method == "GET":
            writer.write(_json_response(200, self.service.health()))
            return
        if path == "/metrics" and method == "GET":
            text = prometheus_text(self.service.metrics_registry())
            writer.write(_response(
                200, text.encode("utf-8"),
                content_type="text/plain; version=0.0.4"))
            return
        if path == "/v1/jobs" and method == "POST":
            try:
                payload = json.loads(body.decode("utf-8")) if body else None
            except ValueError as exc:
                raise _error(400, JobSpecError(
                    f"request body is not valid JSON: {exc}")) from None
            try:
                job = self.service.submit(payload)
            except JobSpecError as exc:
                raise _error(400, exc) from None
            except OverloadError as exc:
                raise _error(429, exc, headers=_retry_after(exc)) from None
            except QuotaExceededError as exc:
                raise _error(429, exc, headers=_retry_after(exc)) from None
            except ServiceUnavailableError as exc:
                raise _error(503, exc, headers=_retry_after(exc)) from None
            except ReproError as exc:
                raise _error(503, exc) from None
            writer.write(_json_response(202, job.status()))
            return
        if path == "/v1/jobs" and method == "GET":
            writer.write(_json_response(200, {
                "jobs": [job.status()
                         for job in self.service.jobs.values()]}))
            return
        if path.startswith("/v1/jobs/"):
            rest = path[len("/v1/jobs/"):]
            job_id, _, tail = rest.partition("/")
            if not tail and method == "GET":
                writer.write(_json_response(200, self._job(job_id).status()))
                return
            if not tail and method == "DELETE":
                job = self._job(job_id)
                before = job.state
                job = self.service.cancel(job.id)
                if job.state != CANCELLED:
                    raise _error(409, ReproError(
                        f"job {job_id} is {before}; only queued jobs "
                        "can be cancelled"))
                writer.write(_json_response(200, job.status()))
                return
            if tail == "result" and method == "GET":
                job = self._job(job_id)
                if not job.finished:
                    raise _error(409, ReproError(
                        f"job {job_id} is {job.state}; result not ready"))
                writer.write(_json_response(200, {
                    "id": job.id, "state": job.state,
                    "error": job.error, "result": job.result}))
                return
            if tail == "events" and method == "GET":
                await self._stream_events(self._job(job_id), query, writer)
                return
        raise _error(405 if path in ("/healthz", "/metrics", "/v1/jobs")
                     else 404,
                     ReproError(f"no route for {method} {path}"))

    async def _stream_events(self, job, query: Dict[str, str],
                             writer: asyncio.StreamWriter) -> None:
        """NDJSON: replay events from ``since``, then follow live until
        the job reaches a terminal state."""
        try:
            since = int(query.get("since", "0"))
        except ValueError:
            raise _error(400, JobSpecError("'since' must be an integer")) \
                from None
        writer.write(b"HTTP/1.1 200 OK\r\n"
                     b"Content-Type: application/x-ndjson\r\n"
                     b"Connection: close\r\n\r\n")
        cursor = max(0, since)
        while True:
            while cursor < len(job.events):
                event = job.events[cursor]
                cursor += 1
                writer.write(json.dumps(event).encode("utf-8") + b"\n")
            await writer.drain()
            if job.finished and cursor >= len(job.events):
                return
            await asyncio.sleep(0.02)


async def serve(service: MappingService, host: str = "127.0.0.1",
                port: int = 8650, drain_grace_s: float = 30.0) -> None:
    """Run the daemon until SIGTERM/SIGINT or cancellation (the
    ``soidomino serve`` body).

    Shutdown is a *graceful drain*: admission stops first (submits get
    503 + ``Retry-After`` while status, results and metrics keep
    serving), queued and running jobs get up to ``drain_grace_s``
    seconds to finish, and anything still pending stays in the journal
    for the successor daemon to recover.  Then the listener and the
    worker pool are closed (workers joined) before returning, so the
    port is actually free for a successor process — forked pool workers
    inherit the listening socket and would otherwise keep it bound."""
    import signal

    server = ServiceServer(service, host=host, port=port)
    await server.start()
    stop = asyncio.Event()
    loop = asyncio.get_running_loop()
    hooked = []
    for sig in (signal.SIGINT, signal.SIGTERM):
        try:
            loop.add_signal_handler(sig, stop.set)
            hooked.append(sig)
        except (NotImplementedError, RuntimeError):
            pass  # non-Unix loop: Ctrl-C still raises KeyboardInterrupt
    try:
        await stop.wait()
        await service.drain(grace_s=drain_grace_s)
    except asyncio.CancelledError:
        pass
    finally:
        for sig in hooked:
            loop.remove_signal_handler(sig)
        await server.aclose()


class ServerHandle:
    """A server running on a background thread (tests, smoke driver)."""

    def __init__(self, server: ServiceServer,
                 loop: asyncio.AbstractEventLoop, thread: threading.Thread):
        self._server = server
        self._loop = loop
        self._thread = thread

    @property
    def port(self) -> int:
        return self._server.port

    @property
    def service(self) -> MappingService:
        return self._server.service

    def stop(self, timeout: float = 10.0) -> None:
        async def _shutdown() -> None:
            await self._server.aclose()
            asyncio.get_running_loop().stop()

        if self._loop.is_running():
            asyncio.run_coroutine_threadsafe(_shutdown(), self._loop)
        self._thread.join(timeout)
        if not self._loop.is_running():
            self._loop.close()


def start_in_thread(service: MappingService, host: str = "127.0.0.1",
                    port: int = 0) -> ServerHandle:
    """Start a server on a fresh daemon-thread event loop and return
    once it is accepting connections."""
    loop = asyncio.new_event_loop()
    server = ServiceServer(service, host=host, port=port)
    started = threading.Event()

    def _run() -> None:
        asyncio.set_event_loop(loop)

        async def _start() -> None:
            await server.start()
            started.set()

        loop.run_until_complete(_start())
        loop.run_forever()

    thread = threading.Thread(target=_run, name="soidomino-serve",
                              daemon=True)
    thread.start()
    if not started.wait(timeout=10.0):
        raise RuntimeError("service server failed to start within 10s")
    return ServerHandle(server, loop, thread)
