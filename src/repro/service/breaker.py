"""Circuit breaker separating daemon readiness from liveness.

The worker pool already self-heals at the *task* level: a crashed
worker is rebuilt and the task retried (DESIGN.md §11).  But when the
pool keeps dying — a poisoned libc, a cgroup OOM loop, a bad deploy —
every retry burns a pool rebuild and every queued job fails slowly.
:class:`CircuitBreaker` is the service-level fuse around that loop:

* **closed** (normal): jobs run; each jobwide *retryable* failure bumps
  a consecutive-failure count, any success resets it.
* **open**: after ``threshold`` consecutive failures the breaker opens
  and admission rejects submits with a retryable 503 + ``Retry-After``
  — the daemon is *alive* (status, results and metrics keep serving)
  but not *ready*.
* **half-open**: once ``reset_s`` has elapsed the next admitted job is
  a probe; its success closes the breaker, its failure re-opens it and
  restarts the clock.

The breaker is driven by the scheduler (one job at a time on the event
loop), so plain attributes suffice — no locking.  ``/healthz`` exposes
:meth:`snapshot` and ``/metrics`` gauges the numeric state so an
orchestrator can distinguish "restart me" (liveness) from "stop sending
traffic" (readiness).
"""

from __future__ import annotations

import time
from typing import Dict

CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half_open"

#: numeric encoding for the ``repro_service_breaker_state`` gauge
STATE_CODES = {CLOSED: 0, OPEN: 1, HALF_OPEN: 2}


class CircuitBreaker:
    """Consecutive-failure fuse with a timed half-open probe."""

    def __init__(self, threshold: int = 3, reset_s: float = 30.0):
        if threshold < 1:
            raise ValueError(f"threshold must be >= 1, got {threshold}")
        self.threshold = threshold
        self.reset_s = reset_s
        self.state = CLOSED
        self.failures = 0          # consecutive retryable job failures
        self.opens = 0             # times the breaker tripped
        self.opened_s = 0.0        # when it last tripped
        self.probe_inflight = False

    def allow(self) -> bool:
        """May a new job be admitted right now?

        Transitions open → half-open once the reset window elapses, and
        admits exactly one probe job while half-open.
        """
        if self.state == OPEN:
            if time.time() - self.opened_s >= self.reset_s:
                self.state = HALF_OPEN
                self.probe_inflight = False
            else:
                return False
        if self.state == HALF_OPEN:
            if self.probe_inflight:
                return False
            self.probe_inflight = True
        return True

    def record_success(self) -> None:
        """A job completed: close the breaker, reset the count."""
        self.state = CLOSED
        self.failures = 0
        self.probe_inflight = False

    def record_failure(self) -> None:
        """A job failed retryably: count it, maybe trip the fuse."""
        self.failures += 1
        if self.state == HALF_OPEN or self.failures >= self.threshold:
            if self.state != OPEN:
                self.opens += 1
            self.state = OPEN
            self.opened_s = time.time()
            self.probe_inflight = False

    def retry_after_s(self) -> float:
        """Seconds until the next half-open probe could be admitted."""
        if self.state != OPEN:
            return 0.0
        return max(0.0, self.reset_s - (time.time() - self.opened_s))

    def snapshot(self) -> Dict[str, object]:
        """The ``/healthz`` view of the fuse."""
        return {
            "state": self.state,
            "failures": self.failures,
            "threshold": self.threshold,
            "opens": self.opens,
            "reset_s": self.reset_s,
            "retry_after_s": round(self.retry_after_s(), 3),
        }

    def __repr__(self) -> str:
        return (f"CircuitBreaker(state={self.state!r}, "
                f"failures={self.failures}/{self.threshold})")
