"""Minimal blocking HTTP client for the mapping service.

Built on :mod:`http.client` so tests, the smoke driver and operator
scripts need no third-party HTTP stack.  Every call opens one
connection (the server is ``Connection: close``) and raises
:class:`ServiceError` — carrying the server's typed error payload —
on any non-2xx response.
"""

from __future__ import annotations

import http.client
import json
import time
from typing import Dict, Iterator, List, Optional

from ..errors import ReproError


class ServiceError(ReproError):
    """A non-2xx response; ``payload`` holds the typed error body."""

    def __init__(self, status: int, payload: Dict[str, object]):
        error = payload.get("error", {}) if isinstance(payload, dict) else {}
        super().__init__(f"HTTP {status}: {error.get('type', 'unknown')}: "
                         f"{error.get('message', payload)}")
        self.status = status
        self.payload = payload
        self.retryable = bool(error.get("retryable", status == 429))


class ServiceClient:
    """Talk to one ``soidomino serve`` daemon."""

    def __init__(self, host: str = "127.0.0.1", port: int = 8650,
                 timeout: float = 60.0):
        self.host = host
        self.port = port
        self.timeout = timeout

    # ------------------------------------------------------------------
    # plumbing
    # ------------------------------------------------------------------
    def _request(self, method: str, path: str,
                 body: Optional[object] = None) -> Dict[str, object]:
        conn = http.client.HTTPConnection(self.host, self.port,
                                          timeout=self.timeout)
        try:
            data = (json.dumps(body).encode("utf-8")
                    if body is not None else None)
            conn.request(method, path, body=data,
                         headers={"Content-Type": "application/json"}
                         if data else {})
            response = conn.getresponse()
            raw = response.read()
            if response.status >= 400:
                try:
                    payload = json.loads(raw)
                except ValueError:
                    payload = {"error": {"message": raw.decode("utf-8",
                                                               "replace")}}
                raise ServiceError(response.status, payload)
            return json.loads(raw) if raw else {}
        finally:
            conn.close()

    # ------------------------------------------------------------------
    # the API
    # ------------------------------------------------------------------
    def health(self) -> Dict[str, object]:
        return self._request("GET", "/healthz")

    def metrics_text(self) -> str:
        conn = http.client.HTTPConnection(self.host, self.port,
                                          timeout=self.timeout)
        try:
            conn.request("GET", "/metrics")
            response = conn.getresponse()
            raw = response.read()
            if response.status >= 400:
                raise ServiceError(response.status,
                                   {"error": {"message": raw.decode()}})
            return raw.decode("utf-8")
        finally:
            conn.close()

    def submit(self, spec: Dict[str, object]) -> Dict[str, object]:
        """POST one job spec; returns the job status (with ``id``)."""
        return self._request("POST", "/v1/jobs", body=spec)

    def jobs(self) -> List[Dict[str, object]]:
        return self._request("GET", "/v1/jobs")["jobs"]

    def status(self, job_id: str) -> Dict[str, object]:
        return self._request("GET", f"/v1/jobs/{job_id}")

    def result(self, job_id: str) -> Dict[str, object]:
        return self._request("GET", f"/v1/jobs/{job_id}/result")

    def cancel(self, job_id: str) -> Dict[str, object]:
        return self._request("DELETE", f"/v1/jobs/{job_id}")

    def wait(self, job_id: str, timeout: float = 300.0,
             poll_s: float = 0.05) -> Dict[str, object]:
        """Poll until the job is terminal; returns the result body."""
        deadline = time.monotonic() + timeout
        while True:
            status = self.status(job_id)
            if status["state"] in ("done", "failed", "cancelled"):
                return self.result(job_id)
            if time.monotonic() >= deadline:
                raise ServiceError(408, {"error": {
                    "type": "Timeout", "retryable": True,
                    "message": f"job {job_id} still {status['state']} "
                               f"after {timeout}s"}})
            time.sleep(poll_s)

    def events(self, job_id: str, since: int = 0,
               timeout: Optional[float] = None) -> Iterator[Dict[str, object]]:
        """Stream the job's NDJSON events until the server closes."""
        conn = http.client.HTTPConnection(
            self.host, self.port,
            timeout=self.timeout if timeout is None else timeout)
        try:
            conn.request("GET", f"/v1/jobs/{job_id}/events?since={since}")
            response = conn.getresponse()
            if response.status >= 400:
                raise ServiceError(response.status, json.loads(
                    response.read()))
            for line in response:
                line = line.strip()
                if line:
                    yield json.loads(line)
        finally:
            conn.close()
