"""Minimal blocking HTTP client for the mapping service.

Built on :mod:`http.client` so tests, the smoke driver and operator
scripts need no third-party HTTP stack.  Every call opens one
connection (the server is ``Connection: close``) and raises
:class:`ServiceError` — carrying the server's typed error payload —
on any non-2xx response.

The client is **retry-aware** (DESIGN.md §14): responses the server
marks retryable (429 sheds, 503 while draining or with the breaker
open) and transport failures the resilience taxonomy classifies as
retryable (connection refused/reset — the daemon is restarting) are
retried with exponential backoff and *deterministic* jitter, honoring
any ``Retry-After`` the server sent.  Retries are safe because
:meth:`submit` attaches a generated idempotency key: if the first
attempt actually reached the daemon, the retry returns the *same* job
instead of double-running it — even across a daemon restart, because
the key is journaled.
"""

from __future__ import annotations

import http.client
import json
import time
import uuid
from typing import Dict, Iterator, List, Optional

from ..errors import ReproError, is_retryable
from ..resilience.faults import hash_fraction


class ServiceError(ReproError):
    """A non-2xx response; ``payload`` holds the typed error body."""

    def __init__(self, status: int, payload: Dict[str, object],
                 retry_after: Optional[float] = None):
        error = payload.get("error", {}) if isinstance(payload, dict) else {}
        super().__init__(f"HTTP {status}: {error.get('type', 'unknown')}: "
                         f"{error.get('message', payload)}")
        self.status = status
        self.payload = payload
        self.retryable = bool(error.get("retryable", status == 429))
        #: the server's ``Retry-After`` header, in seconds, when sent
        self.retry_after = retry_after


class ServiceClient:
    """Talk to one ``soidomino serve`` daemon.

    Parameters
    ----------
    retries:
        Extra attempts after the first for retryable failures (0
        disables retrying entirely).
    backoff_base_s / backoff_cap_s:
        Exponential-backoff schedule: attempt ``n`` sleeps
        ``min(cap, base * 2**(n-1))`` scaled by a deterministic jitter
        in [0.5, 1.5) derived from ``seed`` — reproducible, but two
        clients with different seeds never thunder in lockstep.
    seed:
        Jitter seed (also deterministic fault-plan friendly).
    """

    def __init__(self, host: str = "127.0.0.1", port: int = 8650,
                 timeout: float = 60.0, retries: int = 3,
                 backoff_base_s: float = 0.1, backoff_cap_s: float = 2.0,
                 seed: int = 0):
        self.host = host
        self.port = port
        self.timeout = timeout
        self.retries = retries
        self.backoff_base_s = backoff_base_s
        self.backoff_cap_s = backoff_cap_s
        self.seed = seed
        #: retryable failures absorbed (observability for tests/smoke)
        self.retried = 0

    # ------------------------------------------------------------------
    # plumbing
    # ------------------------------------------------------------------
    def _backoff_s(self, what: str, attempt: int,
                   retry_after: Optional[float]) -> float:
        """How long to sleep before retry ``attempt`` (1-based)."""
        if retry_after is not None:
            return max(0.0, float(retry_after))
        base = min(self.backoff_cap_s,
                   self.backoff_base_s * 2.0 ** (attempt - 1))
        jitter = 0.5 + hash_fraction(self.seed, "client.backoff",
                                     f"{what}#{attempt}")
        return base * jitter

    def _request_once(self, method: str, path: str,
                      body: Optional[object] = None) -> Dict[str, object]:
        conn = http.client.HTTPConnection(self.host, self.port,
                                          timeout=self.timeout)
        try:
            data = (json.dumps(body).encode("utf-8")
                    if body is not None else None)
            conn.request(method, path, body=data,
                         headers={"Content-Type": "application/json"}
                         if data else {})
            response = conn.getresponse()
            raw = response.read()
            if response.status >= 400:
                try:
                    payload = json.loads(raw)
                except ValueError:
                    payload = {"error": {"message": raw.decode("utf-8",
                                                               "replace")}}
                header = response.getheader("Retry-After")
                retry_after = None
                if header is not None:
                    try:
                        retry_after = float(header)
                    except ValueError:
                        pass
                raise ServiceError(response.status, payload,
                                   retry_after=retry_after)
            return json.loads(raw) if raw else {}
        finally:
            conn.close()

    def _request(self, method: str, path: str,
                 body: Optional[object] = None) -> Dict[str, object]:
        """One API call with the retry loop around it.

        Retries retryable :class:`ServiceError` responses and
        retryable transport errors (``is_retryable`` taxonomy: refused,
        reset, timed out) — all requests here are idempotent by
        construction (submits carry idempotency keys).
        """
        what = f"{method} {path}"
        attempt = 0
        while True:
            attempt += 1
            try:
                return self._request_once(method, path, body=body)
            except ServiceError as exc:
                if not exc.retryable or attempt > self.retries:
                    raise
                delay = self._backoff_s(what, attempt, exc.retry_after)
            except OSError as exc:
                # includes ConnectionRefusedError/ConnectionResetError
                # (a restarting daemon) and socket timeouts
                if not is_retryable(exc) or attempt > self.retries:
                    raise
                delay = self._backoff_s(what, attempt, None)
            self.retried += 1
            time.sleep(delay)

    # ------------------------------------------------------------------
    # the API
    # ------------------------------------------------------------------
    def health(self) -> Dict[str, object]:
        return self._request("GET", "/healthz")

    def metrics_text(self) -> str:
        conn = http.client.HTTPConnection(self.host, self.port,
                                          timeout=self.timeout)
        try:
            conn.request("GET", "/metrics")
            response = conn.getresponse()
            raw = response.read()
            if response.status >= 400:
                raise ServiceError(response.status,
                                   {"error": {"message": raw.decode()}})
            return raw.decode("utf-8")
        finally:
            conn.close()

    def submit(self, spec: Dict[str, object]) -> Dict[str, object]:
        """POST one job spec; returns the job status (with ``id``).

        A fresh idempotency key is attached when the caller didn't
        supply one, so the retry loop can never double-run a job: a
        retried submit that already reached the daemon (or its
        restarted successor — the key is journaled) dedupes to the
        original job.
        """
        spec = dict(spec)
        spec.setdefault("idempotency_key", uuid.uuid4().hex)
        return self._request("POST", "/v1/jobs", body=spec)

    def jobs(self) -> List[Dict[str, object]]:
        return self._request("GET", "/v1/jobs")["jobs"]

    def status(self, job_id: str) -> Dict[str, object]:
        return self._request("GET", f"/v1/jobs/{job_id}")

    def result(self, job_id: str) -> Dict[str, object]:
        return self._request("GET", f"/v1/jobs/{job_id}/result")

    def cancel(self, job_id: str) -> Dict[str, object]:
        return self._request("DELETE", f"/v1/jobs/{job_id}")

    def wait(self, job_id: str, timeout: float = 300.0,
             poll_s: float = 0.05) -> Dict[str, object]:
        """Poll until the job is terminal; returns the result body."""
        deadline = time.monotonic() + timeout
        while True:
            status = self.status(job_id)
            if status["state"] in ("done", "failed", "cancelled"):
                return self.result(job_id)
            if time.monotonic() >= deadline:
                raise ServiceError(408, {"error": {
                    "type": "Timeout", "retryable": True,
                    "message": f"job {job_id} still {status['state']} "
                               f"after {timeout}s"}})
            time.sleep(poll_s)

    def _events_once(self, job_id: str, since: int,
                     timeout: Optional[float]
                     ) -> Iterator[Dict[str, object]]:
        conn = http.client.HTTPConnection(
            self.host, self.port,
            timeout=self.timeout if timeout is None else timeout)
        try:
            conn.request("GET", f"/v1/jobs/{job_id}/events?since={since}")
            response = conn.getresponse()
            if response.status >= 400:
                raise ServiceError(response.status, json.loads(
                    response.read()))
            for line in response:
                line = line.strip()
                if line:
                    yield json.loads(line)
        finally:
            conn.close()

    def events(self, job_id: str, since: int = 0,
               timeout: Optional[float] = None
               ) -> Iterator[Dict[str, object]]:
        """Stream the job's NDJSON events until the job is terminal.

        Resumes from the last seen ``seq`` cursor if the connection
        drops mid-stream (a daemon restart): the journal persists the
        event log, so the reconnect — up to ``retries`` times — picks
        up exactly where the dead stream stopped, no gaps and no
        duplicates.
        """
        cursor = since
        attempt = 0
        while True:
            try:
                for event in self._events_once(job_id, cursor, timeout):
                    cursor = int(event.get("seq", cursor)) + 1
                    attempt = 0  # progress resets the retry budget
                    yield event
                return
            except (ServiceError, OSError) as exc:
                retryable = (exc.retryable if isinstance(exc, ServiceError)
                             else is_retryable(exc))
                attempt += 1
                if not retryable or attempt > self.retries:
                    raise
                self.retried += 1
                time.sleep(self._backoff_s(
                    f"GET /v1/jobs/{job_id}/events", attempt,
                    getattr(exc, "retry_after", None)))
