"""Mapping-as-a-service: the daemon layer over the batch pipeline.

``soidomino serve`` exposes the warm :class:`~repro.pipeline.WorkerPool`
+ persistent :class:`~repro.pipeline.CacheStore` stack as a small JSON
HTTP API (DESIGN.md §13):

* :mod:`repro.service.jobs` — job specs/states and the fair per-tenant
  priority queue with admission quotas;
* :mod:`repro.service.core` — :class:`MappingService`: one warm pool,
  one persistent store, a one-job-at-a-time scheduler, cumulative
  metrics, and the typed error contract;
* :mod:`repro.service.journal` — the crash-safe sqlite-WAL job
  journal (write-ahead submits, checksummed results, event cursors,
  idempotency dedupe, restart recovery — DESIGN.md §14);
* :mod:`repro.service.breaker` — the circuit breaker separating
  readiness (admitting work) from liveness (answering requests);
* :mod:`repro.service.server` — the asyncio HTTP front end
  (submit/status/result, NDJSON event streaming, live ``/metrics``);
* :mod:`repro.service.client` — a stdlib blocking client;
* :mod:`repro.service.smoke` — the end-to-end drill CI runs: daemon
  up, sweep over HTTP, digest parity with ``soidomino batch``, warm
  resubmission, restart-and-reuse of the persistent store.

Jobs map bit-identically to the CLI: a spec compiles to the same task
list ``soidomino batch`` builds, and the pool/caches preserve digest
determinism by construction.
"""

from __future__ import annotations

_LAZY = {
    "Job": ("jobs", "Job"),
    "JobQueue": ("jobs", "JobQueue"),
    "JobSpec": ("jobs", "JobSpec"),
    "JobSpecError": ("jobs", "JobSpecError"),
    "QuotaExceededError": ("jobs", "QuotaExceededError"),
    "OverloadError": ("jobs", "OverloadError"),
    "ServiceUnavailableError": ("jobs", "ServiceUnavailableError"),
    "MappingService": ("core", "MappingService"),
    "error_payload": ("core", "error_payload"),
    "JobJournal": ("journal", "JobJournal"),
    "default_journal_path": ("journal", "default_journal_path"),
    "CircuitBreaker": ("breaker", "CircuitBreaker"),
    "ServiceServer": ("server", "ServiceServer"),
    "serve": ("server", "serve"),
    "start_in_thread": ("server", "start_in_thread"),
    "ServiceClient": ("client", "ServiceClient"),
    "ServiceError": ("client", "ServiceError"),
}

__all__ = sorted(_LAZY)


def __getattr__(name: str):
    try:
        module_name, attr = _LAZY[name]
    except KeyError:
        raise AttributeError(
            f"module {__name__!r} has no attribute {name!r}") from None
    from importlib import import_module

    return getattr(import_module(f".{module_name}", __name__), attr)


def __dir__():
    return sorted(__all__)
