"""Graphviz DOT export for logic networks and mapped domino circuits."""

from __future__ import annotations

from typing import TextIO

from ..domino.circuit import DominoCircuit
from ..network import LogicNetwork, NodeType

_SHAPES = {
    NodeType.PI: ("triangle", "lightblue"),
    NodeType.PO: ("invtriangle", "lightblue"),
    NodeType.AND: ("box", "white"),
    NodeType.OR: ("ellipse", "white"),
    NodeType.NAND: ("box", "gray90"),
    NodeType.NOR: ("ellipse", "gray90"),
    NodeType.XOR: ("diamond", "white"),
    NodeType.XNOR: ("diamond", "gray90"),
    NodeType.INV: ("circle", "pink"),
    NodeType.BUF: ("circle", "white"),
    NodeType.CONST0: ("plaintext", "white"),
    NodeType.CONST1: ("plaintext", "white"),
}


def write_network_dot(network: LogicNetwork, handle: TextIO) -> None:
    """Render a logic network as a DOT digraph (PIs at top, POs at bottom)."""
    handle.write(f'digraph "{network.name}" {{\n  rankdir=TB;\n')
    for node in network:
        shape, fill = _SHAPES[node.type]
        label = f"{node.label}\\n{node.type.value}"
        handle.write(
            f'  n{node.uid} [label="{label}", shape={shape}, '
            f'style=filled, fillcolor={fill}];\n')
    for node in network:
        for fanin in node.fanins:
            handle.write(f"  n{fanin} -> n{node.uid};\n")
    handle.write("}\n")


def write_circuit_dot(circuit: DominoCircuit, handle: TextIO) -> None:
    """Render a mapped domino circuit as a DOT digraph.

    Each gate node is annotated with its pulldown shape, discharge count
    and level; edges follow the signal wiring.
    """
    handle.write(f'digraph "{circuit.name}" {{\n  rankdir=TB;\n')
    for name in circuit.inputs:
        handle.write(f'  "{name}" [shape=triangle, style=filled, '
                     f'fillcolor=lightblue];\n')
    for gate in circuit.gates:
        foot = "footed" if gate.footed else "footless"
        label = (f"{gate.name}\\nW={gate.width} H={gate.height}\\n"
                 f"disch={gate.t_disch} {foot}\\nL{gate.level}")
        color = "mistyrose" if gate.t_disch else "honeydew"
        handle.write(f'  "{gate.name}" [label="{label}", shape=box, '
                     f'style=filled, fillcolor={color}];\n')
    for gate in circuit.gates:
        seen = set()
        for leaf in gate.structure.leaves():
            if leaf.signal not in seen:
                seen.add(leaf.signal)
                handle.write(f'  "{leaf.signal}" -> "{gate.name}";\n')
    for po, signal in circuit.outputs.items():
        handle.write(f'  "PO:{po}" [shape=invtriangle, style=filled, '
                     f'fillcolor=lightblue];\n')
        handle.write(f'  "{signal}" -> "PO:{po}";\n')
    handle.write("}\n")


def network_to_dot(network: LogicNetwork) -> str:
    """Return the DOT text for a network."""
    import io

    buf = io.StringIO()
    write_network_dot(network, buf)
    return buf.getvalue()


def circuit_to_dot(circuit: DominoCircuit) -> str:
    """Return the DOT text for a mapped circuit."""
    import io

    buf = io.StringIO()
    write_circuit_dot(circuit, buf)
    return buf.getvalue()
