"""ISCAS-85/89 ``.bench`` netlist reader and writer.

The paper evaluates on ISCAS benchmark circuits, which are conventionally
distributed in the ``.bench`` format::

    # comment
    INPUT(G1)
    OUTPUT(G17)
    G10 = NAND(G1, G3)
    G17 = NOT(G10)

Supported gate keywords: AND, OR, NAND, NOR, XOR, XNOR, NOT, BUF/BUFF,
DFF (treated as a cut: the D pin becomes a pseudo primary output and the
Q pin a pseudo primary input, turning sequential benchmarks into their
combinational cores, which is what mapping operates on).
"""

from __future__ import annotations

import re
from typing import Dict, List, TextIO, Tuple, Union

from ..errors import ParseError
from ..network import LogicNetwork, NodeType

_GATE_TYPES = {
    "AND": NodeType.AND,
    "OR": NodeType.OR,
    "NAND": NodeType.NAND,
    "NOR": NodeType.NOR,
    "XOR": NodeType.XOR,
    "XNOR": NodeType.XNOR,
    "NOT": NodeType.INV,
    "INV": NodeType.INV,
    "BUF": NodeType.BUF,
    "BUFF": NodeType.BUF,
}

_LINE_RE = re.compile(
    r"^\s*(?:"
    r"(?P<io>INPUT|OUTPUT)\s*\(\s*(?P<io_name>[^\s()]+)\s*\)"
    r"|(?P<lhs>[^\s=]+)\s*=\s*(?P<op>[A-Za-z]+)\s*\(\s*(?P<args>[^()]*)\)"
    r")\s*$",
    re.IGNORECASE,
)


def read_bench(source: Union[str, TextIO], name: str = "",
               filename: str = "<string>") -> LogicNetwork:
    """Parse ``.bench`` text (a string or a file object) into a network."""
    if hasattr(source, "read"):
        text = source.read()
        filename = getattr(source, "name", filename)
    else:
        text = source

    inputs: List[str] = []
    outputs: List[str] = []
    gates: Dict[str, Tuple[NodeType, List[str], int]] = {}
    dff_pairs: List[Tuple[str, str]] = []  # (q_name, d_signal)

    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        m = _LINE_RE.match(line)
        if not m:
            raise ParseError(f"cannot parse line {raw!r}", filename, lineno)
        if m.group("io"):
            if m.group("io").upper() == "INPUT":
                inputs.append(m.group("io_name"))
            else:
                outputs.append(m.group("io_name"))
            continue
        lhs = m.group("lhs")
        op = m.group("op").upper()
        args = [a.strip() for a in m.group("args").split(",") if a.strip()]
        if op == "DFF":
            if len(args) != 1:
                raise ParseError(f"DFF takes one input, got {args}",
                                 filename, lineno)
            dff_pairs.append((lhs, args[0]))
            continue
        if op not in _GATE_TYPES:
            raise ParseError(f"unknown gate type {op!r}", filename, lineno)
        if lhs in gates:
            raise ParseError(f"signal {lhs!r} defined twice", filename, lineno)
        gates[lhs] = (_GATE_TYPES[op], args, lineno)

    network = LogicNetwork(name or filename)
    ids: Dict[str, int] = {}
    for pi in inputs:
        ids[pi] = network.add_pi(pi)
    for q, _d in dff_pairs:
        # Flip-flop outputs behave as primary inputs of the combinational core.
        ids[q] = network.add_pi(q)

    # Gates may be declared in any order: resolve with a dependency walk.
    resolving: Dict[str, int] = {}

    def build(signal: str, lineno: int) -> int:
        if signal in ids:
            return ids[signal]
        if signal not in gates:
            raise ParseError(f"undefined signal {signal!r}", filename, lineno)
        if resolving.get(signal):
            raise ParseError(f"combinational cycle through {signal!r}",
                             filename, lineno)
        resolving[signal] = 1
        node_type, args, gate_line = gates[signal]
        fanins = [build(a, gate_line) for a in args]
        resolving[signal] = 0
        ids[signal] = network.add_gate(node_type, fanins, signal)
        return ids[signal]

    import sys
    old = sys.getrecursionlimit()
    sys.setrecursionlimit(max(old, 4 * len(gates) + 1000))
    try:
        for po in outputs:
            network.add_po(build(po, 0), po)
        for q, d in dff_pairs:
            # Flip-flop inputs are pseudo primary outputs.
            network.add_po(build(d, 0), f"{q}_next")
    finally:
        sys.setrecursionlimit(old)
    return network


def load_bench(path: str) -> LogicNetwork:
    """Read a ``.bench`` file from disk."""
    with open(path) as handle:
        return read_bench(handle, name=_basename(path), filename=path)


def write_bench(network: LogicNetwork, handle: TextIO) -> None:
    """Write a network in ``.bench`` format.

    Internal gates get synthetic unique names (``s<uid>``); primary
    outputs are emitted as BUFF gates carrying their original names, so a
    round trip preserves the PI/PO interface exactly.  Constants are not
    expressible in ``.bench`` and raise :class:`ParseError`.
    """
    op_names = {
        NodeType.AND: "AND",
        NodeType.OR: "OR",
        NodeType.NAND: "NAND",
        NodeType.NOR: "NOR",
        NodeType.XOR: "XOR",
        NodeType.XNOR: "XNOR",
        NodeType.INV: "NOT",
        NodeType.BUF: "BUFF",
    }
    handle.write(f"# {network.name}\n")
    for pi in network.pis:
        handle.write(f"INPUT({network.node(pi).label})\n")
    for po in network.pos:
        handle.write(f"OUTPUT({network.node(po).label})\n")
    names: Dict[int, str] = {}
    for uid in network.topological_order():
        node = network.node(uid)
        if node.type is NodeType.PI:
            names[uid] = node.label
        elif node.type is NodeType.PO:
            handle.write(f"{node.label} = BUFF({names[node.fanins[0]]})\n")
        elif node.type in op_names:
            names[uid] = f"s{uid}"
            args = ", ".join(names[f] for f in node.fanins)
            handle.write(f"{names[uid]} = {op_names[node.type]}({args})\n")
        else:
            raise ParseError(
                f"gate type {node.type.value} not expressible in .bench")


def save_bench(network: LogicNetwork, path: str) -> None:
    with open(path, "w") as handle:
        write_bench(network, handle)


def _basename(path: str) -> str:
    import os

    return os.path.splitext(os.path.basename(path))[0]
