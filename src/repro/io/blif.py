"""Berkeley Logic Interchange Format (BLIF) reader and writer.

Supports the combinational subset used by the MCNC benchmark suite:
``.model``, ``.inputs``, ``.outputs``, ``.names`` (PLA-style single-output
cover) and ``.latch`` (cut into pseudo PI/PO, as with DFFs in ``.bench``).
Covers are converted into AND/OR/INV trees: each cube becomes an AND of
literals, the cube set an OR; covers of the ``0`` phase are inverted.
"""

from __future__ import annotations

from typing import Dict, List, Optional, TextIO, Tuple, Union

from ..errors import ParseError
from ..network import LogicNetwork, NodeType


class _Cover:
    """A ``.names`` record: inputs, output, cubes and output phase."""

    __slots__ = ("inputs", "output", "cubes", "phase", "lineno")

    def __init__(self, inputs: List[str], output: str, lineno: int):
        self.inputs = inputs
        self.output = output
        self.cubes: List[str] = []
        self.phase: Optional[str] = None
        self.lineno = lineno


def read_blif(source: Union[str, TextIO], name: str = "",
              filename: str = "<string>") -> LogicNetwork:
    """Parse BLIF text (string or file object) into a network."""
    if hasattr(source, "read"):
        text = source.read()
        filename = getattr(source, "name", filename)
    else:
        text = source

    # Join continuation lines, strip comments.
    lines: List[Tuple[int, str]] = []
    pending = ""
    pending_line = 0
    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.split("#", 1)[0].rstrip()
        if not line.strip():
            continue
        if line.endswith("\\"):
            if not pending:
                pending_line = lineno
            pending += line[:-1] + " "
            continue
        if pending:
            lines.append((pending_line, pending + line))
            pending = ""
        else:
            lines.append((lineno, line))
    if pending:
        lines.append((pending_line, pending))

    model_name = name
    inputs: List[str] = []
    outputs: List[str] = []
    covers: List[_Cover] = []
    latches: List[Tuple[str, str]] = []  # (data_in, q_out)
    current: Optional[_Cover] = None

    for lineno, line in lines:
        tokens = line.split()
        key = tokens[0]
        if key.startswith("."):
            current = None
        if key == ".model":
            model_name = model_name or (tokens[1] if len(tokens) > 1 else "")
        elif key == ".inputs":
            inputs.extend(tokens[1:])
        elif key == ".outputs":
            outputs.extend(tokens[1:])
        elif key == ".names":
            if len(tokens) < 2:
                raise ParseError(".names needs at least an output",
                                 filename, lineno)
            current = _Cover(tokens[1:-1], tokens[-1], lineno)
            covers.append(current)
        elif key == ".latch":
            if len(tokens) < 3:
                raise ParseError(".latch needs input and output",
                                 filename, lineno)
            latches.append((tokens[1], tokens[2]))
        elif key == ".end":
            break
        elif key.startswith("."):
            # .clock, .default_input_arrival etc.: ignored.
            continue
        else:
            if current is None:
                raise ParseError(f"unexpected line {line!r}", filename, lineno)
            if len(current.inputs) == 0:
                # Constant: single-column truth value.
                value = tokens[0]
                if value not in ("0", "1"):
                    raise ParseError(f"bad constant row {line!r}",
                                     filename, lineno)
                current.cubes.append("")
                current.phase = value
                continue
            if len(tokens) != 2:
                raise ParseError(f"bad cover row {line!r}", filename, lineno)
            cube, out = tokens
            if len(cube) != len(current.inputs):
                raise ParseError(
                    f"cube width {len(cube)} != {len(current.inputs)} inputs",
                    filename, lineno)
            if current.phase is None:
                current.phase = out
            elif current.phase != out:
                raise ParseError("mixed output phases in one cover",
                                 filename, lineno)
            current.cubes.append(cube)

    network = LogicNetwork(model_name or filename)
    ids: Dict[str, int] = {}
    for pi in inputs:
        ids[pi] = network.add_pi(pi)
    for _d, q in latches:
        ids[q] = network.add_pi(q)

    by_output = {}
    for cover in covers:
        if cover.output in by_output:
            raise ParseError(f"signal {cover.output!r} defined twice",
                             filename, cover.lineno)
        by_output[cover.output] = cover

    def build(signal: str, lineno: int, resolving: set) -> int:
        if signal in ids:
            return ids[signal]
        if signal not in by_output:
            raise ParseError(f"undefined signal {signal!r}", filename, lineno)
        if signal in resolving:
            raise ParseError(f"combinational cycle through {signal!r}",
                             filename, lineno)
        resolving.add(signal)
        cover = by_output[signal]
        fanins = [build(s, cover.lineno, resolving) for s in cover.inputs]
        resolving.discard(signal)
        ids[signal] = _build_cover(network, cover, fanins)
        return ids[signal]

    import sys
    old = sys.getrecursionlimit()
    sys.setrecursionlimit(max(old, 4 * len(covers) + 1000))
    try:
        for po in outputs:
            network.add_po(build(po, 0, set()), po)
        for d, q in latches:
            network.add_po(build(d, 0, set()), f"{q}_next")
    finally:
        sys.setrecursionlimit(old)
    return network


def _build_cover(network: LogicNetwork, cover: _Cover,
                 fanins: List[int]) -> int:
    """Materialize one ``.names`` cover as AND/OR/INV nodes."""
    if not cover.cubes or cover.phase is None:
        return network.add_const(False, cover.output)
    if not cover.inputs:
        return network.add_const(cover.phase == "1", cover.output)

    inverters: Dict[int, int] = {}

    def negated(uid: int) -> int:
        if uid not in inverters:
            inverters[uid] = network.add_inv(uid)
        return inverters[uid]

    terms: List[int] = []
    for cube in cover.cubes:
        literals: List[int] = []
        for char, fanin in zip(cube, fanins):
            if char == "1":
                literals.append(fanin)
            elif char == "0":
                literals.append(negated(fanin))
            elif char not in "-":
                raise ParseError(f"bad cube character {char!r} in cover "
                                 f"for {cover.output!r}")
        if not literals:
            # An all-don't-care cube makes the function constant true.
            terms = []
            break
        term = literals[0]
        for lit in literals[1:]:
            term = network.add_and(term, lit)
        terms.append(term)

    if not terms:
        result = network.add_const(True)
    else:
        result = terms[0]
        for term in terms[1:]:
            result = network.add_or(result, term)
    if cover.phase == "0":
        result = network.add_inv(result)
    if not network.node(result).name:
        network.node(result).name = cover.output
    return result


def load_blif(path: str) -> LogicNetwork:
    """Read a BLIF file from disk."""
    with open(path) as handle:
        return read_blif(handle, filename=path)


def write_blif(network: LogicNetwork, handle: TextIO) -> None:
    """Write the network as BLIF (one ``.names`` per gate)."""
    handle.write(f".model {network.name}\n")
    pi_labels = " ".join(network.node(u).label for u in network.pis)
    po_labels = " ".join(network.node(u).label for u in network.pos)
    handle.write(f".inputs {pi_labels}\n")
    handle.write(f".outputs {po_labels}\n")
    names: Dict[int, str] = {}
    for uid in network.topological_order():
        node = network.node(uid)
        if node.type is NodeType.PI:
            names[uid] = node.label
            continue
        if node.type is NodeType.PO:
            handle.write(f".names {names[node.fanins[0]]} {node.label}\n1 1\n")
            continue
        names[uid] = f"s{uid}"
        ins = [names[f] for f in node.fanins]
        _write_gate_cover(handle, node.type, ins, names[uid])
    handle.write(".end\n")


def _write_gate_cover(handle: TextIO, node_type: NodeType,
                      ins: List[str], out: str) -> None:
    n = len(ins)
    header = f".names {' '.join(ins)} {out}\n"
    handle.write(header)
    if node_type is NodeType.AND:
        handle.write("1" * n + " 1\n")
    elif node_type is NodeType.NAND:
        handle.write("1" * n + " 0\n")
    elif node_type is NodeType.OR:
        for i in range(n):
            handle.write("-" * i + "1" + "-" * (n - i - 1) + " 1\n")
    elif node_type is NodeType.NOR:
        handle.write("0" * n + " 1\n")
    elif node_type in (NodeType.XOR, NodeType.XNOR):
        want = 1 if node_type is NodeType.XOR else 0
        for value in range(1 << n):
            ones = bin(value).count("1")
            if ones % 2 == want:
                cube = "".join("1" if (value >> i) & 1 else "0"
                               for i in range(n))
                handle.write(cube + " 1\n")
    elif node_type is NodeType.INV:
        handle.write("0 1\n")
    elif node_type is NodeType.BUF:
        handle.write("1 1\n")
    elif node_type is NodeType.CONST1:
        handle.write("1\n")
    elif node_type is NodeType.CONST0:
        pass  # empty cover is constant 0
    else:
        raise ParseError(f"gate type {node_type.value} not expressible in BLIF")


def save_blif(network: LogicNetwork, path: str) -> None:
    with open(path, "w") as handle:
        write_blif(network, handle)
