"""SPICE-style transistor netlist writer for mapped domino circuits.

Emits one subcircuit per domino gate with every device the accounting
counts: pulldown nmos transistors, the p-clock precharge device, the
output inverter, the keeper, the optional n-clock foot, and the p-discharge
transistors.  The node names match :mod:`repro.pbe.netlist` so the written
netlist corresponds device-for-device to what the PBE simulator simulates
(and the test suite cross-checks the device counts against
:meth:`DominoGate.t_total`).
"""

from __future__ import annotations

from typing import TextIO

from ..domino.circuit import DominoCircuit
from ..domino.gate import DominoGate
from ..pbe.netlist import FOOT, GND, TOP, flatten_gate


def write_gate_netlist(gate: DominoGate, handle: TextIO) -> int:
    """Write one gate as a SPICE subcircuit; returns the device count."""
    flat = flatten_gate(gate)
    ports = sorted({t.signal for t in flat.transistors})
    handle.write(f".subckt {gate.name} out clk {' '.join(ports)}\n")
    count = 0

    def emit(card: str) -> None:
        nonlocal count
        count += 1
        handle.write(card + "\n")

    # Pulldown network.
    for i, t in enumerate(flat.transistors):
        emit(f"MN{i} {t.upper} {t.signal} {t.lower} body_n{i} nmos_soi")
    # Precharge pmos: drain=dynamic node, gate=clk, source=vdd.
    emit(f"MPC {TOP} clk vdd vdd pmos_soi")
    # Output inverter.
    emit(f"MPI out {TOP} vdd vdd pmos_soi")
    emit(f"MNI out {TOP} {GND} {GND} nmos_soi")
    # Keeper pmos, driven by the output.
    emit(f"MPK {TOP} out vdd vdd pmos_soi")
    # n-clock foot (footed gates only).
    if gate.footed:
        emit(f"MNF {FOOT} clk {GND} {GND} nmos_soi")
    # p-discharge transistors: on during precharge (clk low).
    for i, node in enumerate(flat.discharge_nodes):
        emit(f"MPD{i} {node} clk {GND} vdd pmos_soi")
    handle.write(f".ends {gate.name}\n")
    return count


def write_circuit_netlist(circuit: DominoCircuit, handle: TextIO) -> int:
    """Write the whole circuit; returns the total device count.

    The returned count equals ``circuit.cost().t_total`` — the inverter,
    keeper and clock devices are part of ``t_logic`` in the paper's
    accounting, and every one of them is emitted here.
    """
    handle.write(f"* domino circuit {circuit.name}\n")
    handle.write(f"* inputs: {' '.join(circuit.inputs)}\n")
    handle.write(f"* outputs: "
                 f"{' '.join(f'{po}<-{sig}' for po, sig in circuit.outputs.items())}\n")
    total = 0
    for gate in circuit.gates:
        total += write_gate_netlist(gate, handle)
    handle.write("* instance wiring\n")
    for gate in circuit.gates:
        ports = sorted({t.signal for t in flatten_gate(gate).transistors})
        handle.write(f"X{gate.name} {gate.name} clk {' '.join(ports)} "
                     f"{gate.name}\n")
    handle.write(".end\n")
    return total


def circuit_netlist(circuit: DominoCircuit) -> str:
    """Return the netlist text for a circuit."""
    import io

    buf = io.StringIO()
    write_circuit_netlist(circuit, buf)
    return buf.getvalue()
