"""Reader for Espresso-style PLA files (two-level covers).

Supports ``.i``, ``.o``, ``.ilb``, ``.ob``, ``.p``, ``.type fr|f``,
``.e``/``.end`` and plain cube rows.  Each output column is built as an
OR of AND-cubes over the (possibly inverted) inputs.
"""

from __future__ import annotations

from typing import Dict, List, Optional, TextIO, Union

from ..errors import ParseError
from ..network import LogicNetwork


def read_pla(source: Union[str, TextIO], name: str = "pla",
             filename: str = "<string>") -> LogicNetwork:
    """Parse PLA text (string or file object) into a network."""
    if hasattr(source, "read"):
        text = source.read()
        filename = getattr(source, "name", filename)
    else:
        text = source

    num_in: Optional[int] = None
    num_out: Optional[int] = None
    in_labels: Optional[List[str]] = None
    out_labels: Optional[List[str]] = None
    rows: List[tuple] = []

    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        tokens = line.split()
        key = tokens[0]
        if key == ".i":
            num_in = int(tokens[1])
        elif key == ".o":
            num_out = int(tokens[1])
        elif key == ".ilb":
            in_labels = tokens[1:]
        elif key == ".ob":
            out_labels = tokens[1:]
        elif key in (".p", ".type", ".phase", ".pair", ".symbolic"):
            continue
        elif key in (".e", ".end"):
            break
        elif key.startswith("."):
            raise ParseError(f"unsupported PLA directive {key!r}",
                             filename, lineno)
        else:
            if num_in is None or num_out is None:
                raise ParseError("cube before .i/.o declarations",
                                 filename, lineno)
            joined = "".join(tokens)
            if len(joined) != num_in + num_out:
                raise ParseError(
                    f"cube width {len(joined)} != .i + .o = "
                    f"{num_in + num_out}", filename, lineno)
            rows.append((joined[:num_in], joined[num_in:], lineno))

    if num_in is None or num_out is None:
        raise ParseError("missing .i/.o declarations", filename)
    in_labels = in_labels or [f"in{i}" for i in range(num_in)]
    out_labels = out_labels or [f"out{i}" for i in range(num_out)]
    if len(in_labels) != num_in or len(out_labels) != num_out:
        raise ParseError(".ilb/.ob label counts disagree with .i/.o", filename)

    network = LogicNetwork(name)
    pis = [network.add_pi(label) for label in in_labels]
    inverters: Dict[int, int] = {}

    def negated(uid: int) -> int:
        if uid not in inverters:
            inverters[uid] = network.add_inv(uid)
        return inverters[uid]

    cube_cache: Dict[str, int] = {}

    def build_cube(pattern: str, lineno: int) -> Optional[int]:
        if pattern in cube_cache:
            return cube_cache[pattern]
        literals: List[int] = []
        for char, pi in zip(pattern, pis):
            if char == "1":
                literals.append(pi)
            elif char == "0":
                literals.append(negated(pi))
            elif char not in "-":
                raise ParseError(f"bad cube character {char!r}",
                                 filename, lineno)
        if not literals:
            cube_cache[pattern] = None
            return None  # tautology cube
        term = literals[0]
        for lit in literals[1:]:
            term = network.add_and(term, lit)
        cube_cache[pattern] = term
        return term

    for out_index, out_label in enumerate(out_labels):
        terms: List[int] = []
        tautology = False
        for pattern, out_bits, lineno in rows:
            bit = out_bits[out_index]
            if bit in ("0", "~", "-"):
                continue  # '0'/'~' in fr-type: not part of the on-set
            term = build_cube(pattern, lineno)
            if term is None:
                tautology = True
                break
            terms.append(term)
        if tautology:
            network.add_po(network.add_const(True), out_label)
        elif not terms:
            network.add_po(network.add_const(False), out_label)
        else:
            acc = terms[0]
            for term in terms[1:]:
                acc = network.add_or(acc, term)
            network.add_po(acc, out_label)
    return network


def load_pla(path: str) -> LogicNetwork:
    """Read a PLA file from disk."""
    import os

    with open(path) as handle:
        return read_pla(handle,
                        name=os.path.splitext(os.path.basename(path))[0],
                        filename=path)
