"""Netlist readers and writers (.bench, BLIF, PLA, DOT, SPICE-style)."""

from .bench import load_bench, read_bench, save_bench, write_bench
from .blif import load_blif, read_blif, save_blif, write_blif
from .pla import load_pla, read_pla
from .dot import (
    circuit_to_dot,
    network_to_dot,
    write_circuit_dot,
    write_network_dot,
)
from .netlist_text import (
    circuit_netlist,
    write_circuit_netlist,
    write_gate_netlist,
)

__all__ = [
    "load_bench",
    "read_bench",
    "save_bench",
    "write_bench",
    "load_blif",
    "read_blif",
    "save_blif",
    "write_blif",
    "load_pla",
    "read_pla",
    "circuit_to_dot",
    "network_to_dot",
    "write_circuit_dot",
    "write_network_dot",
    "circuit_netlist",
    "write_circuit_netlist",
    "write_gate_netlist",
]
