"""Cross-package naming conventions."""

#: Suffix used for the complemented phase of a primary input signal,
#: created by the unate conversion and consumed by the simulators.
NEG_SUFFIX = "_bar"
