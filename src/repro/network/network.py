"""The :class:`LogicNetwork` DAG container.

A :class:`LogicNetwork` is a directed acyclic graph of
:class:`~repro.network.nodes.LogicNode` objects.  It is the common currency
between the netlist readers, the synthesis front end (decomposition, unate
conversion) and the technology mappers.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from ..errors import NetworkError
from .nodes import LogicNode, NodeType


class LogicNetwork:
    """A technology-independent combinational logic network.

    Nodes are created through the ``add_*`` methods, which return node ids.
    Fanins must exist before the node that references them, which makes the
    construction order a topological order by design; an explicit
    :meth:`topological_order` is still provided (and verified) for networks
    assembled by readers.
    """

    def __init__(self, name: str = "network"):
        self.name = name
        self._nodes: Dict[int, LogicNode] = {}
        self._pis: List[int] = []
        self._pos: List[int] = []
        self._next_uid = 0
        self._fanouts: Optional[Dict[int, List[int]]] = None

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def _add(self, node_type: NodeType, fanins: Sequence[int], name: str) -> int:
        for f in fanins:
            if f not in self._nodes:
                raise NetworkError(
                    f"fanin {f} of new {node_type.value} node does not exist"
                )
            if self._nodes[f].is_po:
                raise NetworkError("a PO node cannot be used as a fanin")
        uid = self._next_uid
        self._next_uid += 1
        self._nodes[uid] = LogicNode(uid, node_type, tuple(fanins), name)
        self._fanouts = None
        return uid

    def add_pi(self, name: str = "") -> int:
        """Add a primary input and return its id."""
        uid = self._add(NodeType.PI, (), name)
        self._pis.append(uid)
        return uid

    def add_po(self, fanin: int, name: str = "") -> int:
        """Add a primary output driven by ``fanin`` and return its id."""
        uid = self._add(NodeType.PO, (fanin,), name)
        self._pos.append(uid)
        return uid

    def add_gate(self, node_type: NodeType, fanins: Sequence[int],
                 name: str = "") -> int:
        """Add a gate node of arbitrary supported type."""
        if not node_type.is_gate and not node_type.is_source:
            raise NetworkError(f"{node_type} is not a gate type")
        return self._add(node_type, fanins, name)

    def add_and(self, *fanins: int, name: str = "") -> int:
        return self._add(NodeType.AND, fanins, name)

    def add_or(self, *fanins: int, name: str = "") -> int:
        return self._add(NodeType.OR, fanins, name)

    def add_inv(self, fanin: int, name: str = "") -> int:
        return self._add(NodeType.INV, (fanin,), name)

    def add_buf(self, fanin: int, name: str = "") -> int:
        return self._add(NodeType.BUF, (fanin,), name)

    def add_const(self, value: bool, name: str = "") -> int:
        return self._add(NodeType.CONST1 if value else NodeType.CONST0, (), name)

    # ------------------------------------------------------------------
    # accessors
    # ------------------------------------------------------------------
    def node(self, uid: int) -> LogicNode:
        """Return the node with id ``uid`` (raises ``NetworkError`` if absent)."""
        try:
            return self._nodes[uid]
        except KeyError:
            raise NetworkError(f"no node with id {uid}") from None

    def __contains__(self, uid: int) -> bool:
        return uid in self._nodes

    def __len__(self) -> int:
        return len(self._nodes)

    def __iter__(self) -> Iterator[LogicNode]:
        return iter(self._nodes.values())

    @property
    def pis(self) -> Tuple[int, ...]:
        """Ids of primary inputs, in creation order."""
        return tuple(self._pis)

    @property
    def pos(self) -> Tuple[int, ...]:
        """Ids of primary outputs, in creation order."""
        return tuple(self._pos)

    @property
    def node_ids(self) -> Tuple[int, ...]:
        return tuple(self._nodes)

    def gates(self) -> List[LogicNode]:
        """All gate nodes (everything that is not a PI, PO or constant)."""
        return [n for n in self if n.type.is_gate]

    def fanouts(self, uid: int) -> Tuple[int, ...]:
        """Ids of nodes that use ``uid`` as a fanin (POs included)."""
        if self._fanouts is None:
            table: Dict[int, List[int]] = {u: [] for u in self._nodes}
            for n in self._nodes.values():
                for f in n.fanins:
                    table[f].append(n.uid)
            self._fanouts = table
        return tuple(self._fanouts[uid])

    def fanout_count(self, uid: int) -> int:
        return len(self.fanouts(uid))

    # ------------------------------------------------------------------
    # orders and traversal
    # ------------------------------------------------------------------
    def topological_order(self) -> List[int]:
        """Node ids in topological order (fanins before fanouts).

        Raises :class:`NetworkError` if the graph has a cycle.
        """
        indeg = {u: len(n.fanins) for u, n in self._nodes.items()}
        ready = [u for u, d in indeg.items() if d == 0]
        # Deterministic order: process in id order within each wavefront.
        ready.sort()
        order: List[int] = []
        import heapq

        heapq.heapify(ready)
        while ready:
            u = heapq.heappop(ready)
            order.append(u)
            for v in self.fanouts(u):
                indeg[v] -= 1
                if indeg[v] == 0:
                    heapq.heappush(ready, v)
        if len(order) != len(self._nodes):
            raise NetworkError("network contains a cycle")
        return order

    def transitive_fanin(self, uid: int) -> set:
        """Set of node ids in the transitive fanin cone of ``uid`` (inclusive)."""
        seen = set()
        stack = [uid]
        while stack:
            u = stack.pop()
            if u in seen:
                continue
            seen.add(u)
            stack.extend(self.node(u).fanins)
        return seen

    # ------------------------------------------------------------------
    # properties of the whole network
    # ------------------------------------------------------------------
    def depth(self) -> int:
        """Maximum number of gate nodes on any PI-to-PO path."""
        level: Dict[int, int] = {}
        for u in self.topological_order():
            n = self.node(u)
            if not n.fanins:
                level[u] = 0
            else:
                base = max(level[f] for f in n.fanins)
                level[u] = base + (1 if n.type.is_gate else 0)
        return max((level[p] for p in self._pos), default=0)

    def count(self, node_type: NodeType) -> int:
        """Number of nodes of the given type."""
        return sum(1 for n in self if n.type is node_type)

    def is_mappable(self) -> bool:
        """True if the network contains only PI/PO and 2-input AND/OR nodes.

        Constants are tolerated when they feed primary outputs directly
        (a swept network can retain constant outputs, which the mapper
        records without building a gate).
        """
        for n in self:
            if n.type in (NodeType.PI, NodeType.PO):
                continue
            if n.type in (NodeType.AND, NodeType.OR) and len(n.fanins) == 2:
                continue
            if n.type in (NodeType.CONST0, NodeType.CONST1) and all(
                    self.node(f).is_po for f in self.fanouts(n.uid)):
                continue
            return False
        return True

    def validate(self) -> None:
        """Check structural invariants; raise :class:`NetworkError` on failure.

        Verifies fanin existence, acyclicity, that POs drive nothing, and
        that every PO has a driver.
        """
        for n in self:
            for f in n.fanins:
                if f not in self._nodes:
                    raise NetworkError(f"node {n.uid} references missing fanin {f}")
                if self._nodes[f].is_po:
                    raise NetworkError(f"node {n.uid} uses PO {f} as a fanin")
        self.topological_order()  # raises on cycles
        for p in self._pos:
            if len(self.node(p).fanins) != 1:
                raise NetworkError(f"PO {p} must have exactly one fanin")

    # ------------------------------------------------------------------
    # editing
    # ------------------------------------------------------------------
    def replace_fanin(self, uid: int, old: int, new: int) -> None:
        """Rewire one fanin of node ``uid`` from ``old`` to ``new``."""
        n = self.node(uid)
        if old not in n.fanins:
            raise NetworkError(f"node {uid} has no fanin {old}")
        if new not in self._nodes:
            raise NetworkError(f"replacement fanin {new} does not exist")
        n.fanins = tuple(new if f == old else f for f in n.fanins)
        self._fanouts = None

    def remove_unused(self) -> int:
        """Delete nodes not in the transitive fanin of any PO.

        Primary inputs are always retained.  Returns the number of nodes
        removed.
        """
        live = set(self._pis) | set(self._pos)
        for p in self._pos:
            live |= self.transitive_fanin(p)
        dead = [u for u in self._nodes if u not in live]
        for u in dead:
            del self._nodes[u]
        self._fanouts = None
        return len(dead)

    def copy(self) -> "LogicNetwork":
        """Deep structural copy (node ids are preserved)."""
        dup = LogicNetwork(self.name)
        dup._nodes = {
            u: LogicNode(n.uid, n.type, n.fanins, n.name)
            for u, n in self._nodes.items()
        }
        dup._pis = list(self._pis)
        dup._pos = list(self._pos)
        dup._next_uid = self._next_uid
        return dup

    def __repr__(self) -> str:
        return (
            f"LogicNetwork({self.name!r}, pis={len(self._pis)}, "
            f"pos={len(self._pos)}, nodes={len(self._nodes)})"
        )
