"""Node types for technology-independent logic networks.

The mapper operates on networks of 2-input AND/OR nodes (after unate
conversion); the front end additionally understands inverters, constants,
and wide gates produced by the netlist readers before decomposition.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Tuple


class NodeType(enum.Enum):
    """Kind of a node in a :class:`~repro.network.network.LogicNetwork`."""

    PI = "pi"          #: primary input (no fanins)
    PO = "po"          #: primary output (single fanin, no function)
    AND = "and"        #: AND of the fanins (any fanin count >= 1)
    OR = "or"          #: OR of the fanins (any fanin count >= 1)
    NAND = "nand"      #: NAND (front-end only; removed by decomposition)
    NOR = "nor"        #: NOR (front-end only; removed by decomposition)
    XOR = "xor"        #: XOR (front-end only; removed by decomposition)
    XNOR = "xnor"      #: XNOR (front-end only; removed by decomposition)
    INV = "inv"        #: inverter (removed by unate conversion)
    BUF = "buf"        #: buffer (removed by sweeping)
    CONST0 = "const0"  #: constant logic 0
    CONST1 = "const1"  #: constant logic 1

    @property
    def is_source(self) -> bool:
        """True for nodes that take no fanins (PIs and constants)."""
        return self in (NodeType.PI, NodeType.CONST0, NodeType.CONST1)

    @property
    def is_gate(self) -> bool:
        """True for nodes that compute a logic function of their fanins."""
        return self in (
            NodeType.AND, NodeType.OR, NodeType.NAND, NodeType.NOR,
            NodeType.XOR, NodeType.XNOR, NodeType.INV, NodeType.BUF,
        )

    @property
    def is_monotone(self) -> bool:
        """True for gates a domino pulldown network can realize directly."""
        return self in (NodeType.AND, NodeType.OR, NodeType.BUF)

    @property
    def dual(self) -> "NodeType":
        """The DeMorgan dual used by bubble pushing (AND <-> OR, etc.)."""
        pairs = {
            NodeType.AND: NodeType.OR,
            NodeType.OR: NodeType.AND,
            NodeType.NAND: NodeType.NOR,
            NodeType.NOR: NodeType.NAND,
            NodeType.CONST0: NodeType.CONST1,
            NodeType.CONST1: NodeType.CONST0,
        }
        if self not in pairs:
            raise ValueError(f"{self} has no DeMorgan dual")
        return pairs[self]


#: Node types permitted in a mapper-ready network (2-input AND/OR + sources).
MAPPABLE_TYPES = frozenset({NodeType.PI, NodeType.PO, NodeType.AND, NodeType.OR})


@dataclass
class LogicNode:
    """One node of a logic network.

    Attributes
    ----------
    uid:
        Integer id, unique within the owning network.
    type:
        The :class:`NodeType`.
    fanins:
        Ids of fanin nodes, in order.  Empty for sources.
    name:
        Optional human-readable signal name (preserved from netlists).
    """

    uid: int
    type: NodeType
    fanins: Tuple[int, ...] = field(default_factory=tuple)
    name: str = ""

    def __post_init__(self):
        self.fanins = tuple(self.fanins)
        _check_fanin_count(self.type, len(self.fanins))

    @property
    def is_pi(self) -> bool:
        return self.type is NodeType.PI

    @property
    def is_po(self) -> bool:
        return self.type is NodeType.PO

    @property
    def is_const(self) -> bool:
        return self.type in (NodeType.CONST0, NodeType.CONST1)

    @property
    def label(self) -> str:
        """Name if present, else ``n<uid>``."""
        return self.name or f"n{self.uid}"

    def evaluate(self, values) -> bool:
        """Evaluate this node's function over boolean fanin ``values``.

        ``values`` must have one entry per fanin.  Sources cannot be
        evaluated this way (PIs take their value from stimulus).
        """
        t = self.type
        if t is NodeType.AND:
            return all(values)
        if t is NodeType.OR:
            return any(values)
        if t is NodeType.NAND:
            return not all(values)
        if t is NodeType.NOR:
            return not any(values)
        if t is NodeType.XOR:
            return sum(bool(v) for v in values) % 2 == 1
        if t is NodeType.XNOR:
            return sum(bool(v) for v in values) % 2 == 0
        if t is NodeType.INV:
            return not values[0]
        if t in (NodeType.BUF, NodeType.PO):
            return bool(values[0])
        if t is NodeType.CONST0:
            return False
        if t is NodeType.CONST1:
            return True
        raise ValueError(f"cannot evaluate node of type {t}")


def _check_fanin_count(node_type: NodeType, count: int) -> None:
    """Raise ``ValueError`` if ``count`` fanins is illegal for ``node_type``."""
    if node_type.is_source and count != 0:
        raise ValueError(f"{node_type} node must have no fanins, got {count}")
    if node_type in (NodeType.PO, NodeType.INV, NodeType.BUF) and count != 1:
        raise ValueError(f"{node_type} node must have exactly 1 fanin, got {count}")
    if node_type in (NodeType.AND, NodeType.OR, NodeType.NAND, NodeType.NOR,
                     NodeType.XOR, NodeType.XNOR) and count < 1:
        raise ValueError(f"{node_type} node must have at least 1 fanin")
