"""Summary statistics of logic networks (sizes, depth, fanout profile)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from .network import LogicNetwork
from .nodes import NodeType


@dataclass(frozen=True)
class NetworkStats:
    """Aggregate statistics of a :class:`LogicNetwork`."""

    name: str
    num_pis: int
    num_pos: int
    num_gates: int
    num_and: int
    num_or: int
    num_inv: int
    depth: int
    max_fanout: int

    def as_dict(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "pis": self.num_pis,
            "pos": self.num_pos,
            "gates": self.num_gates,
            "and": self.num_and,
            "or": self.num_or,
            "inv": self.num_inv,
            "depth": self.depth,
            "max_fanout": self.max_fanout,
        }

    def __str__(self) -> str:
        return (
            f"{self.name}: {self.num_pis} PI, {self.num_pos} PO, "
            f"{self.num_gates} gates ({self.num_and} AND / {self.num_or} OR / "
            f"{self.num_inv} INV), depth {self.depth}, "
            f"max fanout {self.max_fanout}"
        )


def network_stats(network: LogicNetwork) -> NetworkStats:
    """Compute :class:`NetworkStats` for ``network``."""
    gates = network.gates()
    max_fanout = max((network.fanout_count(u) for u in network.node_ids),
                     default=0)
    return NetworkStats(
        name=network.name,
        num_pis=len(network.pis),
        num_pos=len(network.pos),
        num_gates=len(gates),
        num_and=network.count(NodeType.AND),
        num_or=network.count(NodeType.OR),
        num_inv=network.count(NodeType.INV),
        depth=network.depth(),
        max_fanout=max_fanout,
    )


def fanout_histogram(network: LogicNetwork) -> Dict[int, int]:
    """Map fanout count -> number of non-PO nodes with that fanout."""
    hist: Dict[int, int] = {}
    for u in network.node_ids:
        if network.node(u).is_po:
            continue
        k = network.fanout_count(u)
        hist[k] = hist.get(k, 0) + 1
    return hist


def level_map(network: LogicNetwork) -> Dict[int, int]:
    """Gate level of every node (PIs at level 0, each gate adds one)."""
    levels: Dict[int, int] = {}
    for u in network.topological_order():
        n = network.node(u)
        if not n.fanins:
            levels[u] = 0
        else:
            base = max(levels[f] for f in n.fanins)
            levels[u] = base + (1 if n.type.is_gate else 0)
    return levels
