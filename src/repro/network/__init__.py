"""Technology-independent logic networks (the mapper's input substrate)."""

from .nodes import LogicNode, NodeType, MAPPABLE_TYPES
from .network import LogicNetwork
from .build import network_from_expression, network_from_expressions
from .stats import NetworkStats, network_stats, fanout_histogram, level_map

__all__ = [
    "LogicNode",
    "NodeType",
    "MAPPABLE_TYPES",
    "LogicNetwork",
    "network_from_expression",
    "network_from_expressions",
    "NetworkStats",
    "network_stats",
    "fanout_histogram",
    "level_map",
]
