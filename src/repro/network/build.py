"""Convenience constructors: boolean-expression parsing into networks.

The expression grammar (used heavily by tests and examples)::

    expr   := term  ('+' term)*          # OR
    term   := factor ('*' factor)*       # AND (also implicit by adjacency
                                         #      of parenthesized groups)
    factor := '!' factor | '(' expr ')' | identifier | '0' | '1'

Identifiers match ``[A-Za-z_][A-Za-z0-9_]*``.  Each distinct identifier
becomes a primary input (shared across outputs of the same builder).
"""

from __future__ import annotations

import re
from typing import Dict, List, Tuple

from ..errors import ParseError
from .network import LogicNetwork

_TOKEN_RE = re.compile(r"\s*([A-Za-z_][A-Za-z0-9_]*|[()+*!01])")


def _tokenize(text: str) -> List[str]:
    tokens: List[str] = []
    pos = 0
    while pos < len(text):
        m = _TOKEN_RE.match(text, pos)
        if not m:
            if text[pos:].strip():
                raise ParseError(f"bad character {text[pos]!r} in expression")
            break
        tokens.append(m.group(1))
        pos = m.end()
    return tokens


class _ExprParser:
    """Recursive-descent parser building nodes into a network."""

    def __init__(self, network: LogicNetwork, inputs: Dict[str, int]):
        self.network = network
        self.inputs = inputs
        self.tokens: List[str] = []
        self.pos = 0

    def parse(self, text: str) -> int:
        self.tokens = _tokenize(text)
        self.pos = 0
        uid = self._expr()
        if self.pos != len(self.tokens):
            raise ParseError(f"trailing tokens after expression: "
                             f"{self.tokens[self.pos:]}")
        return uid

    def _peek(self) -> str:
        return self.tokens[self.pos] if self.pos < len(self.tokens) else ""

    def _take(self) -> str:
        tok = self._peek()
        self.pos += 1
        return tok

    def _expr(self) -> int:
        uid = self._term()
        while self._peek() == "+":
            self._take()
            rhs = self._term()
            uid = self.network.add_or(uid, rhs)
        return uid

    def _term(self) -> int:
        uid = self._factor()
        while True:
            nxt = self._peek()
            if nxt == "*":
                self._take()
                rhs = self._factor()
            elif nxt == "(" or re.match(r"[A-Za-z_!01]", nxt or ""):
                # implicit AND by adjacency, e.g. "A(B+C)"
                rhs = self._factor()
            else:
                return uid
            uid = self.network.add_and(uid, rhs)

    def _factor(self) -> int:
        tok = self._take()
        if tok == "!":
            inner = self._factor()
            return self.network.add_inv(inner)
        if tok == "(":
            uid = self._expr()
            if self._take() != ")":
                raise ParseError("missing closing parenthesis")
            return uid
        if tok == "0":
            return self.network.add_const(False)
        if tok == "1":
            return self.network.add_const(True)
        if not tok:
            raise ParseError("unexpected end of expression")
        if tok in self.inputs:
            return self.inputs[tok]
        uid = self.network.add_pi(tok)
        self.inputs[tok] = uid
        return uid


def network_from_expressions(exprs, name: str = "expr") -> LogicNetwork:
    """Build a network from output expressions.

    Parameters
    ----------
    exprs:
        Either a single expression string, or a mapping / sequence of
        ``(output_name, expression)`` pairs.  ``!`` is NOT, ``*`` (or
        adjacency) is AND, ``+`` is OR.

    Returns
    -------
    LogicNetwork
        Network with one PI per distinct identifier and one PO per
        expression.  All gates are 2-input AND/OR plus inverters.
    """
    if isinstance(exprs, str):
        pairs: List[Tuple[str, str]] = [("out", exprs)]
    elif isinstance(exprs, dict):
        pairs = list(exprs.items())
    else:
        pairs = list(exprs)

    network = LogicNetwork(name)
    inputs: Dict[str, int] = {}
    parser = _ExprParser(network, inputs)
    for out_name, text in pairs:
        uid = parser.parse(text)
        network.add_po(uid, out_name)
    return network


def network_from_expression(expr: str, name: str = "expr") -> LogicNetwork:
    """Single-output convenience wrapper for :func:`network_from_expressions`."""
    return network_from_expressions(expr, name=name)
