"""Cost models for the mapping dynamic program.

The paper evaluates three objectives:

* **area** (Tables I, II): total transistors, including discharge
  transistors for the PBE-aware mapper;
* **clock-weighted area** (Table III): clock-connected transistors
  (p-clock, n-clock, p-discharge) cost ``k`` times a regular transistor;
* **depth** (Table IV): domino levels, combined with the discharge count
  for the PBE-aware mapper.

A cost model turns tuple metrics into a comparable selection key and
prices the individual cost events (pulldown transistor, committed
discharge, gate formation).  All keys are "monotonic increasing as we
proceed from inputs to outputs" (paper section V), which is what makes the
dynamic program exact.
"""

from __future__ import annotations

from .tuples import MapTuple

#: Non-clock part of the domino gate overhead: output inverter (2) + keeper.
_STATIC_OVERHEAD = 3.0


class CostModel:
    """Transistor-count objective with optional clock weighting.

    Parameters
    ----------
    k_clock:
        Weight of every clock-connected transistor (p-clock and n-clock in
        the gates, and the p-discharge transistors).  ``k_clock=1`` is the
        plain area objective of Tables I and II; Table III uses ``k=2``.
    """

    name = "area"

    def __init__(self, k_clock: float = 1.0):
        if k_clock <= 0:
            raise ValueError(f"k_clock must be positive, got {k_clock}")
        self.k_clock = float(k_clock)

    # -- event prices ---------------------------------------------------
    def leaf_cost(self) -> float:
        """Cost of one pulldown transistor."""
        return 1.0

    def discharge_cost(self) -> float:
        """Cost of one committed p-discharge transistor (clock-connected)."""
        return self.k_clock

    def gate_overhead_cost(self, footed: bool) -> float:
        """Cost of forming a gate: inverter + keeper + clock transistors.

        The p-clock precharge device (and the n-clock foot for footed
        gates) is clock-connected and therefore weighted by ``k``.
        """
        clock_devices = 2.0 if footed else 1.0
        return _STATIC_OVERHEAD + self.k_clock * clock_devices

    # -- selection keys --------------------------------------------------
    def tuple_key_metrics(self, wcost: float, levels: int) -> float:
        """Selection key from raw scalars, before any tuple exists.

        The engine's hot loop prices a candidate from its scalar metrics
        and asks the table whether it would even be kept — skipping the
        allocation of dominated candidates entirely.  Subclasses that
        change the objective override *this* method; :meth:`tuple_key`
        delegates here, so the two can never disagree.
        """
        return wcost

    def tuple_key(self, t: MapTuple) -> float:
        """Comparable key for choosing among tuples (lower is better).

        Overriding this directly (instead of :meth:`tuple_key_metrics`)
        still works but disables the engine's scalar fast path, which
        only trusts the metric form when ``tuple_key`` is the base-class
        delegation.
        """
        return self.tuple_key_metrics(t.wcost, t.levels)

    def gate_key(self, wcost: float, levels: int) -> float:
        """Comparable key for choosing the tuple a gate is formed from."""
        return wcost

    def fingerprint(self) -> tuple:
        """Hashable identity used to key the tree cache.

        Two models with equal fingerprints must price every cost event
        identically; subclasses adding parameters must override this (or
        cached tables priced under one parameterization would be reused
        under another).
        """
        return (type(self).__qualname__, self.k_clock)

    def __repr__(self) -> str:
        return f"{type(self).__name__}(k_clock={self.k_clock})"


class AreaCost(CostModel):
    """Plain transistor-count objective (``k_clock = 1``)."""

    def __init__(self):
        super().__init__(k_clock=1.0)


class ClockWeightedCost(CostModel):
    """Table III's objective: clock-connected transistors cost ``k``."""

    name = "clock-weighted"

    def __init__(self, k: float = 2.0):
        super().__init__(k_clock=k)


class DepthCost(CostModel):
    """Table IV's objective: domino levels, then transistors.

    The selection key is ``level_weight * levels + wcost``: a level costs
    ``level_weight`` transistor-equivalents.  For the PBE-aware mapper
    ``wcost`` already contains the committed discharge transistors, so the
    mapper trades levels against discharge transistors exactly as the
    paper describes ("the actual cost function is a combination of delay
    and number of discharge transistors used").

    Parameters
    ----------
    level_weight:
        Transistor-equivalents per domino level.  The default (10) makes
        levels dominate in small gates while still letting a large
        discharge saving buy an extra level, which reproduces the paper's
        observation that the depth-mode SOI mapper lowers levels for some
        circuits and raises them for others.
    """

    name = "depth"

    def __init__(self, level_weight: float = 10.0, k_clock: float = 1.0):
        super().__init__(k_clock=k_clock)
        if level_weight <= 0:
            raise ValueError(f"level_weight must be positive, got {level_weight}")
        self.level_weight = float(level_weight)

    def tuple_key_metrics(self, wcost: float, levels: int) -> float:
        return self.level_weight * levels + wcost

    def gate_key(self, wcost: float, levels: int) -> float:
        return self.level_weight * levels + wcost

    def fingerprint(self) -> tuple:
        return (type(self).__qualname__, self.k_clock, self.level_weight)

    def __repr__(self) -> str:
        return (f"DepthCost(level_weight={self.level_weight}, "
                f"k_clock={self.k_clock})")
