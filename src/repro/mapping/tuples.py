"""Mapping tuples: the dynamic-programming sub-solutions.

The paper associates 6-tuples with intermediate solutions; here a
:class:`MapTuple` carries the pair ``{W, H}``, the accumulated cost
components, the PBE bookkeeping (``p_dis``, ``par_b``), and the partial
pulldown structure itself so the final circuit can be materialized.

``TupleTable`` stores, per ``(W, H)`` slot, either the single best tuple
(paper mode) or a small Pareto front over ``(cost, p_dis)`` (an extension
evaluated as an ablation).
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Tuple

from ..domino.structure import Pulldown


class MapTuple:
    """One dynamic-programming sub-solution.

    Attributes
    ----------
    width, height:
        The ``{W, H}`` pair of the partial pulldown network.
    wcost:
        Model-weighted scalar cost accumulated so far (transistors with
        clock-connected devices weighted by ``k``; committed discharge
        transistors included for PBE-aware mapping).
    trans:
        Raw transistor count, including committed discharge transistors.
    disch:
        Committed p-discharge transistors inside this partial structure
        (including those of optional gates formed beneath it).
    levels:
        Maximum number of domino gate levels beneath any leaf (0 when all
        leaves are primary inputs).
    p_dis:
        Potential discharge points (must be discharged if the structure's
        bottom never reaches ground).
    p_tail:
        The subset of ``p_dis`` inside the bottom-most parallel stack
        (zero unless ``par_b``).  A series combination commits exactly
        these (plus the new junction) when the structure lands on top;
        spine junctions (``p_dis - p_tail``) keep their classification,
        matching the flattened structural analysis.
    par_b:
        True when the structure has a parallel stack at its bottom.
    has_pi:
        True when any pulldown leaf is a primary input (the formed gate
        would need an n-clock foot).
    structure:
        The partial pulldown network.
    """

    __slots__ = ("width", "height", "wcost", "trans", "disch", "levels",
                 "p_dis", "p_tail", "par_b", "has_pi", "structure")

    def __init__(self, width: int, height: int, wcost: float, trans: int,
                 disch: int, levels: int, p_dis: int, par_b: bool,
                 has_pi: bool, structure: Pulldown, p_tail: int = 0):
        self.width = width
        self.height = height
        self.wcost = wcost
        self.trans = trans
        self.disch = disch
        self.levels = levels
        self.p_dis = p_dis
        self.p_tail = p_tail
        self.par_b = par_b
        self.has_pi = has_pi
        self.structure = structure

    @property
    def shape(self) -> Tuple[int, int]:
        return (self.width, self.height)

    def __repr__(self) -> str:
        return (f"MapTuple(W={self.width}, H={self.height}, "
                f"wcost={self.wcost}, trans={self.trans}, "
                f"disch={self.disch}, levels={self.levels}, "
                f"p_dis={self.p_dis}, par_b={self.par_b})")


class TupleTable:
    """Per-node table of sub-solutions, keyed by ``(W, H)``.

    Parameters
    ----------
    key_fn:
        Maps a :class:`MapTuple` to a comparable selection key (provided
        by the cost model).  Lower is better.
    pareto:
        When true, each slot keeps every tuple that is Pareto-optimal in
        ``(key, p_dis)`` (capped at ``max_front``); otherwise each slot
        keeps the single best tuple by ``(key, p_dis)``.
    """

    def __init__(self, key_fn, pareto: bool = False, max_front: int = 4):
        self._key_fn = key_fn
        self._pareto = pareto
        self._max_front = max_front
        self._slots: Dict[Tuple[int, int], List[MapTuple]] = {}

    @classmethod
    def from_slots(cls, key_fn, pareto: bool,
                   slots: List[Tuple[Tuple[int, int], List[MapTuple]]],
                   max_front: int = 4) -> "TupleTable":
        """Rebuild a finished table from ``(shape, tuples)`` pairs.

        Used by the tree cache: the pairs must be a table's final
        contents in slot-insertion order, so the rebuilt table iterates
        (and therefore maps) bit-identically to the original.
        """
        table = cls(key_fn, pareto=pareto, max_front=max_front)
        for shape, tuples in slots:
            table._slots[shape] = list(tuples)
        return table

    def slots(self) -> List[Tuple[Tuple[int, int], List[MapTuple]]]:
        """Final contents as ``(shape, tuples)`` pairs in insertion order."""
        return [(shape, list(slot)) for shape, slot in self._slots.items()]

    def insert(self, candidate: MapTuple) -> bool:
        """Offer ``candidate``; returns True if it was kept."""
        slot = self._slots.setdefault(candidate.shape, [])
        key = self._key_fn(candidate)
        if not self._pareto:
            if not slot:
                slot.append(candidate)
                return True
            incumbent = slot[0]
            if (key, candidate.p_dis) < (self._key_fn(incumbent),
                                         incumbent.p_dis):
                slot[0] = candidate
                return True
            return False
        # Pareto mode: drop the candidate if dominated, evict what it
        # dominates.  Dominance must cover every field that can influence
        # a future combination: the cost key, the potential points (both
        # total and the trailing-stack subset that series stacking
        # commits), and par_b itself — a series-ending tuple (par_b False)
        # is never worse than a parallel-ending one, since stacking below
        # a parallel-ending top commits its tail plus the junction.
        def dominates(d: MapTuple, c: MapTuple) -> bool:
            return (self._key_fn(d) <= self._key_fn(c)
                    and d.p_dis <= c.p_dis
                    and d.p_tail <= c.p_tail
                    and (not d.par_b or c.par_b))

        for kept in slot:
            if dominates(kept, candidate):
                return False
        slot[:] = [kept for kept in slot if not dominates(candidate, kept)]
        slot.append(candidate)
        if len(slot) > self._max_front:
            slot.sort(key=lambda t: (self._key_fn(t), t.p_dis))
            del slot[self._max_front:]
        return True

    def all_tuples(self) -> Iterator[MapTuple]:
        for slot in self._slots.values():
            yield from slot

    def best(self) -> Optional[MapTuple]:
        """Overall best tuple across all slots (None if the table is empty)."""
        best_tuple = None
        best_key = None
        for t in self.all_tuples():
            key = (self._key_fn(t), t.p_dis)
            if best_key is None or key < best_key:
                best_key = key
                best_tuple = t
        return best_tuple

    def __len__(self) -> int:
        return sum(len(slot) for slot in self._slots.values())

    def shapes(self) -> List[Tuple[int, int]]:
        return sorted(self._slots)

    def get(self, width: int, height: int) -> List[MapTuple]:
        """Tuples stored for shape ``(width, height)`` (possibly empty)."""
        return list(self._slots.get((width, height), ()))
