"""Mapping tuples: the dynamic-programming sub-solutions.

The paper associates 6-tuples with intermediate solutions; here a
:class:`MapTuple` carries the pair ``{W, H}``, the accumulated cost
components, and the PBE bookkeeping (``p_dis``, ``par_b``).

The partial pulldown structure itself is **lazy**: the DP inner loop
creates and discards far more candidates than it keeps, so a tuple built
by a combination records only a provenance back-pointer — the operator
(``"ser"``/``"par"``) and the two operand tuples.  The scalar fields are
exact without the tree; the :attr:`MapTuple.structure` property rebuilds
(and memoizes) the series/parallel tree on demand, which happens only
when a gate is materialized or a table is stored into the tree cache.
Leaf tuples (primary inputs, formed gates) are constructed with an eager
structure, terminating the recursion.

``TupleTable`` stores, per ``(W, H)`` slot, either the single best tuple
(paper mode) or a small Pareto front over ``(cost, p_dis)`` (an extension
evaluated as an ablation).  Each stored tuple is paired with its selection
key, computed exactly once, and :meth:`TupleTable.admits` exposes the
keep/reject decision on raw scalars so the engine can skip dominated
candidates before allocating anything.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Tuple

from ..domino.structure import Pulldown, parallel, series


class MapTuple:
    """One dynamic-programming sub-solution.

    Attributes
    ----------
    width, height:
        The ``{W, H}`` pair of the partial pulldown network.
    wcost:
        Model-weighted scalar cost accumulated so far (transistors with
        clock-connected devices weighted by ``k``; committed discharge
        transistors included for PBE-aware mapping).
    trans:
        Raw transistor count, including committed discharge transistors.
    disch:
        Committed p-discharge transistors inside this partial structure
        (including those of optional gates formed beneath it).
    levels:
        Maximum number of domino gate levels beneath any leaf (0 when all
        leaves are primary inputs).
    p_dis:
        Potential discharge points (must be discharged if the structure's
        bottom never reaches ground).
    p_tail:
        The subset of ``p_dis`` inside the bottom-most parallel stack
        (zero unless ``par_b``).  A series combination commits exactly
        these (plus the new junction) when the structure lands on top;
        spine junctions (``p_dis - p_tail``) keep their classification,
        matching the flattened structural analysis.
    par_b:
        True when the structure has a parallel stack at its bottom.
        Forced False by non-PBE-aware mapping (the bulk DP is blind to
        it); ``ends_par`` below is the always-true structural fact.
    has_pi:
        True when any pulldown leaf is a primary input (the formed gate
        would need an n-clock foot).
    ends_par:
        Structural ``ends_in_parallel`` of the (possibly unbuilt)
        pulldown — tracked as a scalar so the ordering rules never need
        to materialize a structure.
    op, left, right:
        Provenance back-pointer: how this tuple was combined
        (``"ser"``: ``left`` on top of ``right``; ``"par"``: ``left``
        beside ``right``).  ``None`` for leaf tuples, which carry an
        eager structure instead.
    """

    __slots__ = ("width", "height", "wcost", "trans", "disch", "levels",
                 "p_dis", "p_tail", "par_b", "has_pi", "ends_par",
                 "op", "left", "right", "_structure")

    def __init__(self, width: int, height: int, wcost: float, trans: int,
                 disch: int, levels: int, p_dis: int, par_b: bool,
                 has_pi: bool, structure: Optional[Pulldown] = None,
                 p_tail: int = 0, ends_par: Optional[bool] = None,
                 op: Optional[str] = None,
                 left: Optional["MapTuple"] = None,
                 right: Optional["MapTuple"] = None):
        if structure is None and op is None:
            raise ValueError(
                "MapTuple needs an eager structure or an (op, left, right) "
                "provenance back-pointer")
        self.width = width
        self.height = height
        self.wcost = wcost
        self.trans = trans
        self.disch = disch
        self.levels = levels
        self.p_dis = p_dis
        self.p_tail = p_tail
        self.par_b = par_b
        self.has_pi = has_pi
        self.op = op
        self.left = left
        self.right = right
        self._structure = structure
        if ends_par is None:
            if structure is not None:
                ends_par = structure.ends_in_parallel
            else:
                ends_par = True if op == "par" else right.ends_par
        self.ends_par = ends_par

    @property
    def shape(self) -> Tuple[int, int]:
        return (self.width, self.height)

    @property
    def materialized(self) -> bool:
        """True once the pulldown tree exists (leaves always do)."""
        return self._structure is not None

    @property
    def structure(self) -> Pulldown:
        """The partial pulldown network, rebuilt on demand and memoized.

        The rebuilt tree is bit-identical to what an eager combination
        would have produced: the back-pointers reference the exact
        operand tuples, and ``series``/``parallel`` are deterministic in
        their operands.
        """
        built = self._structure
        if built is None:
            if self.op == "ser":
                built = series(self.left.structure, self.right.structure)
            else:
                built = parallel(self.left.structure, self.right.structure)
            self._structure = built
        return built

    def __repr__(self) -> str:
        return (f"MapTuple(W={self.width}, H={self.height}, "
                f"wcost={self.wcost}, trans={self.trans}, "
                f"disch={self.disch}, levels={self.levels}, "
                f"p_dis={self.p_dis}, par_b={self.par_b})")


class TupleTable:
    """Per-node table of sub-solutions, keyed by ``(W, H)``.

    Parameters
    ----------
    key_fn:
        Maps a :class:`MapTuple` to a comparable selection key (provided
        by the cost model).  Lower is better.  Each key is computed at
        most once per stored tuple — slots hold ``(key, tuple)`` pairs.
    pareto:
        When true, each slot keeps every tuple that is Pareto-optimal in
        ``(key, p_dis)`` (capped at ``max_front``); otherwise each slot
        keeps the single best tuple by ``(key, p_dis)``.
    """

    def __init__(self, key_fn, pareto: bool = False, max_front: int = 4):
        self._key_fn = key_fn
        self._pareto = pareto
        self._max_front = max_front
        #: shape -> list of (selection key, tuple) pairs
        self._slots: Dict[Tuple[int, int], List[Tuple[float, MapTuple]]] = {}

    @property
    def key_fn(self):
        return self._key_fn

    @property
    def pareto(self) -> bool:
        return self._pareto

    @property
    def max_front(self) -> int:
        return self._max_front

    def raw_slots(self) -> Dict[Tuple[int, int], List[Tuple[float, MapTuple]]]:
        """The internal ``shape -> [(key, tuple), ...]`` slot map.

        Exposed for the mapping engine's inlined DP kernel, which reads
        and mutates slots directly (see ``MappingEngine._combine_into``);
        any mutation must replicate :meth:`insert`'s decisions exactly.
        """
        return self._slots

    @classmethod
    def from_slots(cls, key_fn, pareto: bool,
                   slots: List[Tuple[Tuple[int, int], List[MapTuple]]],
                   max_front: int = 4) -> "TupleTable":
        """Rebuild a finished table from ``(shape, tuples)`` pairs.

        Used by the tree cache: the pairs must be a table's final
        contents in slot-insertion order, so the rebuilt table iterates
        (and therefore maps) bit-identically to the original.
        """
        table = cls(key_fn, pareto=pareto, max_front=max_front)
        for shape, tuples in slots:
            table._slots[shape] = [(key_fn(t), t) for t in tuples]
        return table

    def slots(self) -> List[Tuple[Tuple[int, int], List[MapTuple]]]:
        """Final contents as ``(shape, tuples)`` pairs in insertion order."""
        return [(shape, [t for _, t in slot])
                for shape, slot in self._slots.items()]

    def install_front(self, shape: Tuple[int, int], entries) -> None:
        """Install a finished front for ``shape``, replacing any existing.

        The bulk write path for vectorized kernels: ``entries`` are
        ``(key, tuple)`` pairs and must arrive in exactly the order a
        sequence of :meth:`insert` calls would have left them (accept
        order, re-ranked by ``(key, p_dis)`` at each truncation) —
        slot iteration order is load-bearing for digests and the tree
        cache.  No dominance checking happens here; the caller owns
        the parity obligation, the same contract as :meth:`raw_slots`.
        """
        self._slots[shape] = list(entries)

    def export_front(self, shape: Tuple[int, int]
                     ) -> List[Tuple[float, MapTuple]]:
        """The stored ``(key, tuple)`` pairs for ``shape``, in order.

        A copy — safe to hold across further inserts.  The read half of
        the columnwise front interchange: what :meth:`install_front`
        wrote (or :meth:`insert` accumulated) comes back verbatim.
        """
        return list(self._slots.get(shape, ()))

    def admits(self, shape: Tuple[int, int], key, p_dis: int,
               p_tail: int = 0, par_b: bool = False) -> bool:
        """Would :meth:`insert` keep a candidate with these scalars?

        This is the engine's incumbent-bound fast path: the decision is
        exactly :meth:`insert`'s, but takes raw scalars, so a dominated
        candidate can be rejected before a :class:`MapTuple` (let alone a
        structure) is ever allocated.
        """
        slot = self._slots.get(shape)
        if not slot:
            return True
        if not self._pareto:
            inc_key, incumbent = slot[0]
            return (key, p_dis) < (inc_key, incumbent.p_dis)
        for kept_key, kept in slot:
            if (kept_key <= key and kept.p_dis <= p_dis
                    and kept.p_tail <= p_tail
                    and (not kept.par_b or par_b)):
                return False
        return True

    def insert(self, candidate: MapTuple, key=None) -> bool:
        """Offer ``candidate``; returns True if it was kept.

        ``key`` is the candidate's selection key when the caller already
        computed it (the engine's scalar fast path); otherwise it is
        computed here, once, and cached alongside the stored tuple.
        """
        if key is None:
            key = self._key_fn(candidate)
        slot = self._slots.setdefault(candidate.shape, [])
        if not self._pareto:
            if not slot:
                slot.append((key, candidate))
                return True
            inc_key, incumbent = slot[0]
            if (key, candidate.p_dis) < (inc_key, incumbent.p_dis):
                slot[0] = (key, candidate)
                return True
            return False
        # Pareto mode: drop the candidate if dominated, evict what it
        # dominates.  Dominance must cover every field that can influence
        # a future combination: the cost key, the potential points (both
        # total and the trailing-stack subset that series stacking
        # commits), and par_b itself — a series-ending tuple (par_b False)
        # is never worse than a parallel-ending one, since stacking below
        # a parallel-ending top commits its tail plus the junction.
        c_dis, c_tail, c_par = candidate.p_dis, candidate.p_tail, candidate.par_b
        for kept_key, kept in slot:
            if (kept_key <= key and kept.p_dis <= c_dis
                    and kept.p_tail <= c_tail
                    and (not kept.par_b or c_par)):
                return False
        slot[:] = [(kept_key, kept) for kept_key, kept in slot
                   if not (key <= kept_key and c_dis <= kept.p_dis
                           and c_tail <= kept.p_tail
                           and (not c_par or kept.par_b))]
        slot.append((key, candidate))
        if len(slot) > self._max_front:
            slot.sort(key=lambda e: (e[0], e[1].p_dis))
            del slot[self._max_front:]
        return True

    def all_tuples(self) -> Iterator[MapTuple]:
        for slot in self._slots.values():
            for _, t in slot:
                yield t

    def best(self) -> Optional[MapTuple]:
        """Overall best tuple across all slots (None if the table is empty)."""
        best_tuple = None
        best_key = None
        for slot in self._slots.values():
            for stored_key, t in slot:
                key = (stored_key, t.p_dis)
                if best_key is None or key < best_key:
                    best_key = key
                    best_tuple = t
        return best_tuple

    def __len__(self) -> int:
        return sum(len(slot) for slot in self._slots.values())

    def shapes(self) -> List[Tuple[int, int]]:
        return sorted(self._slots)

    def get(self, width: int, height: int) -> List[MapTuple]:
        """Tuples stored for shape ``(width, height)`` (possibly empty)."""
        return [t for _, t in self._slots.get((width, height), ())]
