"""End-to-end mapping flows: the three algorithms compared in the paper.

Each flow takes an arbitrary combinational :class:`LogicNetwork` (any gate
vocabulary the readers produce), runs the synthesis front end
(decompose -> sweep -> unate conversion -> sweep), and then maps with one
of:

* :func:`domino_map`      — the bulk-CMOS baseline (discharge transistors
  added by post-processing only, invisible to the optimizer);
* :func:`rs_map`          — baseline + series-stack rearrangement
  post-processing (Table I's ``RS_Map``);
* :func:`soi_domino_map`  — the paper's PBE-aware algorithm (Table II-IV's
  ``SOI_Domino_Map``).

All three share the one synthesis front end, so for a given circuit they
map the *same* unate network — exactly the paper's experimental setup.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..domino.circuit import CircuitCost
from ..network import LogicNetwork
from ..synth import UnateReport, decompose, sweep, unate_with_sweep
from .cost import CostModel
from .engine import MapperConfig, MappingEngine, MappingResult

#: The paper's pulldown limits (section VI).
PAPER_W_MAX = 5
PAPER_H_MAX = 8


@dataclass
class FlowResult:
    """A mapped circuit together with front-end reports."""

    mapping: MappingResult
    unate_report: Optional[UnateReport]

    @property
    def circuit(self):
        return self.mapping.circuit

    @property
    def cost(self) -> CircuitCost:
        return self.mapping.cost


def prepare_network(network: LogicNetwork):
    """Run the synthesis front end; returns ``(unate_network, report)``.

    The result satisfies ``unate_network.is_mappable()`` and is the common
    input handed to all three mappers.
    """
    if network.is_mappable():
        return network, None
    cleaned = sweep(decompose(network))
    unate, report = unate_with_sweep(cleaned)
    return unate, report


def _run(network: LogicNetwork, cost_model: Optional[CostModel],
         config: MapperConfig) -> FlowResult:
    unate, report = prepare_network(network)
    model = cost_model if cost_model is not None else CostModel()
    mapping = MappingEngine(unate, model, config).run()
    return FlowResult(mapping=mapping, unate_report=report)


def domino_map(network: LogicNetwork,
               cost_model: Optional[CostModel] = None,
               w_max: int = PAPER_W_MAX, h_max: int = PAPER_H_MAX) -> FlowResult:
    """The bulk-CMOS baseline ``Domino_Map``.

    The DP ignores discharge points entirely; the materialized gates then
    receive the p-discharge transistors that the structural PBE analysis
    demands (the paper's post-processing step).
    """
    config = MapperConfig(w_max=w_max, h_max=h_max, pbe_aware=False,
                          ordering="adverse")
    return _run(network, cost_model, config)


def rs_map(network: LogicNetwork,
           cost_model: Optional[CostModel] = None,
           w_max: int = PAPER_W_MAX, h_max: int = PAPER_H_MAX) -> FlowResult:
    """``RS_Map``: the baseline plus series-stack rearrangement.

    Identical DP to :func:`domino_map`, but every materialized gate is
    post-processed by :func:`repro.domino.rearrange.rearrange` before the
    discharge transistors are inserted, sinking parallel stacks toward
    ground (Table I).
    """
    config = MapperConfig(w_max=w_max, h_max=h_max, pbe_aware=False,
                          ordering="adverse", rearrange_gates=True)
    return _run(network, cost_model, config)


def soi_domino_map(network: LogicNetwork,
                   cost_model: Optional[CostModel] = None,
                   w_max: int = PAPER_W_MAX, h_max: int = PAPER_H_MAX,
                   ordering: str = "paper",
                   ground_policy: str = "optimistic",
                   pareto: bool = False,
                   duplication: bool = True) -> FlowResult:
    """The paper's ``SOI_Domino_Map`` (listing 2).

    ``ordering``, ``ground_policy``, ``pareto`` and ``duplication`` expose
    the ablation switches documented in DESIGN.md; the defaults reproduce
    the paper.  ``duplication=False`` selects the duplication-free tree
    regime where the per-tree DP is exact — Table III's weighted-objective
    comparison uses it, because only for exact optima does raising the
    clock weight provably never increase the clock load.
    """
    config = MapperConfig(w_max=w_max, h_max=h_max, pbe_aware=True,
                          ordering=ordering, ground_policy=ground_policy,
                          pareto=pareto, duplication=duplication)
    return _run(network, cost_model, config)
