"""End-to-end mapping flows: the three algorithms compared in the paper.

:func:`map_network` is the single entry point: it runs the synthesis
front end (decompose -> sweep -> unate conversion -> sweep) on any
combinational :class:`LogicNetwork`, maps it with a
:class:`~repro.mapping.engine.MapperConfig` — the single source of truth
for every mapper knob — and returns a :class:`FlowResult` carrying the
mapped circuit, the front-end report, instrumentation counters, and the
wall-clock time.

The paper's three algorithms are thin presets over it:

* :func:`domino_map`      — the bulk-CMOS baseline (discharge transistors
  added by post-processing only, invisible to the optimizer);
* :func:`rs_map`          — baseline + series-stack rearrangement
  post-processing (Table I's ``RS_Map``);
* :func:`soi_domino_map`  — the paper's PBE-aware algorithm (Table II-IV's
  ``SOI_Domino_Map``).

All three share the one synthesis front end, so for a given circuit they
map the *same* unate network — exactly the paper's experimental setup.
Each preset is a named entry in :data:`FLOW_PRESETS`; the batch pipeline
(:mod:`repro.pipeline`) dispatches on those names.
"""

from __future__ import annotations

import time
import warnings
from dataclasses import dataclass, replace
from typing import Dict, Optional

from ..domino.circuit import CircuitCost
from ..errors import MappingError
from ..network import LogicNetwork
from ..pipeline.metrics import MappingStats
from ..synth import UnateReport, decompose, sweep, unate_with_sweep
from .cost import CostModel
from .engine import MapperConfig, MappingEngine, MappingResult

#: The paper's pulldown limits (section VI).
PAPER_W_MAX = 5
PAPER_H_MAX = 8

#: Named flow presets: the MapperConfig fields each flow pins.  A preset
#: only fixes what *defines* the flow; everything else stays caller
#: controlled through ``config=``.
FLOW_PRESETS: Dict[str, Dict[str, object]] = {
    "domino": {"pbe_aware": False, "ordering": "adverse",
               "rearrange_gates": False},
    "rs": {"pbe_aware": False, "ordering": "adverse",
           "rearrange_gates": True},
    "soi": {"pbe_aware": True},
}


@dataclass
class FlowResult:
    """A mapped circuit together with front-end reports and run metrics."""

    mapping: MappingResult
    unate_report: Optional[UnateReport]
    #: which preset produced this result ("custom" for raw configs)
    flow: str = "custom"
    #: wall-clock seconds for the whole flow (front end + mapping)
    elapsed_s: float = 0.0

    @property
    def circuit(self):
        return self.mapping.circuit

    @property
    def cost(self) -> CircuitCost:
        return self.mapping.cost

    @property
    def stats(self) -> MappingStats:
        """Instrumentation counters of the mapping run."""
        return self.mapping.stats

    @property
    def config(self) -> MapperConfig:
        return self.mapping.config


def prepare_network(network: LogicNetwork):
    """Run the synthesis front end; returns ``(unate_network, report)``.

    The result satisfies ``unate_network.is_mappable()`` and is the common
    input handed to all three mappers.
    """
    if network.is_mappable():
        return network, None
    cleaned = sweep(decompose(network))
    unate, report = unate_with_sweep(cleaned)
    return unate, report


def flow_config(flow: Optional[str],
                config: Optional[MapperConfig] = None,
                w_max: int = PAPER_W_MAX,
                h_max: int = PAPER_H_MAX) -> MapperConfig:
    """Resolve the effective :class:`MapperConfig` of a flow invocation.

    ``config`` supplies every knob (``w_max``/``h_max`` are only used
    when it is None); the named ``flow`` preset then pins the fields that
    define that algorithm.  ``flow=None`` applies no preset: the config
    is taken verbatim.
    """
    if config is None:
        config = MapperConfig(w_max=w_max, h_max=h_max)
    if flow is None:
        return config
    try:
        preset = FLOW_PRESETS[flow]
    except KeyError:
        raise MappingError(
            f"unknown flow {flow!r}; expected one of "
            f"{', '.join(FLOW_PRESETS)}") from None
    return replace(config, **preset)


def map_network(network: LogicNetwork,
                flow: Optional[str] = None,
                cost_model: Optional[CostModel] = None,
                config: Optional[MapperConfig] = None,
                *,
                w_max: int = PAPER_W_MAX,
                h_max: int = PAPER_H_MAX,
                cache=None,
                stats: Optional[MappingStats] = None) -> FlowResult:
    """Map ``network`` end-to-end: the unified entry point.

    Parameters
    ----------
    flow:
        Optional preset name (``"domino"``, ``"rs"``, ``"soi"``); None
        maps with ``config`` exactly as given (default
        :class:`MapperConfig`, which is the SOI paper configuration).
    cost_model:
        Objective; defaults to plain transistor area.
    config:
        The single source of truth for mapper knobs; a named flow pins
        only its defining fields on top of it.
    w_max, h_max:
        Convenience pulldown limits, used only when ``config`` is None.
    cache:
        Optional :class:`~repro.pipeline.TreeCache` shared across runs.
    stats:
        Optional :class:`~repro.pipeline.MappingStats` to accumulate into.
    """
    if isinstance(flow, CostModel):  # pre-1.1 map_network(net, cost_model)
        warnings.warn(
            "map_network(network, cost_model) is deprecated; pass "
            "cost_model=... by keyword (the second positional argument "
            "is now the flow name)", DeprecationWarning, stacklevel=2)
        cost_model, flow = flow, None
    started = time.perf_counter()
    effective = flow_config(flow, config, w_max=w_max, h_max=h_max)
    unate, report = prepare_network(network)
    model = cost_model if cost_model is not None else CostModel()
    engine = MappingEngine(unate, model, effective, cache=cache, stats=stats)
    mapping = engine.run()
    return FlowResult(mapping=mapping, unate_report=report,
                      flow=flow or "custom",
                      elapsed_s=time.perf_counter() - started)


def domino_map(network: LogicNetwork,
               cost_model: Optional[CostModel] = None,
               w_max: int = PAPER_W_MAX, h_max: int = PAPER_H_MAX,
               config: Optional[MapperConfig] = None,
               cache=None) -> FlowResult:
    """The bulk-CMOS baseline ``Domino_Map``.

    The DP ignores discharge points entirely; the materialized gates then
    receive the p-discharge transistors that the structural PBE analysis
    demands (the paper's post-processing step).
    """
    return map_network(network, flow="domino", cost_model=cost_model,
                       config=config, w_max=w_max, h_max=h_max, cache=cache)


def rs_map(network: LogicNetwork,
           cost_model: Optional[CostModel] = None,
           w_max: int = PAPER_W_MAX, h_max: int = PAPER_H_MAX,
           config: Optional[MapperConfig] = None,
           cache=None) -> FlowResult:
    """``RS_Map``: the baseline plus series-stack rearrangement.

    Identical DP to :func:`domino_map`, but every materialized gate is
    post-processed by :func:`repro.domino.rearrange.rearrange` before the
    discharge transistors are inserted, sinking parallel stacks toward
    ground (Table I).
    """
    return map_network(network, flow="rs", cost_model=cost_model,
                       config=config, w_max=w_max, h_max=h_max, cache=cache)


#: The loose soi_domino_map kwargs retired in favour of ``config=``.
_SOI_LEGACY_KWARGS = ("ordering", "ground_policy", "pareto", "duplication")


def soi_domino_map(network: LogicNetwork,
                   cost_model: Optional[CostModel] = None,
                   w_max: int = PAPER_W_MAX, h_max: int = PAPER_H_MAX,
                   config: Optional[MapperConfig] = None,
                   cache=None,
                   **legacy) -> FlowResult:
    """The paper's ``SOI_Domino_Map`` (listing 2).

    The ablation switches documented in DESIGN.md (``ordering``,
    ``ground_policy``, ``pareto``, ``duplication``) live on
    :class:`MapperConfig` and are passed via ``config=``; the defaults
    reproduce the paper.  ``duplication=False`` selects the
    duplication-free tree regime where the per-tree DP is exact — Table
    III's weighted-objective comparison uses it, because only for exact
    optima does raising the clock weight provably never increase the
    clock load.

    Passing those switches as keyword arguments still works but emits a
    :class:`DeprecationWarning`.
    """
    unknown = set(legacy) - set(_SOI_LEGACY_KWARGS)
    if unknown:
        raise TypeError(
            f"soi_domino_map() got unexpected keyword arguments "
            f"{sorted(unknown)}")
    if legacy:
        warnings.warn(
            f"soi_domino_map({', '.join(sorted(legacy))}=...) is "
            "deprecated; pass config=MapperConfig(...) instead",
            DeprecationWarning, stacklevel=2)
        config = flow_config(None, config, w_max=w_max, h_max=h_max)
        config = replace(config, **legacy)
    return map_network(network, flow="soi", cost_model=cost_model,
                       config=config, w_max=w_max, h_max=h_max, cache=cache)
