"""End-to-end mapping flows: the three algorithms compared in the paper.

:func:`map_network` is the single entry point: it assembles a
:class:`~repro.flow.FlowPipeline` for the requested flow and executes it
over a typed :class:`~repro.flow.FlowContext` — synthesis front end
(decompose -> sweep -> unate conversion), the DP mapper, and the
post-processing stages (series-stack rearrangement, discharge
insertion, cost analysis) each run as a named, individually timed pass.
The returned :class:`FlowResult` carries the mapped circuit, the
front-end report, instrumentation counters, per-pass records, and the
wall-clock time.

The paper's three algorithms are declarative presets over it:

* ``domino`` — the bulk-CMOS baseline (discharge transistors added by
  post-processing only, invisible to the optimizer);
* ``rs``     — baseline + series-stack rearrangement post-processing
  (Table I's ``RS_Map``);
* ``soi``    — the paper's PBE-aware algorithm (Table II-IV's
  ``SOI_Domino_Map``).

A preset pins two things: the :class:`MapperConfig` fields that define
the algorithm (:data:`FLOW_PRESETS`) and the pass list it executes
(:data:`FLOW_PASSES`).  All three share the one synthesis front end, so
for a given circuit they map the *same* unate network — exactly the
paper's experimental setup.  The batch pipeline (:mod:`repro.pipeline`)
dispatches on the preset names.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence, Tuple

from ..domino.circuit import CircuitCost
from ..errors import MappingError
from ..network import LogicNetwork
from ..pipeline.metrics import MappingStats
from ..synth import UnateReport, decompose, sweep, unate_with_sweep
from .cost import CostModel
from .engine import MapperConfig, MappingResult

#: The paper's pulldown limits (section VI).
PAPER_W_MAX = 5
PAPER_H_MAX = 8

#: Named flow presets: the MapperConfig fields each flow pins.  A preset
#: only fixes what *defines* the flow; everything else stays caller
#: controlled through ``config=``.
FLOW_PRESETS: Dict[str, Dict[str, object]] = {
    "domino": {"pbe_aware": False, "ordering": "adverse",
               "rearrange_gates": False},
    "rs": {"pbe_aware": False, "ordering": "adverse",
           "rearrange_gates": True},
    "soi": {"pbe_aware": True},
}

#: Shared synthesis front end (identical across flows, by construction).
FRONTEND_PASSES: Tuple[str, ...] = ("decompose", "sweep", "unate")

#: The pass list each preset executes.  ``domino`` and ``soi`` omit the
#: rearrangement stage their configs disable anyway; ``custom`` (the
#: ``flow=None`` path) keeps it, gated on ``config.rearrange_gates``.
FLOW_PASSES: Dict[str, Tuple[str, ...]] = {
    "domino": (*FRONTEND_PASSES, "dp-map", "discharge", "analyze"),
    "rs": (*FRONTEND_PASSES, "dp-map", "rearrange", "discharge", "analyze"),
    "soi": (*FRONTEND_PASSES, "dp-map", "discharge", "analyze"),
    "custom": (*FRONTEND_PASSES, "dp-map", "rearrange", "discharge",
               "analyze"),
}


def flow_passes(flow: Optional[str]) -> Tuple[str, ...]:
    """The pass list of a named flow (``None`` -> the custom list)."""
    try:
        return FLOW_PASSES[flow or "custom"]
    except KeyError:
        raise MappingError(
            f"unknown flow {flow!r}; expected one of "
            f"{', '.join(FLOW_PRESETS)}") from None


@dataclass
class FlowResult:
    """A mapped circuit together with front-end reports and run metrics."""

    mapping: MappingResult
    unate_report: Optional[UnateReport]
    #: which preset produced this result ("custom" for raw configs)
    flow: str = "custom"
    #: wall-clock seconds for the whole flow (front end + mapping)
    elapsed_s: float = 0.0
    #: per-pass observability records, in execution order
    passes: List = field(default_factory=list)
    #: root :class:`~repro.obs.Span` of the run (pass spans nested
    #: inside, thresholded node spans under ``dp-map``)
    trace: Optional[object] = None
    #: the run's :class:`~repro.obs.MetricsRegistry`; ``stats`` is
    #: re-derivable from it (``metrics.mapping_stats()``)
    metrics: Optional[object] = None

    @property
    def circuit(self):
        return self.mapping.circuit

    @property
    def cost(self) -> CircuitCost:
        return self.mapping.cost

    @property
    def stats(self) -> MappingStats:
        """Instrumentation counters of the mapping run."""
        return self.mapping.stats

    @property
    def config(self) -> MapperConfig:
        return self.mapping.config

    def pass_times(self) -> Dict[str, float]:
        """Pass name -> wall-clock seconds, for passes that ran."""
        return {r.name: r.elapsed_s for r in self.passes if r.ran}

    def as_dict(self) -> Dict[str, object]:
        """JSON-ready rendering: the unified report schema.

        Delegates to :func:`repro.obs.report.flow_report`, so
        ``soidomino map --json``, ``batch --json`` and the bench
        payload all share top-level keys (``schema_version``,
        ``circuit``, ``flow``, ``stats``, ``timings``); the pre-obs
        keys survive as aliases.
        """
        from ..obs import flow_report

        return flow_report(self)


def prepare_network(network: LogicNetwork):
    """Run the synthesis front end; returns ``(unate_network, report)``.

    The result satisfies ``unate_network.is_mappable()`` and is the common
    input handed to all three mappers.  (The flow pipeline's front-end
    passes execute this exact recipe stage by stage.)
    """
    if network.is_mappable():
        return network, None
    cleaned = sweep(decompose(network))
    unate, report = unate_with_sweep(cleaned)
    return unate, report


def flow_config(flow: Optional[str],
                config: Optional[MapperConfig] = None,
                w_max: int = PAPER_W_MAX,
                h_max: int = PAPER_H_MAX) -> MapperConfig:
    """Resolve the effective :class:`MapperConfig` of a flow invocation.

    ``config`` supplies every knob (``w_max``/``h_max`` are only used
    when it is None); the named ``flow`` preset then pins the fields that
    define that algorithm.  ``flow=None`` applies no preset: the config
    is taken verbatim.
    """
    if config is None:
        config = MapperConfig(w_max=w_max, h_max=h_max)
    if flow is None:
        return config
    try:
        preset = FLOW_PRESETS[flow]
    except KeyError:
        raise MappingError(
            f"unknown flow {flow!r}; expected one of "
            f"{', '.join(FLOW_PRESETS)}") from None
    return replace(config, **preset)


def build_flow_pipeline(flow: Optional[str] = None,
                        passes: Optional[Sequence[str]] = None):
    """The :class:`~repro.flow.FlowPipeline` a flow invocation executes.

    ``passes`` overrides the preset's pass list (power users composing
    their own stage sequence); the default is :func:`flow_passes`.
    """
    from ..flow import FlowPipeline

    return FlowPipeline(passes if passes is not None else flow_passes(flow),
                        name=flow or "custom")


def map_network(network: LogicNetwork,
                flow: Optional[str] = None,
                cost_model: Optional[CostModel] = None,
                config: Optional[MapperConfig] = None,
                *,
                w_max: int = PAPER_W_MAX,
                h_max: int = PAPER_H_MAX,
                cache=None,
                stats: Optional[MappingStats] = None,
                passes: Optional[Sequence[str]] = None,
                checkpoint_dir: Optional[str] = None,
                tracer=None,
                metrics=None) -> FlowResult:
    """Map ``network`` end-to-end: the unified entry point.

    Parameters
    ----------
    flow:
        Optional preset name (``"domino"``, ``"rs"``, ``"soi"``); None
        maps with ``config`` exactly as given (default
        :class:`MapperConfig`, which is the SOI paper configuration).
    cost_model:
        Objective; defaults to plain transistor area.
    config:
        The single source of truth for mapper knobs; a named flow pins
        only its defining fields on top of it.
    w_max, h_max:
        Convenience pulldown limits, used only when ``config`` is None.
    cache:
        Optional :class:`~repro.pipeline.TreeCache` shared across runs.
    stats:
        Optional :class:`~repro.pipeline.MappingStats` to accumulate into.
    passes:
        Optional explicit pass list overriding the flow's preset.
    checkpoint_dir:
        Optional directory for checkpoint/resume: artifacts are
        serialized after every pass, and a rerun pointing at the same
        directory resumes after the last completed pass.
    tracer:
        Optional :class:`~repro.obs.Tracer` to record into (the CLI
        passes one covering the whole invocation); a private tracer is
        created otherwise.  The run's root span — one ``flow`` span
        with nested pass and node spans — lands on
        :attr:`FlowResult.trace` either way.
    metrics:
        Optional :class:`~repro.obs.MetricsRegistry` to publish into; a
        private registry is created otherwise and exposed on
        :attr:`FlowResult.metrics`.  The run's
        :class:`~repro.pipeline.MappingStats` counters are published
        into it, so summaries can be re-derived from the registry.
    """
    if isinstance(flow, CostModel):
        # removed in 0.5 (was a pre-1.1 deprecation shim): the second
        # positional argument is the flow name
        raise TypeError(
            "map_network() no longer accepts a CostModel as its second "
            "positional argument; pass cost_model=... by keyword")
    from ..flow import FlowCheckpoint, FlowContext
    from ..obs import MetricsRegistry, Tracer

    started = time.perf_counter()
    effective = flow_config(flow, config, w_max=w_max, h_max=h_max)
    model = cost_model if cost_model is not None else CostModel()
    pipeline = build_flow_pipeline(flow, passes)
    tracer = tracer if tracer is not None else Tracer()
    metrics = metrics if metrics is not None else MetricsRegistry()
    ctx = FlowContext.for_network(network, effective, model,
                                  flow=flow or "custom", cache=cache,
                                  stats=stats, tracer=tracer,
                                  metrics=metrics)
    checkpoint = (FlowCheckpoint(checkpoint_dir)
                  if checkpoint_dir is not None else None)
    with tracer.span(f"flow:{network.name}", category="flow",
                     circuit=network.name,
                     flow=flow or "custom") as flow_span:
        records = pipeline.run(ctx, checkpoint=checkpoint)
    metrics.record_mapping_stats(ctx.stats)
    return FlowResult(mapping=ctx.get("mapping"),
                      unate_report=ctx.artifacts.get("unate_report"),
                      flow=flow or "custom",
                      elapsed_s=time.perf_counter() - started,
                      passes=records,
                      trace=flow_span,
                      metrics=metrics)


def domino_map(network: LogicNetwork,
               cost_model: Optional[CostModel] = None,
               w_max: int = PAPER_W_MAX, h_max: int = PAPER_H_MAX,
               config: Optional[MapperConfig] = None,
               cache=None) -> FlowResult:
    """The bulk-CMOS baseline ``Domino_Map``.

    The DP ignores discharge points entirely; the materialized gates then
    receive the p-discharge transistors that the structural PBE analysis
    demands (the paper's post-processing step).
    """
    return map_network(network, flow="domino", cost_model=cost_model,
                       config=config, w_max=w_max, h_max=h_max, cache=cache)


def rs_map(network: LogicNetwork,
           cost_model: Optional[CostModel] = None,
           w_max: int = PAPER_W_MAX, h_max: int = PAPER_H_MAX,
           config: Optional[MapperConfig] = None,
           cache=None) -> FlowResult:
    """``RS_Map``: the baseline plus series-stack rearrangement.

    Identical DP to :func:`domino_map`, but every selected gate is
    post-processed by the ``rearrange`` pass
    (:func:`repro.domino.rearrange.rearrange`) before the discharge
    transistors are inserted, sinking parallel stacks toward ground
    (Table I).
    """
    return map_network(network, flow="rs", cost_model=cost_model,
                       config=config, w_max=w_max, h_max=h_max, cache=cache)


def soi_domino_map(network: LogicNetwork,
                   cost_model: Optional[CostModel] = None,
                   w_max: int = PAPER_W_MAX, h_max: int = PAPER_H_MAX,
                   config: Optional[MapperConfig] = None,
                   cache=None) -> FlowResult:
    """The paper's ``SOI_Domino_Map`` (listing 2).

    The ablation switches documented in DESIGN.md (``ordering``,
    ``ground_policy``, ``pareto``, ``duplication``) live on
    :class:`MapperConfig` and are passed via ``config=``; the defaults
    reproduce the paper.  ``duplication=False`` selects the
    duplication-free tree regime where the per-tree DP is exact — Table
    III's weighted-objective comparison uses it, because only for exact
    optima does raising the clock weight provably never increase the
    clock load.  (The pre-0.5 loose keyword spellings of those switches
    were removed on schedule.)
    """
    return map_network(network, flow="soi", cost_model=cost_model,
                       config=config, w_max=w_max, h_max=h_max, cache=cache)
