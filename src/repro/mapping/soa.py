"""Structure-of-arrays DP kernel: the combine step as numpy columns.

The reference kernel walks feasible fanin pairs one at a time, pricing
and bound-checking each candidate against its ``{W,H}`` slot.  This
kernel instead materializes the whole candidate batch of one combine
call as parallel numpy columns — just the *selection* columns (shape
id, key, ``p_dis``, ``p_tail``, ``par_b``) plus operand-index
provenance — and reduces each slot with vectorized selection.  Only the
surviving tuples (a handful per slot) are ever materialized back into
:class:`MapTuple` objects, their scalar fields gathered straight from
the generation columns (whose arithmetic is the reference's, so the
values are bit-equal), so the per-candidate Python object overhead
disappears from the hot path.

Bit-identity with the reference kernel is the contract (DESIGN.md §12):

* Candidate *generation order* is preserved: ``np.nonzero`` on the
  row-major feasibility mask enumerates pairs a-major then b, exactly
  the reference loops; exhaustive ordering interleaves the two stacking
  orders of each pair as adjacent candidates.
* All scalar arithmetic is elementwise IEEE-754 double ops in the exact
  association the reference uses, so every ``wcost`` and selection key
  is bit-equal to its scalar twin.
* Single mode (and non-PBE pareto, whose slot front provably stays a
  singleton and degenerates to the same strict-min selection): the slot
  winner is the *first occurrence* of the lexicographic minimum of
  ``(key, p_dis)`` — one stable ``np.lexsort`` — which is precisely
  what the reference's strict-``<`` incumbent replacement converges to.
  Accept events (for stats parity) are counted with a segmented prefix
  minimum over the lex ranks, no per-group Python loop.  When the keys
  fit an exact integer image (integral costs, or float32-exact values),
  ``(key, p_dis)`` packs into one int64 word and the whole selection
  runs as a packed segmented prefix minimum with a single one-pass
  radix argsort on the shape id.  Realistic cost models defeat the
  pack — fanout amortization (``wcost / fanout`` in the area-flow
  seed) makes most keys binary-infinite fractions — so the workhorse
  is the sort path: a monotone uint16-digit image of the f64 key keeps
  ``np.lexsort`` on its radix path end to end (sticky per-run downgrade
  ladder int16 -> f32 image -> f64 image, re-validated every batch).
* PBE pareto mode: the bounded front (``max_front`` truncation) is a
  sequential recurrence — dropping a tuple can resurrect one it would
  have dominated, so candidates cannot be reduced independently — but
  it is sequential only *within* a slot.  The reducer runs the
  recurrence columnwise across slots: step ``r`` applies every slot's
  ``r``-th surviving candidate at once against a fixed-width
  ``(max_front + 1, slots)`` front array of packed int64 words.  Each
  word carries the dominance fields as guarded bit fields — dense
  per-slot key rank (ranks preserve every ``<=`` the dominance test
  asks while making fractional keys exact small ints), ``p_dis``,
  ``p_tail``, ``par_b`` — plus the insertion stamp, so one subtract /
  mask / compare per step evaluates the componentwise dominance of
  all fields at once (a field's guard bit survives ``(cand | guards)
  - front`` exactly when the field did not borrow, i.e. front <=
  cand), dead columns hold an all-fields-max sentinel that can never
  dominate and always sorts last, and the ``(key, p_dis, stamp)``
  sort-truncate past ``max_front`` is a single integer argsort of
  the shifted pack — the stamp tie-break reproduces the reference's
  stable list sort (list order == insertion order) bit-exactly.
  A sound vectorized pre-reject shrinks the replay set
  first: at any point, some live front entry is at least as strong
  (componentwise) as the prefix lexicographic-minimum candidate of
  the slot — such an entry can be evicted only by a still-stronger
  one and is never truncated, because at most two mutually
  non-dominated entries can tie at the lex minimum while the sort
  keeps ``max_front >= 4`` (the pre-reject is disabled for smaller
  caps) — so any candidate that entry dominates is rejected no matter
  how the front evolved.  Slots are processed longest-first so the
  still-active rows of every step are a prefix of the state arrays;
  once fewer than ``_PARETO_TAIL`` slots still hold candidates, the
  stragglers finish on a scalar replay of the same packed words
  (Python ints do the identical guard-bit test) seeded from the
  array state — same decisions, none of the per-step dispatch
  overhead on tiny row sets.  Winning tuples materialize through
  one batched gather at the end; no operand Python object is touched
  until binding.
* Slot dict order is the shapes' first-candidate order, matching the
  reference's create-on-first-arrival — load-bearing because the tree
  cache serializes tables in slot-insertion order.

Stats parity: ``tuples_created``/``tuples_pruned``/``bound_skips`` are
reproduced exactly, so the auto kernel can mix both kernels within one
run without observable drift.
"""

from __future__ import annotations

from bisect import bisect_right
from operator import attrgetter
from typing import List

import numpy as np

from .._compat import deprecated
from .kernel import metric_fast_path
from .tuples import MapTuple, TupleTable


def make_soa_kernel() -> "SoAKernel":
    """A fresh :class:`SoAKernel`, the registry's construction path.

    The only supported way to instantiate the kernel: direct
    ``SoAKernel()`` construction is deprecated (remove_in 0.7) in favor
    of the kernel registry, and the built-in factories route here.
    """
    kernel = SoAKernel.__new__(SoAKernel)
    kernel._init()
    return kernel


#: The MapTuple fields ``_cols`` gathers, in column order.
_COL_FIELDS = attrgetter("width", "height", "wcost", "levels", "p_dis",
                         "p_tail", "par_b", "ends_par", "trans", "disch",
                         "has_pi")

#: uint16 digits of a uint64/uint32, least significant first
#: (endian-aware).
_DIGITS = (0, 1, 2, 3) if np.little_endian else (3, 2, 1, 0)
_DIGITS32 = (0, 1) if np.little_endian else (1, 0)
_SIGN64 = np.uint64(1 << 63)
_SIGN32 = np.uint32(1 << 31)
_U63 = np.uint64(63)
_U31 = np.uint32(31)


class SoAKernel:
    """The vectorized peer of :class:`~repro.mapping.kernel.ReferenceKernel`."""

    name = "soa"
    active = "soa"

    #: Below this many still-active slots the columnwise pareto loop
    #: hands the remaining candidates to the scalar replay: one step of
    #: the loop is ~20 numpy dispatches regardless of row count, which
    #: costs more than that many scalar insert decisions.
    _PARETO_TAIL = 48

    def __init__(self):
        deprecated(
            "constructing repro.mapping.soa.SoAKernel directly is "
            "deprecated; select it through the kernel registry instead "
            "(MapperConfig(kernel='soa'), or register_kernel() for a "
            "custom factory)", remove_in="0.7")
        self._init()

    def _init(self):
        self._engine = None
        self._batches = 0
        self._candidates = 0
        self._max_batch = 0
        #: id(view) -> column tuple; views are memoized per node by the
        #: engine for the whole run, so ids are stable until finalize().
        self._vcols = {}

    def build(self, engine) -> None:
        self._engine = engine
        self._vcols.clear()
        config = engine.config
        self._w_max = config.w_max
        self._h_max = config.h_max
        self._hstride = config.h_max + 1
        self._pbe = config.pbe_aware
        self._pareto = config.pareto
        ordering = config.ordering
        pbe = config.pbe_aware
        self._adverse = (ordering == "adverse"
                         or (not pbe and ordering != "naive"))
        self._naive = not self._adverse and (not pbe or ordering == "naive")
        self._exhaustive = (not self._adverse and not self._naive
                            and ordering == "exhaustive")
        self._discharge = engine.model.discharge_cost()
        self._ft = np.array([False, True])
        # Shape ids and potential-point counts fit int16 for any sane
        # limit pair (p_dis is bounded by the structure's device count,
        # itself at most w_max*h_max); numpy's radix sort only covers
        # <=16-bit integers, and the radix path sorts ~4x faster than a
        # comparison sort, so it is worth gating on.
        self._i16 = (config.w_max + 1) * (config.h_max + 1) < 32000
        # Key-image ladder for _key_cols: 0 = int16 (one radix pass),
        # 1 = float32 image (two), 2 = float64 image (four).  Sticky
        # downgrade: once a batch's keys outgrow a level it never comes
        # back (the equality check still runs every batch — soundness
        # never rests on the cached level).
        self._kimg = 0
        # Compound-packing budget for _pack: (key, p_dis) as one int64
        # whose strict < is the lex order.  pd_bits bounds p_dis (device
        # count <= w_max * h_max); g_bits bounds the per-batch group
        # count (shapes <= (w_max+1) * (h_max+1)); the key gets what is
        # left of 59 bits so group offsets never overflow an int64.
        pb = max((config.w_max * config.h_max).bit_length(), 1)
        gb = ((config.w_max + 1) * (config.h_max + 1)).bit_length()
        kb = 59 - pb - gb
        self._span = 1 << pb
        self._kint_max = 1 << min(kb, 52) if kb > 0 else 0
        self._off_int = 1 << (min(kb, 52) + pb + 2)
        self._f32_ok = kb >= 32
        self._off_f32 = 1 << (32 + pb + 1)
        #: pack ladder: 0 = integer keys, 1 = float32 image, 2 = give up
        #: (rank-compressing via np.unique was tried here and lost: its
        #: comparison sort costs more than the radix lexsort it avoids)
        self._pimg = 0
        metric = metric_fast_path(engine.model)
        if metric is None:  # resolve_kernel guarantees otherwise
            raise RuntimeError(
                "SoAKernel requires the scalar metric fast path")
        self._metric = metric

    def finalize(self) -> None:
        self._vcols.clear()

    def stats(self) -> dict:
        return {"active": self.active, "soa_batches": self._batches,
                "soa_candidates": self._candidates,
                "soa_max_batch": self._max_batch}

    # ------------------------------------------------------------------
    # column extraction
    # ------------------------------------------------------------------
    def _cols(self, view: List[MapTuple]):
        cols = self._vcols.get(id(view))
        if cols is None:
            # One C-level attrgetter pass + one float64 matrix instead
            # of eleven listcomps: every field is exact in a double
            # (ints bounded far below 2**53), so the per-column casts
            # reproduce the original values bit-for-bit.
            m = np.array([_COL_FIELDS(t) for t in view],
                         dtype=np.float64).reshape(len(view), 11)
            cols = (
                m[:, 0].astype(np.int64),   # width
                m[:, 1].astype(np.int64),   # height
                m[:, 2],                    # wcost
                m[:, 3].astype(np.int64),   # levels
                m[:, 4].astype(np.int64),   # p_dis
                m[:, 5].astype(np.int64),   # p_tail
                m[:, 6] != 0.0,             # par_b
                m[:, 7] != 0.0,             # ends_par
                m[:, 8].astype(np.int64),   # trans
                m[:, 9].astype(np.int64),   # disch
                m[:, 10] != 0.0,            # has_pi
            )
            self._vcols[id(view)] = cols
        return cols

    # ------------------------------------------------------------------
    # the combine step
    # ------------------------------------------------------------------
    def combine(self, table: TupleTable, is_or: bool,
                view_a: List[MapTuple], view_b: List[MapTuple]) -> None:
        stats = self._engine.stats
        self._batches += 1
        stats.soa_batches += 1
        batch = (self._gen_or if is_or else self._gen_ser)(view_a, view_b)
        if batch is None:
            return
        n = batch["n"]
        self._candidates += n
        stats.soa_candidates += n
        if n > self._max_batch:
            self._max_batch = n
            if n > stats.soa_max_batch:
                stats.soa_max_batch = n
        if table.raw_slots():
            accepts, pruned = self._combine_seeded(table, batch, is_or,
                                                   view_a, view_b)
        elif self._pareto and self._pbe:
            accepts, pruned = self._reduce_pareto(table, batch, is_or,
                                                  view_a, view_b)
        else:
            # Without PBE bookkeeping every p field is constant across a
            # slot, so pareto dominance collapses to "key not worse":
            # the front is always the strict running (key, p_dis)
            # minimum — exactly single-mode selection.
            accepts, pruned = self._reduce_single(table, batch, is_or,
                                                  view_a, view_b)
        stats.tuples_created += n
        stats.tuples_pruned += pruned
        stats.bound_skips += pruned
        return

    # ------------------------------------------------------------------
    # candidate generation (selection columns only)
    # ------------------------------------------------------------------
    def _gen_or(self, view_a, view_b):
        aW, aH, aWC, aLV, aPD = self._cols(view_a)[:5]
        bW, bH, bWC, bLV, bPD = self._cols(view_b)[:5]
        # Row-major nonzero == the reference's a-major, b-minor loop.
        ai, bi = np.nonzero(aW[:, None] + bW[None, :] <= self._w_max)
        n = ai.size
        if n == 0:
            return None
        sid = ((aW[ai] + bW[bi]) * self._hstride
               + np.maximum(aH[ai], bH[bi]))
        wcost = aWC[ai] + bWC[bi]
        levels = np.maximum(aLV[ai], bLV[bi])
        # Inside a parallel stack every potential point rides on the
        # stack's shared bottom node: p_tail == p_dis, par_b True.
        p_dis = aPD[ai] + bPD[bi] if self._pbe else None
        return {"n": n, "sid": sid, "key": self._metric(wcost, levels),
                "p_dis": p_dis, "p_tail": p_dis, "par_b": None,
                "pair_a": ai, "pair_b": bi, "top_is_b": None,
                "wcost": wcost, "levels": levels, "committed": None}

    def _gen_ser(self, view_a, view_b):
        aW, aH, aWC, aLV, aPD, aPT, aPB, aEP = self._cols(view_a)[:8]
        bW, bH, bWC, bLV, bPD, bPT, bPB, bEP = self._cols(view_b)[:8]
        ai, bi = np.nonzero(aH[:, None] + bH[None, :] <= self._h_max)
        n0 = ai.size
        if n0 == 0:
            return None
        # Shape, base cost and levels are symmetric in the operands, so
        # they never need the top/bottom pick below.
        sid = (np.maximum(aW[ai], bW[bi]) * self._hstride
               + (aH[ai] + bH[bi]))
        wbase = aWC[ai] + bWC[bi]
        levels = np.maximum(aLV[ai], bLV[bi])

        if not self._pbe:
            # No committed discharges: both stacking orders share every
            # scalar, the ordering rule only affects provenance.
            top_is_b = (bEP[bi] & ~aEP[ai]) if self._adverse else None
            return {"n": n0, "sid": sid,
                    "key": self._metric(wbase, levels),
                    "p_dis": None, "p_tail": None, "par_b": None,
                    "pair_a": ai, "pair_b": bi, "top_is_b": top_is_b,
                    "wcost": wbase, "levels": levels, "committed": None}

        aPDs, bPDs = aPD[ai], bPD[bi]
        aPTs, bPTs = aPT[ai], bPT[bi]
        aPBs, bPBs = aPB[ai], bPB[bi]
        if self._exhaustive:
            # Both stacking orders per pair, as adjacent candidates in
            # the reference's (a,b)-then-(b,a) order.
            def ilv(xa, xb):
                out = np.empty(2 * n0, dtype=xa.dtype)
                out[0::2] = xa
                out[1::2] = xb
                return out

            tPD, bPD_ = ilv(aPDs, bPDs), ilv(bPDs, aPDs)
            tPT, bPT_ = ilv(aPTs, bPTs), ilv(bPTs, aPTs)
            tPB, bPB_ = ilv(aPBs, bPBs), ilv(bPBs, aPBs)
            sid = np.repeat(sid, 2)
            wbase = np.repeat(wbase, 2)
            levels = np.repeat(levels, 2)
            pair_a = np.repeat(ai, 2)
            pair_b = np.repeat(bi, 2)
            top_is_b = np.tile(self._ft, n0)
            n = 2 * n0
        else:
            if self._adverse:
                # Bulk-CMOS habit: the parallel stack rises toward the
                # dynamic node.
                swap = bEP[bi] & ~aEP[ai]
            elif self._naive:
                swap = None
            else:
                # The paper's rule: a parallel-stack-bearing operand
                # sinks to the bottom; with both or neither, the operand
                # with more potential discharge points sinks.
                swap = np.where(aPBs != bPBs, aPBs, aPDs >= bPDs)
            if swap is None:
                tPD, bPD_ = aPDs, bPDs
                tPT, bPT_ = aPTs, bPTs
                tPB, bPB_ = aPBs, bPBs
            else:
                tPD, bPD_ = np.where(swap, bPDs, aPDs), np.where(swap, aPDs, bPDs)
                tPT, bPT_ = np.where(swap, bPTs, aPTs), np.where(swap, aPTs, bPTs)
                tPB, bPB_ = np.where(swap, bPBs, aPBs), np.where(swap, aPBs, bPBs)
            pair_a, pair_b, top_is_b = ai, bi, swap
            n = n0
        # A parallel-ending top commits its trailing-stack points plus
        # the new junction; a series-ending top adds the junction to the
        # spine as a new potential point.
        committed = np.where(tPB, tPT + 1, 0)
        p_dis = np.where(tPB, (tPD - tPT) + bPD_, tPD + 1 + bPD_)
        # Same association as the reference: (top + bottom) + committed*d.
        wcost = wbase + committed * self._discharge
        return {"n": n, "sid": sid, "key": self._metric(wcost, levels),
                "p_dis": p_dis, "p_tail": bPT_, "par_b": bPB_,
                "pair_a": pair_a, "pair_b": pair_b, "top_is_b": top_is_b,
                "wcost": wcost, "levels": levels, "committed": committed}

    # ------------------------------------------------------------------
    # survivor materialization (reference's exact scalar arithmetic)
    # ------------------------------------------------------------------
    def _mat_or(self, a: MapTuple, b: MapTuple) -> MapTuple:
        p_dis = a.p_dis + b.p_dis if self._pbe else 0
        return MapTuple(
            a.width + b.width, max(a.height, b.height),
            a.wcost + b.wcost, a.trans + b.trans, a.disch + b.disch,
            max(a.levels, b.levels), p_dis, True,
            a.has_pi or b.has_pi, p_tail=p_dis, ends_par=True,
            op="par", left=a, right=b)

    def _mat_ser(self, top: MapTuple, bottom: MapTuple) -> MapTuple:
        if self._pbe:
            if top.par_b:
                committed = top.p_tail + 1
                p_dis = (top.p_dis - top.p_tail) + bottom.p_dis
            else:
                committed = 0
                p_dis = top.p_dis + 1 + bottom.p_dis
            p_tail = bottom.p_tail
            par_b = bottom.par_b
        else:
            committed = 0
            p_dis = 0
            p_tail = 0
            par_b = False
        return MapTuple(
            max(top.width, bottom.width), top.height + bottom.height,
            (top.wcost + bottom.wcost) + committed * self._discharge,
            top.trans + bottom.trans + committed,
            top.disch + bottom.disch + committed,
            max(top.levels, bottom.levels), p_dis, par_b,
            top.has_pi or bottom.has_pi, p_tail=p_tail,
            ends_par=bottom.ends_par, op="ser", left=top, right=bottom)

    def _mat(self, batch, c: int, is_or: bool,
             view_a, view_b) -> MapTuple:
        a = view_a[int(batch["pair_a"][c])]
        b = view_b[int(batch["pair_b"][c])]
        if is_or:
            return self._mat_or(a, b)
        tib = batch["top_is_b"]
        if tib is not None and tib[c]:
            return self._mat_ser(b, a)
        return self._mat_ser(a, b)

    def _mat_many(self, batch, idx, is_or: bool,
                  view_a, view_b) -> List[MapTuple]:
        """Materialize the tuples at batch positions ``idx``, in order.

        Every scalar field is gathered from the generation columns
        (already bit-exact); only the provenance back-pointers touch the
        operand objects.  One vectorized gather per batch replaces the
        per-winner scalar recompute of :meth:`_mat_ser`/:meth:`_mat_or`.
        """
        acols = self._cols(view_a)
        bcols = self._cols(view_b)
        pa = batch["pair_a"][idx]
        pb = batch["pair_b"][idx]
        trans = acols[8][pa] + bcols[8][pb]
        disch = acols[9][pa] + bcols[9][pb]
        committed = batch["committed"]
        if committed is not None:
            cm = committed[idx]
            trans = trans + cm
            disch = disch + cm
        sid = batch["sid"][idx]
        wl = (sid // self._hstride).tolist()
        hl = (sid % self._hstride).tolist()
        wcost = batch["wcost"][idx].tolist()
        levels = batch["levels"][idx].tolist()
        transl = trans.tolist()
        dischl = disch.tolist()
        haspil = (acols[10][pa] | bcols[10][pb]).tolist()
        p_dis = batch["p_dis"]
        if p_dis is None:
            pdl = ptl = None
        else:
            pdl = p_dis[idx].tolist()
            p_tail = batch["p_tail"]
            ptl = pdl if p_tail is p_dis else p_tail[idx].tolist()
        par_b = batch["par_b"]
        parl = par_b[idx].tolist() if par_b is not None else None
        m = len(wl)
        if pdl is None:
            pdl = ptl = [0] * m
        nones = [None] * m
        # ``map(MapTuple, ...)`` drives the construction loop in C with
        # all-positional calls (structure=None slot included) — no
        # per-tuple bytecode, measurable at this call volume.
        lefts = list(map(view_a.__getitem__, pa.tolist()))
        rights = list(map(view_b.__getitem__, pb.tolist()))
        if is_or:
            trues = [True] * m
            return list(map(MapTuple, wl, hl, wcost, transl, dischl,
                            levels, pdl, trues, haspil, nones, ptl,
                            trues, ["par"] * m, lefts, rights))
        if parl is None:
            parl = [False] * m
        tib = batch["top_is_b"]
        if tib is not None:
            for j in np.flatnonzero(tib[idx]).tolist():
                lefts[j], rights[j] = rights[j], lefts[j]
        # ends_par (the second ``nones``) is derived in
        # MapTuple.__init__ from right.ends_par, exactly the bottom's.
        return list(map(MapTuple, wl, hl, wcost, transl, dischl,
                        levels, pdl, parl, haspil, nones, ptl, nones,
                        ["ser"] * m, lefts, rights))

    # ------------------------------------------------------------------
    # sorting (shared by both reducers)
    # ------------------------------------------------------------------
    def _sort_cols(self, batch):
        """``(sid, p_dis)`` as sort columns, int16 when limits allow.

        numpy's stable argsort is a radix sort only for <=16-bit
        integers; the reducers sort these columns once or twice per
        batch, so the one-pass downcast pays for itself many times.
        """
        sid = batch["sid"]
        p_dis = batch["p_dis"]
        if not self._i16:
            return sid, p_dis
        return (sid.astype(np.int16),
                None if p_dis is None else p_dis.astype(np.int16))

    def _order(self, sid_s, key, pd_s):
        """Stable order by (shape id, key, p_dis, arrival).

        The float key is mapped to its order-isomorphic unsigned-int
        image and split into uint16 digits, so the whole lexsort runs on
        numpy's radix path (LSD radix over the digits reproduces the
        exact integer — hence float — order).  When every key survives a
        float32 round trip (distinct doubles stay distinct, order and
        equality intact — always true for integer-like area costs) the
        image needs two digits instead of four.  Zero keys are
        normalized to one image so a -0.0/+0.0 tie cannot disturb
        arrival order.
        """
        if self._i16:
            cols = self._key_cols(key) + (sid_s,)
            if pd_s is not None:
                cols = (pd_s,) + cols
            return np.lexsort(cols)
        if pd_s is None:
            return np.lexsort((key, sid_s))
        return np.lexsort((pd_s, key, sid_s))

    def _pack(self, key, pd_s):
        """``(pack, off)``: int64 image of ``(key, p_dis)``, or None.

        Strict ``<`` on the pack is exactly lexicographic
        ``(key, p_dis)``, which turns per-slot winner selection and
        accept counting into a segmented prefix minimum in arrival
        order — no sort over the key at all.  Integer-valued keys (all
        built-in cost models) embed directly; otherwise a verified
        float32 round trip supplies an order-isomorphic uint32 image.
        ``off`` is a power of two exceeding the pack range, used to
        separate shape groups under one global running minimum.  Sticky
        downgrade as in :meth:`_key_cols`; returns None (caller falls
        back to the sort path) when the key fits neither form.
        """
        lvl = self._pimg
        if lvl == 2:
            return None
        with np.errstate(invalid="ignore"):
            if lvl == 0:
                ki = key.astype(np.int64)
                if (np.array_equal(ki, key)
                        and int(ki.min()) > -self._kint_max
                        and int(ki.max()) < self._kint_max):
                    pack = ki * self._span
                    if pd_s is not None:
                        pack += pd_s
                    return pack, self._off_int
                self._pimg = lvl = 1
            if lvl == 1 and self._f32_ok:
                k32 = key.astype(np.float32)
                if np.array_equal(k32, key):
                    kb = k32.view(np.uint32)
                    ku = np.where(kb >> _U31 != 0, ~kb, kb | _SIGN32)
                    ku[k32 == 0.0] = _SIGN32
                    pack = ku.astype(np.int64) * self._span
                    if pd_s is not None:
                        pack += pd_s
                    return pack, self._off_f32
        self._pimg = 2
        return None

    def _key_cols(self, key):
        """Radix digits of ``key``, least significant first.

        Integer-valued keys below 2**15 (plain area costs) sort in one
        int16 pass; keys that survive a float32 round trip in two; the
        general double in four.  Each cast is verified by exact
        equality, so a passing level is a proof that distinct doubles
        stay distinct with order intact.
        """
        lvl = self._kimg
        with np.errstate(invalid="ignore"):
            if lvl == 0:
                k16 = key.astype(np.int16)
                if np.array_equal(k16, key):
                    return (k16,)
                self._kimg = lvl = 1
            if lvl == 1:
                k32 = key.astype(np.float32)
                if np.array_equal(k32, key):
                    kb = k32.view(np.uint32)
                    ku = np.where(kb >> _U31 != 0, ~kb, kb | _SIGN32)
                    ku[k32 == 0.0] = _SIGN32
                    d = ku.view(np.uint16).reshape(-1, 2)
                    return (d[:, _DIGITS32[0]], d[:, _DIGITS32[1]])
                self._kimg = 2
        kb = key.view(np.uint64)
        ku = np.where(kb >> _U63 != 0, ~kb, kb | _SIGN64)
        ku[key == 0.0] = _SIGN64
        d = ku.view(np.uint16).reshape(-1, 4)
        return (d[:, _DIGITS[0]], d[:, _DIGITS[1]],
                d[:, _DIGITS[2]], d[:, _DIGITS[3]])

    # ------------------------------------------------------------------
    # slot grouping (shared by both reducers)
    # ------------------------------------------------------------------
    def _group(self, sid, n):
        """``(gorder, newgrp, starts, seg)`` for the batch's shape groups.

        ``gorder`` sorts candidates stably by shape id (arrival order
        within each group); ``starts`` bounds the groups; ``seg`` is the
        per-position group index in that layout.
        """
        gorder = np.argsort(sid, kind="stable")
        sid_g = sid[gorder]
        newgrp = np.empty(n, dtype=bool)
        newgrp[0] = True
        np.not_equal(sid_g[1:], sid_g[:-1], out=newgrp[1:])
        starts = np.flatnonzero(newgrp)
        seg = np.cumsum(newgrp)
        seg -= 1
        return gorder, sid_g, starts, seg

    def _reduce_single(self, table, batch, is_or, view_a, view_b):
        n = batch["n"]
        sid = batch["sid"]
        key = batch["key"]
        sid_s, pd_s = self._sort_cols(batch)
        packoff = self._pack(key, pd_s) if self._i16 else None
        if packoff is not None:
            # Packed path: strict < on the int64 pack is lexicographic
            # (key, p_dis), so the reference's strict-< incumbent
            # replacement is a running minimum of the pack in arrival
            # order.  One stable (radix) argsort on the shape id lays
            # candidates out group-by-group with arrival order intact;
            # per-group offsets larger than the pack range then let a
            # single global prefix minimum reset at group boundaries.
            pack, off = packoff
            gorder = np.argsort(sid_s, kind="stable")
            sid_g = sid_s[gorder]
            newgrp = np.empty(n, dtype=bool)
            newgrp[0] = True
            np.not_equal(sid_g[1:], sid_g[:-1], out=newgrp[1:])
            starts = np.flatnonzero(newgrp)
            G = starts.size
            seg = np.cumsum(newgrp)
            rr = pack[gorder] + (G + 1 - seg) * off
            cm = np.minimum.accumulate(rr)
            # Accept events (stats parity): every strict running
            # minimum (group firsts included, via the offset drop).
            accepts = 1 + int(np.count_nonzero(rr[1:] < cm[:-1]))
            # The slot winner is the *first* position attaining the
            # group's final minimum: cm is non-increasing, so within a
            # group cm == final-min marks a suffix whose length counts
            # back to the first attainment.
            ends = np.empty(G, dtype=np.int64)
            ends[:-1] = starts[1:]
            ends[-1] = n
            hits = cm == np.repeat(cm[ends - 1], ends - starts)
            hitn = np.add.reduceat(hits.astype(np.int64), starts)
            winners = gorder[ends - hitn]
            # Slots are created in each shape's first-arrival order.
            first_arrival = np.minimum.reduceat(gorder, starts)
            winners = winners[np.argsort(first_arrival, kind="stable")]
        else:
            winners, accepts = self._select_sorted(batch, sid_s, pd_s, n)
        slots = table.raw_slots()
        ws = sid[winners]
        wl = (ws // self._hstride).tolist()
        hl = (ws % self._hstride).tolist()
        kl = key[winners].tolist()
        mats = self._mat_many(batch, winners, is_or, view_a, view_b)
        for w_, h_, k_, m_ in zip(wl, hl, kl, mats):
            slots[(w_, h_)] = [(k_, m_)]
        return accepts, n - accepts

    def _select_sorted(self, batch, sid_s, pd_s, n):
        """Sort-based single-mode selection (keys that defeat _pack).

        Stable lexsort: primary shape, then (key, p_dis), ties in
        original order — the first element of each shape group is the
        first occurrence of the lexicographic minimum, exactly the
        incumbent the reference's strict-< replacement ends up with.
        """
        order = self._order(sid_s, batch["key"], pd_s)
        sid_o = sid_s[order]
        newgrp = np.empty(n, dtype=bool)
        newgrp[0] = True
        np.not_equal(sid_o[1:], sid_o[:-1], out=newgrp[1:])
        starts = np.flatnonzero(newgrp)
        G = starts.size
        seg = np.cumsum(newgrp)
        # Accept events (stats parity): the reference's strict-<
        # incumbent replacement fires exactly when a candidate arrives
        # before every lex-smaller candidate of its group, i.e. at the
        # running strict minima of *arrival index* along lex order.
        # Per-group offsets decrease by more than the index range so one
        # global prefix minimum resets at each group boundary.
        rr = order + (G + 1 - seg) * n
        cm = np.minimum.accumulate(rr)
        accepts = 1 + int(np.count_nonzero(rr[1:] < cm[:-1]))
        # First lex element per group is the winner; slots are created
        # in each shape's first-*arrival* order (= ascending group
        # minimum of the arrival index).
        first_arrival = np.minimum.reduceat(order, starts)
        winners = order[starts][np.argsort(first_arrival, kind="stable")]
        return winners, accepts

    def _pareto_prereject(self, gpack, GmA, GmT, sh_d, hi_bits, seg,
                          starts, G, n):
        """Sound dominated-candidate pre-reject (group-sorted layout).

        A candidate dominated by its group's *exclusive prefix*
        lexicographic-minimum candidate can never enter the front (see
        the module docstring for why some live front entry is always at
        least that strong).  Only sound while ``max_front >= 4``; the
        caller gates on that.

        ``gpack >> sh_d`` isolates the (key rank, p_dis) fields, so the
        prefix argmin of (key, p_dis) in arrival order falls out of a
        running minimum of one per-group-offset integer — new-minimum
        positions are strictly increasing, so a running *maximum* over
        them carries the argmin forward.  The dominance test itself
        runs on the full packs (the prefix minimum is only minimal
        among *earlier* candidates, so even its key can exceed the
        current candidate's).
        """
        pack2 = gpack >> sh_d
        off_u = np.int64(1) << hi_bits
        rr = pack2 + (G - seg) * off_u
        cm = np.minimum.accumulate(rr)
        newmin = np.empty(n, dtype=bool)
        newmin[0] = True
        np.less(rr[1:], cm[:-1], out=newmin[1:])
        am = np.maximum.accumulate(np.where(newmin, np.arange(n), -1))
        pm = np.empty(n, dtype=np.int64)
        pm[0] = 0
        pm[1:] = am[:-1]
        pre = (((gpack | GmA) - gpack[pm]) & GmT) == GmT
        # Group firsts have an empty prefix; everyone else's prefix
        # argmin is in-group (the group's first is a new minimum: the
        # per-group offsets strictly descend).
        pre[starts] = False
        return pre

    def _reduce_pareto(self, table, batch, is_or, view_a, view_b):
        n = batch["n"]
        key = batch["key"]
        p_dis = batch["p_dis"]
        p_tail = batch["p_tail"]
        par_b = batch["par_b"]
        sid_s, pd_s = self._sort_cols(batch)
        gorder, sid_g, starts, seg = self._group(sid_s, n)
        G = starts.size
        gk = key[gorder]
        gd = p_dis[gorder]
        gt = gd if p_tail is p_dis else p_tail[gorder]
        # OR combines have par_b uniformly True and p_tail aliasing
        # p_dis, so dominance and eviction reduce to (key, p_dis).
        gp = par_b[gorder] if par_b is not None else None
        full = gp is not None
        max_front = table.max_front
        # Dense per-group key ranks: dominance only ever compares keys
        # within one slot, so the within-group rank image preserves
        # every <= / == outcome while turning fractional keys into
        # exact small ints that fit a packed word.
        rank = None
        if self._kimg == 0:
            # Exact small-integer keys (every built-in area model):
            # the key value IS a small exact int, so it packs directly
            # and the per-group rank sort disappears.  A failed check
            # downgrades the shared sticky ladder; negative keys just
            # take the rank path without downgrading.
            k16 = gk.astype(np.int16)
            if np.array_equal(k16, gk):
                if int(k16.min()) >= 0:
                    rank = k16.astype(np.int64)
            else:
                self._kimg = 1
        if rank is None:
            if self._i16:
                # Same radix-digit ladder as the single-mode sort:
                # every column <= 16 bits keeps np.lexsort on its
                # radix path.
                ord2 = np.lexsort(self._key_cols(gk)
                                  + (seg.astype(np.int16),))
            else:
                ord2 = np.lexsort((gk, seg))
            sk2 = gk[ord2]
            sg2 = seg[ord2]
            gchg = np.empty(n, dtype=bool)
            gchg[0] = True
            np.not_equal(sg2[1:], sg2[:-1], out=gchg[1:])
            newv = np.empty(n, dtype=bool)
            newv[0] = True
            np.not_equal(sk2[1:], sk2[:-1], out=newv[1:])
            np.logical_or(newv, gchg, out=newv)
            dense = np.cumsum(newv)
            base = dense[np.flatnonzero(gchg)]
            rank = np.empty(n, dtype=np.int64)
            rank[ord2] = dense - base[sg2]
        counts0 = np.empty(G, dtype=np.int64)
        counts0[:-1] = starts[1:] - starts[:-1]
        counts0[-1] = n - starts[-1]
        # Guarded bit-field pack (lsb->msb: par_b, p_tail, stamp,
        # p_dis, key rank; one zero guard bit above each field).  One
        # spare value per field so the all-fields-max dead-column
        # sentinel compares strictly above every live entry.
        BK = (int(rank.max()) + 1).bit_length()
        BD = (int(gd.max()) + 1).bit_length()
        BS = (int(counts0.max()) + max_front + 1).bit_length()
        if full:
            BT = (int(gt.max()) + 1).bit_length()
            sh_t = 3
            sh_s = sh_t + BT + 1
        else:
            sh_s = 0
        sh_d = sh_s + BS + 1
        sh_k = sh_d + BD + 1
        if sh_k + BK + 1 > 63:
            # Pathological field widths (p_dis beyond any feasible
            # structure): the exact scalar path costs nothing to take.
            return self._combine_seeded(table, batch, is_or,
                                        view_a, view_b)
        if full:
            gmA = ((1 << 2) | (1 << (sh_t + BT)) | (1 << (sh_s + BS))
                   | (1 << (sh_d + BD)) | (1 << (sh_k + BK)))
            gmT = ((1 << 2) | (1 << (sh_t + BT))
                   | (1 << (sh_d + BD)) | (1 << (sh_k + BK)))
            huge = (3 | (((1 << BT) - 1) << sh_t)
                    | (((1 << BS) - 1) << sh_s)
                    | (((1 << BD) - 1) << sh_d)
                    | (((1 << BK) - 1) << sh_k))
            gpack = ((rank << sh_k) | (gd << sh_d) | (gt << sh_t)
                     | gp.astype(np.int64))
        else:
            gmA = ((1 << (sh_s + BS)) | (1 << (sh_d + BD))
                   | (1 << (sh_k + BK)))
            gmT = (1 << (sh_d + BD)) | (1 << (sh_k + BK))
            huge = ((((1 << BS) - 1) << sh_s)
                    | (((1 << BD) - 1) << sh_d)
                    | (((1 << BK) - 1) << sh_k))
            gpack = (rank << sh_k) | (gd << sh_d)
        GmA = np.int64(gmA)
        GmT = np.int64(gmT)
        HUGE = np.int64(huge)
        SM = np.int64(((1 << BS) - 1) << sh_s)
        NSM = np.int64(~(((1 << BS) - 1) << sh_s))
        if max_front >= 4:
            pre = self._pareto_prereject(gpack, GmA, GmT, sh_d,
                                         BK + BD + 2, seg, starts, G, n)
            survl = np.flatnonzero(~pre)
        else:
            # The pre-reject's witness argument needs the sort-truncate
            # to keep the (<= 2) lex-minimum ties plus whatever entries
            # dominate them; a tighter cap can truncate the witness
            # itself, so the full recurrence must see every candidate.
            survl = np.arange(n)
        M = survl.size
        pruned = n - M
        accepts = 0
        # Survivor-domain packs (group-sorted layout restricted to the
        # pre-reject survivors) plus original-batch provenance.
        spack = gpack[survl]
        si = gorder[survl].astype(np.int32)
        # Per-group survivor ranges: every group keeps its first
        # candidate (an empty table never rejects), so counts >= 1.
        bnd = np.searchsorted(survl, starts)
        counts = np.empty(G, dtype=np.int64)
        counts[:-1] = bnd[1:] - bnd[:-1]
        counts[-1] = M - bnd[-1]
        # Rows = groups by descending survivor count (stable), so each
        # step's still-active rows are a prefix and every matrix op
        # below runs on a view of the state, never a copy.
        grank = np.argsort(-counts, kind="stable")
        rstart = bnd[grank]
        rcount = counts[grank]
        cmax = int(rcount[0])
        rows = np.arange(G)
        # Step-major layout: step r's candidates (the r-th survivor of
        # every still-active slot, rows ascending) are one contiguous
        # slice — the loop body reads views, never gathers.  Row i is
        # active at step r iff i < A_sched[r] (counts descend), so the
        # element's position is off[r] + i: an exact-integer scatter,
        # no sort.
        A_sched = np.searchsorted(-rcount, -np.arange(cmax),
                                  side="left")
        off = np.empty(cmax + 1, dtype=np.int64)
        off[0] = 0
        np.cumsum(A_sched, out=off[1:])
        rm_start = np.empty(G, dtype=np.int64)
        rm_start[0] = 0
        np.cumsum(rcount[:-1], out=rm_start[1:])
        i_rm = np.repeat(rows, rcount)
        r_rm = np.arange(M) - np.repeat(rm_start, rcount)
        step_perm = np.empty(M, dtype=np.int64)
        step_perm[off[r_rm] + i_rm] = (
            np.repeat(rstart - rm_start, rcount) + np.arange(M))
        pT = spack[step_perm]
        pgT = pT | GmA
        siT = si[step_perm]
        # Column capacity: one past the cap when truncation can fire,
        # else one past the deepest survivor run — either way a dead
        # column to append into always exists.  State is (F, rows) so
        # every per-row reduction runs over the *outer* axis (numpy's
        # contiguous-inner-loop fast path, ~5x cheaper than reducing a
        # length-F inner axis).
        F = min(max_front, cmax) + 1
        can_trunc = F == max_front + 1
        fullcap = F - max_front
        PF = np.full((F, G), HUGE, dtype=np.int64)
        FI = np.zeros((F, G), dtype=np.int32)
        nord = np.zeros(G, dtype=np.int64)
        # Preallocated workspaces: nothing in the loop body allocates
        # proportional to row count x front width.
        I1 = np.empty((F, G), dtype=np.int64)
        B1 = np.empty((F, G), dtype=bool)
        mx = np.empty(G, dtype=np.int64)
        am = np.empty(G, dtype=bool)
        ov = np.empty(G, dtype=bool)
        lcw = np.empty(G, dtype=np.intp)
        neword_s = (np.arange(max_front, dtype=np.int64) << sh_s)[:, None]
        GMA = int(GmA)
        GMT = int(GmT)
        NSMi = int(NSM)
        SMi = int(SM)
        shs = sh_s
        offl = off.tolist()
        Al = A_sched.tolist()
        r = 0
        while True:
            A = Al[r] if r < cmax else 0
            if A < self._PARETO_TAIL:
                break
            o0 = offl[r]
            o1 = offl[r + 1]
            pc = pT[o0:o1]
            pfA = PF[:, :A]
            i1 = I1[:, :A]
            mxA = mx[:A]
            amA = am[:A]
            # Accept test: some live entry componentwise at-least-as-
            # strong rejects the candidate (TupleTable.admits, rowwise).
            # Per packed field, front <= cand leaves the field's guard
            # standing in (cand | guards) - front; all dominance guards
            # at once == GmT, the integer maximum of masked values, so
            # the row reduction is a plain max.  Dead columns hold the
            # all-max sentinel and can never dominate.
            np.subtract(pgT[o0:o1][None, :], pfA, out=i1)
            np.bitwise_and(i1, GmT, out=i1)
            np.maximum.reduce(i1, axis=0, out=mxA)
            np.not_equal(mxA, GmT, out=amA)
            acc = amA.nonzero()[0]
            na = acc.size
            accepts += na
            pruned += A - na
            if na:
                # Evict what accepted candidates dominate: the same
                # guard trick with operands swapped.  Rejected rows
                # substitute the dead sentinel for their candidate —
                # the all-max word "dominates" only dead entries, so
                # no mask op is needed and ``b1`` lands on exactly the
                # dead-after-evict set (prior dead entries trivially
                # "evict" to the sentinel they already are).
                b1 = B1[:, :A]
                pcm = pc if na == A else np.where(amA, pc, HUGE)
                np.bitwise_or(pfA, GmA, out=i1)
                np.subtract(i1, pcm[None, :], out=i1)
                np.bitwise_and(i1, GmT, out=i1)
                np.equal(i1, GmT, out=b1)
                np.copyto(pfA, HUGE, where=b1)
                # Append into the first dead column with a fresh
                # insertion stamp packed into the word.
                col = b1.argmax(axis=0)[acc]
                no = nord[acc]
                PF[col, acc] = pc[acc] | (no << sh_s)
                FI[col, acc] = siT[o0:o1][acc]
                nord[acc] = no + 1
                if can_trunc:
                    # A row owes a truncation exactly when the append
                    # just filled its one remaining dead column.
                    np.add.reduce(b1, axis=0, out=lcw[:A])
                    np.equal(lcw[:A], fullcap, out=ov[:A])
                    np.logical_and(ov[:A], amA, out=ov[:A])
                    over = ov[:A].nonzero()[0]
                    nov = over.size
                    if nov:
                        # Sort-truncate: the reference's stable list
                        # sort by (key, p_dis) is an integer sort of
                        # the packed word — (key rank, p_dis, stamp)
                        # are its deciding fields (stamps are
                        # distinct), and the stamp tie-break realizes
                        # the stability.  Keep the strongest
                        # max_front, re-rank their stamps.  One or
                        # two full rows per step is the norm, where
                        # sorting 5 ints in Python beats a dozen tiny
                        # array dispatches.
                        if nov <= 3:
                            for j in over.tolist():
                                z = sorted(zip(PF[:, j].tolist(),
                                               FI[:, j].tolist()))
                                z[max_front] = (HUGE, 0)
                                PF[:, j] = [
                                    (w & NSMi) | (s << shs) if s < max_front
                                    else w for s, (w, _) in enumerate(z)]
                                FI[:, j] = [fi for _, fi in z]
                        else:
                            srt = np.argsort(PF[:, over] >> sh_s, axis=0)
                            PF[srt[-1], over] = HUGE
                            keep = srt[:-1]
                            ovc = over[None, :]
                            vals = PF[keep, ovc]
                            vals &= NSM
                            vals |= neword_s
                            PF[keep, ovc] = vals
                        nord[over] = max_front
            r += 1
        # Scalar tail: the (< _PARETO_TAIL) rows still holding
        # candidates finish on a replay of the same packed words —
        # Python ints run the identical guard-bit dominance test.
        # The tail keeps each front *sorted by the full packed word*
        # (= by (key rank, p_dis, stamp); stamps are distinct, so the
        # low fields never decide): truncation drops the sorted-max in
        # O(1), and because stamps stay monotone, survivor stamp order
        # after a drop equals the reference's re-ranked order — both
        # the future exact-tie breaks and the final accept-order
        # output (one tiny per-row sort at the end) come out
        # identical.  With a small batch (or a small max_front, where
        # the pre-reject is off) this is the whole reduction.
        KLOW = (1 << sh_k) - 1
        out_i = [None] * G
        for i in range(A):
            fcol = PF[:, i]
            live = np.nonzero(fcol != HUGE)[0]
            fp = fcol[live]
            if live.size > 1:
                o2 = np.argsort(fp)
                fp = fp[o2]
                live = live[o2]
            fpl = fp.tolist()
            fil = FI[live, i].tolist()
            nxt = int(nord[i])
            lt = 0
            # Row i's remaining candidates sit at off[r..count-1] + i
            # in the step-major layout.
            idx = off[r:int(rcount[i])] + i
            cl = pT[idx].tolist()
            bl = siT[idx].tolist()
            for c, b_ in zip(cl, bl):
                # The front is key-sorted, so only the prefix at or
                # below the candidate's key rank can dominate it (a
                # dominator needs key <= cand's) — bound the scan by
                # the candidate with its sub-key bits saturated.
                ckh = c | KLOW
                cg = c | GMA
                ok = True
                for f in fpl:
                    if f > ckh:
                        break
                    if (cg - f) & GMT == GMT:
                        ok = False
                        break
                if not ok:
                    pruned += 1
                    continue
                accepts += 1
                w = 0
                for j, f in enumerate(fpl):
                    if ((f | GMA) - c) & GMT != GMT:
                        if w != j:
                            fpl[w] = f
                            fil[w] = fil[j]
                        w += 1
                if w != len(fpl):
                    del fpl[w:]
                    del fil[w:]
                cw = c | (nxt << shs)
                p_ = bisect_right(fpl, cw)
                fpl.insert(p_, cw)
                fil.insert(p_, b_)
                nxt += 1
                if len(fpl) > max_front:
                    fpl.pop()
                    fil.pop()
                    lt = nxt
            if len(fil) > 1:
                # Reference slot order: sorted at the last truncation
                # (list position, since the list is kept sorted), then
                # accept order (stamps) for everything newer.
                lts = lt << shs
                sk = [(1, s) if s >= lts else (0, j)
                      for j, s in enumerate(f & SMi for f in fpl)]
                fil = [b for _, b in sorted(zip(sk, fil))]
            out_i[i] = fil
        if A < G:
            # Rows the loop finished: gather live entries in stamp
            # order, split per row.
            mask = PF != HUGE
            if A:
                mask[:, :A] = False
            fr_, rw = np.nonzero(mask)
            srt = np.lexsort((PF[fr_, rw] & SM, rw))
            iflat = FI[fr_, rw][srt].tolist()
            cnts = np.bincount(rw, minlength=G).tolist()
            pos = 0
            for i in range(A, G):
                c = cnts[i]
                out_i[i] = iflat[pos:pos + c]
                pos += c
        # Assemble slots in each shape's first-arrival order (the
        # reference's create-on-first-arrival dict order), one batched
        # materialization for all winners; stored keys gather from the
        # generation column, so they stay the exact doubles the
        # reference would have cached.
        shapel = sid_g[starts].tolist()
        slot_rank = np.argsort(gorder[starts], kind="stable").tolist()
        rowof = np.empty(G, dtype=np.int64)
        rowof[grank] = rows
        rowofl = rowof.tolist()
        pend = []
        flat = []
        for p in slot_rank:
            i = rowofl[p]
            pend.append((shapel[p], len(out_i[i])))
            flat.extend(out_i[i])
        if flat:
            fa = np.asarray(flat, dtype=np.int64)
            keys = key[fa].tolist()
            mats = self._mat_many(batch, fa, is_or, view_a, view_b)
        else:
            keys = []
            mats = []
        hstride = self._hstride
        pos = 0
        for s_, cnum in pend:
            end = pos + cnum
            table.install_front((s_ // hstride, s_ % hstride),
                                zip(keys[pos:end], mats[pos:end]))
            pos = end
        return accepts, pruned

    def _combine_seeded(self, table, batch, is_or, view_a, view_b):
        """Exact slow path for a table that already holds tuples.

        The engine always combines into a fresh table, but the kernel
        contract doesn't require it; replaying through ``admits`` /
        ``insert`` keeps decisions and stats literal for any caller.
        """
        n = batch["n"]
        sid = batch["sid"].tolist()
        key = batch["key"].tolist()
        if batch["p_dis"] is None:
            gd = gt = [0] * n
            gp = [is_or] * n
        else:
            gd = batch["p_dis"].tolist()
            gt = batch["p_tail"].tolist()
            gp = ([True] * n if batch["par_b"] is None
                  else batch["par_b"].tolist())
        hstride = self._hstride
        accepts = 0
        pruned = 0
        for c in range(n):
            s_ = sid[c]
            shape = (s_ // hstride, s_ % hstride)
            if table.admits(shape, key[c], gd[c], gt[c], gp[c]):
                table.insert(self._mat(batch, c, is_or, view_a, view_b),
                             key=key[c])
                accepts += 1
            else:
                pruned += 1
        return accepts, pruned
