"""Technology mapping: the paper's algorithms and their cost models."""

from .cost import AreaCost, ClockWeightedCost, CostModel, DepthCost
from .tuples import MapTuple, TupleTable
from .engine import (
    GateRecord,
    MapperConfig,
    MappingEngine,
    MappingResult,
)
from .flows import (
    FLOW_PRESETS,
    PAPER_H_MAX,
    PAPER_W_MAX,
    FlowResult,
    domino_map,
    flow_config,
    map_network,
    prepare_network,
    rs_map,
    soi_domino_map,
)

__all__ = [
    "AreaCost",
    "ClockWeightedCost",
    "CostModel",
    "DepthCost",
    "MapTuple",
    "TupleTable",
    "GateRecord",
    "MapperConfig",
    "MappingEngine",
    "MappingResult",
    "map_network",
    "FLOW_PRESETS",
    "PAPER_H_MAX",
    "PAPER_W_MAX",
    "FlowResult",
    "domino_map",
    "flow_config",
    "prepare_network",
    "rs_map",
    "soi_domino_map",
]
