"""Technology mapping: the paper's algorithms and their cost models."""

from .cost import AreaCost, ClockWeightedCost, CostModel, DepthCost
from .kernel import (
    KernelProtocol,
    available_kernels,
    register_kernel,
    unregister_kernel,
)
from .tuples import MapTuple, TupleTable
from .engine import (
    GateRecord,
    MapperConfig,
    MappingEngine,
    MappingPlan,
    MappingResult,
    PlannedGate,
    apply_rearrangement,
    materialize_plan,
)
from .flows import (
    FLOW_PASSES,
    FLOW_PRESETS,
    PAPER_H_MAX,
    PAPER_W_MAX,
    FlowResult,
    build_flow_pipeline,
    domino_map,
    flow_config,
    flow_passes,
    map_network,
    prepare_network,
    rs_map,
    soi_domino_map,
)

__all__ = [
    "AreaCost",
    "ClockWeightedCost",
    "CostModel",
    "DepthCost",
    "KernelProtocol",
    "available_kernels",
    "register_kernel",
    "unregister_kernel",
    "MapTuple",
    "TupleTable",
    "GateRecord",
    "MapperConfig",
    "MappingEngine",
    "MappingPlan",
    "MappingResult",
    "PlannedGate",
    "apply_rearrangement",
    "materialize_plan",
    "map_network",
    "FLOW_PASSES",
    "FLOW_PRESETS",
    "PAPER_H_MAX",
    "PAPER_W_MAX",
    "FlowResult",
    "build_flow_pipeline",
    "domino_map",
    "flow_config",
    "flow_passes",
    "prepare_network",
    "rs_map",
    "soi_domino_map",
]
