"""DP kernel selection: the kernel registry and the reference kernel.

The combine/dominance inner loop of the mapping DP is pluggable: a
*kernel registry* maps the spellings :attr:`MapperConfig.kernel`
accepts to factories producing :class:`KernelProtocol` implementations.
Three kernels ship built in:

* ``"reference"`` — the scalar Python kernel (this module), a literal
  transcription of :meth:`TupleTable.insert` with the lazy-structure and
  incumbent-bound optimizations of PR 2.  It is the oracle: every other
  kernel must reproduce its tables bit-for-bit.
* ``"soa"`` — the structure-of-arrays numpy kernel
  (:mod:`repro.mapping.soa`): candidate generation and dominance
  filtering as broadcasted column arithmetic, bit-identical to the
  reference by construction (see DESIGN.md §12).
* ``"auto"`` — a hybrid that routes each combine call to the soa kernel
  when numpy is importable and the operand views are large enough
  (``MapperConfig.auto_threshold``) to amortize the array overhead, and
  to the reference kernel otherwise.  Sound because both kernels
  produce identical tables *and* identical stats counters; the per-call
  routing tally lands in ``stats.auto_routed_soa`` /
  ``stats.auto_routed_reference`` and the report kernel block.

Third-party kernels plug in via :func:`register_kernel` and are
selected with ``MapperConfig(kernel="<name>")`` like the built-ins.
They inherit the same parity obligations: identical tables (slot
insertion order included — the tree cache serializes it) and identical
``tuples_created``/``tuples_pruned``/``bound_skips`` counters, so runs
mixing kernels stay bit-identical.  The dual-kernel digest sweep and
the fuzzed slot-for-slot harness in ``tests/mapping`` are the reusable
parity witnesses.

A kernel is bound to one :class:`~repro.mapping.engine.MappingEngine`
run via :meth:`KernelProtocol.build` and then receives every per-node
:meth:`KernelProtocol.combine` call.  :meth:`KernelProtocol.finalize`
runs once after the DP; :meth:`KernelProtocol.stats` exposes per-kernel
diagnostics for reports.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Protocol, runtime_checkable

try:  # numpy is an optional dependency: the soa kernel needs it,
    import numpy as np  # everything else runs without it.
except ImportError:  # pragma: no cover - exercised via monkeypatch
    np = None

from ..errors import MappingError
from ..pipeline.metrics import MappingStats
from .cost import CostModel
from .tuples import MapTuple, TupleTable

#: The built-in kernel spellings (CLI choices; the registry may hold
#: more — ``available_kernels()`` is the authoritative list).
KERNELS = ("reference", "soa", "auto")

#: Default for ``MapperConfig.auto_threshold``: minimum
#: ``len(view_a) * len(view_b)`` for the auto kernel to route a combine
#: call to the soa kernel; smaller batches stay on the reference
#: kernel, whose per-pair cost beats the fixed numpy dispatch overhead.
AUTO_THRESHOLD = 64

#: name -> factory.  A factory is called with the bound-to-be
#: :class:`~repro.mapping.engine.MappingEngine` and returns an
#: *unbuilt* kernel instance; ``resolve_kernel`` calls ``build`` on it.
_REGISTRY: Dict[str, Callable] = {}


def register_kernel(name: str, factory: Callable, *,
                    replace: bool = False) -> None:
    """Register a DP kernel factory under ``name``.

    ``factory(engine)`` must return an object satisfying
    :class:`KernelProtocol`; it receives the engine *before* ``build``
    so it can inspect ``engine.config`` / ``engine.model`` and choose
    what to instantiate (the built-in ``"soa"`` factory, for example,
    degrades to the reference kernel for non-vectorizable cost models).
    The returned kernel carries the full parity obligations spelled out
    in the module docstring — bit-identical tables and work counters.

    Registered names become valid ``MapperConfig(kernel=...)`` values
    immediately.  Re-registering an existing name raises
    :class:`~repro.errors.MappingError` unless ``replace=True`` — the
    guard that keeps a plugin from silently shadowing a built-in.
    """
    if not isinstance(name, str) or not name:
        raise MappingError("kernel name must be a non-empty string, "
                           f"got {name!r}")
    if not callable(factory):
        raise MappingError(f"kernel factory for {name!r} must be callable, "
                           f"got {factory!r}")
    if name in _REGISTRY and not replace:
        raise MappingError(
            f"kernel {name!r} is already registered; pass replace=True "
            "to override it")
    _REGISTRY[name] = factory


def unregister_kernel(name: str) -> None:
    """Remove a registered kernel (built-ins refuse to unregister)."""
    if name in KERNELS:
        raise MappingError(f"cannot unregister built-in kernel {name!r}")
    if name not in _REGISTRY:
        raise MappingError(f"kernel {name!r} is not registered")
    del _REGISTRY[name]


def available_kernels() -> tuple:
    """Registered kernel names, built-ins first, in registration order.

    This is the list ``MapperConfig`` validates ``kernel=`` against and
    the list error messages cite.
    """
    return tuple(_REGISTRY)


def metric_fast_path(model: CostModel):
    """``model.tuple_key_metrics`` when the scalar fast path is sound.

    The fast path prices candidates from raw ``(wcost, levels)`` metrics
    without allocating a tuple.  It is only trusted when ``tuple_key``
    is the base-class delegation to ``tuple_key_metrics``; a model
    overriding ``tuple_key`` directly gets ``None`` (and the reference
    kernel's allocate-then-insert path).
    """
    return (model.tuple_key_metrics
            if type(model).tuple_key is CostModel.tuple_key else None)


def metric_vectorizable(model: CostModel) -> bool:
    """True when ``tuple_key_metrics`` prices numpy columns elementwise.

    Probes the metric with small arrays and checks the result is a
    float64 column that agrees with the scalar spelling — the condition
    under which the soa kernel's vectorized keys are bit-identical to
    the reference kernel's scalar keys.  Both shipped key forms (plain
    ``wcost`` and ``level_weight * levels + wcost``) pass; a subclass
    using non-ufunc arithmetic fails closed.
    """
    metric = metric_fast_path(model)
    if metric is None or np is None:
        return False
    wcost = np.array([0.0, 1.5], dtype=np.float64)
    levels = np.array([0, 3], dtype=np.int64)
    try:
        out = metric(wcost, levels)
    except Exception:
        return False
    if not (isinstance(out, np.ndarray) and out.shape == (2,)
            and out.dtype == np.float64):
        return False
    return (float(out[0]) == float(metric(0.0, 0))
            and float(out[1]) == float(metric(1.5, 3)))


@runtime_checkable
class KernelProtocol(Protocol):
    """What the mapping engine requires of a DP kernel."""

    #: the configured spelling this kernel implements
    name: str
    #: what actually runs ("reference", "soa", or "hybrid")
    active: str

    def build(self, engine) -> None:
        """Bind per-run state (config, cost model, stats) from ``engine``."""

    def combine(self, table: TupleTable, is_or: bool,
                view_a: List[MapTuple], view_b: List[MapTuple]) -> None:
        """Fill ``table`` with the surviving combinations of the views."""

    def finalize(self) -> None:
        """Flush any buffered per-run state (called once after the DP)."""

    def stats(self) -> dict:
        """Per-kernel diagnostics for reports (JSON-ready)."""


class ReferenceKernel:
    """The scalar oracle kernel.

    ``combine`` is deliberately written flat: configuration, cost
    prices, and the table's slot map are bound to locals once per node,
    the fanin view is pre-filtered per ``{W,H}`` budget so the inner
    loop touches only feasible pairs, and a candidate's scalar metrics
    are priced and bound-checked against the slot incumbent *before*
    any MapTuple is allocated.  Survivors are allocated lazily: a
    provenance back-pointer (op/left/right) instead of a built
    structure tree.

    Bit-identity with the eager seed kernel is load-bearing and rests
    on three invariants: (1) feasible pairs are visited in exactly the
    original view order (the pre-filtered lists preserve relative
    order), (2) the keep/evict decisions are literal transcriptions of
    :meth:`TupleTable.insert`, and (3) a slot list is only created when
    its first candidate arrives, so slot insertion order — which the
    tree cache serializes — is unchanged.
    """

    name = "reference"
    active = "reference"

    def __init__(self):
        self._engine = None

    def build(self, engine) -> None:
        self._engine = engine

    def finalize(self) -> None:
        pass

    def stats(self) -> dict:
        return {"active": self.active}

    def combine(self, table: TupleTable, is_or: bool,
                view_a: List[MapTuple], view_b: List[MapTuple]) -> None:
        engine = self._engine
        config = engine.config
        w_max = config.w_max
        h_max = config.h_max
        pbe = config.pbe_aware
        pareto = config.pareto
        ordering = config.ordering
        adverse = ordering == "adverse" or (not pbe and ordering != "naive")
        naive = not adverse and (not pbe or ordering == "naive")
        exhaustive = not adverse and not naive and ordering == "exhaustive"
        metric = engine._metric_key
        key_fn = table.key_fn
        discharge = engine.model.discharge_cost()
        slots = table.raw_slots()
        slots_get = slots.get
        max_front = table.max_front
        created = 0
        pruned = 0
        skips = 0
        if is_or:
            # Parallel composition: W adds, so b must fit the remaining
            # width budget (heights are both within h_max already).
            by_budget = [[b for b in view_b if b.width <= budget]
                         for budget in range(w_max)]
            for a in view_a:
                budget = w_max - a.width
                if budget < 1:
                    continue
                a_w = a.width
                a_h = a.height
                a_wc = a.wcost
                a_tr = a.trans
                a_di = a.disch
                a_lv = a.levels
                a_pd = a.p_dis
                a_hp = a.has_pi
                for b in by_budget[budget]:
                    created += 1
                    width = a_w + b.width
                    b_h = b.height
                    height = b_h if b_h > a_h else a_h
                    wcost = a_wc + b.wcost
                    b_lv = b.levels
                    levels = b_lv if b_lv > a_lv else a_lv
                    # Inside a parallel stack every potential point rides
                    # on the stack's shared bottom node: all of them are
                    # "tail" points (p_tail == p_dis, par_b True).
                    p_dis = (a_pd + b.p_dis) if pbe else 0
                    if metric is not None:
                        key = metric(wcost, levels)
                        cand = None
                    else:
                        cand = MapTuple(width, height, wcost, a_tr + b.trans,
                                        a_di + b.disch, levels, p_dis, True,
                                        a_hp or b.has_pi, p_tail=p_dis,
                                        ends_par=True, op="par",
                                        left=a, right=b)
                        key = key_fn(cand)
                    slot = slots_get((width, height))
                    if slot is None:
                        if cand is None:
                            cand = MapTuple(width, height, wcost,
                                            a_tr + b.trans, a_di + b.disch,
                                            levels, p_dis, True,
                                            a_hp or b.has_pi, p_tail=p_dis,
                                            ends_par=True, op="par",
                                            left=a, right=b)
                        slots[(width, height)] = [(key, cand)]
                        continue
                    if not pareto:
                        inc_key, inc = slot[0]
                        if key < inc_key or (key == inc_key
                                             and p_dis < inc.p_dis):
                            if cand is None:
                                cand = MapTuple(width, height, wcost,
                                                a_tr + b.trans,
                                                a_di + b.disch,
                                                levels, p_dis, True,
                                                a_hp or b.has_pi,
                                                p_tail=p_dis, ends_par=True,
                                                op="par", left=a, right=b)
                            slot[0] = (key, cand)
                        else:
                            pruned += 1
                            if cand is None:
                                skips += 1
                        continue
                    # Pareto front; the candidate has par_b True and
                    # p_tail == p_dis, which simplifies both dominance
                    # directions of TupleTable.insert.
                    dominated = False
                    for kept_key, kept in slot:
                        if (kept_key <= key and kept.p_dis <= p_dis
                                and kept.p_tail <= p_dis):
                            dominated = True
                            break
                    if dominated:
                        pruned += 1
                        if cand is None:
                            skips += 1
                        continue
                    if cand is None:
                        cand = MapTuple(width, height, wcost, a_tr + b.trans,
                                        a_di + b.disch, levels, p_dis, True,
                                        a_hp or b.has_pi, p_tail=p_dis,
                                        ends_par=True, op="par",
                                        left=a, right=b)
                    slot[:] = [e for e in slot
                               if not (key <= e[0] and p_dis <= e[1].p_dis
                                       and p_dis <= e[1].p_tail
                                       and e[1].par_b)]
                    slot.append((key, cand))
                    if len(slot) > max_front:
                        slot.sort(key=lambda e: (e[0], e[1].p_dis))
                        del slot[max_front:]
        else:
            # Series composition: H adds, so b must fit the remaining
            # height budget (widths are both within w_max already).
            by_budget = [[b for b in view_b if b.height <= budget]
                         for budget in range(h_max)]
            for a in view_a:
                budget = h_max - a.height
                if budget < 1:
                    continue
                for b in by_budget[budget]:
                    # Stacking order: the configured ordering rule picks
                    # which operand(s) go on top.
                    if adverse:
                        # Bulk-CMOS habit (Figure 2(a)): the parallel
                        # stack rises toward the dynamic node.
                        if b.ends_par and not a.ends_par:
                            orders = ((b, a),)
                        else:
                            orders = ((a, b),)
                    elif naive:
                        orders = ((a, b),)
                    elif exhaustive:
                        orders = ((a, b), (b, a))
                    # The paper's rule: a parallel-stack-bearing operand
                    # sinks to the bottom (its discharge points may be
                    # protected by ground); with both or neither, the
                    # operand with more potential discharge points sinks.
                    elif a.par_b != b.par_b:
                        orders = ((b, a),) if a.par_b else ((a, b),)
                    elif a.p_dis >= b.p_dis:
                        orders = ((b, a),)
                    else:
                        orders = ((a, b),)
                    for top, bottom in orders:
                        created += 1
                        t_w = top.width
                        b_w = bottom.width
                        width = t_w if t_w > b_w else b_w
                        height = top.height + bottom.height
                        if pbe:
                            if top.par_b:
                                # The new junction is the never-grounded
                                # bottom node of the top's trailing
                                # parallel stack: discharge it and the
                                # stack's internal (tail) points now.
                                # The top's spine junctions keep their
                                # own classification.
                                committed = top.p_tail + 1
                                p_dis = ((top.p_dis - top.p_tail)
                                         + bottom.p_dis)
                            else:
                                # Series-ending top: the junction joins
                                # the combined spine as a new potential
                                # point; nothing commits.
                                committed = 0
                                p_dis = top.p_dis + 1 + bottom.p_dis
                            p_tail = bottom.p_tail
                            par_b = bottom.par_b
                        else:
                            committed = 0
                            p_dis = 0
                            p_tail = 0
                            par_b = False
                        wcost = (top.wcost + bottom.wcost
                                 + committed * discharge)
                        t_lv = top.levels
                        b_lv = bottom.levels
                        levels = t_lv if t_lv > b_lv else b_lv
                        if metric is not None:
                            key = metric(wcost, levels)
                            cand = None
                        else:
                            cand = MapTuple(width, height, wcost,
                                            top.trans + bottom.trans
                                            + committed,
                                            top.disch + bottom.disch
                                            + committed,
                                            levels, p_dis, par_b,
                                            top.has_pi or bottom.has_pi,
                                            p_tail=p_tail,
                                            ends_par=bottom.ends_par,
                                            op="ser", left=top, right=bottom)
                            key = key_fn(cand)
                        slot = slots_get((width, height))
                        if slot is None:
                            if cand is None:
                                cand = MapTuple(width, height, wcost,
                                                top.trans + bottom.trans
                                                + committed,
                                                top.disch + bottom.disch
                                                + committed,
                                                levels, p_dis, par_b,
                                                top.has_pi or bottom.has_pi,
                                                p_tail=p_tail,
                                                ends_par=bottom.ends_par,
                                                op="ser", left=top,
                                                right=bottom)
                            slots[(width, height)] = [(key, cand)]
                            continue
                        if not pareto:
                            inc_key, inc = slot[0]
                            if key < inc_key or (key == inc_key
                                                 and p_dis < inc.p_dis):
                                if cand is None:
                                    cand = MapTuple(width, height, wcost,
                                                    top.trans + bottom.trans
                                                    + committed,
                                                    top.disch + bottom.disch
                                                    + committed,
                                                    levels, p_dis, par_b,
                                                    top.has_pi
                                                    or bottom.has_pi,
                                                    p_tail=p_tail,
                                                    ends_par=bottom.ends_par,
                                                    op="ser", left=top,
                                                    right=bottom)
                                slot[0] = (key, cand)
                            else:
                                pruned += 1
                                if cand is None:
                                    skips += 1
                            continue
                        dominated = False
                        for kept_key, kept in slot:
                            if (kept_key <= key and kept.p_dis <= p_dis
                                    and kept.p_tail <= p_tail
                                    and (not kept.par_b or par_b)):
                                dominated = True
                                break
                        if dominated:
                            pruned += 1
                            if cand is None:
                                skips += 1
                            continue
                        if cand is None:
                            cand = MapTuple(width, height, wcost,
                                            top.trans + bottom.trans
                                            + committed,
                                            top.disch + bottom.disch
                                            + committed,
                                            levels, p_dis, par_b,
                                            top.has_pi or bottom.has_pi,
                                            p_tail=p_tail,
                                            ends_par=bottom.ends_par,
                                            op="ser", left=top, right=bottom)
                        slot[:] = [e for e in slot
                                   if not (key <= e[0]
                                           and p_dis <= e[1].p_dis
                                           and p_tail <= e[1].p_tail
                                           and (not par_b or e[1].par_b))]
                        slot.append((key, cand))
                        if len(slot) > max_front:
                            slot.sort(key=lambda e: (e[0], e[1].p_dis))
                            del slot[max_front:]
        stats = engine.stats
        stats.tuples_created += created
        stats.tuples_pruned += pruned
        stats.bound_skips += skips


class AutoKernel:
    """Hybrid dispatch: soa for large batches, reference for small ones.

    Sound as a per-call choice because both kernels produce identical
    tables and identical stats counters — the routing decision is pure
    execution strategy.  The batch-size cutoff comes from
    ``MapperConfig.auto_threshold`` (via ``resolve_kernel``), and every
    per-call decision is tallied into ``stats.auto_routed_soa`` /
    ``stats.auto_routed_reference`` so reports can show how a hybrid
    run actually split its work.
    """

    name = "auto"
    active = "hybrid"

    def __init__(self, reference, soa, threshold=None):
        self._reference = reference
        self._soa = soa
        self._threshold = AUTO_THRESHOLD if threshold is None else threshold
        # Replaced by the engine's stats on build(); a throwaway default
        # keeps an unbuilt hybrid (unit tests, ad-hoc harnesses) usable.
        self._stats = MappingStats()

    def build(self, engine) -> None:
        self._stats = engine.stats
        self._reference.build(engine)
        self._soa.build(engine)

    def combine(self, table, is_or, view_a, view_b) -> None:
        if len(view_a) * len(view_b) >= self._threshold:
            self._stats.auto_routed_soa += 1
            self._soa.combine(table, is_or, view_a, view_b)
        else:
            self._stats.auto_routed_reference += 1
            self._reference.combine(table, is_or, view_a, view_b)

    def finalize(self) -> None:
        self._reference.finalize()
        self._soa.finalize()

    def stats(self) -> dict:
        routed = self._stats
        return {"active": self.active, "threshold": self._threshold,
                "routed_soa": routed.auto_routed_soa,
                "routed_reference": routed.auto_routed_reference,
                **{k: v for k, v in self._soa.stats().items()
                   if k != "active"}}


def _reference_factory(engine):
    return ReferenceKernel()


def _soa_factory(engine):
    """``kernel="soa"``: numpy is a hard requirement, the model soft.

    An explicit soa request without numpy must not be silently ignored;
    a non-vectorizable cost model degrades to the reference kernel with
    ``stats.kernel_fallbacks`` incremented (the tables are bit-identical
    either way, so the fallback is observable only in the counter).
    """
    if np is None:
        raise MappingError(
            "kernel='soa' requires numpy, which is not importable; "
            "install numpy or pick another registered kernel "
            f"(available_kernels(): {', '.join(available_kernels())})")
    if not metric_vectorizable(engine.model):
        # The model overrides tuple_key directly or its metric form is
        # not elementwise-exact on arrays: the soa kernel cannot match
        # the oracle, so the run degrades to the reference kernel.
        engine.stats.kernel_fallbacks += 1
        return ReferenceKernel()
    from .soa import make_soa_kernel

    return make_soa_kernel()


def _auto_factory(engine):
    """``kernel="auto"``: the hybrid when numpy and the model allow."""
    if np is None:
        return ReferenceKernel()
    if not metric_vectorizable(engine.model):
        engine.stats.kernel_fallbacks += 1
        return ReferenceKernel()
    from .soa import make_soa_kernel

    return AutoKernel(ReferenceKernel(), make_soa_kernel(),
                      threshold=engine.config.auto_threshold)


register_kernel("reference", _reference_factory)
register_kernel("soa", _soa_factory)
register_kernel("auto", _auto_factory)


def resolve_kernel(engine):
    """The kernel instance a configured engine runs, already built.

    Looks ``engine.config.kernel`` up in the registry, calls the
    factory with the engine, and binds the returned kernel via
    ``build``.  ``MapperConfig`` validates the spelling eagerly, so an
    unknown name here means the registry changed between config
    construction and the run — still a typed error, never a
    ``KeyError``.
    """
    choice = engine.config.kernel
    factory = _REGISTRY.get(choice)
    if factory is None:
        raise MappingError(
            f"unknown kernel {choice!r}; available kernels: "
            f"{', '.join(available_kernels())}")
    kernel = factory(engine)
    kernel.build(engine)
    return kernel
