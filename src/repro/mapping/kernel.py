"""DP kernel selection: the reference kernel and the kernel protocol.

The combine/dominance inner loop of the mapping DP exists in two peer
implementations selected by :attr:`MapperConfig.kernel`:

* ``"reference"`` — the scalar Python kernel (this module), a literal
  transcription of :meth:`TupleTable.insert` with the lazy-structure and
  incumbent-bound optimizations of PR 2.  It is the oracle: every other
  kernel must reproduce its tables bit-for-bit.
* ``"soa"`` — the structure-of-arrays numpy kernel
  (:mod:`repro.mapping.soa`): candidate generation and dominance
  filtering as broadcasted column arithmetic, bit-identical to the
  reference by construction (see DESIGN.md §12).
* ``"auto"`` — a hybrid that routes each combine call to the soa kernel
  when numpy is importable and the operand views are large enough to
  amortize the array overhead, and to the reference kernel otherwise.
  Sound because both kernels produce identical tables *and* identical
  stats counters.

A kernel is bound to one :class:`~repro.mapping.engine.MappingEngine`
run via :meth:`KernelProtocol.build` and then receives every per-node
:meth:`KernelProtocol.combine` call.  :meth:`KernelProtocol.finalize`
runs once after the DP; :meth:`KernelProtocol.stats` exposes per-kernel
diagnostics for reports.
"""

from __future__ import annotations

from typing import List, Protocol, runtime_checkable

try:  # numpy is an optional dependency: the soa kernel needs it,
    import numpy as np  # everything else runs without it.
except ImportError:  # pragma: no cover - exercised via monkeypatch
    np = None

from ..errors import MappingError
from .cost import CostModel
from .tuples import MapTuple, TupleTable

#: The values MapperConfig.kernel accepts.
KERNELS = ("reference", "soa", "auto")

#: Minimum ``len(view_a) * len(view_b)`` for the auto kernel to route a
#: combine call to the soa kernel; smaller batches stay on the reference
#: kernel, whose per-pair cost beats the fixed numpy dispatch overhead.
AUTO_THRESHOLD = 64


def metric_fast_path(model: CostModel):
    """``model.tuple_key_metrics`` when the scalar fast path is sound.

    The fast path prices candidates from raw ``(wcost, levels)`` metrics
    without allocating a tuple.  It is only trusted when ``tuple_key``
    is the base-class delegation to ``tuple_key_metrics``; a model
    overriding ``tuple_key`` directly gets ``None`` (and the reference
    kernel's allocate-then-insert path).
    """
    return (model.tuple_key_metrics
            if type(model).tuple_key is CostModel.tuple_key else None)


def metric_vectorizable(model: CostModel) -> bool:
    """True when ``tuple_key_metrics`` prices numpy columns elementwise.

    Probes the metric with small arrays and checks the result is a
    float64 column that agrees with the scalar spelling — the condition
    under which the soa kernel's vectorized keys are bit-identical to
    the reference kernel's scalar keys.  Both shipped key forms (plain
    ``wcost`` and ``level_weight * levels + wcost``) pass; a subclass
    using non-ufunc arithmetic fails closed.
    """
    metric = metric_fast_path(model)
    if metric is None or np is None:
        return False
    wcost = np.array([0.0, 1.5], dtype=np.float64)
    levels = np.array([0, 3], dtype=np.int64)
    try:
        out = metric(wcost, levels)
    except Exception:
        return False
    if not (isinstance(out, np.ndarray) and out.shape == (2,)
            and out.dtype == np.float64):
        return False
    return (float(out[0]) == float(metric(0.0, 0))
            and float(out[1]) == float(metric(1.5, 3)))


@runtime_checkable
class KernelProtocol(Protocol):
    """What the mapping engine requires of a DP kernel."""

    #: the configured spelling this kernel implements
    name: str
    #: what actually runs ("reference", "soa", or "hybrid")
    active: str

    def build(self, engine) -> None:
        """Bind per-run state (config, cost model, stats) from ``engine``."""

    def combine(self, table: TupleTable, is_or: bool,
                view_a: List[MapTuple], view_b: List[MapTuple]) -> None:
        """Fill ``table`` with the surviving combinations of the views."""

    def finalize(self) -> None:
        """Flush any buffered per-run state (called once after the DP)."""

    def stats(self) -> dict:
        """Per-kernel diagnostics for reports (JSON-ready)."""


class ReferenceKernel:
    """The scalar oracle kernel.

    ``combine`` is deliberately written flat: configuration, cost
    prices, and the table's slot map are bound to locals once per node,
    the fanin view is pre-filtered per ``{W,H}`` budget so the inner
    loop touches only feasible pairs, and a candidate's scalar metrics
    are priced and bound-checked against the slot incumbent *before*
    any MapTuple is allocated.  Survivors are allocated lazily: a
    provenance back-pointer (op/left/right) instead of a built
    structure tree.

    Bit-identity with the eager seed kernel is load-bearing and rests
    on three invariants: (1) feasible pairs are visited in exactly the
    original view order (the pre-filtered lists preserve relative
    order), (2) the keep/evict decisions are literal transcriptions of
    :meth:`TupleTable.insert`, and (3) a slot list is only created when
    its first candidate arrives, so slot insertion order — which the
    tree cache serializes — is unchanged.
    """

    name = "reference"
    active = "reference"

    def __init__(self):
        self._engine = None

    def build(self, engine) -> None:
        self._engine = engine

    def finalize(self) -> None:
        pass

    def stats(self) -> dict:
        return {"active": self.active}

    def combine(self, table: TupleTable, is_or: bool,
                view_a: List[MapTuple], view_b: List[MapTuple]) -> None:
        engine = self._engine
        config = engine.config
        w_max = config.w_max
        h_max = config.h_max
        pbe = config.pbe_aware
        pareto = config.pareto
        ordering = config.ordering
        adverse = ordering == "adverse" or (not pbe and ordering != "naive")
        naive = not adverse and (not pbe or ordering == "naive")
        exhaustive = not adverse and not naive and ordering == "exhaustive"
        metric = engine._metric_key
        key_fn = table.key_fn
        discharge = engine.model.discharge_cost()
        slots = table.raw_slots()
        slots_get = slots.get
        max_front = table.max_front
        created = 0
        pruned = 0
        skips = 0
        if is_or:
            # Parallel composition: W adds, so b must fit the remaining
            # width budget (heights are both within h_max already).
            by_budget = [[b for b in view_b if b.width <= budget]
                         for budget in range(w_max)]
            for a in view_a:
                budget = w_max - a.width
                if budget < 1:
                    continue
                a_w = a.width
                a_h = a.height
                a_wc = a.wcost
                a_tr = a.trans
                a_di = a.disch
                a_lv = a.levels
                a_pd = a.p_dis
                a_hp = a.has_pi
                for b in by_budget[budget]:
                    created += 1
                    width = a_w + b.width
                    b_h = b.height
                    height = b_h if b_h > a_h else a_h
                    wcost = a_wc + b.wcost
                    b_lv = b.levels
                    levels = b_lv if b_lv > a_lv else a_lv
                    # Inside a parallel stack every potential point rides
                    # on the stack's shared bottom node: all of them are
                    # "tail" points (p_tail == p_dis, par_b True).
                    p_dis = (a_pd + b.p_dis) if pbe else 0
                    if metric is not None:
                        key = metric(wcost, levels)
                        cand = None
                    else:
                        cand = MapTuple(width, height, wcost, a_tr + b.trans,
                                        a_di + b.disch, levels, p_dis, True,
                                        a_hp or b.has_pi, p_tail=p_dis,
                                        ends_par=True, op="par",
                                        left=a, right=b)
                        key = key_fn(cand)
                    slot = slots_get((width, height))
                    if slot is None:
                        if cand is None:
                            cand = MapTuple(width, height, wcost,
                                            a_tr + b.trans, a_di + b.disch,
                                            levels, p_dis, True,
                                            a_hp or b.has_pi, p_tail=p_dis,
                                            ends_par=True, op="par",
                                            left=a, right=b)
                        slots[(width, height)] = [(key, cand)]
                        continue
                    if not pareto:
                        inc_key, inc = slot[0]
                        if key < inc_key or (key == inc_key
                                             and p_dis < inc.p_dis):
                            if cand is None:
                                cand = MapTuple(width, height, wcost,
                                                a_tr + b.trans,
                                                a_di + b.disch,
                                                levels, p_dis, True,
                                                a_hp or b.has_pi,
                                                p_tail=p_dis, ends_par=True,
                                                op="par", left=a, right=b)
                            slot[0] = (key, cand)
                        else:
                            pruned += 1
                            if cand is None:
                                skips += 1
                        continue
                    # Pareto front; the candidate has par_b True and
                    # p_tail == p_dis, which simplifies both dominance
                    # directions of TupleTable.insert.
                    dominated = False
                    for kept_key, kept in slot:
                        if (kept_key <= key and kept.p_dis <= p_dis
                                and kept.p_tail <= p_dis):
                            dominated = True
                            break
                    if dominated:
                        pruned += 1
                        if cand is None:
                            skips += 1
                        continue
                    if cand is None:
                        cand = MapTuple(width, height, wcost, a_tr + b.trans,
                                        a_di + b.disch, levels, p_dis, True,
                                        a_hp or b.has_pi, p_tail=p_dis,
                                        ends_par=True, op="par",
                                        left=a, right=b)
                    slot[:] = [e for e in slot
                               if not (key <= e[0] and p_dis <= e[1].p_dis
                                       and p_dis <= e[1].p_tail
                                       and e[1].par_b)]
                    slot.append((key, cand))
                    if len(slot) > max_front:
                        slot.sort(key=lambda e: (e[0], e[1].p_dis))
                        del slot[max_front:]
        else:
            # Series composition: H adds, so b must fit the remaining
            # height budget (widths are both within w_max already).
            by_budget = [[b for b in view_b if b.height <= budget]
                         for budget in range(h_max)]
            for a in view_a:
                budget = h_max - a.height
                if budget < 1:
                    continue
                for b in by_budget[budget]:
                    # Stacking order: the configured ordering rule picks
                    # which operand(s) go on top.
                    if adverse:
                        # Bulk-CMOS habit (Figure 2(a)): the parallel
                        # stack rises toward the dynamic node.
                        if b.ends_par and not a.ends_par:
                            orders = ((b, a),)
                        else:
                            orders = ((a, b),)
                    elif naive:
                        orders = ((a, b),)
                    elif exhaustive:
                        orders = ((a, b), (b, a))
                    # The paper's rule: a parallel-stack-bearing operand
                    # sinks to the bottom (its discharge points may be
                    # protected by ground); with both or neither, the
                    # operand with more potential discharge points sinks.
                    elif a.par_b != b.par_b:
                        orders = ((b, a),) if a.par_b else ((a, b),)
                    elif a.p_dis >= b.p_dis:
                        orders = ((b, a),)
                    else:
                        orders = ((a, b),)
                    for top, bottom in orders:
                        created += 1
                        t_w = top.width
                        b_w = bottom.width
                        width = t_w if t_w > b_w else b_w
                        height = top.height + bottom.height
                        if pbe:
                            if top.par_b:
                                # The new junction is the never-grounded
                                # bottom node of the top's trailing
                                # parallel stack: discharge it and the
                                # stack's internal (tail) points now.
                                # The top's spine junctions keep their
                                # own classification.
                                committed = top.p_tail + 1
                                p_dis = ((top.p_dis - top.p_tail)
                                         + bottom.p_dis)
                            else:
                                # Series-ending top: the junction joins
                                # the combined spine as a new potential
                                # point; nothing commits.
                                committed = 0
                                p_dis = top.p_dis + 1 + bottom.p_dis
                            p_tail = bottom.p_tail
                            par_b = bottom.par_b
                        else:
                            committed = 0
                            p_dis = 0
                            p_tail = 0
                            par_b = False
                        wcost = (top.wcost + bottom.wcost
                                 + committed * discharge)
                        t_lv = top.levels
                        b_lv = bottom.levels
                        levels = t_lv if t_lv > b_lv else b_lv
                        if metric is not None:
                            key = metric(wcost, levels)
                            cand = None
                        else:
                            cand = MapTuple(width, height, wcost,
                                            top.trans + bottom.trans
                                            + committed,
                                            top.disch + bottom.disch
                                            + committed,
                                            levels, p_dis, par_b,
                                            top.has_pi or bottom.has_pi,
                                            p_tail=p_tail,
                                            ends_par=bottom.ends_par,
                                            op="ser", left=top, right=bottom)
                            key = key_fn(cand)
                        slot = slots_get((width, height))
                        if slot is None:
                            if cand is None:
                                cand = MapTuple(width, height, wcost,
                                                top.trans + bottom.trans
                                                + committed,
                                                top.disch + bottom.disch
                                                + committed,
                                                levels, p_dis, par_b,
                                                top.has_pi or bottom.has_pi,
                                                p_tail=p_tail,
                                                ends_par=bottom.ends_par,
                                                op="ser", left=top,
                                                right=bottom)
                            slots[(width, height)] = [(key, cand)]
                            continue
                        if not pareto:
                            inc_key, inc = slot[0]
                            if key < inc_key or (key == inc_key
                                                 and p_dis < inc.p_dis):
                                if cand is None:
                                    cand = MapTuple(width, height, wcost,
                                                    top.trans + bottom.trans
                                                    + committed,
                                                    top.disch + bottom.disch
                                                    + committed,
                                                    levels, p_dis, par_b,
                                                    top.has_pi
                                                    or bottom.has_pi,
                                                    p_tail=p_tail,
                                                    ends_par=bottom.ends_par,
                                                    op="ser", left=top,
                                                    right=bottom)
                                slot[0] = (key, cand)
                            else:
                                pruned += 1
                                if cand is None:
                                    skips += 1
                            continue
                        dominated = False
                        for kept_key, kept in slot:
                            if (kept_key <= key and kept.p_dis <= p_dis
                                    and kept.p_tail <= p_tail
                                    and (not kept.par_b or par_b)):
                                dominated = True
                                break
                        if dominated:
                            pruned += 1
                            if cand is None:
                                skips += 1
                            continue
                        if cand is None:
                            cand = MapTuple(width, height, wcost,
                                            top.trans + bottom.trans
                                            + committed,
                                            top.disch + bottom.disch
                                            + committed,
                                            levels, p_dis, par_b,
                                            top.has_pi or bottom.has_pi,
                                            p_tail=p_tail,
                                            ends_par=bottom.ends_par,
                                            op="ser", left=top, right=bottom)
                        slot[:] = [e for e in slot
                                   if not (key <= e[0]
                                           and p_dis <= e[1].p_dis
                                           and p_tail <= e[1].p_tail
                                           and (not par_b or e[1].par_b))]
                        slot.append((key, cand))
                        if len(slot) > max_front:
                            slot.sort(key=lambda e: (e[0], e[1].p_dis))
                            del slot[max_front:]
        stats = engine.stats
        stats.tuples_created += created
        stats.tuples_pruned += pruned
        stats.bound_skips += skips


class AutoKernel:
    """Hybrid dispatch: soa for large batches, reference for small ones.

    Sound as a per-call choice because both kernels produce identical
    tables and identical stats counters — the routing decision is pure
    execution strategy.
    """

    name = "auto"
    active = "hybrid"

    def __init__(self, reference, soa, threshold=None):
        self._reference = reference
        self._soa = soa
        # late-bound so tests (and tuning runs) can adjust the module
        # constant without rebuilding every call site
        self._threshold = AUTO_THRESHOLD if threshold is None else threshold

    def build(self, engine) -> None:
        self._reference.build(engine)
        self._soa.build(engine)

    def combine(self, table, is_or, view_a, view_b) -> None:
        if len(view_a) * len(view_b) >= self._threshold:
            self._soa.combine(table, is_or, view_a, view_b)
        else:
            self._reference.combine(table, is_or, view_a, view_b)

    def finalize(self) -> None:
        self._reference.finalize()
        self._soa.finalize()

    def stats(self) -> dict:
        return {"active": self.active, "threshold": self._threshold,
                **{k: v for k, v in self._soa.stats().items()
                   if k != "active"}}


def resolve_kernel(engine):
    """The kernel instance a configured engine runs, already built.

    ``"reference"`` always resolves to the oracle.  ``"soa"`` requires
    numpy (a hard error otherwise — an explicit request must not be
    silently ignored) and a vectorizable cost model (falls back to the
    reference kernel with ``stats.kernel_fallbacks`` incremented).
    ``"auto"`` picks the hybrid when numpy and the model allow, the
    reference kernel otherwise.
    """
    choice = engine.config.kernel
    if choice == "reference":
        kernel = ReferenceKernel()
        kernel.build(engine)
        return kernel
    if np is None:
        if choice == "soa":
            raise MappingError(
                "kernel='soa' requires numpy, which is not importable; "
                "install numpy or use kernel='reference'/'auto'")
        kernel = ReferenceKernel()
        kernel.build(engine)
        return kernel
    from .soa import SoAKernel

    if not metric_vectorizable(engine.model):
        # The model overrides tuple_key directly or its metric form is
        # not elementwise-exact on arrays: the soa kernel cannot match
        # the oracle, so the run degrades to the reference kernel.
        engine.stats.kernel_fallbacks += 1
        kernel = ReferenceKernel()
        kernel.build(engine)
        return kernel
    if choice == "soa":
        kernel = SoAKernel()
    else:
        kernel = AutoKernel(ReferenceKernel(), SoAKernel())
    kernel.build(engine)
    return kernel
