"""The dynamic-programming technology-mapping engine.

Implements the framework of Zhao & Sapatnekar (ICCAD'98) as described in
the paper's section IV, with the SOI/PBE extensions of section V switched
on by ``pbe_aware=True``:

* every node of the (unate, 2-input AND/OR) input network gets a table of
  ``{W, H}`` sub-solutions;
* ``combine_or`` / ``combine_and`` merge fanin tuples, with the PBE-aware
  variant tracking ``p_dis``/``par_b``, ordering series stacks, and
  committing discharge transistors;
* each node's best sub-solution can be *formed* into a domino gate
  (p-clock + output inverter + keeper, plus an n-clock foot when the
  pulldown touches primary inputs), at which point it is visible to
  fanouts as a ``{1, 1}`` input;
* multi-fanout nodes and PO drivers are forced gate boundaries (the DP is
  exact over the fanout-free trees in between, the classical tree-mapping
  regime);
* finally the chosen gates are materialized into a
  :class:`~repro.domino.circuit.DominoCircuit`.

Discharge transistors:

* PBE-aware mapping commits them *during* combination (the paper's
  algorithm, listing 2) and the materialized gates carry exactly the
  committed points (optimistic grounding) or additionally the residual
  ``p_dis`` points (pessimistic grounding);
* non-PBE-aware mapping ignores them entirely; the returned gates still
  receive the discharge transistors demanded by the structural analysis —
  that is the paper's "added in a post-processing step".
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field, fields
from typing import Dict, List, Optional

from ..domino.circuit import CircuitCost, DominoCircuit
from ..domino.gate import DominoGate
from ..domino.rearrange import rearrange
from ..domino.structure import Leaf, Pulldown
from ..errors import MappingError, ResourceLimitError
from ..network import LogicNetwork, NodeType
from ..pipeline.metrics import MappingStats
from ..resilience.faults import fire
from .cost import CostModel
from .kernel import (AUTO_THRESHOLD, available_kernels, metric_fast_path,
                     resolve_kernel)
from .tuples import MapTuple, TupleTable

#: How combine_and orders its operands.
ORDERING_RULES = ("paper", "naive", "adverse", "exhaustive")
#: What gate formation assumes about the stack bottom.
GROUND_POLICIES = ("optimistic", "footless", "pessimistic")


@dataclass
class MapperConfig:
    """Configuration of one mapping run.

    Attributes
    ----------
    w_max, h_max:
        Pulldown width/height limits (the paper uses 5 and 8).
    pbe_aware:
        True for SOI_Domino_Map, False for the bulk baseline Domino_Map.
    ordering:
        ``"paper"`` — the par_b/p_dis rule of section V; ``"naive"`` —
        first operand always on top; ``"adverse"`` — parallel stacks rise
        toward the dynamic node, the conventional bulk-CMOS structure the
        paper's Figure 2(a) depicts (wide stacks high for evaluation
        speed, internal nodes handled with clocked transistors) — this is
        the bulk baseline's behaviour; ``"exhaustive"`` — try both orders
        and keep the better tuple.
    ground_policy:
        ``"optimistic"`` — a formed gate's stack bottom counts as grounded,
        so residual potential discharge points need no transistor (the
        paper's assumption); ``"footless"`` — only footless gates (no
        primary inputs, stack bottom wired straight to ground) enjoy that
        protection, while footed gates (bottom above the n-clock, which is
        off during precharge) discharge their residual points — the
        paper's section VII observation; ``"pessimistic"`` — every gate
        discharges all residual points (full worst case).
    pareto:
        Keep a Pareto front per ``{W, H}`` slot instead of a single tuple.
    rearrange_gates:
        Post-process every materialized gate with the series-stack
        rearrangement pass (RS_Map).
    max_nodes, max_tuples:
        Resource ceilings (``None`` — the default — means unlimited).
        A run that processes more than ``max_nodes`` network nodes, or
        creates more than ``max_tuples`` DP tuples, stops with a
        structured :class:`~repro.errors.ResourceLimitError` carrying
        the partial :class:`~repro.pipeline.MappingStats` — so a
        pathological input degrades into a reportable per-task failure
        instead of unbounded memory growth taking the whole batch down.
    kernel:
        Which DP combine kernel runs the inner loop — any name in
        :func:`repro.mapping.kernel.available_kernels`.  Built in:
        ``"reference"`` — the scalar Python oracle; ``"soa"`` — the
        structure-of-arrays numpy kernel (bit-identical tables,
        requires numpy); ``"auto"`` (the default) — a hybrid routing
        each combine call by operand size, soa when numpy is importable
        and the batch is large enough to amortize the array overhead.
        Third-party kernels registered via
        :func:`~repro.mapping.kernel.register_kernel` are selected the
        same way.  Excluded from :meth:`fingerprint` because the kernel
        is execution strategy, not mapping semantics: all kernels
        produce bit-identical tables, so cached/checkpointed artifacts
        are shared across them.
    auto_threshold:
        The ``"auto"`` kernel's routing cutoff: a combine call goes to
        the soa kernel when ``len(view_a) * len(view_b)`` is at least
        this many candidate pairs, to the reference kernel otherwise
        (default :data:`~repro.mapping.kernel.AUTO_THRESHOLD`).  Pure
        execution strategy like ``kernel`` — any setting yields
        bit-identical tables — so it is likewise excluded from
        :meth:`fingerprint`; the decision tally is observable in
        ``stats.auto_routed_soa`` / ``stats.auto_routed_reference``.
    duplication:
        Fanout handling.  ``True`` (the paper's regime, following [23]):
        every consumer of a multi-fanout node sees the node's full tuple
        set and may absorb a private copy of its logic — small shared
        sub-functions get duplicated into the consuming pulldowns, large
        ones form shared gates, which is what produces the wide domino
        gates the paper reports.  ``False``: multi-fanout nodes are forced
        gate boundaries (classical duplication-free tree mapping).
    """

    w_max: int = 5
    h_max: int = 8
    pbe_aware: bool = True
    ordering: str = "paper"
    ground_policy: str = "optimistic"
    pareto: bool = False
    rearrange_gates: bool = False
    duplication: bool = True
    max_nodes: Optional[int] = None
    max_tuples: Optional[int] = None
    kernel: str = "auto"
    auto_threshold: int = AUTO_THRESHOLD

    def __post_init__(self):
        if self.kernel not in available_kernels():
            raise MappingError(
                f"unknown kernel {self.kernel!r}; available kernels: "
                f"{', '.join(available_kernels())} "
                "(register_kernel() adds custom ones)")
        if self.auto_threshold < 1:
            raise MappingError(
                f"auto_threshold must be >= 1, got {self.auto_threshold}")
        if self.max_nodes is not None and self.max_nodes < 1:
            raise MappingError(f"max_nodes must be >= 1, got {self.max_nodes}")
        if self.max_tuples is not None and self.max_tuples < 1:
            raise MappingError(
                f"max_tuples must be >= 1, got {self.max_tuples}")
        if self.w_max < 1 or self.h_max < 2:
            raise MappingError(
                f"infeasible limits w_max={self.w_max}, h_max={self.h_max}")
        if self.ordering not in ORDERING_RULES:
            raise MappingError(
                f"unknown ordering rule {self.ordering!r}; "
                f"expected one of {', '.join(ORDERING_RULES)}")
        if self.ground_policy not in GROUND_POLICIES:
            raise MappingError(
                f"unknown ground policy {self.ground_policy!r}; "
                f"expected one of {', '.join(GROUND_POLICIES)}")

    #: Fields :meth:`fingerprint` skips — execution strategy, not
    #: mapping semantics.
    _NON_SEMANTIC_FIELDS = frozenset({"kernel", "auto_threshold"})

    def fingerprint(self) -> tuple:
        """Hashable identity of every *semantic* field (tree-cache key).

        ``kernel`` and ``auto_threshold`` are excluded: every kernel
        (and any routing split) produces bit-identical tables, so cache
        entries and checkpoints written under one kernel are valid —
        and shared — under any other.
        """
        return tuple(getattr(self, f.name) for f in fields(self)
                     if f.name not in self._NON_SEMANTIC_FIELDS)


@dataclass
class GateRecord:
    """The formed-gate entry of one mapping node."""

    node_id: int
    tuple: MapTuple
    wcost: float      #: accumulated cost including overhead (and, under the
                      #: pessimistic policy, the residual p_dis discharges)
    trans: int        #: raw transistors including overhead + discharges
    disch: int        #: discharge transistors inside this gate's subtree
    levels: int       #: domino level of this gate's output
    footed: bool


@dataclass
class PlannedGate:
    """One gate the DP selected, before post-processing.

    The structure is materialized (no provenance back-pointers left to
    chase), so a plan pickles cleanly for flow checkpoints; the
    rearrangement pass rewrites ``structure`` in place of the record.
    """

    node_id: int
    structure: Pulldown
    level: int
    has_pi: bool


@dataclass
class MappingPlan:
    """The DP's selection, decoupled from circuit materialization.

    Everything downstream of the DP — series-stack rearrangement,
    discharge insertion, circuit assembly — is a deterministic function
    of this plan, which is what lets the flow pipeline run those steps as
    separate passes (and checkpoint between them) while reproducing
    :meth:`MappingEngine.run` bit-for-bit.  Orders are load-bearing:
    ``inputs``, ``outputs`` and ``gates`` are recorded in exactly the
    traversal order the one-shot materializer used.
    """

    network_name: str
    config: MapperConfig
    cost_model: CostModel
    #: PI labels in network order
    inputs: List[str] = field(default_factory=list)
    #: (po_label, kind, payload): kind "signal" wires payload verbatim,
    #: kind "const" sets a constant output (payload is the bool)
    outputs: List[tuple] = field(default_factory=list)
    #: selected gates in require()-traversal order
    gates: List[PlannedGate] = field(default_factory=list)
    #: mapping-node id -> GateRecord for every selected gate
    gate_records: Dict[int, GateRecord] = field(default_factory=dict)
    stats: MappingStats = field(default_factory=MappingStats)
    #: what actually ran the DP ("reference", "soa", or "hybrid")
    kernel: str = "reference"


@dataclass
class MappingResult:
    """Outcome of a mapping run."""

    circuit: DominoCircuit
    config: MapperConfig
    cost_model: CostModel
    #: mapping-node id -> GateRecord for every *materialized* gate
    gate_records: Dict[int, GateRecord] = field(default_factory=dict)
    #: full instrumentation counters for this run
    stats: MappingStats = field(default_factory=MappingStats)
    #: what actually ran the DP ("reference", "soa", or "hybrid")
    kernel: str = "reference"

    @property
    def cost(self) -> CircuitCost:
        return self.circuit.cost()


class MappingEngine:
    """Runs one technology-mapping DP over a unate network.

    Parameters
    ----------
    cache:
        Optional :class:`~repro.pipeline.TreeCache`; cache-eligible nodes
        reuse DP tables memoized from identically-shaped fanin cones
        (bit-identical results, see ``pipeline/cache.py``).
    stats:
        Optional :class:`~repro.pipeline.MappingStats` to accumulate into
        (a fresh one is created otherwise); also exposed on the returned
        :attr:`MappingResult.stats`.
    tracer:
        Optional :class:`~repro.obs.Tracer`.  Nodes whose DP took at
        least ``tracer.node_span_threshold_s`` are recorded as ``node``
        spans (retroactively — the hot path only pays one comparison
        per node; the timing itself already exists for the stats).
    metrics:
        Optional :class:`~repro.obs.MetricsRegistry`.  Every
        ``tracer.sample_every``-th node (default every 8th; 1 when no
        tracer is attached alongside) observes the tuples-per-node and
        combine-call-latency histograms, keeping the observation cost
        off the kernel's critical path.
    """

    def __init__(self, network: LogicNetwork, cost_model: CostModel,
                 config: Optional[MapperConfig] = None, *,
                 cache=None, stats: Optional[MappingStats] = None,
                 tracer=None, metrics=None):
        if not network.is_mappable():
            raise MappingError(
                f"network {network.name!r} is not mappable: run decompose() "
                "and unate conversion first (2-input AND/OR only)")
        self.network = network
        self.model = cost_model
        self.config = config or MapperConfig()
        self.cache = cache
        self.stats = stats if stats is not None else MappingStats()
        self.tracer = tracer
        self.metrics = metrics
        # obs bindings are resolved once so the per-node path is a None
        # check plus (rarely) a histogram observe — never a dict lookup.
        self._node_span_floor = (tracer.node_span_threshold_s
                                 if tracer is not None else None)
        self._hist_sample_every = (tracer.sample_every
                                   if tracer is not None else 1)
        if metrics is not None:
            from ..obs import (NODE_SECONDS_BUCKETS,
                               TUPLES_PER_NODE_BUCKETS)

            self._h_tuples = metrics.histogram(
                "repro_mapping_tuples_per_node",
                buckets=TUPLES_PER_NODE_BUCKETS,
                help="DP tuples created per node (sampled)")
            self._h_combine = metrics.histogram(
                "repro_mapping_combine_seconds",
                buckets=NODE_SECONDS_BUCKETS,
                help="combine-call latency per node (sampled)")
        else:
            self._h_tuples = None
            self._h_combine = None
        self._tables: Dict[int, TupleTable] = {}
        self._gates: Dict[int, GateRecord] = {}
        self._forced: Dict[int, bool] = {}
        self._signatures: Dict[int, Optional[int]] = {}
        self._cache_prefix: Optional[tuple] = None
        #: memoized per-node fanin views (a multi-fanout node's table is
        #: listed once, not once per consumer)
        self._views: Dict[int, List[MapTuple]] = {}
        # Scalar fast path: candidates are priced from raw metrics and
        # bound-checked before any MapTuple is allocated.  Only sound
        # when tuple_key is the base-class delegation to
        # tuple_key_metrics; a model overriding tuple_key directly falls
        # back to the allocate-then-insert path.
        self._metric_key = metric_fast_path(cost_model)
        #: the DP combine kernel this run executes (KernelProtocol)
        self.kernel = resolve_kernel(self)

    # ------------------------------------------------------------------
    # leaf tuples
    # ------------------------------------------------------------------
    def _pi_tuple(self, uid: int) -> MapTuple:
        node = self.network.node(uid)
        return MapTuple(
            width=1, height=1,
            wcost=self.model.leaf_cost(), trans=1, disch=0, levels=0,
            p_dis=0, par_b=False, has_pi=True,
            structure=Leaf(node.label, is_primary=True),
        )

    def _gate_input_tuple(self, record: GateRecord, sunk: bool,
                          fanout: int = 1) -> MapTuple:
        """A formed gate seen as a ``{1,1}`` input of the next level.

        ``sunk=True`` for forced boundaries (multi-fanout / PO drivers in
        duplication-free mode): the gate exists exactly once regardless of
        the fanout's choices, so only the driven transistor is charged
        here.  ``sunk=False`` for an optional gate, whose subtree cost
        must compete against the node's unformed structures; a shared gate
        is built once but seen by ``fanout`` consumers, so its cost is
        amortized (the classical area-flow estimate) — without this the
        DP systematically over-duplicates shared logic.
        """
        share = max(1, fanout)
        base_w = 0.0 if sunk else record.wcost / share
        base_t = 0 if sunk else record.trans
        base_d = 0 if sunk else record.disch
        return MapTuple(
            width=1, height=1,
            wcost=base_w + self.model.leaf_cost(),
            trans=base_t + 1,
            disch=base_d,
            levels=record.levels,
            p_dis=0, par_b=False, has_pi=False,
            structure=Leaf(f"g{record.node_id}", is_primary=False,
                           source_gate=record.node_id),
        )

    # ------------------------------------------------------------------
    # combination
    # ------------------------------------------------------------------
    def _combine_into(self, table: TupleTable, is_or: bool,
                      view_a: List[MapTuple], view_b: List[MapTuple]) -> None:
        """Fill ``table`` with the surviving combinations of the views.

        Delegates to the run's configured DP kernel (see
        ``mapping/kernel.py``); kept as an engine method so profiles of
        any kernel still show one frame covering the combine step.
        """
        self.kernel.combine(table, is_or, view_a, view_b)

    # ------------------------------------------------------------------
    # the DP over one node
    # ------------------------------------------------------------------
    def _fanin_view(self, uid: int) -> List[MapTuple]:
        view = self._views.get(uid)
        if view is None:
            view = self._views[uid] = self._build_fanin_view(uid)
        return view

    def _build_fanin_view(self, uid: int) -> List[MapTuple]:
        node = self.network.node(uid)
        if node.type is NodeType.PI:
            return [self._pi_tuple(uid)]
        if node.type in (NodeType.AND, NodeType.OR):
            record = self._gates.get(uid)
            if self._forced[uid]:
                if record is None:  # pragma: no cover - topological order
                    raise MappingError(f"gate for node {uid} not yet formed")
                return [self._gate_input_tuple(record, sunk=True)]
            view = list(self._tables[uid].all_tuples())
            if record is not None:
                view.append(self._gate_input_tuple(
                    record, sunk=False,
                    fanout=self.network.fanout_count(uid)))
            return view
        raise MappingError(
            f"node {node.label} of type {node.type.value} cannot feed a "
            "domino pulldown (constants must be swept before mapping)")

    def _guard_nodes(self) -> None:
        limit = self.config.max_nodes
        if limit is not None and self.stats.nodes_processed >= limit:
            raise ResourceLimitError(
                f"mapping {self.network.name!r} exceeded max_nodes={limit} "
                f"({self.stats.tuples_created} tuples so far)",
                stats=self.stats, limit="max_nodes")

    def _guard_tuples(self) -> None:
        limit = self.config.max_tuples
        if limit is not None and self.stats.tuples_created > limit:
            raise ResourceLimitError(
                f"mapping {self.network.name!r} exceeded max_tuples={limit} "
                f"({self.stats.tuples_created} created after "
                f"{self.stats.nodes_processed} nodes)",
                stats=self.stats, limit="max_tuples")

    def _process_node(self, uid: int) -> None:
        node = self.network.node(uid)
        stats = self.stats
        self._guard_nodes()
        started = time.perf_counter()
        table = self._cached_table(uid)
        if table is None:
            table = TupleTable(self.model.tuple_key,
                               pareto=self.config.pareto)
            views = [self._fanin_view(f) for f in node.fanins]
            view_a, view_b = views
            stats.combine_calls += len(view_a) * len(view_b)
            # Histogram observation is sampled (every Nth node); the
            # kernel timer itself always runs — one perf_counter pair
            # per node, the basis for per-kernel throughput comparisons.
            sampled = (self._h_combine is not None
                       and stats.nodes_processed
                       % self._hist_sample_every == 0)
            if sampled:
                created_before = stats.tuples_created
            combine_started = time.perf_counter()
            self._combine_into(table, node.type is NodeType.OR,
                               view_a, view_b)
            combine_elapsed = time.perf_counter() - combine_started
            stats.combine_time_s += combine_elapsed
            if sampled:
                self._h_combine.observe(combine_elapsed)
                self._h_tuples.observe(
                    stats.tuples_created - created_before)
            self._guard_tuples()
            if not len(table):
                raise MappingError(
                    f"no feasible {{W,H}} tuple for node {node.label}: "
                    f"limits w_max={self.config.w_max}, "
                    f"h_max={self.config.h_max} are too tight")
            self._store_table(uid, table)
        self._tables[uid] = table
        self._gates[uid] = self._form_gate(uid, table)
        elapsed = time.perf_counter() - started
        stats.nodes_processed += 1
        stats.node_time_s += elapsed
        stats.max_node_time_s = max(stats.max_node_time_s, elapsed)
        # Per-node spans are thresholded: slow nodes (the ones worth
        # seeing in a trace) are recorded retroactively from timing the
        # stats needed anyway; fast nodes pay one comparison.
        floor = self._node_span_floor
        if floor is not None and elapsed >= floor:
            self.tracer.record_abs(
                f"node:{node.label}", started, started + elapsed,
                category="node",
                attributes={"uid": uid, "type": node.type.value})

    # ------------------------------------------------------------------
    # tree-cache hooks
    # ------------------------------------------------------------------
    def _cached_table(self, uid: int) -> Optional[TupleTable]:
        sig = self._signatures.get(uid)
        if sig is None or self.cache is None:
            return None
        table = self.cache.fetch(self._cache_prefix, sig, self.network, uid,
                                 self.model.tuple_key, self.config.pareto)
        if table is None:
            self.stats.cache_misses += 1
        else:
            self.stats.cache_hits += 1
        return table

    def _store_table(self, uid: int, table: TupleTable) -> None:
        sig = self._signatures.get(uid)
        if sig is not None and self.cache is not None:
            self.cache.put(self._cache_prefix, sig, self.network, uid, table)

    def _form_gate(self, uid: int, table: TupleTable) -> GateRecord:
        """Build the ``{1,1}`` formed-gate record from the best tuple."""
        self.stats.gate_formations += 1
        best = None
        best_key = None
        policy = self.config.ground_policy
        for t in table.all_tuples():
            overhead = self.model.gate_overhead_cost(t.has_pi)
            wcost = t.wcost + overhead
            disch = t.disch
            trans = t.trans + (5 if t.has_pi else 4)
            ungrounded = (policy == "pessimistic"
                          or (policy == "footless" and t.has_pi))
            if ungrounded and self.config.pbe_aware:
                wcost += t.p_dis * self.model.discharge_cost()
                disch += t.p_dis
                trans += t.p_dis
            levels = t.levels + 1
            key = (self.model.gate_key(wcost, levels), t.p_dis)
            if best_key is None or key < best_key:
                best_key = key
                best = (t, wcost, trans, disch, levels)
        t, wcost, trans, disch, levels = best
        return GateRecord(node_id=uid, tuple=t, wcost=wcost, trans=trans,
                          disch=disch, levels=levels, footed=t.has_pi)

    # ------------------------------------------------------------------
    # top level
    # ------------------------------------------------------------------
    def run(self) -> MappingResult:
        """Execute the DP and materialize the mapped circuit.

        Equivalent to the staged path the flow pipeline takes —
        :meth:`run_dp`, :meth:`plan`, :func:`apply_rearrangement`,
        :func:`materialize_plan` — and implemented as exactly that
        sequence so the two cannot diverge.
        """
        self.run_dp()
        plan = self.plan()
        apply_rearrangement(plan)
        return materialize_plan(plan)

    def run_dp(self) -> "MappingEngine":
        """Run the per-node DP over the whole network (no circuit yet)."""
        network = self.network
        rule = fire("resource.exhaust", network.name, self.tracer,
                    self.metrics)
        if rule is not None:
            raise ResourceLimitError(
                f"injected resource exhaustion mapping {network.name!r}",
                stats=self.stats, limit="injected")
        evictions_before = 0
        if self.cache is not None and self.cache.enabled:
            self.cache.bind_obs(self.tracer, self.metrics)
            self._cache_prefix = (self.config.fingerprint(),
                                  self.model.fingerprint())
            self._signatures = self.cache.signatures(network)
            evictions_before = self.cache.evictions
        po_drivers = {network.node(p).fanins[0] for p in network.pos}
        for uid in network.node_ids:
            node = network.node(uid)
            if node.type in (NodeType.AND, NodeType.OR):
                if self.config.duplication:
                    self._forced[uid] = False
                else:
                    self._forced[uid] = (network.fanout_count(uid) > 1
                                         or uid in po_drivers)
        for uid in network.topological_order():
            if network.node(uid).type in (NodeType.AND, NodeType.OR):
                self._process_node(uid)
        self.kernel.finalize()
        if self.cache is not None and self.cache.enabled:
            self.stats.cache_evictions += (self.cache.evictions
                                           - evictions_before)
        return self

    def plan(self) -> MappingPlan:
        """Select the gates the mapped circuit needs (post-DP).

        Walks the PO drivers' structures, pulling in referenced gates
        depth-first, and records PO bindings and selected gates in the
        exact order the materializer will replay them.
        """
        network = self.network
        plan = MappingPlan(network_name=network.name, config=self.config,
                           cost_model=self.model, stats=self.stats,
                           kernel=self.kernel.active)
        plan.inputs = [network.node(uid).label for uid in network.pis]

        used = plan.gate_records

        def require(uid: int) -> GateRecord:
            record = self._gates[uid]
            if uid in used:
                return record
            used[uid] = record
            for ref in _structure_gate_refs(record.tuple.structure):
                require(ref)
            return record

        for po in network.pos:
            driver = network.node(network.node(po).fanins[0])
            if driver.type is NodeType.PI:
                plan.outputs.append((network.node(po).label, "signal",
                                     driver.label))
            elif driver.is_const:
                plan.outputs.append((network.node(po).label, "const",
                                     driver.type is NodeType.CONST1))
            elif driver.type in (NodeType.AND, NodeType.OR):
                record = require(driver.uid)
                plan.outputs.append((network.node(po).label, "signal",
                                     f"g{record.node_id}"))
            else:
                raise MappingError(
                    f"PO {network.node(po).label} driven by unsupported "
                    f"node type {driver.type.value}")

        plan.gates = [PlannedGate(node_id=uid,
                                  structure=record.tuple.structure,
                                  level=record.levels,
                                  has_pi=record.tuple.has_pi)
                      for uid, record in used.items()]
        return plan


def apply_rearrangement(plan: MappingPlan) -> int:
    """RS_Map post-processing: reorder every planned gate's series stacks.

    A no-op (returning 0) unless the plan's config asks for it; otherwise
    returns the number of gates rewritten.
    """
    if not plan.config.rearrange_gates:
        return 0
    for planned in plan.gates:
        planned.structure = rearrange(planned.structure)
    return len(plan.gates)


def materialize_plan(plan: MappingPlan) -> MappingResult:
    """Insert discharge transistors and assemble the mapped circuit.

    Builds each planned gate via :meth:`DominoGate.from_structure` (which
    derives footedness and the discharge points the ground policy
    demands) and wires the circuit in the plan's recorded order.
    """
    circuit = DominoCircuit(plan.network_name)
    for label in plan.inputs:
        circuit.add_input(label)
    for po_label, kind, payload in plan.outputs:
        if kind == "const":
            circuit.set_const_output(po_label, payload)
        else:
            circuit.connect_output(po_label, payload)
    policy = plan.config.ground_policy
    for planned in plan.gates:
        grounded = (policy == "optimistic"
                    or (policy == "footless" and not planned.has_pi))
        gate = DominoGate.from_structure(
            name=f"g{planned.node_id}",
            structure=planned.structure,
            grounded=grounded,
            level=planned.level,
            node_id=planned.node_id,
        )
        circuit.add_gate(gate)
    circuit.recompute_levels()
    return MappingResult(
        circuit=circuit,
        config=plan.config,
        cost_model=plan.cost_model,
        gate_records=dict(plan.gate_records),
        stats=plan.stats,
        kernel=getattr(plan, "kernel", "reference"),
    )


def _structure_gate_refs(structure: Pulldown) -> List[int]:
    return [leaf.source_gate for leaf in structure.leaves()
            if leaf.source_gate is not None]
