"""The dynamic-programming technology-mapping engine.

Implements the framework of Zhao & Sapatnekar (ICCAD'98) as described in
the paper's section IV, with the SOI/PBE extensions of section V switched
on by ``pbe_aware=True``:

* every node of the (unate, 2-input AND/OR) input network gets a table of
  ``{W, H}`` sub-solutions;
* ``combine_or`` / ``combine_and`` merge fanin tuples, with the PBE-aware
  variant tracking ``p_dis``/``par_b``, ordering series stacks, and
  committing discharge transistors;
* each node's best sub-solution can be *formed* into a domino gate
  (p-clock + output inverter + keeper, plus an n-clock foot when the
  pulldown touches primary inputs), at which point it is visible to
  fanouts as a ``{1, 1}`` input;
* multi-fanout nodes and PO drivers are forced gate boundaries (the DP is
  exact over the fanout-free trees in between, the classical tree-mapping
  regime);
* finally the chosen gates are materialized into a
  :class:`~repro.domino.circuit.DominoCircuit`.

Discharge transistors:

* PBE-aware mapping commits them *during* combination (the paper's
  algorithm, listing 2) and the materialized gates carry exactly the
  committed points (optimistic grounding) or additionally the residual
  ``p_dis`` points (pessimistic grounding);
* non-PBE-aware mapping ignores them entirely; the returned gates still
  receive the discharge transistors demanded by the structural analysis —
  that is the paper's "added in a post-processing step".
"""

from __future__ import annotations

import time
from dataclasses import astuple, dataclass, field
from typing import Dict, List, Optional

from ..domino.circuit import CircuitCost, DominoCircuit
from ..domino.gate import DominoGate
from ..domino.rearrange import rearrange
from ..domino.structure import Leaf, Pulldown, parallel, series
from ..errors import MappingError
from ..network import LogicNetwork, NodeType
from ..pipeline.metrics import MappingStats
from .cost import CostModel
from .tuples import MapTuple, TupleTable

#: How combine_and orders its operands.
ORDERING_RULES = ("paper", "naive", "adverse", "exhaustive")
#: What gate formation assumes about the stack bottom.
GROUND_POLICIES = ("optimistic", "footless", "pessimistic")


@dataclass
class MapperConfig:
    """Configuration of one mapping run.

    Attributes
    ----------
    w_max, h_max:
        Pulldown width/height limits (the paper uses 5 and 8).
    pbe_aware:
        True for SOI_Domino_Map, False for the bulk baseline Domino_Map.
    ordering:
        ``"paper"`` — the par_b/p_dis rule of section V; ``"naive"`` —
        first operand always on top; ``"adverse"`` — parallel stacks rise
        toward the dynamic node, the conventional bulk-CMOS structure the
        paper's Figure 2(a) depicts (wide stacks high for evaluation
        speed, internal nodes handled with clocked transistors) — this is
        the bulk baseline's behaviour; ``"exhaustive"`` — try both orders
        and keep the better tuple.
    ground_policy:
        ``"optimistic"`` — a formed gate's stack bottom counts as grounded,
        so residual potential discharge points need no transistor (the
        paper's assumption); ``"footless"`` — only footless gates (no
        primary inputs, stack bottom wired straight to ground) enjoy that
        protection, while footed gates (bottom above the n-clock, which is
        off during precharge) discharge their residual points — the
        paper's section VII observation; ``"pessimistic"`` — every gate
        discharges all residual points (full worst case).
    pareto:
        Keep a Pareto front per ``{W, H}`` slot instead of a single tuple.
    rearrange_gates:
        Post-process every materialized gate with the series-stack
        rearrangement pass (RS_Map).
    duplication:
        Fanout handling.  ``True`` (the paper's regime, following [23]):
        every consumer of a multi-fanout node sees the node's full tuple
        set and may absorb a private copy of its logic — small shared
        sub-functions get duplicated into the consuming pulldowns, large
        ones form shared gates, which is what produces the wide domino
        gates the paper reports.  ``False``: multi-fanout nodes are forced
        gate boundaries (classical duplication-free tree mapping).
    """

    w_max: int = 5
    h_max: int = 8
    pbe_aware: bool = True
    ordering: str = "paper"
    ground_policy: str = "optimistic"
    pareto: bool = False
    rearrange_gates: bool = False
    duplication: bool = True

    def __post_init__(self):
        if self.w_max < 1 or self.h_max < 2:
            raise MappingError(
                f"infeasible limits w_max={self.w_max}, h_max={self.h_max}")
        if self.ordering not in ORDERING_RULES:
            raise MappingError(
                f"unknown ordering rule {self.ordering!r}; "
                f"expected one of {', '.join(ORDERING_RULES)}")
        if self.ground_policy not in GROUND_POLICIES:
            raise MappingError(
                f"unknown ground policy {self.ground_policy!r}; "
                f"expected one of {', '.join(GROUND_POLICIES)}")

    def fingerprint(self) -> tuple:
        """Hashable identity of every field (tree-cache key component)."""
        return astuple(self)


@dataclass
class GateRecord:
    """The formed-gate entry of one mapping node."""

    node_id: int
    tuple: MapTuple
    wcost: float      #: accumulated cost including overhead (and, under the
                      #: pessimistic policy, the residual p_dis discharges)
    trans: int        #: raw transistors including overhead + discharges
    disch: int        #: discharge transistors inside this gate's subtree
    levels: int       #: domino level of this gate's output
    footed: bool


@dataclass
class MappingResult:
    """Outcome of a mapping run."""

    circuit: DominoCircuit
    config: MapperConfig
    cost_model: CostModel
    #: mapping-node id -> GateRecord for every *materialized* gate
    gate_records: Dict[int, GateRecord] = field(default_factory=dict)
    #: number of DP tuples created (profiling/regression metric; mirrors
    #: ``stats.tuples_created``)
    tuples_created: int = 0
    #: full instrumentation counters for this run
    stats: MappingStats = field(default_factory=MappingStats)

    @property
    def cost(self) -> CircuitCost:
        return self.circuit.cost()


class MappingEngine:
    """Runs one technology-mapping DP over a unate network.

    Parameters
    ----------
    cache:
        Optional :class:`~repro.pipeline.TreeCache`; cache-eligible nodes
        reuse DP tables memoized from identically-shaped fanin cones
        (bit-identical results, see ``pipeline/cache.py``).
    stats:
        Optional :class:`~repro.pipeline.MappingStats` to accumulate into
        (a fresh one is created otherwise); also exposed on the returned
        :attr:`MappingResult.stats`.
    """

    def __init__(self, network: LogicNetwork, cost_model: CostModel,
                 config: Optional[MapperConfig] = None, *,
                 cache=None, stats: Optional[MappingStats] = None):
        if not network.is_mappable():
            raise MappingError(
                f"network {network.name!r} is not mappable: run decompose() "
                "and unate conversion first (2-input AND/OR only)")
        self.network = network
        self.model = cost_model
        self.config = config or MapperConfig()
        self.cache = cache
        self.stats = stats if stats is not None else MappingStats()
        self._tables: Dict[int, TupleTable] = {}
        self._gates: Dict[int, GateRecord] = {}
        self._forced: Dict[int, bool] = {}
        self._signatures: Dict[int, Optional[int]] = {}
        self._cache_prefix: Optional[tuple] = None

    # ------------------------------------------------------------------
    # leaf tuples
    # ------------------------------------------------------------------
    def _pi_tuple(self, uid: int) -> MapTuple:
        node = self.network.node(uid)
        return MapTuple(
            width=1, height=1,
            wcost=self.model.leaf_cost(), trans=1, disch=0, levels=0,
            p_dis=0, par_b=False, has_pi=True,
            structure=Leaf(node.label, is_primary=True),
        )

    def _gate_input_tuple(self, record: GateRecord, sunk: bool,
                          fanout: int = 1) -> MapTuple:
        """A formed gate seen as a ``{1,1}`` input of the next level.

        ``sunk=True`` for forced boundaries (multi-fanout / PO drivers in
        duplication-free mode): the gate exists exactly once regardless of
        the fanout's choices, so only the driven transistor is charged
        here.  ``sunk=False`` for an optional gate, whose subtree cost
        must compete against the node's unformed structures; a shared gate
        is built once but seen by ``fanout`` consumers, so its cost is
        amortized (the classical area-flow estimate) — without this the
        DP systematically over-duplicates shared logic.
        """
        share = max(1, fanout)
        base_w = 0.0 if sunk else record.wcost / share
        base_t = 0 if sunk else record.trans
        base_d = 0 if sunk else record.disch
        return MapTuple(
            width=1, height=1,
            wcost=base_w + self.model.leaf_cost(),
            trans=base_t + 1,
            disch=base_d,
            levels=record.levels,
            p_dis=0, par_b=False, has_pi=False,
            structure=Leaf(f"g{record.node_id}", is_primary=False,
                           source_gate=record.node_id),
        )

    # ------------------------------------------------------------------
    # combination
    # ------------------------------------------------------------------
    def _combine_or(self, a: MapTuple, b: MapTuple) -> Optional[MapTuple]:
        width = a.width + b.width
        height = max(a.height, b.height)
        if width > self.config.w_max or height > self.config.h_max:
            return None
        p_dis = (a.p_dis + b.p_dis) if self.config.pbe_aware else 0
        return MapTuple(
            width=width, height=height,
            wcost=a.wcost + b.wcost,
            trans=a.trans + b.trans,
            disch=a.disch + b.disch,
            levels=max(a.levels, b.levels),
            p_dis=p_dis,
            # inside a parallel stack every potential point rides on the
            # stack's shared bottom node: all of them are "tail" points
            p_tail=p_dis,
            par_b=True,
            has_pi=a.has_pi or b.has_pi,
            structure=parallel(a.structure, b.structure),
        )

    def _combine_and_ordered(self, top: MapTuple,
                             bottom: MapTuple) -> Optional[MapTuple]:
        width = max(top.width, bottom.width)
        height = top.height + bottom.height
        if width > self.config.w_max or height > self.config.h_max:
            return None
        if self.config.pbe_aware:
            if top.par_b:
                # The new junction is the never-grounded bottom node of
                # the top's trailing parallel stack: discharge it and the
                # stack's internal (tail) points now.  The top's spine
                # junctions keep their own classification.
                committed = top.p_tail + 1
                p_dis = (top.p_dis - top.p_tail) + bottom.p_dis
            else:
                # Series-ending top: the junction joins the combined
                # spine as a new potential point; nothing commits.
                committed = 0
                p_dis = top.p_dis + 1 + bottom.p_dis
            p_tail = bottom.p_tail
            par_b = bottom.par_b
        else:
            committed = 0
            p_dis = 0
            p_tail = 0
            par_b = False
        return MapTuple(
            width=width, height=height,
            wcost=(top.wcost + bottom.wcost
                   + committed * self.model.discharge_cost()),
            trans=top.trans + bottom.trans + committed,
            disch=top.disch + bottom.disch + committed,
            levels=max(top.levels, bottom.levels),
            p_dis=p_dis,
            p_tail=p_tail,
            par_b=par_b,
            has_pi=top.has_pi or bottom.has_pi,
            structure=series(top.structure, bottom.structure),
        )

    def _combine_and(self, a: MapTuple, b: MapTuple) -> List[MapTuple]:
        """Apply the configured ordering rule; returns 0-2 candidates."""
        ordering = self.config.ordering
        if ordering == "adverse" or (not self.config.pbe_aware
                                     and ordering != "naive"):
            # Bulk-CMOS habit (Figure 2(a)): the parallel stack rises
            # toward the dynamic node.
            a_par = a.structure.ends_in_parallel
            b_par = b.structure.ends_in_parallel
            if b_par and not a_par:
                a, b = b, a
            candidate = self._combine_and_ordered(a, b)
            return [candidate] if candidate else []
        if not self.config.pbe_aware or ordering == "naive":
            candidate = self._combine_and_ordered(a, b)
            return [candidate] if candidate else []
        if ordering == "exhaustive":
            out = [self._combine_and_ordered(a, b),
                   self._combine_and_ordered(b, a)]
            return [c for c in out if c]
        # The paper's rule: a parallel-stack-bearing operand sinks to the
        # bottom (its discharge points may be protected by ground); with
        # both or neither, the operand with more potential discharge points
        # sinks.
        if a.par_b != b.par_b:
            top, bottom = (b, a) if a.par_b else (a, b)
        elif a.p_dis >= b.p_dis:
            top, bottom = b, a
        else:
            top, bottom = a, b
        candidate = self._combine_and_ordered(top, bottom)
        return [candidate] if candidate else []

    # ------------------------------------------------------------------
    # the DP over one node
    # ------------------------------------------------------------------
    def _fanin_view(self, uid: int) -> List[MapTuple]:
        node = self.network.node(uid)
        if node.type is NodeType.PI:
            return [self._pi_tuple(uid)]
        if node.type in (NodeType.AND, NodeType.OR):
            record = self._gates.get(uid)
            if self._forced[uid]:
                if record is None:  # pragma: no cover - topological order
                    raise MappingError(f"gate for node {uid} not yet formed")
                return [self._gate_input_tuple(record, sunk=True)]
            view = list(self._tables[uid].all_tuples())
            if record is not None:
                view.append(self._gate_input_tuple(
                    record, sunk=False,
                    fanout=self.network.fanout_count(uid)))
            return view
        raise MappingError(
            f"node {node.label} of type {node.type.value} cannot feed a "
            "domino pulldown (constants must be swept before mapping)")

    def _process_node(self, uid: int) -> None:
        node = self.network.node(uid)
        stats = self.stats
        started = time.perf_counter()
        table = self._cached_table(uid)
        if table is None:
            table = TupleTable(self.model.tuple_key,
                               pareto=self.config.pareto)
            views = [self._fanin_view(f) for f in node.fanins]
            combine_or = node.type is NodeType.OR
            for ta in views[0]:
                for tb in views[1]:
                    stats.combine_calls += 1
                    if combine_or:
                        candidates = self._combine_or(ta, tb)
                        candidates = [candidates] if candidates else []
                    else:
                        candidates = self._combine_and(ta, tb)
                    for candidate in candidates:
                        stats.tuples_created += 1
                        if not table.insert(candidate):
                            stats.tuples_pruned += 1
            if not len(table):
                raise MappingError(
                    f"no feasible {{W,H}} tuple for node {node.label}: "
                    f"limits w_max={self.config.w_max}, "
                    f"h_max={self.config.h_max} are too tight")
            self._store_table(uid, table)
        self._tables[uid] = table
        self._gates[uid] = self._form_gate(uid, table)
        elapsed = time.perf_counter() - started
        stats.nodes_processed += 1
        stats.node_time_s += elapsed
        stats.max_node_time_s = max(stats.max_node_time_s, elapsed)

    # ------------------------------------------------------------------
    # tree-cache hooks
    # ------------------------------------------------------------------
    def _cached_table(self, uid: int) -> Optional[TupleTable]:
        sig = self._signatures.get(uid)
        if sig is None or self.cache is None:
            return None
        table = self.cache.fetch(self._cache_prefix, sig, self.network, uid,
                                 self.model.tuple_key, self.config.pareto)
        if table is None:
            self.stats.cache_misses += 1
        else:
            self.stats.cache_hits += 1
        return table

    def _store_table(self, uid: int, table: TupleTable) -> None:
        sig = self._signatures.get(uid)
        if sig is not None and self.cache is not None:
            self.cache.put(self._cache_prefix, sig, self.network, uid, table)

    def _form_gate(self, uid: int, table: TupleTable) -> GateRecord:
        """Build the ``{1,1}`` formed-gate record from the best tuple."""
        self.stats.gate_formations += 1
        best = None
        best_key = None
        policy = self.config.ground_policy
        for t in table.all_tuples():
            overhead = self.model.gate_overhead_cost(t.has_pi)
            wcost = t.wcost + overhead
            disch = t.disch
            trans = t.trans + (5 if t.has_pi else 4)
            ungrounded = (policy == "pessimistic"
                          or (policy == "footless" and t.has_pi))
            if ungrounded and self.config.pbe_aware:
                wcost += t.p_dis * self.model.discharge_cost()
                disch += t.p_dis
                trans += t.p_dis
            levels = t.levels + 1
            key = (self.model.gate_key(wcost, levels), t.p_dis)
            if best_key is None or key < best_key:
                best_key = key
                best = (t, wcost, trans, disch, levels)
        t, wcost, trans, disch, levels = best
        return GateRecord(node_id=uid, tuple=t, wcost=wcost, trans=trans,
                          disch=disch, levels=levels, footed=t.has_pi)

    # ------------------------------------------------------------------
    # top level
    # ------------------------------------------------------------------
    def run(self) -> MappingResult:
        """Execute the DP and materialize the mapped circuit."""
        network = self.network
        if self.cache is not None and self.cache.enabled:
            self._cache_prefix = (self.config.fingerprint(),
                                  self.model.fingerprint())
            self._signatures = self.cache.signatures(network)
        po_drivers = {network.node(p).fanins[0] for p in network.pos}
        for uid in network.node_ids:
            node = network.node(uid)
            if node.type in (NodeType.AND, NodeType.OR):
                if self.config.duplication:
                    self._forced[uid] = False
                else:
                    self._forced[uid] = (network.fanout_count(uid) > 1
                                         or uid in po_drivers)
        for uid in network.topological_order():
            if network.node(uid).type in (NodeType.AND, NodeType.OR):
                self._process_node(uid)
        return self._materialize()

    def _materialize(self) -> MappingResult:
        network = self.network
        circuit = DominoCircuit(network.name)
        for uid in network.pis:
            circuit.add_input(network.node(uid).label)

        used: Dict[int, GateRecord] = {}

        def require(uid: int) -> GateRecord:
            record = self._gates[uid]
            if uid in used:
                return record
            used[uid] = record
            for ref in _structure_gate_refs(record.tuple.structure):
                require(ref)
            return record

        for po in network.pos:
            driver = network.node(network.node(po).fanins[0])
            if driver.type is NodeType.PI:
                circuit.connect_output(network.node(po).label, driver.label)
            elif driver.is_const:
                circuit.set_const_output(network.node(po).label,
                                         driver.type is NodeType.CONST1)
            elif driver.type in (NodeType.AND, NodeType.OR):
                record = require(driver.uid)
                circuit.connect_output(network.node(po).label,
                                       f"g{record.node_id}")
            else:
                raise MappingError(
                    f"PO {network.node(po).label} driven by unsupported "
                    f"node type {driver.type.value}")

        policy = self.config.ground_policy
        for uid, record in used.items():
            structure = record.tuple.structure
            if self.config.rearrange_gates:
                structure = rearrange(structure)
            grounded = (policy == "optimistic"
                        or (policy == "footless"
                            and not record.tuple.has_pi))
            gate = DominoGate.from_structure(
                name=f"g{uid}",
                structure=structure,
                grounded=grounded,
                level=record.levels,
                node_id=uid,
            )
            circuit.add_gate(gate)
        circuit.recompute_levels()

        result = MappingResult(
            circuit=circuit,
            config=self.config,
            cost_model=self.model,
            gate_records=dict(used),
            tuples_created=self.stats.tuples_created,
            stats=self.stats,
        )
        return result


def _structure_gate_refs(structure: Pulldown) -> List[int]:
    return [leaf.source_gate for leaf in structure.leaves()
            if leaf.source_gate is not None]
