"""Exception hierarchy for the repro package.

All errors raised by the library derive from :class:`ReproError`, so callers
can catch a single base class at API boundaries.

Every :class:`ReproError` subclass carries a class-level ``retryable``
flag — the failure taxonomy the batch pipeline's retry policy is driven
by.  *Retryable* errors are infrastructure failures (a crashed or hung
worker) where resubmitting the identical task can plausibly succeed;
everything else is a deterministic property of the task itself (a parse
error, an infeasible mapping, a resource ceiling) and must fail fast —
retrying would only burn the batch's deadline budget reproducing the
same failure.  :func:`is_retryable` extends the classification to
non-repro exceptions.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by the repro library.

    ``retryable`` is the batch pipeline's failure classification: True
    for infrastructure failures where an identical resubmission can
    succeed, False (the default) for errors deterministic in the task.
    """

    retryable = False


class NetworkError(ReproError):
    """A logic network is malformed (cycles, bad fanin, unknown node ids)."""


class ParseError(ReproError):
    """An input netlist file could not be parsed.

    Attributes
    ----------
    filename:
        Name of the offending file (may be ``"<string>"``).
    lineno:
        1-based line number where the problem was detected, or ``None``.
    """

    def __init__(self, message: str, filename: str = "<string>", lineno=None):
        self.filename = filename
        self.lineno = lineno
        location = filename if lineno is None else f"{filename}:{lineno}"
        super().__init__(f"{location}: {message}")


class UnateConversionError(ReproError):
    """The bubble-pushing pass could not produce a unate network."""


class MappingError(ReproError):
    """Technology mapping failed (e.g. no feasible tuple for a node)."""


class ResourceLimitError(MappingError):
    """A mapping run exceeded a configured resource ceiling.

    Raised by the engine when ``MapperConfig.max_nodes`` /
    ``max_tuples`` is breached (or when the ``resource.exhaust`` fault
    point fires), so pathological inputs degrade into a structured
    error instead of unbounded memory growth.  Carries the partial
    :class:`~repro.pipeline.MappingStats` accumulated up to the breach.
    """

    def __init__(self, message: str, *, stats=None, limit: str = ""):
        super().__init__(message)
        self.stats = stats
        self.limit = limit


class WorkerCrashError(ReproError):
    """A batch worker died mid-task (infrastructure failure: retryable)."""

    retryable = True


class BatchDeadlineError(ReproError):
    """The whole-batch deadline budget expired before the task finished."""


class FlowError(ReproError):
    """A flow pipeline is malformed or a checkpoint cannot be resumed."""


class CheckpointCorruptError(FlowError):
    """Checkpoint data failed an integrity check (bad bytes, not a
    mismatch): unreadable manifest JSON, a checksum that does not match
    the stored artifact, or an artifact that no longer unpickles.

    Distinct from the plain :class:`FlowError` refusals (different
    flow/pass-list/config), which are deliberate and must stay hard
    errors: corruption is recoverable by resuming from the last pass
    whose artifacts still verify.
    """


class CacheIntegrityError(ReproError):
    """A memoization cache entry failed its integrity fingerprint."""


class ObsError(ReproError):
    """An observability instrument is misused (metric type/bucket clash)."""


class StructureError(ReproError):
    """A pulldown structure tree is malformed or violates W/H limits."""


class SimulationError(ReproError):
    """A simulator was driven with inconsistent inputs or state."""


class BenchmarkError(ReproError):
    """A benchmark circuit could not be generated or was misconfigured."""


def is_retryable(exc: BaseException) -> bool:
    """Classify an exception for the batch retry policy.

    :class:`ReproError` subclasses answer through their ``retryable``
    attribute.  Outside the hierarchy, only infrastructure-flavoured
    failures (OS-level errors, memory pressure, timeouts) are
    retryable; anything else — pickling failures, type errors, parse
    errors — is deterministic in the task and fails fast.
    """
    if isinstance(exc, ReproError):
        return bool(exc.retryable)
    return isinstance(exc, (OSError, MemoryError, TimeoutError))
