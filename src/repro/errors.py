"""Exception hierarchy for the repro package.

All errors raised by the library derive from :class:`ReproError`, so callers
can catch a single base class at API boundaries.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by the repro library."""


class NetworkError(ReproError):
    """A logic network is malformed (cycles, bad fanin, unknown node ids)."""


class ParseError(ReproError):
    """An input netlist file could not be parsed.

    Attributes
    ----------
    filename:
        Name of the offending file (may be ``"<string>"``).
    lineno:
        1-based line number where the problem was detected, or ``None``.
    """

    def __init__(self, message: str, filename: str = "<string>", lineno=None):
        self.filename = filename
        self.lineno = lineno
        location = filename if lineno is None else f"{filename}:{lineno}"
        super().__init__(f"{location}: {message}")


class UnateConversionError(ReproError):
    """The bubble-pushing pass could not produce a unate network."""


class MappingError(ReproError):
    """Technology mapping failed (e.g. no feasible tuple for a node)."""


class FlowError(ReproError):
    """A flow pipeline is malformed or a checkpoint cannot be resumed."""


class ObsError(ReproError):
    """An observability instrument is misused (metric type/bucket clash)."""


class StructureError(ReproError):
    """A pulldown structure tree is malformed or violates W/H limits."""


class SimulationError(ReproError):
    """A simulator was driven with inconsistent inputs or state."""


class BenchmarkError(ReproError):
    """A benchmark circuit could not be generated or was misconfigured."""
