"""Deterministic, seedable fault injection for the mapping stack.

A :class:`FaultPlan` is a set of :class:`FaultRule` activations over the
registry of named **fault points** (:data:`FAULT_POINTS`) — the places
the production code is willing to break itself on purpose: a worker
crash, a task hang, checkpoint corruption, cache poisoning, a parse
failure, resource exhaustion.  Each site documents the recovery the
rest of the stack must provide, and ``tests/resilience`` drives every
one of them.

Determinism is the design center: whether a rule fires for a given
``(site, key)`` is a pure function of the plan seed and the key (a
SHA-256 fraction compared against the rule's probability), never of
execution order — so a pool run and a serial run of the same batch
inject the *same* faults, and a chaos run is reproducible from its seed
alone.  Retries are modelled explicitly: a rule fires only while the
current attempt number is within its ``max_attempt`` window (default:
first attempt only), which is what lets a chaos run assert that
recovery — not luck — produced the final result.

Activation is global per process (:func:`install` / :func:`uninstall`)
or via the ``REPRO_FAULTS`` environment variable
(:func:`install_from_env`), which batch workers inherit.  When no plan
is installed every injection site reduces to one ``is None`` check —
zero overhead in production.
"""

from __future__ import annotations

import hashlib
import os
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Tuple

from ..errors import ReproError

#: Environment variable holding a fault-plan spec (see :func:`plan_from_spec`).
FAULTS_ENV = "REPRO_FAULTS"

#: Metric-name prefix for all resilience counters.
RESILIENCE_PREFIX = "repro_resilience_"


@dataclass(frozen=True)
class FaultPoint:
    """One named injection site and its documented recovery."""

    name: str
    description: str
    #: the degradation path the stack must take when this fault fires
    recovery: str


#: The fault-point registry: every site the stack can break at on purpose.
FAULT_POINTS: Dict[str, FaultPoint] = {
    point.name: point for point in (
        FaultPoint(
            "worker.crash",
            "the executing worker raises WorkerCrashError at task start "
            "(hard=true exits the process, breaking the pool)",
            "classified retryable: exponential backoff + resubmission; "
            "a broken pool is rebuilt and unfinished tasks resubmitted"),
        FaultPoint(
            "task.hang",
            "the task sleeps sleep_s seconds at start, past any "
            "per-task timeout",
            "pool timeout fires; the hung worker's slot is reclaimed by "
            "rebuilding the pool and the task is resubmitted"),
        FaultPoint(
            "checkpoint.corrupt",
            "artifact bytes are flipped after the checksum is recorded, "
            "so the file on disk no longer matches its manifest entry",
            "restore verifies checksums and resumes from the last pass "
            "whose artifacts all verify instead of raising"),
        FaultPoint(
            "cache.poison",
            "a fetched TreeCache template is mutated without updating "
            "its integrity fingerprint",
            "fetch validation detects the mismatch, evicts the entry, "
            "and reports a miss so the DP recomputes the table"),
        FaultPoint(
            "parse.fail",
            "loading the task's circuit raises ParseError",
            "classified non-retryable: the task fails fast with a "
            "structured error result and is never resubmitted"),
        FaultPoint(
            "resource.exhaust",
            "the mapping engine raises ResourceLimitError mid-DP, as a "
            "configured node/tuple ceiling would",
            "the run stops with a structured MappingError carrying the "
            "partial stats; batch reports it as a per-task failure"),
        FaultPoint(
            "journal.corrupt",
            "the job journal flips a byte of the result blob after its "
            "sha256 checksum is recorded, so the row on disk no longer "
            "matches its manifest entry",
            "journal recovery verifies every result checksum, discards "
            "the corrupt blob, and re-enqueues the job so a restarted "
            "daemon recomputes it to the fault-free digest"),
        FaultPoint(
            "service.crash",
            "the serving daemon exits hard (os._exit) right after the "
            "running job's first task completes — a kill -9 mid-batch",
            "the restarted daemon replays the journal, re-enqueues every "
            "queued/running job, and the rerun (execution attempt 2) "
            "produces digests identical to an uninterrupted run"),
        FaultPoint(
            "queue.overload",
            "admission control treats the queue-wait watermark as "
            "breached for this submission",
            "the submit is shed with a retryable 429 carrying "
            "Retry-After; the client backs off and the retried submit "
            "(same idempotency key) is admitted and runs exactly once"),
        FaultPoint(
            "pool.breaker",
            "job execution fails with WorkerCrashError as if the worker "
            "pool kept dying through its rebuilds",
            "consecutive failures open the circuit breaker (retryable "
            "503 at admission); after the reset window a half-open "
            "probe job runs and, on success, closes the breaker"),
    )
}


@dataclass(frozen=True)
class FaultRule:
    """One activation of a fault point inside a plan.

    Attributes
    ----------
    site:
        A :data:`FAULT_POINTS` name.
    p:
        Firing probability; the decision for a given ``(seed, site,
        key)`` is deterministic (hash fraction < p), so ``p=1.0`` means
        "always for matching keys" and fractional values carve a
        reproducible pseudo-random subset.
    match:
        Substring the site key must contain (empty matches every key).
    max_attempt:
        Fire only while the ambient attempt number is <= this; ``None``
        fires on every attempt.  The default (1) makes retries clean,
        so recovery paths can be asserted to actually recover.
    sleep_s:
        Hang duration for ``task.hang``.
    hard:
        For ``worker.crash``: kill the process with ``os._exit`` (a
        real pool-breaking death) instead of raising.
    """

    site: str
    p: float = 1.0
    match: str = ""
    max_attempt: Optional[int] = 1
    sleep_s: float = 0.25
    hard: bool = False

    def __post_init__(self):
        if self.site not in FAULT_POINTS:
            raise ReproError(
                f"unknown fault point {self.site!r}; registered points: "
                f"{', '.join(FAULT_POINTS)}")
        if not 0.0 <= self.p <= 1.0:
            raise ReproError(f"fault rule {self.site}: p={self.p} "
                             f"outside [0, 1]")
        if self.sleep_s < 0:
            raise ReproError(f"fault rule {self.site}: negative sleep_s")


def hash_fraction(seed: int, site: str, key: str) -> float:
    """Deterministic uniform fraction in [0, 1) for one decision."""
    digest = hashlib.sha256(f"{seed}|{site}|{key}".encode()).digest()
    return int.from_bytes(digest[:8], "big") / 2.0 ** 64


@dataclass
class FaultPlan:
    """A seeded set of fault rules, installable per process.

    The plan is picklable (the batch runner ships it to pool workers
    through the pool initializer) and carries small per-process mutable
    state: the ambient ``attempt`` number (set by the task executor so
    retry-windowed rules see retries) and per-site fired counters.
    """

    seed: int = 0
    rules: Tuple[FaultRule, ...] = ()
    #: ambient attempt number for the currently executing task
    attempt: int = 1
    #: per-site count of faults fired in this process
    fired: Dict[str, int] = field(default_factory=dict)

    def __post_init__(self):
        self.rules = tuple(self.rules)

    def with_rule(self, *rules: FaultRule) -> "FaultPlan":
        return replace(self, rules=(*self.rules, *rules),
                       fired=dict(self.fired))

    def decide(self, site: str, key: str) -> Optional[FaultRule]:
        """The rule that fires for ``(site, key)`` now, or None.

        Pure in ``(seed, site, key)`` up to the attempt window: callers
        may probe repeatedly without consuming randomness.
        """
        for rule in self.rules:
            if rule.site != site:
                continue
            if rule.match and rule.match not in key:
                continue
            if (rule.max_attempt is not None
                    and self.attempt > rule.max_attempt):
                continue
            if rule.p >= 1.0 or hash_fraction(self.seed, site, key) < rule.p:
                return rule
        return None

    def record_fired(self, site: str) -> None:
        self.fired[site] = self.fired.get(site, 0) + 1

    def total_fired(self) -> int:
        return sum(self.fired.values())

    def spec(self) -> str:
        """Round-trippable spec string (see :func:`plan_from_spec`)."""
        parts = [f"seed={self.seed}"]
        for rule in self.rules:
            fields_ = []
            if rule.p != 1.0:
                fields_.append(f"p={rule.p}")
            if rule.match:
                fields_.append(f"match={rule.match}")
            if rule.max_attempt != 1:
                fields_.append("max_attempt=" + (
                    "all" if rule.max_attempt is None
                    else str(rule.max_attempt)))
            if rule.sleep_s != 0.25:
                fields_.append(f"sleep_s={rule.sleep_s}")
            if rule.hard:
                fields_.append("hard=true")
            parts.append(rule.site + (":" + ",".join(fields_)
                                      if fields_ else ""))
        return ";".join(parts)


def plan_from_spec(spec: str) -> FaultPlan:
    """Parse a fault-plan spec string.

    Format: semicolon-separated terms; ``seed=N`` sets the plan seed,
    every other term is ``site`` or ``site:k=v,k=v`` with the
    :class:`FaultRule` fields as keys, e.g.::

        seed=7;worker.crash:match=mux;task.hang:sleep_s=0.5,p=0.25
    """
    seed = 0
    rules: List[FaultRule] = []
    for term in spec.split(";"):
        term = term.strip()
        if not term:
            continue
        if term.startswith("seed="):
            seed = int(term[len("seed="):])
            continue
        site, _, argstr = term.partition(":")
        kwargs: Dict[str, object] = {}
        for pair in filter(None, (p.strip() for p in argstr.split(","))):
            key, sep, value = pair.partition("=")
            if not sep:
                raise ReproError(
                    f"fault spec term {term!r}: expected k=v, got {pair!r}")
            if key == "p":
                kwargs["p"] = float(value)
            elif key == "match":
                kwargs["match"] = value
            elif key == "max_attempt":
                kwargs["max_attempt"] = (None if value == "all"
                                         else int(value))
            elif key == "sleep_s":
                kwargs["sleep_s"] = float(value)
            elif key == "hard":
                kwargs["hard"] = value.lower() in ("1", "true", "yes")
            else:
                raise ReproError(
                    f"fault spec term {term!r}: unknown field {key!r}")
        rules.append(FaultRule(site=site.strip(), **kwargs))
    return FaultPlan(seed=seed, rules=tuple(rules))


# ---------------------------------------------------------------------------
# per-process activation
# ---------------------------------------------------------------------------
_ACTIVE: Optional[FaultPlan] = None


def install(plan: Optional[FaultPlan]) -> Optional[FaultPlan]:
    """Make ``plan`` the process's active plan; returns the previous one."""
    global _ACTIVE
    previous = _ACTIVE
    _ACTIVE = plan
    return previous


def uninstall() -> None:
    """Deactivate fault injection in this process."""
    install(None)


def active_plan() -> Optional[FaultPlan]:
    return _ACTIVE


def install_from_env(environ=os.environ) -> Optional[FaultPlan]:
    """Install the plan named by ``REPRO_FAULTS`` (None when unset)."""
    spec = environ.get(FAULTS_ENV, "").strip()
    if not spec:
        return None
    plan = plan_from_spec(spec)
    install(plan)
    return plan


# ---------------------------------------------------------------------------
# injection-site API
# ---------------------------------------------------------------------------
def fire(site: str, key: str, tracer=None,
         metrics=None) -> Optional[FaultRule]:
    """Fire ``site`` for ``key`` if the active plan says so.

    Returns the matched rule (the caller performs the fault's behaviour
    — raise, sleep, corrupt) or None.  A firing is counted on the plan
    and emitted as a zero-duration ``fault`` span plus
    ``repro_resilience_*`` counters when obs handles are supplied, so a
    chaos run's trace shows exactly what broke.
    """
    plan = _ACTIVE
    if plan is None:
        return None
    rule = plan.decide(site, key)
    if rule is None:
        return None
    plan.record_fired(site)
    emit_fault(site, key, tracer=tracer, metrics=metrics)
    return rule


def fire_at_attempt(site: str, key: str, attempt: int, tracer=None,
                    metrics=None) -> Optional[FaultRule]:
    """:func:`fire` under an explicit ambient attempt number.

    Task-level sites rely on the executor setting ``plan.attempt``;
    service-level sites (daemon crash, admission shed, breaker trips)
    are windowed by the *job's* execution attempt or the submission's
    shed count instead.  Swapping the ambient attempt around the
    decision is what makes a restarted daemon with the same
    ``REPRO_FAULTS`` env safe: a journal-recovered job runs at attempt
    2, past the default ``max_attempt=1`` window, so the fault fires
    once and recovery can be asserted to actually recover.
    """
    plan = _ACTIVE
    if plan is None:
        return None
    saved = plan.attempt
    plan.attempt = attempt
    try:
        return fire(site, key, tracer=tracer, metrics=metrics)
    finally:
        plan.attempt = saved


def fault_counter(site: str) -> str:
    return f"{RESILIENCE_PREFIX}fault_{site.replace('.', '_')}_total"


def recovery_counter(kind: str) -> str:
    return f"{RESILIENCE_PREFIX}recovery_{kind}_total"


def emit_fault(site: str, key: str, *, tracer=None, metrics=None) -> None:
    """Record one injected fault on the supplied obs handles."""
    if tracer is not None:
        tracer.event(f"fault:{site}", category="fault", site=site, key=key)
    if metrics is not None:
        metrics.counter(
            f"{RESILIENCE_PREFIX}faults_total",
            help="injected faults fired (all sites)").inc()
        metrics.counter(
            fault_counter(site),
            help=f"injected {site} faults fired").inc()


def emit_recovery(kind: str, detail: str = "", *, tracer=None,
                  metrics=None, **attributes) -> None:
    """Record one recovery action (retry, eviction, fallback, ...)."""
    if tracer is not None:
        tracer.event(f"recovery:{kind}", category="recovery", kind=kind,
                     detail=detail, **attributes)
    if metrics is not None:
        metrics.counter(
            f"{RESILIENCE_PREFIX}recoveries_total",
            help="recovery actions taken (all kinds)").inc()
        metrics.counter(
            recovery_counter(kind),
            help=f"{kind} recovery actions taken").inc()
