"""repro.resilience — deterministic fault injection and chaos drills.

Two halves (DESIGN.md section 11):

* :mod:`repro.resilience.faults` — the :data:`FAULT_POINTS` registry of
  named injection sites, :class:`FaultPlan`/:class:`FaultRule` seeded
  activation, the per-process :func:`install`/:func:`active_plan`
  switchboard (``REPRO_FAULTS`` env var for CLI surfaces and batch
  workers), and the obs emission helpers every site and recovery path
  report through;
* :mod:`repro.resilience.chaos` — the fault-matrix drill behind
  ``soidomino chaos``: one scenario per registered fault point, each
  asserting its documented recovery and bit-identical digests for
  non-faulted work.

``chaos`` imports the batch pipeline, so it resolves lazily (PEP 562)
and the fault core stays importable from the mapping engine's hot path
without cycles.
"""

from __future__ import annotations

from .faults import (
    FAULT_POINTS,
    FAULTS_ENV,
    RESILIENCE_PREFIX,
    FaultPlan,
    FaultPoint,
    FaultRule,
    active_plan,
    emit_fault,
    emit_recovery,
    fault_counter,
    fire,
    hash_fraction,
    install,
    install_from_env,
    plan_from_spec,
    recovery_counter,
    uninstall,
)

_LAZY = {
    "ChaosOutcome": ("chaos", "ChaosOutcome"),
    "ChaosReport": ("chaos", "ChaosReport"),
    "run_chaos": ("chaos", "run_chaos"),
    "chaos_sites": ("chaos", "chaos_sites"),
}

__all__ = [
    "FAULT_POINTS",
    "FAULTS_ENV",
    "RESILIENCE_PREFIX",
    "FaultPlan",
    "FaultPoint",
    "FaultRule",
    "active_plan",
    "emit_fault",
    "emit_recovery",
    "fault_counter",
    "fire",
    "hash_fraction",
    "install",
    "install_from_env",
    "plan_from_spec",
    "recovery_counter",
    "uninstall",
    *_LAZY,
]


def __getattr__(name: str):
    try:
        module_name, attr = _LAZY[name]
    except KeyError:
        raise AttributeError(
            f"module {__name__!r} has no attribute {name!r}") from None
    from importlib import import_module

    return getattr(import_module(f".{module_name}", __name__), attr)


def __dir__():
    return sorted(__all__)
