"""The fault-matrix chaos drill behind ``soidomino chaos``.

:func:`run_chaos` runs one scenario per registered fault point (the
full :data:`~repro.resilience.faults.FAULT_POINTS` matrix, or a chosen
subset): a seeded :class:`FaultPlan` activating exactly that site is
installed, a small real workload runs through the production stack —
the batch pool for the worker-facing sites, a checkpointed flow for
checkpoint corruption, a shared :class:`~repro.pipeline.TreeCache` for
cache poisoning — and the scenario passes only if the site's
*documented* recovery happened: hung/crashed workers were retried to
success, deterministic failures failed fast as structured per-task
errors, corrupt checkpoints rewound to the last verified pass, poisoned
cache entries were evicted and recomputed.  Every scenario also demands
**bit-identical digests** against a fault-free baseline for all work
that was supposed to survive, which is what separates "recovered" from
"limped to a different answer".

Everything is deterministic in ``seed``: fault decisions are hash-based
(see :mod:`repro.resilience.faults`), so a failing chaos run reproduces
from its command line alone.
"""

from __future__ import annotations

import tempfile
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..bench_suite import load_circuit
from ..mapping import map_network
from .faults import FAULT_POINTS, FaultPlan, FaultRule, install

#: Default chaos workload: small enough for a CI smoke run, large
#: enough that every scenario has non-faulted neighbours to digest-pin.
DEFAULT_CIRCUITS = ("mux", "cm150", "z4ml")


def chaos_sites() -> List[str]:
    """Registered fault-point names, in registry order."""
    return list(FAULT_POINTS)


@dataclass
class ChaosOutcome:
    """Result of one fault point's scenario."""

    site: str
    spec: str                 #: the exact fault-plan spec that ran
    ok: bool
    detail: str
    #: per-task outcome strings, label -> "ok" / the error (batch sites)
    tasks: Dict[str, str] = field(default_factory=dict)
    #: True when every non-faulted task's digest matched the baseline
    digests_ok: Optional[bool] = None

    def as_dict(self) -> Dict[str, object]:
        return {"site": self.site, "spec": self.spec, "ok": self.ok,
                "detail": self.detail, "tasks": dict(self.tasks),
                "digests_ok": self.digests_ok}


@dataclass
class ChaosReport:
    """All scenario outcomes of one chaos run."""

    seed: int
    circuits: Tuple[str, ...]
    outcomes: List[ChaosOutcome] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return all(o.ok for o in self.outcomes)

    def as_dict(self) -> Dict[str, object]:
        return {"schema": "soidomino-chaos/1", "seed": self.seed,
                "circuits": list(self.circuits), "ok": self.ok,
                "outcomes": [o.as_dict() for o in self.outcomes]}

    def __repr__(self) -> str:
        good = sum(1 for o in self.outcomes if o.ok)
        return f"ChaosReport({good}/{len(self.outcomes)} ok, seed={self.seed})"


# ---------------------------------------------------------------------------
# scenario plumbing
# ---------------------------------------------------------------------------
def _batch_scenario(plan: FaultPlan, circuits: Sequence[str], jobs: int,
                    timeout_s: Optional[float], retries: int):
    """Run the standard workload under ``plan`` through the batch pool."""
    from ..pipeline import BatchRunner

    runner = BatchRunner(max_workers=jobs, timeout_s=timeout_s,
                         retries=retries, fault_plan=plan)
    tasks = BatchRunner.sweep_tasks(circuits=list(circuits))
    return runner.run(tasks), tasks


def _task_outcomes(report) -> Dict[str, str]:
    return {r.task.label: "ok" if r.ok else (r.error or "failed")
            for r in report.results}


def _check_digests(report, baseline: Dict[str, str],
                   faulted_label: str) -> bool:
    """Non-faulted tasks must reproduce the baseline bit-for-bit."""
    return all(r.digest == baseline[r.task.label]
               for r in report.results
               if faulted_label not in r.task.label and r.ok)


def _verdict(site: str, spec: str, ok: bool, detail: str, report,
             digests_ok: Optional[bool]) -> ChaosOutcome:
    return ChaosOutcome(site=site, spec=spec, ok=ok, detail=detail,
                        tasks=_task_outcomes(report) if report else {},
                        digests_ok=digests_ok)


# ---------------------------------------------------------------------------
# the drill
# ---------------------------------------------------------------------------
def run_chaos(circuits: Optional[Sequence[str]] = None, *, seed: int = 0,
              jobs: int = 2, sites: Optional[Sequence[str]] = None,
              timeout_s: float = 30.0, hang_timeout_s: float = 0.5,
              retries: int = 1) -> ChaosReport:
    """Run the fault-matrix drill; every scenario must recover.

    ``circuits[0]`` is the *target* the fault rules match, so its
    neighbours double as the bit-identity control group.  ``jobs`` is
    the pool width for the batch scenarios (>= 2 exercises real
    parallelism); ``hang_timeout_s`` is the per-task timeout the
    ``task.hang`` scenario runs under (the injected hang sleeps past
    it).
    """
    circuits = tuple(circuits) if circuits else DEFAULT_CIRCUITS
    target = circuits[0]
    chosen = list(sites) if sites else chaos_sites()
    for site in chosen:
        if site not in FAULT_POINTS:
            raise ValueError(
                f"unknown chaos site {site!r}; registered: "
                f"{', '.join(FAULT_POINTS)}")

    report = ChaosReport(seed=seed, circuits=circuits)

    # fault-free baseline: the digests every scenario is held to
    from ..pipeline import BatchRunner

    baseline_run = BatchRunner(max_workers=1).run(
        BatchRunner.sweep_tasks(circuits=list(circuits)))
    if not baseline_run.ok:
        raise RuntimeError(
            "chaos baseline failed (without any faults): "
            + "; ".join(f"{r.task.label}: {r.error}"
                        for r in baseline_run.failures))
    baseline = {r.task.label: r.digest for r in baseline_run.results}

    runners = {
        "worker.crash": _run_worker_crash,
        "task.hang": _run_task_hang,
        "parse.fail": _run_parse_fail,
        "resource.exhaust": _run_resource_exhaust,
        "checkpoint.corrupt": _run_checkpoint_corrupt,
        "cache.poison": _run_cache_poison,
        "journal.corrupt": _run_journal_corrupt,
        "service.crash": _run_service_crash,
        "queue.overload": _run_queue_overload,
        "pool.breaker": _run_pool_breaker,
    }
    for site in chosen:
        report.outcomes.append(runners[site](
            seed=seed, circuits=circuits, target=target, jobs=jobs,
            timeout_s=timeout_s, hang_timeout_s=hang_timeout_s,
            retries=retries, baseline=baseline))
    return report


def _run_worker_crash(*, seed, circuits, target, jobs, timeout_s,
                      retries, baseline, **_) -> ChaosOutcome:
    plan = FaultPlan(seed=seed, rules=(
        FaultRule("worker.crash", match=target),))
    run, _tasks = _batch_scenario(plan, circuits, jobs, timeout_s, retries)
    digests_ok = (run.ok
                  and all(r.digest == baseline[r.task.label]
                          for r in run.results))
    retried = any(e["kind"] in ("retry", "pool_rebuild")
                  for e in run.events)
    ok = run.ok and digests_ok and retried
    detail = (f"crash on {target!r} attempt 1, "
              f"{'retried to success' if retried else 'NO RETRY SEEN'}, "
              f"digests {'match' if digests_ok else 'DIVERGED'}")
    return _verdict("worker.crash", plan.spec(), ok, detail, run, digests_ok)


def _run_task_hang(*, seed, circuits, target, jobs, hang_timeout_s,
                   retries, baseline, **_) -> ChaosOutcome:
    plan = FaultPlan(seed=seed, rules=(
        FaultRule("task.hang", match=target,
                  sleep_s=max(4 * hang_timeout_s, 2.0)),))
    run, _tasks = _batch_scenario(plan, circuits, jobs, hang_timeout_s,
                                  retries)
    digests_ok = (run.ok
                  and all(r.digest == baseline[r.task.label]
                          for r in run.results))
    reclaimed = any(e["kind"] == "pool_rebuild" for e in run.events)
    ok = run.ok and digests_ok and reclaimed
    detail = (f"hang on {target!r} past timeout {hang_timeout_s}s, "
              f"{'slot reclaimed' if reclaimed else 'NO POOL REBUILD'}, "
              f"digests {'match' if digests_ok else 'DIVERGED'}")
    return _verdict("task.hang", plan.spec(), ok, detail, run, digests_ok)


def _run_parse_fail(*, seed, circuits, target, jobs, timeout_s, retries,
                    baseline, **_) -> ChaosOutcome:
    plan = FaultPlan(seed=seed, rules=(
        FaultRule("parse.fail", match=target),))
    run, _tasks = _batch_scenario(plan, circuits, jobs, timeout_s, retries)
    faulted = [r for r in run.results if target in r.task.label]
    others_ok = _check_digests(run, baseline, target)
    failed_fast = all(not r.ok and "ParseError" in (r.error or "")
                      and r.attempts == 1 for r in faulted)
    ok = bool(faulted) and failed_fast and others_ok
    shape = ("failed fast with ParseError" if failed_fast
             else "DID NOT FAIL FAST")
    detail = (f"{target!r} {shape}, neighbours "
              f"{'match baseline' if others_ok else 'DIVERGED'}")
    return _verdict("parse.fail", plan.spec(), ok, detail, run, others_ok)


def _run_resource_exhaust(*, seed, circuits, target, jobs, timeout_s,
                          retries, baseline, **_) -> ChaosOutcome:
    plan = FaultPlan(seed=seed, rules=(
        FaultRule("resource.exhaust", match=target),))
    run, _tasks = _batch_scenario(plan, circuits, jobs, timeout_s, retries)
    faulted = [r for r in run.results if target in r.task.label]
    others_ok = _check_digests(run, baseline, target)
    structured = all(not r.ok and "ResourceLimitError" in (r.error or "")
                     for r in faulted)
    ok = bool(faulted) and structured and others_ok
    shape = ("reported structured ResourceLimitError" if structured
             else "WRONG FAILURE SHAPE")
    detail = (f"{target!r} {shape}, neighbours "
              f"{'match baseline' if others_ok else 'DIVERGED'}")
    return _verdict("resource.exhaust", plan.spec(), ok, detail, run,
                    others_ok)


def _run_checkpoint_corrupt(*, seed, target, baseline, **_) -> ChaosOutcome:
    clean = map_network(load_circuit(target), flow="soi")
    plan = FaultPlan(seed=seed, rules=(
        FaultRule("checkpoint.corrupt", match="plan"),))
    with tempfile.TemporaryDirectory(prefix="soidomino-chaos-") as tmpdir:
        previous = install(plan)
        try:
            map_network(load_circuit(target), flow="soi",
                        checkpoint_dir=tmpdir)
        finally:
            install(previous)
        resumed = map_network(load_circuit(target), flow="soi",
                              checkpoint_dir=tmpdir)
    digests_ok = resumed.circuit.digest() == clean.circuit.digest()
    rewound = any(r.status == "ok" for r in resumed.passes)
    ok = digests_ok and rewound
    detail = (f"corrupt 'plan' artifact on save; resume "
              f"{'rewound and re-ran' if rewound else 'DID NOT RE-RUN'}, "
              f"digest {'matches clean run' if digests_ok else 'DIVERGED'}")
    return ChaosOutcome(site="checkpoint.corrupt", spec=plan.spec(), ok=ok,
                        detail=detail, digests_ok=digests_ok)


# ---------------------------------------------------------------------------
# service-tier scenarios (DESIGN.md §14)
# ---------------------------------------------------------------------------
def _service_digests_ok(result: Dict, baseline: Dict[str, str]) -> bool:
    """Every entry of a service job result must match the baseline."""
    return all(entry["digest"] == baseline.get(
        f"{entry['circuit']}/{entry['flow']}/area")
        for entry in result.get("results", []))


def _run_journal_corrupt(*, seed, target, baseline, **_) -> ChaosOutcome:
    """A done job's journaled result blob is corrupted on disk; the
    restarted daemon must demote it and recompute to the same digest."""
    from ..service import MappingService, ServiceClient, start_in_thread

    plan = FaultPlan(seed=seed, rules=(
        FaultRule("journal.corrupt", match=target),))
    with tempfile.TemporaryDirectory(prefix="soidomino-chaos-") as tmpdir:
        journal = f"{tmpdir}/journal.sqlite"
        previous = install(plan)
        try:
            service = MappingService(max_workers=1, journal_path=journal)
            handle = start_in_thread(service)
            try:
                client = ServiceClient(port=handle.port)
                job = client.submit({"circuits": [target]})
                first = client.wait(job["id"])
            finally:
                handle.stop()
            # the daemon restarts with the same fault env: the rule's
            # max_attempt=1 window must keep the rerun (attempt 2) clean
            service2 = MappingService(max_workers=1, journal_path=journal)
            demoted = service2.journal.stats()["corrupt_results"] >= 1
            requeued = service2.requeued_jobs >= 1
            handle2 = start_in_thread(service2)
            try:
                client2 = ServiceClient(port=handle2.port)
                second = client2.wait(job["id"])
                status = client2.status(job["id"])
            finally:
                handle2.stop()
        finally:
            install(previous)
    digests_ok = (first["state"] == "done" and second["state"] == "done"
                  and _service_digests_ok(first["result"], baseline)
                  and _service_digests_ok(second["result"], baseline))
    recomputed = status["attempts"] == 2 and status["recovered"]
    ok = demoted and requeued and recomputed and digests_ok
    detail = (f"corrupt result blob "
              f"{'detected and demoted' if demoted else 'NOT DETECTED'}, "
              f"{'re-enqueued' if requeued else 'NOT RE-ENQUEUED'}, "
              f"rerun (attempt 2) digest "
              f"{'matches baseline' if digests_ok else 'DIVERGED'}")
    return ChaosOutcome(site="journal.corrupt", spec=plan.spec(), ok=ok,
                        detail=detail, digests_ok=digests_ok)


def _spawn_daemon(port: int, journal: str, faults: str,
                  extra_env: Optional[Dict[str, str]] = None):
    """``soidomino serve`` as a real subprocess (kill -9 drills)."""
    import os
    import subprocess
    import sys

    from ..service import ServiceClient

    src = os.path.dirname(os.path.dirname(os.path.dirname(
        os.path.abspath(__file__))))
    env = os.environ.copy()
    env["PYTHONPATH"] = os.pathsep.join(
        [src] + ([env["PYTHONPATH"]] if env.get("PYTHONPATH") else []))
    env["REPRO_FAULTS"] = faults
    env.update(extra_env or {})
    process = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--port", str(port),
         "--journal", journal, "--no-store", "-j", "1"],
        stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL, env=env)
    client = ServiceClient(port=port, timeout=5.0, retries=0)
    deadline = _now() + 30.0
    while _now() < deadline:
        if process.poll() is not None:
            raise RuntimeError(
                f"daemon exited early with code {process.returncode}")
        try:
            if client.health().get("status") == "ok":
                return process
        except OSError:
            _sleep(0.1)
    process.kill()
    raise RuntimeError("chaos daemon did not become healthy within 30s")


def _now() -> float:
    import time

    return time.monotonic()


def _sleep(seconds: float) -> None:
    import time

    time.sleep(seconds)


def _free_port() -> int:
    import socket

    with socket.socket() as sock:
        sock.bind(("127.0.0.1", 0))
        return sock.getsockname()[1]


def _run_service_crash(*, seed, circuits, target, baseline,
                       **_) -> ChaosOutcome:
    """kill -9 the daemon mid-batch; the restarted daemon must replay
    the journal and finish the job with baseline digests."""
    import subprocess

    from ..service import ServiceClient

    faults = f"seed={seed};service.crash:match={target}"
    with tempfile.TemporaryDirectory(prefix="soidomino-chaos-") as tmpdir:
        journal = f"{tmpdir}/journal.sqlite"
        port = _free_port()
        daemon = _spawn_daemon(port, journal, faults)
        try:
            client = ServiceClient(port=port, retries=0)
            job = client.submit({"circuits": list(circuits)})
            try:
                daemon.wait(timeout=120)
            except subprocess.TimeoutExpired:
                daemon.kill()
                daemon.wait(timeout=15)
            crashed = daemon.returncode == 86
            # the successor runs with the SAME fault env: recovery must
            # survive it (the rerun is attempt 2, past the window)
            daemon = _spawn_daemon(port, journal, faults)
            retry_client = ServiceClient(port=port, retries=3)
            result = retry_client.wait(job["id"], timeout=120.0)
            status = retry_client.status(job["id"])
            events = list(retry_client.events(job["id"]))
        finally:
            daemon.terminate()
            try:
                daemon.wait(timeout=15)
            except subprocess.TimeoutExpired:
                daemon.kill()
                daemon.wait(timeout=15)
    digests_ok = (result["state"] == "done"
                  and _service_digests_ok(result["result"], baseline))
    replayed = status["recovered"] and status["attempts"] == 2
    seqs = [e["seq"] for e in events]
    cursor_ok = seqs == sorted(set(seqs))  # continuous, no duplicates
    ok = crashed and replayed and digests_ok and cursor_ok
    detail = (f"daemon {'crashed mid-batch (exit 86)' if crashed else 'DID NOT CRASH'}, "
              f"restart {'replayed the journal' if replayed else 'DID NOT REPLAY'}, "
              f"digests {'match baseline' if digests_ok else 'DIVERGED'}, "
              f"event cursor {'continuous' if cursor_ok else 'BROKEN'}")
    return ChaosOutcome(site="service.crash",
                        spec=faults, ok=ok, detail=detail,
                        digests_ok=digests_ok)


def _run_queue_overload(*, seed, target, baseline, **_) -> ChaosOutcome:
    """Admission sheds the first submit (retryable 429 + Retry-After);
    the client's idempotent retry must run the job exactly once."""
    from ..service import MappingService, ServiceClient, start_in_thread

    plan = FaultPlan(seed=seed, rules=(
        FaultRule("queue.overload", match=target),))
    previous = install(plan)
    try:
        service = MappingService(max_workers=1)
        handle = start_in_thread(service)
        try:
            client = ServiceClient(port=handle.port, retries=3)
            job = client.submit({"circuits": [target]})
            result = client.wait(job["id"])
        finally:
            handle.stop()
    finally:
        install(previous)
    shed = client.retried >= 1
    exactly_once = len(service.jobs) == 1
    digests_ok = (result["state"] == "done"
                  and _service_digests_ok(result["result"], baseline))
    ok = shed and exactly_once and digests_ok
    detail = (f"first submit {'shed, client retried' if shed else 'NOT SHED'}, "
              f"{len(service.jobs)} job(s) ran "
              f"{'(exactly once)' if exactly_once else '(EXPECTED 1)'}, "
              f"digest {'matches baseline' if digests_ok else 'DIVERGED'}")
    return ChaosOutcome(site="queue.overload", spec=plan.spec(), ok=ok,
                        detail=detail, digests_ok=digests_ok)


def _run_pool_breaker(*, seed, target, baseline, **_) -> ChaosOutcome:
    """Consecutive injected pool failures must open the breaker (503 at
    admission); after the reset window a probe job closes it."""
    from ..service import (
        MappingService,
        ServiceClient,
        ServiceError,
        start_in_thread,
    )

    plan = FaultPlan(seed=seed, rules=(
        FaultRule("pool.breaker", match=target),))
    previous = install(plan)
    try:
        service = MappingService(max_workers=1, breaker_threshold=2,
                                 breaker_reset_s=3.0)
        handle = start_in_thread(service)
        try:
            client = ServiceClient(port=handle.port, retries=0)
            for _i in range(2):  # each job fails at attempt 1
                job = client.submit({"circuits": [target]})
                client.wait(job["id"])
            opened = service.breaker.state == "open"
            rejected = False
            try:
                client.submit({"circuits": [target]})
            except ServiceError as exc:
                rejected = (exc.status == 503 and exc.retryable
                            and exc.retry_after is not None)
            install(previous)  # the pool "heals": faults stop firing
            _sleep(3.1)  # past breaker_reset_s: next submit is the probe
            probe = client.submit({"circuits": [target]})
            result = client.wait(probe["id"])
            closed = service.breaker.state == "closed"
            opens = service.breaker.opens
        finally:
            handle.stop()
    finally:
        install(previous)
    digests_ok = (result["state"] == "done"
                  and _service_digests_ok(result["result"], baseline))
    ok = opened and rejected and closed and opens >= 1 and digests_ok
    detail = (f"breaker {'opened after 2 failures' if opened else 'DID NOT OPEN'}, "
              f"admission {'rejected 503+Retry-After' if rejected else 'NOT GATED'}, "
              f"probe {'closed it' if closed else 'DID NOT CLOSE'}, "
              f"digest {'matches baseline' if digests_ok else 'DIVERGED'}")
    return ChaosOutcome(site="pool.breaker", spec=plan.spec(), ok=ok,
                        detail=detail, digests_ok=digests_ok)


def _run_cache_poison(*, seed, target, baseline, **_) -> ChaosOutcome:
    from ..mapping import MapperConfig
    from ..pipeline import TreeCache

    try:
        import numpy  # noqa: F401
        recovery_kernel = "soa"
    except ImportError:  # pragma: no cover - numpy is installed in CI
        recovery_kernel = "reference"

    clean = map_network(load_circuit(target), flow="soi")
    cache = TreeCache()
    # first run populates the cache fault-free (reference kernel)...
    map_network(load_circuit(target), flow="soi", cache=cache)
    plan = FaultPlan(seed=seed, rules=(FaultRule("cache.poison"),))
    previous = install(plan)
    try:
        # ...the second run's hits are poisoned and must be recomputed.
        # The recompute runs under the soa kernel (when available): the
        # recovery path must be bit-identical across kernels too.
        poisoned = map_network(load_circuit(target), flow="soi",
                               cache=cache,
                               config=MapperConfig(kernel=recovery_kernel))
    finally:
        install(previous)
    digests_ok = poisoned.circuit.digest() == clean.circuit.digest()
    evicted = cache.evictions > 0
    ok = digests_ok and evicted
    detail = (f"{cache.evictions} poisoned entries evicted"
              f"{'' if evicted else ' (EXPECTED > 0)'}, "
              f"recomputed under kernel={recovery_kernel}, "
              f"digest {'matches uncached run' if digests_ok else 'DIVERGED'}")
    return ChaosOutcome(site="cache.poison", spec=plan.spec(), ok=ok,
                        detail=detail, digests_ok=digests_ok)
