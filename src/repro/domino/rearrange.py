"""Series-stack rearrangement (the RS_Map post-processing pass).

Reordering the children of a series composition does not change the logic
function, but it changes which discharge points are committed: parallel
stacks and sub-structures rich in potential discharge points should sink
toward ground, where grounding protects them (paper section V, Figure 5,
and section VI-A).

For each series node only the choice of *bottom* child affects the
discharge count (upper children contribute ``committed + potential +
par_b`` regardless of their relative order), so the pass recursively
rearranges children and then moves the child with the largest
``potential + par_b`` payoff to the bottom.
"""

from __future__ import annotations

from typing import Tuple

from .analysis import analyse, count_discharge_transistors
from .structure import Leaf, Parallel, Pulldown, Series


def _payoff(child: Pulldown) -> int:
    """Discharge transistors saved by placing ``child`` at the bottom."""
    analysis = analyse(child)
    return analysis.p_dis + (1 if child.ends_in_parallel else 0)


def rearrange(structure: Pulldown) -> Pulldown:
    """Return a logically equivalent structure with series stacks reordered.

    Children of every series node are recursively rearranged; the child
    with the highest :func:`_payoff` is placed at the bottom (closest to
    ground).  Upper children keep their original relative order, so the
    transformation is deterministic.
    """
    if isinstance(structure, Leaf):
        return structure
    if isinstance(structure, Parallel):
        return Parallel(tuple(rearrange(c) for c in structure.children))
    if isinstance(structure, Series):
        children = [rearrange(c) for c in structure.children]
        best = max(range(len(children)), key=lambda i: (_payoff(children[i]), i))
        bottom = children.pop(best)
        return Series(tuple(children + [bottom]))
    raise TypeError(f"unknown structure node {type(structure)!r}")


def discharge_saving(structure: Pulldown, grounded: bool = True) -> Tuple[int, int]:
    """(before, after) discharge-transistor counts for ``structure``."""
    before = count_discharge_transistors(structure, grounded)
    after = count_discharge_transistors(rearrange(structure), grounded)
    return before, after
