"""Domino gate and transistor-accounting model.

A :class:`DominoGate` bundles a pulldown structure with the fixed domino
overhead devices and the p-discharge transistors required by the PBE
analysis.  Accounting conventions follow the paper's section VI (see
DESIGN.md section 6):

* ``t_logic``   = pulldown nmos + p-clock precharge + output inverter (2)
  + keeper + n-clock foot (footed gates only);
* ``t_disch``   = clock-driven pmos pre-discharge transistors;
* ``t_clock``   = p-clock + n-clock + p-discharge (everything loading the
  clock network — Table III's metric).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from ..errors import StructureError
from .analysis import DischargePoint, analyse
from .structure import Pulldown, has_primary_leaf

#: Fixed non-foot overhead: p-clock precharge + 2-transistor output
#: inverter + keeper.
GATE_OVERHEAD = 4
#: Additional n-clock foot transistor for gates with primary inputs.
FOOT_OVERHEAD = 1


@dataclass
class DominoGate:
    """A mapped domino gate.

    Attributes
    ----------
    name:
        Output signal name.
    structure:
        The nmos pulldown network.
    footed:
        Whether an n-clock foot transistor is present.  Per the paper, a
        foot is required iff the pulldown has primary-input leaves.
    discharge_points:
        Junctions carrying a p-discharge transistor (path-addressed; see
        :mod:`repro.domino.analysis`).
    level:
        Domino depth of this gate (1 + max level of driving gates).
    node_id:
        Mapping-node id this gate implements (optional bookkeeping).
    """

    name: str
    structure: Pulldown
    footed: bool
    discharge_points: Tuple[DischargePoint, ...] = ()
    level: int = 1
    node_id: Optional[int] = None

    @classmethod
    def from_structure(cls, name: str, structure: Pulldown,
                       grounded: bool = True, level: int = 1,
                       node_id: Optional[int] = None) -> "DominoGate":
        """Build a gate, deriving footedness and discharge points.

        ``grounded`` selects the paper's optimistic policy (stack bottom
        treated as ground, so only committed points are discharged) versus
        the pessimistic one (potential points discharged too).
        """
        return cls(
            name=name,
            structure=structure,
            footed=has_primary_leaf(structure),
            discharge_points=analyse(structure).required(grounded),
            level=level,
            node_id=node_id,
        )

    # ------------------------------------------------------------------
    # accounting
    # ------------------------------------------------------------------
    @property
    def t_pulldown(self) -> int:
        """nmos transistors in the pulldown network."""
        return self.structure.num_transistors

    @property
    def t_overhead(self) -> int:
        """Precharge + inverter + keeper (+ foot when footed)."""
        return GATE_OVERHEAD + (FOOT_OVERHEAD if self.footed else 0)

    @property
    def t_logic(self) -> int:
        """All transistors except p-discharge (paper's ``T_logic``)."""
        return self.t_pulldown + self.t_overhead

    @property
    def t_disch(self) -> int:
        """p-discharge transistor count (paper's ``T_disch``)."""
        return len(self.discharge_points)

    @property
    def t_total(self) -> int:
        return self.t_logic + self.t_disch

    @property
    def t_clock(self) -> int:
        """Clock-connected transistors: p-clock, optional n-clock, discharges."""
        return 1 + (1 if self.footed else 0) + self.t_disch

    @property
    def width(self) -> int:
        return self.structure.width

    @property
    def height(self) -> int:
        return self.structure.height

    def validate(self, w_max: int = None, h_max: int = None) -> None:
        """Check internal consistency; raise :class:`StructureError` if broken."""
        if self.footed != has_primary_leaf(self.structure):
            raise StructureError(
                f"gate {self.name}: footed={self.footed} inconsistent with "
                f"primary leaves in pulldown")
        if w_max is not None and self.width > w_max:
            raise StructureError(f"gate {self.name}: width {self.width} > {w_max}")
        if h_max is not None and self.height > h_max:
            raise StructureError(f"gate {self.name}: height {self.height} > {h_max}")
        analysis = analyse(self.structure)
        allowed = set(analysis.committed) | set(analysis.potential)
        for point in self.discharge_points:
            if point not in allowed:
                raise StructureError(
                    f"gate {self.name}: discharge point {point} is not a "
                    f"junction of the structure")
        if not set(analysis.committed) <= set(self.discharge_points):
            missing = set(analysis.committed) - set(self.discharge_points)
            raise StructureError(
                f"gate {self.name}: committed discharge points {missing} "
                f"have no discharge transistor")

    def __str__(self) -> str:
        foot = "footed" if self.footed else "footless"
        return (f"DominoGate({self.name}: {self.structure}, {foot}, "
                f"disch={self.t_disch}, level={self.level})")
