"""Elmore-style delay estimation for domino pulldown networks.

The paper deliberately maps with technology-neutral metrics ("reordering
changes delay, but since diffusion capacitances are relatively low, we
ignore them as a first order approximation") and defers detailed timing
to "a followup technology-specific optimization step".  This module is
that follow-up step's entry point: a classical Elmore RC estimate of the
evaluation delay of a mapped gate and of a whole circuit's critical path,
so the delay impact of stack reordering, discharge transistors and gate
granularity can be quantified.

Model (unit-normalized):

* every nmos pulldown transistor contributes ``R_ON`` series resistance
  on its conduction path and ``C_DIFF`` diffusion capacitance to each of
  its terminals;
* each p-discharge transistor adds ``C_DIFF`` to its junction (its load
  is why the paper penalizes them with the ``k`` cost);
* the worst-case evaluation path is the structure's slowest
  top-to-bottom conduction path; Elmore delay sums, per node on the
  path, the resistance from ground times the capacitance hanging there;
* the gate adds a fixed output-inverter delay, and the keeper and
  precharge device contribute load on the dynamic node.

Absolute numbers are unit-less; only comparisons are meaningful.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from .circuit import DominoCircuit
from .gate import DominoGate
from .structure import Leaf, Parallel, Pulldown, Series

#: Unit on-resistance of one nmos pulldown transistor.
R_ON = 1.0
#: Unit diffusion capacitance contributed per transistor terminal.
C_DIFF = 0.15
#: Gate (input) capacitance presented by one transistor.
C_GATE = 1.0
#: Fixed dynamic-node load: precharge drain + keeper drain + inverter gates.
C_DYNAMIC_FIXED = 2.0
#: Fixed output-inverter delay.
T_INVERTER = 1.0


@dataclass(frozen=True)
class GateDelay:
    """Evaluation-delay estimate of one domino gate."""

    worst_path: float        #: Elmore delay of the slowest pulldown path
    dynamic_load: float      #: capacitance on the dynamic node
    total: float             #: worst_path + inverter delay

    def __str__(self) -> str:
        return f"GateDelay({self.total:.2f} units)"


def _path_delays(structure: Pulldown, depth_from_ground: int,
                 disch_nodes: int) -> Tuple[float, float]:
    """(worst Elmore contribution, capacitance seen at the top node).

    Returns the worst-case Elmore sum of the structure assuming its
    bottom sits ``depth_from_ground`` devices above ground, plus the
    diffusion capacitance presented at its top node.
    """
    if isinstance(structure, Leaf):
        # One device: its top-terminal diffusion; delay contribution is
        # accounted by the caller walking node by node.
        return 0.0, C_DIFF
    if isinstance(structure, Parallel):
        worst = 0.0
        cap = 0.0
        for child in structure.children:
            w, c = _path_delays(child, depth_from_ground, disch_nodes)
            worst = max(worst, w)
            cap += c
        return worst, cap
    if isinstance(structure, Series):
        # Walk bottom-up: each junction node sees the resistance of every
        # device below it on the conducting path.
        worst = 0.0
        height_below = depth_from_ground
        cap_top = 0.0
        children = list(reversed(structure.children))
        for index, child in enumerate(children):
            w, cap_at_child_top = _path_delays(child, height_below,
                                               disch_nodes)
            worst += w
            height_below += child.height
            cap_top = cap_at_child_top
            if index == len(children) - 1:
                # the node above the top child is the enclosing context's
                # node (ultimately the dynamic node): charged by the caller
                break
            # the junction above this child carries its top diffusion
            # (plus the next child's bottom diffusion, folded into C_DIFF)
            resistance_below = R_ON * height_below
            worst += resistance_below * (cap_at_child_top + C_DIFF)
        return worst, cap_top
    raise TypeError(f"unknown structure node {type(structure)!r}")


def gate_delay(gate: DominoGate) -> GateDelay:
    """Elmore evaluation-delay estimate of one gate."""
    base_depth = 1 if gate.footed else 0  # the n-clock foot is on the path
    worst, cap_top = _path_delays(gate.structure, base_depth, gate.t_disch)
    # Dynamic-node discharge: total path resistance times the node load.
    dynamic_load = (C_DYNAMIC_FIXED + cap_top
                    + C_DIFF * gate.t_disch)
    path_resistance = R_ON * (gate.structure.height + base_depth)
    worst += path_resistance * dynamic_load
    return GateDelay(worst_path=worst, dynamic_load=dynamic_load,
                     total=worst + T_INVERTER)


@dataclass(frozen=True)
class CircuitTiming:
    """Critical-path estimate of a mapped circuit."""

    critical_path: float
    critical_gate: str                   #: last gate on the critical path
    arrival: Dict[str, float]            #: per-gate output arrival times

    def __str__(self) -> str:
        return (f"critical path {self.critical_path:.2f} units "
                f"(through {self.critical_gate})")


def circuit_timing(circuit: DominoCircuit) -> CircuitTiming:
    """Topological critical-path analysis over the mapped circuit.

    Primary inputs arrive at time 0; each gate's output arrives at the
    latest driver arrival plus its own evaluation delay.
    """
    arrival: Dict[str, float] = {}
    critical_gate = ""
    critical = 0.0
    for gate in circuit._topological_gates():
        start = 0.0
        for leaf in gate.structure.leaves():
            if not leaf.is_primary:
                start = max(start, arrival[leaf.signal])
        t = start + gate_delay(gate).total
        arrival[gate.name] = t
        if t > critical:
            critical = t
            critical_gate = gate.name
    return CircuitTiming(critical_path=critical, critical_gate=critical_gate,
                         arrival=arrival)
