"""Series/parallel pulldown-network structures for domino gates.

A domino gate's nmos pulldown network is modelled as a series/parallel
tree whose leaves are single transistors.  Each leaf records the signal
driving its transistor gate: either a primary input (both phases allowed
after unate conversion) or the output of another domino gate.

Width ``W`` (parallel transistor count) and height ``H`` (series depth)
follow the paper's conventions: a leaf is ``{W=1, H=1}``, a series
composition is ``{max(W_i), sum(H_i)}``, a parallel composition is
``{sum(W_i), max(H_i)}``.

Series children are stored **top first**: ``children[0]`` connects toward
the dynamic node, ``children[-1]`` toward ground (or the n-clock foot).
The top/bottom distinction is what the Parasitic Bipolar Effect analysis
is all about.

All metrics (``width``, ``height``, ``num_transistors``, primary-leaf
presence) are computed once at construction, so the mapper's inner loop
reads them in O(1).
"""

from __future__ import annotations

from typing import Iterator, List, Optional, Tuple, Union

from ..errors import StructureError


class Leaf:
    """A single nmos transistor.

    Attributes
    ----------
    signal:
        Name of the driving signal.
    is_primary:
        True if the signal is a primary input (the containing gate then
        needs an n-clock foot transistor).
    source_gate:
        For non-primary leaves, an opaque reference identifying the domino
        gate (mapping-node id) whose output drives this transistor.
    """

    __slots__ = ("signal", "is_primary", "source_gate")

    width = 1
    height = 1
    num_transistors = 1
    #: ``par_b`` of a single transistor: no parallel stack at the bottom.
    ends_in_parallel = False

    def __init__(self, signal: str, is_primary: bool = True,
                 source_gate: Optional[int] = None):
        self.signal = signal
        self.is_primary = is_primary
        self.source_gate = source_gate

    @property
    def has_primary(self) -> bool:
        return self.is_primary

    def leaves(self) -> Iterator["Leaf"]:
        yield self

    def __eq__(self, other) -> bool:
        return (isinstance(other, Leaf) and self.signal == other.signal
                and self.is_primary == other.is_primary
                and self.source_gate == other.source_gate)

    def __hash__(self) -> int:
        return hash(("leaf", self.signal, self.is_primary, self.source_gate))

    def __repr__(self) -> str:
        return f"Leaf({self.signal!r})"

    def __str__(self) -> str:
        return self.signal


class _Composite:
    """Shared implementation of series/parallel composition nodes."""

    __slots__ = ("children", "width", "height", "num_transistors",
                 "has_primary")

    def __init__(self, children: Tuple["Pulldown", ...]):
        if len(children) < 2:
            raise StructureError(
                f"{type(self).__name__} requires at least 2 children")
        # Flatten nested nodes of the same kind: keeps top-to-bottom order
        # intact and makes structural equality insensitive to the order in
        # which the mapper combined sub-structures.
        flat: List[Pulldown] = []
        for child in children:
            if isinstance(child, type(self)):
                flat.extend(child.children)
            else:
                flat.append(child)
        self.children = tuple(flat)
        self.num_transistors = sum(c.num_transistors for c in self.children)
        self.has_primary = any(c.has_primary for c in self.children)

    def leaves(self) -> Iterator[Leaf]:
        for child in self.children:
            yield from child.leaves()

    def __eq__(self, other) -> bool:
        return type(other) is type(self) and self.children == other.children

    def __hash__(self) -> int:
        return hash((type(self).__name__, self.children))

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.children!r})"


class Series(_Composite):
    """Series composition; ``children[0]`` is at the top (dynamic-node side)."""

    __slots__ = ()

    def __init__(self, children: Tuple["Pulldown", ...]):
        super().__init__(children)
        self.width = max(c.width for c in self.children)
        self.height = sum(c.height for c in self.children)

    @property
    def top(self) -> "Pulldown":
        return self.children[0]

    @property
    def bottom(self) -> "Pulldown":
        return self.children[-1]

    @property
    def ends_in_parallel(self) -> bool:
        """``par_b``: true when the bottom-most element is a parallel stack."""
        return self.bottom.ends_in_parallel

    def __str__(self) -> str:
        return "[" + " ; ".join(str(c) for c in self.children) + "]"


class Parallel(_Composite):
    """Parallel composition of two or more branches."""

    __slots__ = ()

    ends_in_parallel = True

    def __init__(self, children: Tuple["Pulldown", ...]):
        super().__init__(children)
        self.width = sum(c.width for c in self.children)
        self.height = max(c.height for c in self.children)

    def __str__(self) -> str:
        return "(" + " | ".join(str(c) for c in self.children) + ")"


Pulldown = Union[Leaf, Series, Parallel]


def series(*parts: Pulldown) -> Pulldown:
    """Series composition, top first; collapses the single-element case."""
    if not parts:
        raise StructureError("series() needs at least one part")
    if len(parts) == 1:
        return parts[0]
    return Series(tuple(parts))


def parallel(*parts: Pulldown) -> Pulldown:
    """Parallel composition; collapses the single-element case."""
    if not parts:
        raise StructureError("parallel() needs at least one part")
    if len(parts) == 1:
        return parts[0]
    return Parallel(tuple(parts))


def has_primary_leaf(structure: Pulldown) -> bool:
    """True if any transistor is driven by a primary input."""
    return structure.has_primary


def gate_leaf_refs(structure: Pulldown) -> List[int]:
    """Mapping-node ids of all domino-gate-driven leaves (with repeats)."""
    return [leaf.source_gate for leaf in structure.leaves()
            if leaf.source_gate is not None]


def check_limits(structure: Pulldown, w_max: int, h_max: int) -> None:
    """Raise :class:`StructureError` if W/H limits are violated."""
    if structure.width > w_max:
        raise StructureError(
            f"structure width {structure.width} exceeds Wmax={w_max}")
    if structure.height > h_max:
        raise StructureError(
            f"structure height {structure.height} exceeds Hmax={h_max}")
