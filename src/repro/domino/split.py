"""Parallel-stack elimination by transistor replication (§III-C, item 3).

One of the paper's enumerated PBE countermeasures: "parallel stacks can
be broken up by transistor replication.  For example, (A + B + C) * D
can be re-implemented as A * D + B * D + C * D ...  If this
implementation is connected to ground, there are no paths for transistor
bodies to charge high, since parallel stacks have been eliminated.  A
drawback of this approach is the cost requirement of duplicating logic
for each finger of a potentially wide parallel stack."

:func:`split_parallel_stacks` applies the distributive law to a pulldown
structure until it is a single parallel composition of pure series
chains (sum-of-products form).  All internal parallel stacks disappear:
with the one remaining stack's bottom at ground, the structure has no
discharge points at all — at the price of replicated transistors, which
is exactly the trade-off the paper rejects for wide stacks and this
module quantifies.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from .analysis import analyse
from .structure import Leaf, Parallel, Pulldown, Series, parallel, series


def _chains(structure: Pulldown) -> List[Tuple[Leaf, ...]]:
    """Expand a structure into its conduction chains (top-to-bottom)."""
    if isinstance(structure, Leaf):
        return [(structure,)]
    if isinstance(structure, Parallel):
        out: List[Tuple[Leaf, ...]] = []
        for child in structure.children:
            out.extend(_chains(child))
        return out
    if isinstance(structure, Series):
        acc: List[Tuple[Leaf, ...]] = [()]
        for child in structure.children:
            child_chains = _chains(child)
            acc = [prefix + chain for prefix in acc for chain in child_chains]
        return acc
    raise TypeError(f"unknown structure node {type(structure)!r}")


def split_parallel_stacks(structure: Pulldown) -> Pulldown:
    """Rewrite ``structure`` as a parallel composition of series chains.

    The result computes the same conduction function (the distributive
    law) and contains no nested parallel stacks, hence no discharge
    points when its bottom is grounded.
    """
    chains = [series(*chain) for chain in _chains(structure)]
    return parallel(*chains)


@dataclass(frozen=True)
class SplitCost:
    """Cost comparison of replication vs discharge transistors."""

    original_transistors: int
    original_discharges: int      #: p-discharge transistors needed (grounded)
    split_transistors: int        #: transistors after replication
    split_width: int              #: resulting parallel width

    @property
    def replication_overhead(self) -> int:
        """Extra pulldown transistors the replication costs."""
        return self.split_transistors - self.original_transistors

    @property
    def replication_wins(self) -> bool:
        """True when replication costs fewer devices than discharging."""
        return self.replication_overhead < self.original_discharges

    def __str__(self) -> str:
        return (f"SplitCost(original {self.original_transistors}+"
                f"{self.original_discharges}disch, split "
                f"{self.split_transistors}, W={self.split_width})")


def split_cost(structure: Pulldown) -> SplitCost:
    """Quantify the §III-C replication-vs-discharge trade-off."""
    split = split_parallel_stacks(structure)
    analysis = analyse(split)
    # Chain-internal junctions remain *potential* points, protected by the
    # grounded stack bottom; nothing is ever committed.
    assert not analysis.committed, \
        "a sum-of-products structure commits no discharge points"
    return SplitCost(
        original_transistors=structure.num_transistors,
        original_discharges=len(analyse(structure).required(True)),
        split_transistors=split.num_transistors,
        split_width=split.width,
    )
