"""Domino circuit container and whole-circuit accounting."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..errors import StructureError
from .gate import DominoGate


@dataclass(frozen=True)
class CircuitCost:
    """Whole-circuit transistor accounting (the rows of Tables I-IV)."""

    t_logic: int
    t_disch: int
    t_clock: int
    num_gates: int
    levels: int

    @property
    def t_total(self) -> int:
        return self.t_logic + self.t_disch

    def as_dict(self) -> Dict[str, int]:
        return {
            "T_logic": self.t_logic,
            "T_disch": self.t_disch,
            "T_total": self.t_total,
            "T_clock": self.t_clock,
            "#G": self.num_gates,
            "L": self.levels,
        }

    def __str__(self) -> str:
        return (f"T_logic={self.t_logic} T_disch={self.t_disch} "
                f"T_total={self.t_total} T_clock={self.t_clock} "
                f"#G={self.num_gates} L={self.levels}")


class DominoCircuit:
    """A mapped domino circuit: a set of gates wired by signal names.

    Gate pulldown leaves refer to driving signals by name; primary-input
    leaves are marked as such.  Primary outputs name the gate (or, in
    degenerate cases, the primary input / constant) that drives them.
    """

    def __init__(self, name: str = "circuit"):
        self.name = name
        self._gates: List[DominoGate] = []
        self._by_name: Dict[str, DominoGate] = {}
        #: PO name -> driving signal name
        self.outputs: Dict[str, str] = {}
        #: PO name -> constant value, for constant outputs
        self.const_outputs: Dict[str, bool] = {}
        #: primary input names (positive and complemented phases)
        self.inputs: List[str] = []

    # ------------------------------------------------------------------
    def add_input(self, name: str) -> None:
        if name not in self.inputs:
            self.inputs.append(name)

    def add_gate(self, gate: DominoGate) -> DominoGate:
        if gate.name in self._by_name:
            raise StructureError(f"duplicate gate name {gate.name!r}")
        self._gates.append(gate)
        self._by_name[gate.name] = gate
        return gate

    def connect_output(self, po_name: str, signal: str) -> None:
        self.outputs[po_name] = signal

    def set_const_output(self, po_name: str, value: bool) -> None:
        self.const_outputs[po_name] = value

    # ------------------------------------------------------------------
    @property
    def gates(self) -> Tuple[DominoGate, ...]:
        return tuple(self._gates)

    def gate(self, name: str) -> DominoGate:
        try:
            return self._by_name[name]
        except KeyError:
            raise StructureError(f"no gate named {name!r}") from None

    def has_gate(self, name: str) -> bool:
        return name in self._by_name

    def __len__(self) -> int:
        return len(self._gates)

    # ------------------------------------------------------------------
    # accounting
    # ------------------------------------------------------------------
    def cost(self) -> CircuitCost:
        """Aggregate transistor accounting over all gates."""
        return CircuitCost(
            t_logic=sum(g.t_logic for g in self._gates),
            t_disch=sum(g.t_disch for g in self._gates),
            t_clock=sum(g.t_clock for g in self._gates),
            num_gates=len(self._gates),
            levels=self.levels(),
        )

    def levels(self) -> int:
        """Maximum domino gate depth over all primary outputs."""
        if not self._gates:
            return 0
        return max((g.level for g in self._gates), default=0)

    def digest(self) -> str:
        """sha256 of the transistor netlist: the bit-identity witness.

        Two mapping runs are equivalent iff their digests agree; the
        batch runner, the bench harness, and the pinned seed-digest
        tests all compare this value.
        """
        import hashlib

        from ..io.netlist_text import circuit_netlist

        return hashlib.sha256(circuit_netlist(self).encode()).hexdigest()

    def recompute_levels(self) -> None:
        """Recompute ``gate.level`` from the wiring (1 + max driver level)."""
        order = self._topological_gates()
        for gate in order:
            depth = 0
            for leaf in gate.structure.leaves():
                if not leaf.is_primary:
                    depth = max(depth, self._by_name[leaf.signal].level)
            gate.level = depth + 1

    def _topological_gates(self) -> List[DominoGate]:
        """Gates ordered so drivers precede users."""
        state: Dict[str, int] = {}
        order: List[DominoGate] = []

        def visit(gate: DominoGate):
            mark = state.get(gate.name, 0)
            if mark == 2:
                return
            if mark == 1:
                raise StructureError(
                    f"combinational cycle through gate {gate.name!r}")
            state[gate.name] = 1
            stackless = [leaf.signal for leaf in gate.structure.leaves()
                         if not leaf.is_primary]
            for signal in stackless:
                if signal not in self._by_name:
                    raise StructureError(
                        f"gate {gate.name!r} references unknown driver "
                        f"{signal!r}")
                visit(self._by_name[signal])
            state[gate.name] = 2
            order.append(gate)

        import sys
        old_limit = sys.getrecursionlimit()
        sys.setrecursionlimit(max(old_limit, 10 * len(self._gates) + 1000))
        try:
            for gate in self._gates:
                visit(gate)
        finally:
            sys.setrecursionlimit(old_limit)
        return order

    def validate(self, w_max: Optional[int] = None,
                 h_max: Optional[int] = None) -> None:
        """Validate every gate plus the inter-gate wiring."""
        known = set(self.inputs)
        for gate in self._gates:
            gate.validate(w_max=w_max, h_max=h_max)
            for leaf in gate.structure.leaves():
                if leaf.is_primary:
                    if leaf.signal not in known:
                        raise StructureError(
                            f"gate {gate.name!r} uses unknown primary input "
                            f"{leaf.signal!r}")
                elif leaf.signal not in self._by_name:
                    raise StructureError(
                        f"gate {gate.name!r} uses unknown gate output "
                        f"{leaf.signal!r}")
        for po, signal in self.outputs.items():
            if signal not in self._by_name and signal not in known:
                raise StructureError(
                    f"output {po!r} driven by unknown signal {signal!r}")
        self._topological_gates()  # raises on cycles

    def __repr__(self) -> str:
        return (f"DominoCircuit({self.name!r}, gates={len(self._gates)}, "
                f"inputs={len(self.inputs)}, outputs={len(self.outputs)})")
