"""Transistor-level domino circuit model and static PBE analysis."""

from .structure import (
    Leaf,
    Parallel,
    Pulldown,
    Series,
    check_limits,
    gate_leaf_refs,
    has_primary_leaf,
    parallel,
    series,
)
from .analysis import (
    DischargeAnalysis,
    DischargePoint,
    analyse,
    count_discharge_transistors,
    p_dis,
    par_b,
)
from .gate import FOOT_OVERHEAD, GATE_OVERHEAD, DominoGate
from .circuit import CircuitCost, DominoCircuit
from .rearrange import discharge_saving, rearrange
from .split import SplitCost, split_cost, split_parallel_stacks
from .timing import CircuitTiming, GateDelay, circuit_timing, gate_delay

__all__ = [
    "Leaf",
    "Parallel",
    "Pulldown",
    "Series",
    "check_limits",
    "gate_leaf_refs",
    "has_primary_leaf",
    "parallel",
    "series",
    "DischargeAnalysis",
    "DischargePoint",
    "analyse",
    "count_discharge_transistors",
    "p_dis",
    "par_b",
    "FOOT_OVERHEAD",
    "GATE_OVERHEAD",
    "DominoGate",
    "CircuitCost",
    "DominoCircuit",
    "discharge_saving",
    "rearrange",
    "SplitCost",
    "split_cost",
    "split_parallel_stacks",
    "CircuitTiming",
    "GateDelay",
    "circuit_timing",
    "gate_delay",
]
