"""Static Parasitic-Bipolar-Effect analysis of pulldown structures.

This module implements the paper's discharge-point model (section V) as a
*structural* analysis, independent of the mapping DP.  The mapper's
``p_dis``/``par_b`` bookkeeping is verified against these functions in the
test suite, and the baseline/post-processing flows use them to insert
discharge transistors into already-built structures.

Model (reconstructed from the paper's Figures 4 and 5 — see DESIGN.md):

* The bottom node of a parallel stack, and the internal junctions of series
  chains, are *potential discharge points*: they can be charged high during
  operation and let the floating bodies of neighbouring off transistors
  charge up, arming the parasitic bipolar transistor.
* A potential point is *protected* if the sub-structure that contains it is
  connected directly to ground at its bottom — every body-charging path
  then requires the device's source to be at ground, which keeps the body
  low.
* In a series composition, every child except the bottom one can never be
  grounded, so its potential points must be discharged *now* (committed);
  additionally the junction below such a child is itself committed when the
  child ends in a parallel stack (that junction is the stack's
  never-grounded bottom node), and merely potential otherwise.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from .structure import Leaf, Parallel, Pulldown, Series

#: Path-addressed discharge point: the junction below child ``index`` of the
#: series node reached by following ``path`` (a tuple of child indices from
#: the structure root).
DischargePoint = Tuple[Tuple[int, ...], int]


@dataclass(frozen=True)
class DischargeAnalysis:
    """Result of analysing one pulldown structure.

    Attributes
    ----------
    committed:
        Junctions that must receive a p-discharge transistor regardless of
        whether the structure's bottom is grounded.
    potential:
        Junctions that need one only if the bottom is *not* grounded
        (the paper's ``p_dis`` set).
    ends_in_parallel:
        The paper's ``par_b`` flag.
    """

    committed: Tuple[DischargePoint, ...]
    potential: Tuple[DischargePoint, ...]
    ends_in_parallel: bool

    @property
    def p_dis(self) -> int:
        return len(self.potential)

    def required(self, grounded: bool) -> Tuple[DischargePoint, ...]:
        """Points that must be discharged given the grounding context."""
        if grounded:
            return self.committed
        return self.committed + self.potential


def analyse(structure: Pulldown) -> DischargeAnalysis:
    """Compute the discharge-point sets of ``structure``."""
    committed: List[DischargePoint] = []
    potential: List[DischargePoint] = []
    _walk(structure, (), committed, potential)
    return DischargeAnalysis(tuple(committed), tuple(potential),
                             structure.ends_in_parallel)


def _walk(node: Pulldown, path: Tuple[int, ...],
          committed: List[DischargePoint],
          potential: List[DischargePoint]) -> None:
    """Recursive classification; appends points to the two output lists."""
    if isinstance(node, Leaf):
        return
    if isinstance(node, Parallel):
        # Branch-internal points ride on the fate of the shared bottom node:
        # they stay in whatever class the branch analysis puts them, and the
        # shared bottom itself is represented by the junction of the
        # *enclosing* series (or by the structure bottom).
        for i, child in enumerate(node.children):
            _walk(child, path + (i,), committed, potential)
        return
    if isinstance(node, Series):
        last = len(node.children) - 1
        for i, child in enumerate(node.children):
            if i == last:
                # The bottom child keeps its own classification: its
                # potential points are protected iff the whole structure is.
                _walk(child, path + (i,), committed, potential)
                continue
            # Non-bottom children can never be grounded: everything
            # potential inside them is committed here.
            sub_committed: List[DischargePoint] = []
            sub_potential: List[DischargePoint] = []
            _walk(child, path + (i,), sub_committed, sub_potential)
            committed.extend(sub_committed)
            committed.extend(sub_potential)
            junction = (path, i)
            if child.ends_in_parallel:
                # The junction is the never-grounded bottom of a parallel
                # stack: discharge it now.
                committed.append(junction)
            else:
                # A series-internal junction: dangerous only if the overall
                # bottom never reaches ground.
                potential.append(junction)
        return
    raise TypeError(f"unknown structure node {type(node)!r}")


def count_discharge_transistors(structure: Pulldown,
                                grounded: bool = True) -> int:
    """Number of p-discharge transistors the structure needs.

    ``grounded=True`` corresponds to a formed domino gate whose stack bottom
    connects to ground (footless) or to the n-clock foot, which the paper's
    algorithm optimistically treats as grounded.
    """
    return len(analyse(structure).required(grounded))


def p_dis(structure: Pulldown) -> int:
    """The paper's ``p_dis`` parameter: count of potential discharge points."""
    return analyse(structure).p_dis


def par_b(structure: Pulldown) -> bool:
    """The paper's ``par_b`` parameter: parallel stack at the bottom."""
    return structure.ends_in_parallel
