"""Functional arithmetic benchmark circuits (adders, ALUs, comparators).

These stand in for the ISCAS-85/MCNC arithmetic benchmarks whose
documented functions are reconstructible: ripple/carry-select adders,
ALU slices with function-select logic, magnitude comparators, and the
add/subtract datapath of a CORDIC rotation stage.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from ..errors import BenchmarkError
from ..network import LogicNetwork, NodeType


def _full_adder(network: LogicNetwork, a: int, b: int,
                cin: int) -> Tuple[int, int]:
    """(sum, carry-out) of one full-adder bit."""
    axb = network.add_gate(NodeType.XOR, (a, b))
    s = network.add_gate(NodeType.XOR, (axb, cin))
    ab = network.add_and(a, b)
    cx = network.add_and(axb, cin)
    cout = network.add_or(ab, cx)
    return s, cout


def ripple_adder(width: int, name: str = "", with_cin: bool = True) -> LogicNetwork:
    """``width``-bit ripple-carry adder: sum bits plus carry out."""
    if width < 1:
        raise BenchmarkError("adder width must be >= 1")
    network = LogicNetwork(name or f"add{width}")
    a = [network.add_pi(f"a{i}") for i in range(width)]
    b = [network.add_pi(f"b{i}") for i in range(width)]
    carry = network.add_pi("cin") if with_cin else network.add_const(False)
    for i in range(width):
        s, carry = _full_adder(network, a[i], b[i], carry)
        network.add_po(s, f"s{i}")
    network.add_po(carry, "cout")
    return network


def carry_lookahead_adder(width: int, name: str = "") -> LogicNetwork:
    """``width``-bit adder with explicit generate/propagate lookahead.

    The MCNC circuit ``z4ml`` is a 4-bit adder of this flavour (2-bit
    lookahead groups); we build full lookahead per bit.
    """
    if width < 1:
        raise BenchmarkError("adder width must be >= 1")
    network = LogicNetwork(name or f"cla{width}")
    a = [network.add_pi(f"a{i}") for i in range(width)]
    b = [network.add_pi(f"b{i}") for i in range(width)]
    cin = network.add_pi("cin")
    g = [network.add_and(a[i], b[i]) for i in range(width)]
    p = [network.add_gate(NodeType.XOR, (a[i], b[i])) for i in range(width)]
    carries = [cin]
    for i in range(width):
        # c[i+1] = g[i] + p[i] * c[i]
        carries.append(network.add_or(g[i], network.add_and(p[i], carries[i])))
    for i in range(width):
        network.add_po(network.add_gate(NodeType.XOR, (p[i], carries[i])),
                       f"s{i}")
    network.add_po(carries[width], "cout")
    return network


def z4ml(name: str = "z4ml") -> LogicNetwork:
    """2-bit-group carry-lookahead 4-bit adder (the MCNC ``z4ml`` function)."""
    return carry_lookahead_adder(4, name=name)


def comparator(width: int, name: str = "") -> LogicNetwork:
    """Magnitude comparator: outputs ``eq``, ``lt``, ``gt``."""
    if width < 1:
        raise BenchmarkError("comparator width must be >= 1")
    network = LogicNetwork(name or f"cmp{width}")
    a = [network.add_pi(f"a{i}") for i in range(width)]
    b = [network.add_pi(f"b{i}") for i in range(width)]
    eq_bits = [network.add_gate(NodeType.XNOR, (a[i], b[i]))
               for i in range(width)]
    lt = None
    eq_prefix = None
    for i in reversed(range(width)):  # MSB first
        bit_lt = network.add_and(network.add_inv(a[i]), b[i])
        term = bit_lt if eq_prefix is None else network.add_and(eq_prefix,
                                                                bit_lt)
        lt = term if lt is None else network.add_or(lt, term)
        eq_prefix = (eq_bits[i] if eq_prefix is None
                     else network.add_and(eq_prefix, eq_bits[i]))
    network.add_po(eq_prefix, "eq")
    network.add_po(lt, "lt")
    network.add_po(network.add_inv(network.add_or(eq_prefix, lt)), "gt")
    return network


def alu(width: int, name: str = "") -> LogicNetwork:
    """A ``width``-bit ALU slice in the style of the ISCAS ALU cores.

    Two function-select bits choose between ADD, AND, OR and XOR; an
    invert-B control implements subtract-style operations.  Outputs are
    the result bits, carry-out and a zero flag.
    """
    if width < 1:
        raise BenchmarkError("ALU width must be >= 1")
    network = LogicNetwork(name or f"alu{width}")
    a = [network.add_pi(f"a{i}") for i in range(width)]
    b = [network.add_pi(f"b{i}") for i in range(width)]
    s0 = network.add_pi("s0")
    s1 = network.add_pi("s1")
    inv_b = network.add_pi("inv_b")
    cin = network.add_pi("cin")

    # Operand B conditioned by the invert control.
    b_eff = [network.add_gate(NodeType.XOR, (b[i], inv_b))
             for i in range(width)]

    # Select decode.
    n0 = network.add_inv(s0)
    n1 = network.add_inv(s1)
    sel_add = network.add_and(n1, n0)
    sel_and = network.add_and(n1, s0)
    sel_or = network.add_and(s1, n0)
    sel_xor = network.add_and(s1, s0)

    carry = cin
    results: List[int] = []
    for i in range(width):
        s_bit, carry = _full_adder(network, a[i], b_eff[i], carry)
        and_bit = network.add_and(a[i], b_eff[i])
        or_bit = network.add_or(a[i], b_eff[i])
        xor_bit = network.add_gate(NodeType.XOR, (a[i], b_eff[i]))
        picked = network.add_or(
            network.add_or(network.add_and(sel_add, s_bit),
                           network.add_and(sel_and, and_bit)),
            network.add_or(network.add_and(sel_or, or_bit),
                           network.add_and(sel_xor, xor_bit)))
        results.append(picked)
        network.add_po(picked, f"r{i}")
    network.add_po(carry, "cout")
    zero = results[0]
    for r in results[1:]:
        zero = network.add_or(zero, r)
    network.add_po(network.add_inv(zero), "zero")
    return network


def array_multiplier(width: int, name: str = "") -> LogicNetwork:
    """``width x width`` unsigned array multiplier (carry-save rows).

    Stands in for the small MCNC arithmetic benchmarks (``f51m`` is an
    arithmetic function of this flavour).
    """
    if width < 2:
        raise BenchmarkError("multiplier width must be >= 2")
    network = LogicNetwork(name or f"mul{width}")
    a = [network.add_pi(f"a{i}") for i in range(width)]
    b = [network.add_pi(f"b{i}") for i in range(width)]
    # Partial-product columns.
    columns: List[List[int]] = [[] for _ in range(2 * width)]
    for i in range(width):
        for j in range(width):
            columns[i + j].append(network.add_and(a[i], b[j]))
    # Column compression with full/half adders.
    for col in range(2 * width):
        bits = columns[col]
        while len(bits) > 1:
            if len(bits) >= 3:
                x, y, z = bits.pop(), bits.pop(), bits.pop()
                s, carry = _full_adder(network, x, y, z)
            else:
                x, y = bits.pop(), bits.pop()
                s = network.add_gate(NodeType.XOR, (x, y))
                carry = network.add_and(x, y)
            bits.append(s)
            if col + 1 < 2 * width:
                columns[col + 1].append(carry)
        if bits:
            network.add_po(bits[0], f"p{col}")
    return network


def cordic_stage(width: int = 8, name: str = "cordic") -> LogicNetwork:
    """One combinational CORDIC rotation stage.

    Computes ``x' = x -/+ (y >> k)`` and ``y' = y +/- (x >> k)`` with the
    direction chosen by a sign input — conditional add/subtract datapaths,
    which is the logic style of the MCNC ``cordic`` benchmark.
    """
    if width < 2:
        raise BenchmarkError("cordic width must be >= 2")
    shift = 1
    network = LogicNetwork(name)
    x = [network.add_pi(f"x{i}") for i in range(width)]
    y = [network.add_pi(f"y{i}") for i in range(width)]
    d = network.add_pi("d")  # rotation direction

    def shifted(vec: Sequence[int]) -> List[int]:
        # Arithmetic right shift by `shift` (sign extend with the MSB).
        return list(vec[shift:]) + [vec[-1]] * shift

    def add_sub(u: Sequence[int], v: Sequence[int], sub_when: int,
                tag: str) -> List[int]:
        # u +/- v: v XOR control, carry-in = control.
        v_eff = [network.add_gate(NodeType.XOR, (bit, sub_when)) for bit in v]
        carry = sub_when
        out = []
        for i in range(width):
            s, carry = _full_adder(network, u[i], v_eff[i], carry)
            out.append(s)
        return out

    not_d = network.add_inv(d)
    x_new = add_sub(x, shifted(y), d, "x")
    y_new = add_sub(y, shifted(x), not_d, "y")
    for i in range(width):
        network.add_po(x_new[i], f"xo{i}")
        network.add_po(y_new[i], f"yo{i}")
    return network
