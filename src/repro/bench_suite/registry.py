"""Registry of benchmark circuits keyed by the paper's circuit names.

Every circuit named in Tables I-IV resolves here to a deterministic
generator:

* circuits with a documented function get a *functional* reconstruction
  (multiplexers, adders, ALUs, SEC/ECC logic, symmetric functions, DES
  round logic, counters, CORDIC, the c432-style interrupt controller);
* the remaining MCNC circuits (random control logic) get a seeded
  pseudo-random network calibrated so the bulk-mapped transistor count
  lands near the paper's ``T_logic``.

The original ``.bench``/BLIF files drop in transparently: if
``REPRO_BENCH_DIR`` is set (or ``bench_dir`` is passed), a file named
``<circuit>.bench`` or ``<circuit>.blif`` there takes precedence over the
synthetic generator.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from ..errors import BenchmarkError
from ..network import LogicNetwork
from .arithmetic import (
    alu,
    array_multiplier,
    cordic_stage,
    z4ml,
)
from .des import des_round
from .generators import random_network
from .parity_ecc import sec_corrector, sec_ded
from .selector_logic import (
    counter_bank,
    mux_tree,
    mux_two_level,
    priority_interrupt_controller,
)
from .symmetric import nine_sym

#: Environment variable pointing at a directory of real benchmark files.
BENCH_DIR_ENV = "REPRO_BENCH_DIR"


@dataclass(frozen=True)
class CircuitSpec:
    """One registered benchmark circuit."""

    name: str
    build: Callable[[], LogicNetwork]
    kind: str           #: "functional" or "random"
    description: str

    def __call__(self) -> LogicNetwork:
        network = self.build()
        network.name = self.name
        return network


def _random(name: str, n_pi: int, n_gates: int, n_po: int, seed: int,
            **kwargs) -> Callable[[], LogicNetwork]:
    def build() -> LogicNetwork:
        return random_network(name, n_pi=n_pi, n_gates=n_gates, n_po=n_po,
                              seed=seed, **kwargs)
    return build


_REGISTRY: Dict[str, CircuitSpec] = {}


def _register(name: str, build: Callable[[], LogicNetwork], kind: str,
              description: str) -> None:
    _REGISTRY[name] = CircuitSpec(name=name, build=build, kind=kind,
                                  description=description)


# ---------------------------------------------------------------------------
# Functional reconstructions.
# ---------------------------------------------------------------------------
_register("cm150", lambda: mux_two_level(4, 2, name="cm150"), "functional",
          "16-to-1 multiplexer as a tree of flat 4:1 stages (MCNC cm150a)")
_register("mux", lambda: mux_tree(4, name="mux"), "functional",
          "16-to-1 multiplexer built as a 2:1 mux tree (MCNC mux)")
_register("z4ml", lambda: z4ml(), "functional",
          "4-bit carry-lookahead adder (MCNC z4ml)")
_register("cordic", lambda: cordic_stage(3, name="cordic"), "functional",
          "CORDIC rotation stage: conditional add/subtract datapaths")
_register("count", lambda: counter_bank(8, 2, name="count"), "functional",
          "chained incrementer bank with carry chain (MCNC count)")
_register("9symml", lambda: nine_sym("9symml"), "functional",
          "9-input symmetric function, multi-level counting form")
_register("f51m", lambda: array_multiplier(3, name="f51m"), "functional",
          "4x4 array multiplier (arithmetic core standing in for f51m)")
_register("c432", lambda: priority_interrupt_controller(27, 3, name="c432"),
          "functional", "27-channel priority interrupt controller (ISCAS c432)")
_register("c499", lambda: sec_corrector(32, name="c499"), "functional",
          "32-bit single-error-correcting logic (ISCAS c499)")
_register("c1355", lambda: sec_corrector(32, name="c1355"), "functional",
          "c499 with XORs expanded to NAND form; same function (ISCAS c1355)")
_register("c1908", lambda: sec_ded(32, name="c1908"), "functional",
          "SEC/DED error correction core (ISCAS c1908)")
_register("c880", lambda: alu(12, name="c880"), "functional",
          "8-bit ALU slice with function select (ISCAS c880)")
_register("des", lambda: des_round("des"), "functional",
          "DES round function: E-expansion, key mix, 8 S-boxes, P")

# ---------------------------------------------------------------------------
# Calibrated random control logic (interfaces follow the MCNC circuits;
# gate counts tuned so Domino_Map's T_logic approximates the paper's).
# ---------------------------------------------------------------------------
_register("frg1", _random("frg1", n_pi=28, n_gates=60, n_po=3, seed=101, depth_target=14),
          "random", "random control logic sized to MCNC frg1")
_register("b9", _random("b9", n_pi=41, n_gates=88, n_po=21, seed=102, depth_target=10),
          "random", "random control logic sized to MCNC b9")
_register("c8", _random("c8", n_pi=28, n_gates=72, n_po=18, seed=103, depth_target=11),
          "random", "random control logic sized to MCNC c8")
_register("apex7", _random("apex7", n_pi=49, n_gates=112, n_po=37, seed=104, depth_target=17),
          "random", "random control logic sized to MCNC apex7")
_register("x1", _random("x1", n_pi=51, n_gates=145, n_po=35, seed=105, depth_target=12),
          "random", "random control logic sized to MCNC x1")
_register("t481", _random("t481", n_pi=16, n_gates=280, n_po=1, seed=106,
                          locality=10, depth_target=23),
          "random", "random single-output function sized to MCNC t481")
_register("i6", _random("i6", n_pi=138, n_gates=200, n_po=67, seed=107, depth_target=6),
          "random", "random control logic sized to MCNC i6")
_register("apex6", _random("apex6", n_pi=135, n_gates=270, n_po=99,
                           seed=108, depth_target=21),
          "random", "random control logic sized to MCNC apex6")
_register("k2", _random("k2", n_pi=45, n_gates=380, n_po=45, seed=109, depth_target=21),
          "random", "random control logic sized to MCNC k2")
_register("dalu", _random("dalu", n_pi=75, n_gates=330, n_po=16, seed=110, depth_target=23),
          "random", "random datapath/control mix sized to MCNC dalu")
_register("rot", _random("rot", n_pi=135, n_gates=330, n_po=107, seed=111, depth_target=27),
          "random", "random control logic sized to MCNC rot")
_register("c2670", _random("c2670", n_pi=157, n_gates=330, n_po=64,
                           seed=112, depth_target=31),
          "random", "random ALU+controller mix sized to ISCAS c2670")
_register("c3540", _random("c3540", n_pi=50, n_gates=1020, n_po=22,
                           seed=113, depth_target=42),
          "random", "random ALU/BCD mix sized to ISCAS c3540")
_register("c5315", _random("c5315", n_pi=178, n_gates=790, n_po=123,
                           seed=114, depth_target=36),
          "random", "random ALU/selector mix sized to ISCAS c5315")
_register("c7552", _random("c7552", n_pi=207, n_gates=1270, n_po=108,
                           seed=115, depth_target=42),
          "random", "random adder/comparator mix sized to ISCAS c7552")


# ---------------------------------------------------------------------------
# Public API.
# ---------------------------------------------------------------------------
def circuit_names() -> List[str]:
    """All registered benchmark names, in registration order."""
    return list(_REGISTRY)


def get_spec(name: str) -> CircuitSpec:
    try:
        return _REGISTRY[name]
    except KeyError:
        raise BenchmarkError(
            f"unknown benchmark circuit {name!r}; known: "
            f"{', '.join(sorted(_REGISTRY))}") from None


def load_circuit(name: str,
                 bench_dir: Optional[str] = None) -> LogicNetwork:
    """Build (or load) the benchmark circuit ``name``.

    If ``bench_dir`` (or the ``REPRO_BENCH_DIR`` environment variable)
    names a directory containing ``<name>.bench`` or ``<name>.blif``, the
    real netlist is parsed instead of the synthetic stand-in.
    """
    directory = bench_dir or os.environ.get(BENCH_DIR_ENV)
    if directory:
        for ext, loader_name in ((".bench", "load_bench"), (".blif", "load_blif")):
            path = os.path.join(directory, name + ext)
            if os.path.exists(path):
                from .. import io as repro_io

                network = getattr(repro_io, loader_name)(path)
                network.name = name
                return network
    return get_spec(name)()
