"""Multiplexers, priority logic and counting circuits.

Functional reconstructions of the selector-style MCNC/ISCAS benchmarks:
``cm150``/``mux`` (16-to-1 multiplexers), ``count`` (carry-chain
incrementer bank), and a priority interrupt controller in the style the
ISCAS-85 documentation gives for ``c432`` (27-channel interrupt
controller).
"""

from __future__ import annotations

from typing import List

from ..errors import BenchmarkError
from ..network import LogicNetwork, NodeType


def multiplexer(select_bits: int, name: str = "") -> LogicNetwork:
    """``2**select_bits``-to-1 multiplexer (cm150/mux are 16-to-1)."""
    if select_bits < 1:
        raise BenchmarkError("multiplexer needs at least one select bit")
    n = 1 << select_bits
    network = LogicNetwork(name or f"mux{n}")
    data = [network.add_pi(f"d{i}") for i in range(n)]
    sel = [network.add_pi(f"s{i}") for i in range(select_bits)]
    sel_n = [network.add_inv(s) for s in sel]
    terms: List[int] = []
    for i in range(n):
        term = data[i]
        for k in range(select_bits):
            lit = sel[k] if (i >> k) & 1 else sel_n[k]
            term = network.add_and(term, lit)
        terms.append(term)
    acc = terms[0]
    for t in terms[1:]:
        acc = network.add_or(acc, t)
    network.add_po(acc, "y")
    return network


def mux_tree(select_bits: int, name: str = "") -> LogicNetwork:
    """The same function built as a tree of 2-to-1 muxes (``mux`` flavour)."""
    if select_bits < 1:
        raise BenchmarkError("multiplexer needs at least one select bit")
    n = 1 << select_bits
    network = LogicNetwork(name or f"muxtree{n}")
    layer = [network.add_pi(f"d{i}") for i in range(n)]
    sel = [network.add_pi(f"s{i}") for i in range(select_bits)]
    for k in range(select_bits):
        s = sel[k]
        s_n = network.add_inv(s)
        nxt: List[int] = []
        for i in range(0, len(layer), 2):
            nxt.append(network.add_or(network.add_and(s_n, layer[i]),
                                      network.add_and(s, layer[i + 1])))
        layer = nxt
    network.add_po(layer[0], "y")
    return network


def mux_two_level(select_bits: int = 4, group_bits: int = 2,
                  name: str = "") -> LogicNetwork:
    """A wide mux as a tree of flat ``2**group_bits``-to-1 stages.

    This is the factored structure multi-level synthesis produces for the
    MCNC ``cm150`` netlist: each stage is a flat AND-OR selector whose
    data inputs are the previous stage's outputs, so selector OR-stacks
    end up *above* other logic once the mapper absorbs a stage into its
    consumer — the PBE-critical pattern.
    """
    if select_bits < group_bits or select_bits % group_bits:
        raise BenchmarkError("select_bits must be a multiple of group_bits")
    n = 1 << select_bits
    network = LogicNetwork(name or f"mux2l{n}")
    layer = [network.add_pi(f"d{i}") for i in range(n)]
    sel = [network.add_pi(f"s{i}") for i in range(select_bits)]
    sel_n = [network.add_inv(s) for s in sel]
    group = 1 << group_bits
    level = 0
    while len(layer) > 1:
        bits = [(sel[level * group_bits + k], sel_n[level * group_bits + k])
                for k in range(group_bits)]
        nxt: List[int] = []
        for base in range(0, len(layer), group):
            terms = []
            for offset in range(group):
                term = layer[base + offset]
                for k in range(group_bits):
                    lit = bits[k][0] if (offset >> k) & 1 else bits[k][1]
                    term = network.add_and(term, lit)
                terms.append(term)
            acc = terms[0]
            for t in terms[1:]:
                acc = network.add_or(acc, t)
            nxt.append(acc)
        layer = nxt
        level += 1
    network.add_po(layer[0], "y")
    return network


def incrementer(width: int, name: str = "") -> LogicNetwork:
    """``width``-bit incrementer with enable: the MCNC ``count`` style.

    ``count`` chains carry logic through every bit; outputs are the
    incremented value and the terminal carry.
    """
    if width < 1:
        raise BenchmarkError("incrementer width must be >= 1")
    network = LogicNetwork(name or f"inc{width}")
    bits = [network.add_pi(f"q{i}") for i in range(width)]
    carry = network.add_pi("en")
    for i in range(width):
        network.add_po(network.add_gate(NodeType.XOR, (bits[i], carry)),
                       f"n{i}")
        carry = network.add_and(carry, bits[i])
    network.add_po(carry, "tc")
    return network


def counter_bank(width: int = 8, banks: int = 2,
                 name: str = "count") -> LogicNetwork:
    """Several chained incrementers sharing an enable (the ``count`` core)."""
    network = LogicNetwork(name)
    carry = network.add_pi("en")
    for b in range(banks):
        bits = [network.add_pi(f"q{b}_{i}") for i in range(width)]
        for i in range(width):
            network.add_po(network.add_gate(NodeType.XOR, (bits[i], carry)),
                           f"n{b}_{i}")
            carry = network.add_and(carry, bits[i])
    network.add_po(carry, "tc")
    return network


def priority_interrupt_controller(channels: int = 27, groups: int = 3,
                                  name: str = "c432") -> LogicNetwork:
    """Priority interrupt controller in the style of ISCAS-85 ``c432``.

    ``channels`` request lines are split into ``groups`` equal groups with
    per-channel enable masks.  The controller reports, per group, whether
    the group has the highest-priority pending request, plus the encoded
    index of the winning channel within that group.
    """
    if channels % groups:
        raise BenchmarkError("channels must divide evenly into groups")
    per = channels // groups
    network = LogicNetwork(name)
    req = [network.add_pi(f"r{i}") for i in range(channels)]
    mask = [network.add_pi(f"m{i}") for i in range(channels)]
    pending = [network.add_and(req[i], mask[i]) for i in range(channels)]

    # Group-pending and inter-group priority (group 0 highest).
    group_pending: List[int] = []
    for g in range(groups):
        acc = pending[g * per]
        for i in range(g * per + 1, (g + 1) * per):
            acc = network.add_or(acc, pending[i])
        group_pending.append(acc)
    higher_clear = None
    for g in range(groups):
        if higher_clear is None:
            grant = group_pending[g]
        else:
            grant = network.add_and(group_pending[g], higher_clear)
        network.add_po(grant, f"grant{g}")
        blocker = network.add_inv(group_pending[g])
        higher_clear = (blocker if higher_clear is None
                        else network.add_and(higher_clear, blocker))

    # Per-group winning-channel encoder (channel 0 highest inside a group).
    enc_width = max(1, (per - 1).bit_length())
    for g in range(groups):
        base = g * per
        clear = None
        winners: List[int] = []
        for i in range(per):
            p = pending[base + i]
            winners.append(p if clear is None else network.add_and(p, clear))
            blocker = network.add_inv(p)
            clear = blocker if clear is None else network.add_and(clear,
                                                                  blocker)
        for bit in range(enc_width):
            terms = [winners[i] for i in range(per) if (i >> bit) & 1]
            if not terms:
                continue
            acc = terms[0]
            for t in terms[1:]:
                acc = network.add_or(acc, t)
            network.add_po(acc, f"vec{g}_{bit}")
    return network
