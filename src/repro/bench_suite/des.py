"""DES round-function logic (the ``des`` benchmark's core).

The MCNC ``des`` benchmark is the combinational logic of the DES cipher
data path.  This reconstruction builds one full Feistel round function:
expansion E, key XOR, the eight 6-to-4 S-boxes realized as two-level
sum-of-minterms logic (the realistic source of wide AND/OR structure),
and the P permutation; ``des_rounds`` chains several rounds for the
larger configuration.
"""

from __future__ import annotations

from typing import List, Sequence

from ..errors import BenchmarkError
from ..network import LogicNetwork, NodeType

# The eight standard DES S-boxes: [box][row 0-3][column 0-15] -> 4-bit value.
S_BOXES = [
    [[14, 4, 13, 1, 2, 15, 11, 8, 3, 10, 6, 12, 5, 9, 0, 7],
     [0, 15, 7, 4, 14, 2, 13, 1, 10, 6, 12, 11, 9, 5, 3, 8],
     [4, 1, 14, 8, 13, 6, 2, 11, 15, 12, 9, 7, 3, 10, 5, 0],
     [15, 12, 8, 2, 4, 9, 1, 7, 5, 11, 3, 14, 10, 0, 6, 13]],
    [[15, 1, 8, 14, 6, 11, 3, 4, 9, 7, 2, 13, 12, 0, 5, 10],
     [3, 13, 4, 7, 15, 2, 8, 14, 12, 0, 1, 10, 6, 9, 11, 5],
     [0, 14, 7, 11, 10, 4, 13, 1, 5, 8, 12, 6, 9, 3, 2, 15],
     [13, 8, 10, 1, 3, 15, 4, 2, 11, 6, 7, 12, 0, 5, 14, 9]],
    [[10, 0, 9, 14, 6, 3, 15, 5, 1, 13, 12, 7, 11, 4, 2, 8],
     [13, 7, 0, 9, 3, 4, 6, 10, 2, 8, 5, 14, 12, 11, 15, 1],
     [13, 6, 4, 9, 8, 15, 3, 0, 11, 1, 2, 12, 5, 10, 14, 7],
     [1, 10, 13, 0, 6, 9, 8, 7, 4, 15, 14, 3, 11, 5, 2, 12]],
    [[7, 13, 14, 3, 0, 6, 9, 10, 1, 2, 8, 5, 11, 12, 4, 15],
     [13, 8, 11, 5, 6, 15, 0, 3, 4, 7, 2, 12, 1, 10, 14, 9],
     [10, 6, 9, 0, 12, 11, 7, 13, 15, 1, 3, 14, 5, 2, 8, 4],
     [3, 15, 0, 6, 10, 1, 13, 8, 9, 4, 5, 11, 12, 7, 2, 14]],
    [[2, 12, 4, 1, 7, 10, 11, 6, 8, 5, 3, 15, 13, 0, 14, 9],
     [14, 11, 2, 12, 4, 7, 13, 1, 5, 0, 15, 10, 3, 9, 8, 6],
     [4, 2, 1, 11, 10, 13, 7, 8, 15, 9, 12, 5, 6, 3, 0, 14],
     [11, 8, 12, 7, 1, 14, 2, 13, 6, 15, 0, 9, 10, 4, 5, 3]],
    [[12, 1, 10, 15, 9, 2, 6, 8, 0, 13, 3, 4, 14, 7, 5, 11],
     [10, 15, 4, 2, 7, 12, 9, 5, 6, 1, 13, 14, 0, 11, 3, 8],
     [9, 14, 15, 5, 2, 8, 12, 3, 7, 0, 4, 10, 1, 13, 11, 6],
     [4, 3, 2, 12, 9, 5, 15, 10, 11, 14, 1, 7, 6, 0, 8, 13]],
    [[4, 11, 2, 14, 15, 0, 8, 13, 3, 12, 9, 7, 5, 10, 6, 1],
     [13, 0, 11, 7, 4, 9, 1, 10, 14, 3, 5, 12, 2, 15, 8, 6],
     [1, 4, 11, 13, 12, 3, 7, 14, 10, 15, 6, 8, 0, 5, 9, 2],
     [6, 11, 13, 8, 1, 4, 10, 7, 9, 5, 0, 15, 14, 2, 3, 12]],
    [[13, 2, 8, 4, 6, 15, 11, 1, 10, 9, 3, 14, 5, 0, 12, 7],
     [1, 15, 13, 8, 10, 3, 7, 4, 12, 5, 6, 11, 0, 14, 9, 2],
     [7, 11, 4, 1, 9, 12, 14, 2, 0, 6, 10, 13, 15, 3, 5, 8],
     [2, 1, 14, 7, 4, 10, 8, 13, 15, 12, 9, 0, 3, 5, 6, 11]],
]

# Expansion E: 32 -> 48, 1-based input indices per the DES specification.
E_TABLE = [
    32, 1, 2, 3, 4, 5, 4, 5, 6, 7, 8, 9,
    8, 9, 10, 11, 12, 13, 12, 13, 14, 15, 16, 17,
    16, 17, 18, 19, 20, 21, 20, 21, 22, 23, 24, 25,
    24, 25, 26, 27, 28, 29, 28, 29, 30, 31, 32, 1,
]

# Permutation P: 32 -> 32, 1-based.
P_TABLE = [
    16, 7, 20, 21, 29, 12, 28, 17, 1, 15, 23, 26, 5, 18, 31, 10,
    2, 8, 24, 14, 32, 27, 3, 9, 19, 13, 30, 6, 22, 11, 4, 25,
]


def _sbox_outputs(network: LogicNetwork, box: int,
                  ins: Sequence[int]) -> List[int]:
    """Two-level sum-of-minterms realization of one S-box.

    ``ins`` are the 6 input nodes, DES bit order: bits 0 and 5 select the
    row, bits 1-4 the column.
    """
    if len(ins) != 6:
        raise BenchmarkError("an S-box takes exactly 6 inputs")
    literals_n = [network.add_inv(i) for i in ins]
    minterm_cache = {}

    def minterm(value: int) -> int:
        if value in minterm_cache:
            return minterm_cache[value]
        term = None
        for bit in range(6):
            lit = ins[bit] if (value >> bit) & 1 else literals_n[bit]
            term = lit if term is None else network.add_and(term, lit)
        minterm_cache[value] = term
        return term

    outputs: List[int] = []
    table = S_BOXES[box]
    for out_bit in range(4):
        terms: List[int] = []
        for value in range(64):
            # DES convention: ins[0] and ins[5] (outer bits) pick the row.
            row = ((value >> 0) & 1) | (((value >> 5) & 1) << 1)
            col = (value >> 1) & 0xF
            if (table[row][col] >> out_bit) & 1:
                terms.append(minterm(value))
        acc = terms[0]
        for term in terms[1:]:
            acc = network.add_or(acc, term)
        outputs.append(acc)
    return outputs


def des_round(name: str = "des") -> LogicNetwork:
    """One DES round function f(R, K): E-expand, key-mix, S-boxes, P."""
    network = LogicNetwork(name)
    r = [network.add_pi(f"r{i}") for i in range(32)]
    k = [network.add_pi(f"k{i}") for i in range(48)]
    _build_round(network, r, k, prefix="f")
    return network


def _build_round(network: LogicNetwork, r: Sequence[int], k: Sequence[int],
                 prefix: str) -> List[int]:
    expanded = [r[E_TABLE[i] - 1] for i in range(48)]
    mixed = [network.add_gate(NodeType.XOR, (expanded[i], k[i]))
             for i in range(48)]
    sbox_out: List[int] = []
    for box in range(8):
        ins = mixed[box * 6:(box + 1) * 6]
        sbox_out.extend(_sbox_outputs(network, box, ins))
    permuted = [sbox_out[P_TABLE[i] - 1] for i in range(32)]
    for i, node in enumerate(permuted):
        network.add_po(node, f"{prefix}{i}")
    return permuted


def des_rounds(rounds: int = 2, name: str = "des") -> LogicNetwork:
    """``rounds`` chained Feistel rounds (combinational, per-round keys)."""
    if rounds < 1:
        raise BenchmarkError("need at least one round")
    network = LogicNetwork(name)
    left = [network.add_pi(f"l{i}") for i in range(32)]
    right = [network.add_pi(f"r{i}") for i in range(32)]
    for rnd in range(rounds):
        k = [network.add_pi(f"k{rnd}_{i}") for i in range(48)]
        expanded = [right[E_TABLE[i] - 1] for i in range(48)]
        mixed = [network.add_gate(NodeType.XOR, (expanded[i], k[i]))
                 for i in range(48)]
        sbox_out: List[int] = []
        for box in range(8):
            ins = mixed[box * 6:(box + 1) * 6]
            sbox_out.extend(_sbox_outputs(network, box, ins))
        f_out = [sbox_out[P_TABLE[i] - 1] for i in range(32)]
        new_right = [network.add_gate(NodeType.XOR, (left[i], f_out[i]))
                     for i in range(32)]
        left, right = right, new_right
    for i in range(32):
        network.add_po(left[i], f"lo{i}")
        network.add_po(right[i], f"ro{i}")
    return network
