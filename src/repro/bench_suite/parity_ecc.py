"""Parity trees and single-error-correction (SEC) circuits.

The ISCAS-85 circuits c499/c1355 are documented as 32-bit
single-error-correcting logic and c1908 as a 16-bit SEC/DED core; these
functional reconstructions compute Hamming syndromes over the data word
and decode/correct a single-bit error, which exercises the same wide-XOR
logic style.
"""

from __future__ import annotations

from typing import List

from ..errors import BenchmarkError
from ..network import LogicNetwork, NodeType


def parity_tree(width: int, name: str = "") -> LogicNetwork:
    """Balanced XOR parity of ``width`` inputs."""
    if width < 2:
        raise BenchmarkError("parity width must be >= 2")
    network = LogicNetwork(name or f"parity{width}")
    layer = [network.add_pi(f"i{k}") for k in range(width)]
    while len(layer) > 1:
        nxt: List[int] = []
        for i in range(0, len(layer) - 1, 2):
            nxt.append(network.add_gate(NodeType.XOR,
                                        (layer[i], layer[i + 1])))
        if len(layer) % 2:
            nxt.append(layer[-1])
        layer = nxt
    network.add_po(layer[0], "p")
    return network


def _syndrome_positions(data_bits: int) -> List[List[int]]:
    """Hamming code: for each check bit, the data indices it covers.

    Data bits occupy the non-power-of-two codeword positions of a
    standard Hamming code.
    """
    check_count = 0
    while (1 << check_count) < data_bits + check_count + 1:
        check_count += 1
    positions: List[List[int]] = [[] for _ in range(check_count)]
    data_index = 0
    codeword_pos = 1
    while data_index < data_bits:
        if codeword_pos & (codeword_pos - 1):  # not a power of two
            for c in range(check_count):
                if codeword_pos & (1 << c):
                    positions[c].append(data_index)
            data_index += 1
        codeword_pos += 1
    return positions


def _xor_reduce(network: LogicNetwork, nodes: List[int]) -> int:
    layer = list(nodes)
    while len(layer) > 1:
        nxt = []
        for i in range(0, len(layer) - 1, 2):
            nxt.append(network.add_gate(NodeType.XOR,
                                        (layer[i], layer[i + 1])))
        if len(layer) % 2:
            nxt.append(layer[-1])
        layer = nxt
    return layer[0]


def sec_encoder(data_bits: int = 32, name: str = "") -> LogicNetwork:
    """Hamming check-bit generator over ``data_bits`` inputs (c499 style)."""
    network = LogicNetwork(name or f"sec_enc{data_bits}")
    data = [network.add_pi(f"d{i}") for i in range(data_bits)]
    for c, covered in enumerate(_syndrome_positions(data_bits)):
        network.add_po(_xor_reduce(network, [data[i] for i in covered]),
                       f"c{c}")
    return network


def sec_corrector(data_bits: int = 32, name: str = "") -> LogicNetwork:
    """Full SEC datapath: syndrome + single-bit correction (c1355 style).

    Inputs are the received data and check bits; outputs are the corrected
    data word and the syndrome.
    """
    network = LogicNetwork(name or f"sec{data_bits}")
    data = [network.add_pi(f"d{i}") for i in range(data_bits)]
    positions = _syndrome_positions(data_bits)
    checks = [network.add_pi(f"c{i}") for i in range(len(positions))]

    syndrome: List[int] = []
    for c, covered in enumerate(positions):
        s = _xor_reduce(network, [data[i] for i in covered] + [checks[c]])
        syndrome.append(s)
        network.add_po(s, f"s{c}")

    syndrome_n = [network.add_inv(s) for s in syndrome]

    # Codeword position of data bit i (non-power-of-two positions in order).
    data_positions: List[int] = []
    pos = 1
    while len(data_positions) < data_bits:
        if pos & (pos - 1):
            data_positions.append(pos)
        pos += 1

    for i in range(data_bits):
        target = data_positions[i]
        term = None
        for c in range(len(syndrome)):
            lit = syndrome[c] if target & (1 << c) else syndrome_n[c]
            term = lit if term is None else network.add_and(term, lit)
        network.add_po(network.add_gate(NodeType.XOR, (data[i], term)),
                       f"q{i}")
    return network


def sec_ded(data_bits: int = 16, name: str = "") -> LogicNetwork:
    """SEC/DED: corrector plus overall-parity double-error detect (c1908 style)."""
    network = sec_corrector(data_bits, name=name or f"secded{data_bits}")
    # Overall parity across every input distinguishes single from double
    # errors: reuse the existing PIs.
    all_inputs = list(network.pis)
    network.add_po(_xor_reduce(network, all_inputs), "ded")
    return network
