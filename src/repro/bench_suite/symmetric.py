"""Totally symmetric benchmark functions (9sym/9symml, t481 stand-in).

``9sym`` outputs 1 iff the number of true inputs among its nine inputs is
between 3 and 6 — a classic hard-for-two-level, easy-for-counting
function.  We build it (and generalizations) with a half/full-adder
bit-counting network followed by a range decoder, the multi-level style
``9symml`` (the "ml" suffix) refers to.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from ..errors import BenchmarkError
from ..network import LogicNetwork, NodeType


def _half_adder(network: LogicNetwork, a: int, b: int) -> Tuple[int, int]:
    return (network.add_gate(NodeType.XOR, (a, b)), network.add_and(a, b))


def _full_adder(network: LogicNetwork, a: int, b: int,
                c: int) -> Tuple[int, int]:
    axb = network.add_gate(NodeType.XOR, (a, b))
    s = network.add_gate(NodeType.XOR, (axb, c))
    carry = network.add_or(network.add_and(a, b), network.add_and(axb, c))
    return s, carry


def ones_counter(network: LogicNetwork, inputs: Sequence[int]) -> List[int]:
    """Population count of ``inputs`` as a little-endian bit vector.

    Uses a carry-save adder tree of full/half adders (the standard
    multi-level realization of symmetric functions).
    """
    columns: List[List[int]] = [list(inputs)]
    while any(len(col) > 1 for col in columns):
        new_columns: List[List[int]] = [[] for _ in range(len(columns) + 1)]
        for weight, col in enumerate(columns):
            pending = list(col)
            while len(pending) >= 3:
                a, b, c = pending.pop(), pending.pop(), pending.pop()
                s, carry = _full_adder(network, a, b, c)
                new_columns[weight].append(s)
                new_columns[weight + 1].append(carry)
            if len(pending) == 2:
                a, b = pending.pop(), pending.pop()
                s, carry = _half_adder(network, a, b)
                new_columns[weight].append(s)
                new_columns[weight + 1].append(carry)
            elif pending:
                new_columns[weight].append(pending.pop())
        while new_columns and not new_columns[-1]:
            new_columns.pop()
        columns = new_columns
    return [col[0] for col in columns]


def count_range(n_inputs: int, low: int, high: int,
                name: str = "") -> LogicNetwork:
    """Symmetric threshold function: 1 iff ``low <= popcount <= high``."""
    if not (0 <= low <= high <= n_inputs):
        raise BenchmarkError(f"bad range [{low}, {high}] for {n_inputs} inputs")
    network = LogicNetwork(name or f"sym{n_inputs}_{low}_{high}")
    inputs = [network.add_pi(f"i{k}") for k in range(n_inputs)]
    count = ones_counter(network, inputs)
    count_n = [network.add_inv(bit) for bit in count]

    terms: List[int] = []
    for value in range(low, high + 1):
        term = None
        for bit, (pos, neg) in enumerate(zip(count, count_n)):
            lit = pos if (value >> bit) & 1 else neg
            term = lit if term is None else network.add_and(term, lit)
        terms.append(term)
    acc = terms[0]
    for term in terms[1:]:
        acc = network.add_or(acc, term)
    network.add_po(acc, "f")
    return network


def nine_sym(name: str = "9symml") -> LogicNetwork:
    """The MCNC ``9sym`` function: 1 iff 3 <= popcount(inputs) <= 6."""
    return count_range(9, 3, 6, name=name)


def rd_function(n_inputs: int, name: str = "") -> LogicNetwork:
    """MCNC ``rdXX``-style circuits: the full popcount vector as outputs."""
    network = LogicNetwork(name or f"rd{n_inputs}")
    inputs = [network.add_pi(f"i{k}") for k in range(n_inputs)]
    for bit, node in enumerate(ones_counter(network, inputs)):
        network.add_po(node, f"c{bit}")
    return network
