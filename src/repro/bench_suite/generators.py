"""Seeded pseudo-random logic-network generator.

Used as the stand-in for MCNC benchmark circuits whose original netlists
are not redistributable here (see DESIGN.md, "Substitutions").  The
generator is fully deterministic for a given parameter set, produces
reconvergent multi-level AND/OR/INV/XOR logic, and is calibrated per
benchmark name in :mod:`repro.bench_suite.registry` so mapped sizes land
near the paper's.
"""

from __future__ import annotations

import random
from typing import List, Optional

from ..errors import BenchmarkError
from ..network import LogicNetwork, NodeType


def random_network(name: str, n_pi: int, n_gates: int, n_po: int,
                   seed: int = 0, p_and: float = 0.40, p_or: float = 0.30,
                   p_inv: float = 0.20, p_xor: float = 0.10,
                   locality: int = 24, depth_target: int = 24) -> LogicNetwork:
    """Generate a random combinational network.

    Parameters
    ----------
    n_pi, n_gates, n_po:
        Interface and size.  ``n_gates`` counts generated gate nodes
        before sweeping.
    seed:
        RNG seed; identical arguments always produce identical networks.
    p_and, p_or, p_inv, p_xor:
        Gate-type mix (must sum to 1).
    locality:
        Fanins are drawn preferentially from the most recent ``locality``
        signals, which produces deep, reconvergent structure instead of a
        shallow fan-in ocean.
    depth_target:
        Approximate ceiling on the AND/OR depth of the result: fanin
        picks that would push a gate past this level are re-drawn from
        shallower nodes (the MCNC control benchmarks have depths of
        roughly 6-42 two-input levels).
    """
    total = p_and + p_or + p_inv + p_xor
    if abs(total - 1.0) > 1e-9:
        raise BenchmarkError(f"gate-type probabilities sum to {total}, not 1")
    if n_pi < 2 or n_gates < 1 or n_po < 1:
        raise BenchmarkError(
            f"degenerate parameters: n_pi={n_pi}, n_gates={n_gates}, "
            f"n_po={n_po}")

    rng = random.Random(seed)
    network = LogicNetwork(name)
    signals: List[int] = [network.add_pi(f"i{k}") for k in range(n_pi)]
    level = {uid: 0 for uid in signals}

    def pick_fanin(exclude: Optional[int] = None) -> int:
        # 70%: recent window (deep chains); 30%: anywhere (reconvergence).
        # Nodes already at the depth ceiling are re-drawn.
        for _ in range(12):
            if rng.random() < 0.7 and len(signals) > locality:
                choice = signals[-rng.randint(1, locality)]
            else:
                choice = signals[rng.randint(0, len(signals) - 1)]
            if choice != exclude and level[choice] < depth_target:
                return choice
        shallow = [s for s in signals if level[s] < depth_target]
        return rng.choice(shallow or signals)

    for _ in range(n_gates):
        roll = rng.random()
        if roll < p_and:
            a = pick_fanin()
            uid = network.add_and(a, pick_fanin(exclude=a))
        elif roll < p_and + p_or:
            a = pick_fanin()
            uid = network.add_or(a, pick_fanin(exclude=a))
        elif roll < p_and + p_or + p_inv:
            uid = network.add_inv(pick_fanin())
        else:
            a = pick_fanin()
            uid = network.add_gate(NodeType.XOR, (a, pick_fanin(exclude=a)))
        node = network.node(uid)
        bump = 0 if node.type is NodeType.INV else 1
        level[uid] = max(level[f] for f in node.fanins) + bump
        signals.append(uid)

    gate_signals = signals[n_pi:]
    if n_po > len(gate_signals):
        raise BenchmarkError(
            f"cannot draw {n_po} POs from {len(gate_signals)} gates")
    # Funnel every dangling gate into an output cone so that none of the
    # generated logic is dead: the fanout-free signals are dealt round-robin
    # onto the POs and reduced with alternating AND/OR trees.
    dangling = [uid for uid in gate_signals
                if network.fanout_count(uid) == 0]
    if len(dangling) < n_po:
        extra = [uid for uid in gate_signals if uid not in set(dangling)]
        rng.shuffle(extra)
        dangling.extend(extra[: n_po - len(dangling)])
    groups: List[List[int]] = [[] for _ in range(n_po)]
    for index, uid in enumerate(dangling):
        groups[index % n_po].append(uid)
    for index, group in enumerate(groups):
        layer = list(group)
        toggle = bool(index % 2)
        while len(layer) > 1:
            nxt: List[int] = []
            for i in range(0, len(layer) - 1, 2):
                if toggle:
                    nxt.append(network.add_and(layer[i], layer[i + 1]))
                else:
                    nxt.append(network.add_or(layer[i], layer[i + 1]))
            if len(layer) % 2:
                nxt.append(layer[-1])
            layer = nxt
            toggle = not toggle
        network.add_po(layer[0], f"o{index}")
    return network
