"""Benchmark circuit suite (functional + calibrated synthetic stand-ins)."""

from .arithmetic import (
    alu,
    array_multiplier,
    carry_lookahead_adder,
    comparator,
    cordic_stage,
    ripple_adder,
    z4ml,
)
from .des import S_BOXES, des_round, des_rounds
from .generators import random_network
from .parity_ecc import parity_tree, sec_corrector, sec_ded, sec_encoder
from .selector_logic import (
    counter_bank,
    incrementer,
    multiplexer,
    mux_tree,
    mux_two_level,
    priority_interrupt_controller,
)
from .symmetric import count_range, nine_sym, ones_counter, rd_function
from .registry import (
    BENCH_DIR_ENV,
    CircuitSpec,
    circuit_names,
    get_spec,
    load_circuit,
)

__all__ = [
    "alu",
    "array_multiplier",
    "carry_lookahead_adder",
    "comparator",
    "cordic_stage",
    "ripple_adder",
    "z4ml",
    "S_BOXES",
    "des_round",
    "des_rounds",
    "random_network",
    "parity_tree",
    "sec_corrector",
    "sec_ded",
    "sec_encoder",
    "counter_bank",
    "incrementer",
    "multiplexer",
    "mux_tree",
    "mux_two_level",
    "priority_interrupt_controller",
    "count_range",
    "nine_sym",
    "ones_counter",
    "rd_function",
    "BENCH_DIR_ENV",
    "CircuitSpec",
    "circuit_names",
    "get_spec",
    "load_circuit",
]
