#!/usr/bin/env python
"""Reproduce the paper's section III-B PBE failure in simulation.

Drives the domino gate (A + B + C) * D through the exact input history
the paper describes and watches the floating bodies charge, the parasitic
bipolar transistors fire, and the output evaluate *wrong* — then shows
that a p-discharge transistor (bulk fix) or stack reordering (the SOI
mapping) removes the failure.

Run:  python examples/pbe_simulation.py
"""

from repro.domino import DominoCircuit, DominoGate, Leaf, parallel, series
from repro.pbe import PBESimulator


def build_circuit(structure, with_discharge: bool, label: str) -> DominoCircuit:
    gate = DominoGate.from_structure("g1", structure, grounded=True)
    if not with_discharge:
        gate = DominoGate(name="g1", structure=structure, footed=gate.footed,
                          discharge_points=(), level=1)
    circuit = DominoCircuit(label)
    for name in "ABCD":
        circuit.add_input(name)
    circuit.add_gate(gate)
    circuit.connect_output("out", "g1")
    return circuit


def run(circuit: DominoCircuit) -> None:
    print(f"--- {circuit.name} ---")
    gate = circuit.gates[0]
    print(f"pulldown: {gate.structure}   "
          f"discharge transistors: {gate.t_disch}")
    sim = PBESimulator(circuit, derive_complements=False)

    # Steady state: A held high for several cycles.  Node 1 (the bottom
    # of the parallel stack) charges to V_dd - V_t through A every cycle,
    # so the bodies of the OFF transistors B and C see source AND drain
    # high and slowly charge.
    steady = dict(A=True, B=False, C=False, D=False)
    # Then A switches low and D evaluates: node 1 is yanked to ground.
    trigger = dict(A=False, B=False, C=False, D=True)

    for cycle, vector in enumerate([steady] * 5 + [trigger] * 2):
        result = sim.step(vector)
        status = "OK " if result.correct else "WRONG"
        events = "; ".join(str(e) for e in result.events) or "-"
        print(f"  cycle {cycle}: in={''.join(str(int(v)) for v in vector.values())} "
              f"out={int(result.outputs['out'])} "
              f"expected={int(result.expected['out'])} [{status}]  {events}")
    print()


def main() -> None:
    stack = parallel(Leaf("A"), Leaf("B"), Leaf("C"))

    # 1. Bulk-CMOS structure, no protection: B and C misfire.
    run(build_circuit(series(stack, Leaf("D")), with_discharge=False,
                      label="bulk structure, unprotected"))

    # 2. Same structure with the p-discharge transistor at node 1.
    run(build_circuit(series(stack, Leaf("D")), with_discharge=True,
                      label="bulk structure + p-discharge transistor"))

    # 3. The SOI mapping: stack reordered to the grounded bottom, no
    #    discharge transistor needed at all.
    run(build_circuit(series(Leaf("D"), stack), with_discharge=True,
                      label="SOI reordering (stack at ground)"))


if __name__ == "__main__":
    main()
