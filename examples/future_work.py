#!/usr/bin/env python
"""The paper's section VII future-work ideas, implemented.

1. **Input-aware discharge pruning** — the mapper "assumes the worst case
   scenario"; this pass proves, per discharge point, whether any input
   assignment can actually arm the parasitic bipolar device, and removes
   the transistor when none can (complementary select phases in mux-style
   logic are the classic impossible case).
2. **Output phase assignment** ([22]) — choosing per primary output which
   phase to realize, sharing logic cones instead of duplicating them,
   at the price of a static inverter at the output boundary.
3. **Footless-aware grounding** — treating only truly grounded (footless)
   stack bottoms as protection, with footed gates discharging their
   residual points.

Run:  python examples/future_work.py [circuit]
"""

import sys

from repro.bench_suite import load_circuit
from repro.mapping import domino_map, soi_domino_map
from repro.pbe import prune_discharges, random_stress
from repro.synth import (
    decompose,
    sweep,
    unate_with_phase_assignment,
    unate_with_sweep,
)


def main() -> None:
    name = sys.argv[1] if len(sys.argv) > 1 else "cm150"
    network = load_circuit(name)
    print(f"circuit: {name}\n")

    # --- 1. input-aware discharge pruning -----------------------------
    print("1. input-aware discharge pruning (section VII)")
    for label, flow in (("bulk baseline", domino_map),
                        ("SOI_Domino_Map", soi_domino_map)):
        circuit = flow(network).circuit
        pruned, report = prune_discharges(circuit)
        stress = random_stress(pruned, cycles=200, seed=0)
        print(f"   {label:16s}: {report}; stress: "
              f"{'misfire-free' if stress.pbe_free else str(stress)}")

    # --- 2. output phase assignment ------------------------------------
    print("\n2. output phase assignment ([22])")
    cleaned = sweep(decompose(network))
    _, plain = unate_with_sweep(cleaned)
    assignment = unate_with_phase_assignment(cleaned)
    print(f"   plain bubble pushing : {plain.unate_gates} unate gates")
    print(f"   phase assignment     : {assignment.report.unate_gates} unate "
          f"gates + {assignment.boundary_inverters} boundary inverters "
          f"({sorted(assignment.inverted_outputs) or 'no'} outputs inverted)")

    # --- 3. footless-aware grounding -----------------------------------
    print("\n3. grounding-policy sweep (SOI mapper)")
    for policy in ("optimistic", "footless", "pessimistic"):
        cost = soi_domino_map(network, ground_policy=policy).cost
        print(f"   {policy:12s}: {cost}")


if __name__ == "__main__":
    main()
