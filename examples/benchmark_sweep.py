#!/usr/bin/env python
"""Reproduce the paper's Table II on the benchmark suite.

Maps every circuit of the suite with the bulk baseline and with
SOI_Domino_Map, prints the per-circuit comparison alongside the numbers
reported in the paper plus per-circuit mapper instrumentation (taken
straight from ``FlowResult.stats`` / ``FlowResult.elapsed_s`` — no
hand-rolled timing), and verifies one mapped circuit dynamically with
the PBE stress simulator.

Run:  python examples/benchmark_sweep.py            (full suite, ~1 min)
      python examples/benchmark_sweep.py cm150 mux  (chosen circuits)
"""

import sys

from repro import TreeCache, soi_domino_map
from repro.bench_suite import circuit_names, load_circuit
from repro.evaluation import run_table2
from repro.pbe import random_stress


def main() -> None:
    circuits = sys.argv[1:] or None
    result = run_table2(circuits=circuits)
    print(result.text)

    # Per-circuit instrumentation: FlowResult carries the DP counters and
    # the wall time, and a shared TreeCache shows shape reuse across the
    # suite.
    cache = TreeCache()
    print("\nSOI mapper instrumentation (shared tree cache):")
    for name in circuits or circuit_names()[:8]:
        flow = soi_domino_map(load_circuit(name), cache=cache)
        print(f"  {name:8s} {flow.elapsed_s:7.3f}s  {flow.stats.summary()}")
    print(f"  cache after sweep: {cache}")

    # Dynamic spot check: stress one SOI-mapped circuit with held random
    # vectors — the floating-body simulator must observe zero parasitic
    # bipolar misfires.
    probe = (circuits or ["9symml"])[0]
    circuit = soi_domino_map(load_circuit(probe)).circuit
    report = random_stress(circuit, cycles=200, seed=0)
    print(f"\nPBE stress on SOI-mapped {probe}: {report}")
    assert report.pbe_free, "SOI-mapped circuit must be PBE-free"


if __name__ == "__main__":
    main()
