#!/usr/bin/env python
"""Quickstart: map a small logic network to SOI domino logic.

Builds the paper's running example (A + B + C) * D, maps it with all
three algorithms, and shows why the bulk-CMOS mapping needs a p-discharge
transistor while the PBE-aware mapping does not.

Run:  python examples/quickstart.py
"""

from repro import (
    domino_map,
    network_from_expression,
    rs_map,
    soi_domino_map,
)
from repro.io import circuit_netlist
from repro.sim import check_circuit_against_network


def main() -> None:
    # The paper's Figure 2(a): a domino gate computing (A + B + C) * D.
    network = network_from_expression("(A + B + C) * D", name="fig2a")

    print("=== mapping (A + B + C) * D three ways ===\n")
    for label, flow in (("Domino_Map (bulk baseline)", domino_map),
                        ("RS_Map (rearranged stacks)", rs_map),
                        ("SOI_Domino_Map (the paper)", soi_domino_map)):
        result = flow(network)
        cost = result.cost
        print(f"{label}:")
        for gate in result.circuit.gates:
            print(f"  pulldown {gate.structure}  "
                  f"({'footed' if gate.footed else 'footless'}, "
                  f"{gate.t_disch} discharge transistor(s))")
        print(f"  -> {cost}\n")

        # Every mapped circuit computes the original function.
        mismatch = check_circuit_against_network(result.circuit, network)
        assert mismatch is None, mismatch

    # The bulk structure [ (A|B|C) ; D ] leaves the stack's bottom node
    # floating high when A conducts with D off — the Parasitic Bipolar
    # Effect scenario — so a clock-driven pmos discharge transistor must
    # be added.  Reordering the stack to ground (as RS_Map and
    # SOI_Domino_Map do) removes the hazard and the extra transistor.

    print("=== transistor netlist of the SOI mapping ===\n")
    print(circuit_netlist(soi_domino_map(network).circuit))


if __name__ == "__main__":
    main()
