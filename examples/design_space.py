#!/usr/bin/env python
"""Explore the mapper's design space on one circuit.

Sweeps the knobs the paper discusses — cost objective (area / clock-
weighted / depth), the clock-transistor weight k, and the pulldown
width/height limits — on a single benchmark circuit and prints how the
solution moves between the extremes ("the algorithm chooses a result
balanced between these extremes", section VI-C).

Run:  python examples/design_space.py [circuit]
"""

import sys

from repro.bench_suite import load_circuit
from repro.mapping import (ClockWeightedCost, DepthCost, MapperConfig,
                           soi_domino_map)


def row(label, cost):
    print(f"  {label:28s} T_logic={cost.t_logic:5d}  T_disch={cost.t_disch:4d}"
          f"  T_total={cost.t_total:5d}  T_clock={cost.t_clock:4d}"
          f"  #G={cost.num_gates:4d}  L={cost.levels:3d}")


def main() -> None:
    name = sys.argv[1] if len(sys.argv) > 1 else "9symml"
    network = load_circuit(name)
    print(f"circuit: {name}\n")

    print("cost objective sweep (Wmax=5, Hmax=8):")
    row("area", soi_domino_map(network).cost)
    row("depth", soi_domino_map(network, cost_model=DepthCost()).cost)
    for k in (1.0, 2.0, 4.0, 8.0):
        cost = soi_domino_map(network, cost_model=ClockWeightedCost(k),
                              config=MapperConfig(duplication=False)).cost
        row(f"clock-weighted k={k:g} (exact)", cost)

    print("\npulldown limit sweep (area cost):")
    for w_max, h_max in ((2, 2), (3, 4), (5, 8), (8, 12)):
        cost = soi_domino_map(network, w_max=w_max, h_max=h_max).cost
        row(f"Wmax={w_max}, Hmax={h_max}", cost)

    print("\nablations (area cost, Wmax=5, Hmax=8):")
    row("paper ordering rule", soi_domino_map(network).cost)
    row("naive ordering",
        soi_domino_map(network, config=MapperConfig(ordering="naive")).cost)
    row("exhaustive ordering",
        soi_domino_map(network,
                       config=MapperConfig(ordering="exhaustive")).cost)
    row("pessimistic grounding",
        soi_domino_map(
            network, config=MapperConfig(ground_policy="pessimistic")).cost)
    row("pareto tuple fronts",
        soi_domino_map(network, config=MapperConfig(pareto=True)).cost)


if __name__ == "__main__":
    main()
