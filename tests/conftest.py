"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import random

import pytest

from repro.network import LogicNetwork, NodeType, network_from_expression


@pytest.fixture
def fig2a_network() -> LogicNetwork:
    """The paper's running example: (A + B + C) * D."""
    return network_from_expression("(A + B + C) * D", name="fig2a")


@pytest.fixture
def fig3_network() -> LogicNetwork:
    """The paper's Figure 3 worked example: (a*b) + (c*d)."""
    net = LogicNetwork("fig3")
    a, b, c, d = (net.add_pi(x) for x in "abcd")
    net.add_po(net.add_or(net.add_and(a, b), net.add_and(c, d)), "out")
    return net


@pytest.fixture
def small_binate_network() -> LogicNetwork:
    """A small network exercising inverters, XOR and reconvergence."""
    return network_from_expression(
        "(!a * b + a * !b) * (c + !d) + !(a + c)", name="binate")


def make_random_network(seed: int, n_pi: int = 6, n_gates: int = 25,
                        n_po: int = 3) -> LogicNetwork:
    """Small deterministic random network for property-style tests."""
    rng = random.Random(seed)
    net = LogicNetwork(f"rand{seed}")
    signals = [net.add_pi(f"i{k}") for k in range(n_pi)]
    for _ in range(n_gates):
        a = rng.choice(signals)
        b = rng.choice(signals)
        roll = rng.random()
        if roll < 0.35:
            signals.append(net.add_and(a, b))
        elif roll < 0.70:
            signals.append(net.add_or(a, b))
        elif roll < 0.85:
            signals.append(net.add_inv(a))
        else:
            signals.append(net.add_gate(NodeType.XOR, (a, b)))
    for index in range(n_po):
        net.add_po(signals[-(index + 1)], f"o{index}")
    return net
