"""FlowPipeline validation, execution records, and digest identity."""

import hashlib
import json
from pathlib import Path

import pytest

from repro.bench_suite import load_circuit
from repro.errors import FlowError
from repro.flow import FlowContext, FlowPipeline
from repro.io import circuit_netlist
from repro.mapping import (
    CostModel,
    MapperConfig,
    build_flow_pipeline,
    flow_passes,
    map_network,
)

DATA = Path(__file__).resolve().parents[1] / "data"
with open(DATA / "seed_digests.json", encoding="utf-8") as _fh:
    SEED_DIGESTS = json.load(_fh)


# -- static validation ------------------------------------------------------
def test_empty_pipeline_rejected():
    with pytest.raises(FlowError, match="at least one pass"):
        FlowPipeline([])


def test_duplicate_pass_rejected():
    with pytest.raises(FlowError, match="listed twice"):
        FlowPipeline(["decompose", "decompose"])


def test_unknown_pass_rejected():
    with pytest.raises(FlowError, match="unknown pass"):
        FlowPipeline(["decompose", "no-such-stage"])


def test_broken_artifact_chain_rejected():
    # discharge requires a plan nobody provides
    with pytest.raises(FlowError, match="requires plan"):
        FlowPipeline(["decompose", "sweep", "unate", "discharge"])


def test_unknown_initial_artifact_rejected():
    with pytest.raises(FlowError, match="unknown initial artifact"):
        FlowPipeline(["dp-map"], initial=("tuples",))


def test_decompose_short_circuit_satisfies_chain():
    # dp-map needs unate_network; decompose conditionally provides it,
    # so the canonical front end validates.
    pipe = FlowPipeline(flow_passes("soi"), name="soi")
    assert pipe.pass_names == list(flow_passes("soi"))


def test_runtime_missing_requirement():
    # statically fine (plan is declared initial) but never actually set
    pipe = FlowPipeline(["discharge", "analyze"], initial=("plan",))
    ctx = FlowContext(config=MapperConfig(), cost_model=CostModel())
    with pytest.raises(FlowError, match="not available at run time"):
        pipe.run(ctx)


def test_build_flow_pipeline_presets():
    for flow in ("domino", "rs", "soi", None):
        pipe = build_flow_pipeline(flow)
        assert pipe.name == (flow or "custom")
        assert pipe.pass_names == list(flow_passes(flow))


# -- execution records ------------------------------------------------------
def test_pass_records_cover_every_pass():
    result = map_network(load_circuit("cm150"), flow="soi")
    names = [r.name for r in result.passes]
    assert names == list(flow_passes("soi"))
    statuses = {r.name: r.status for r in result.passes}
    # cm150 needs the full front end; every pass actually runs
    assert set(statuses.values()) == {"ok"}
    for record in result.passes:
        assert record.ran
        assert record.elapsed_s >= 0.0
        data = record.as_dict()
        assert data["name"] == record.name
        json.dumps(data)  # records must be JSON-serializable


def test_dp_pass_record_carries_stats_delta():
    result = map_network(load_circuit("cm150"), flow="soi")
    by_name = {r.name: r for r in result.passes}
    assert by_name["dp-map"].stats_delta["tuples_created"] > 0
    assert by_name["dp-map"].diagnostics["pbe_aware"] is True
    assert by_name["discharge"].diagnostics["gates"] == len(
        result.circuit)
    # analyze reports the same cost the result carries
    assert by_name["analyze"].diagnostics == result.cost.as_dict()


def test_rearrange_recorded_as_skipped_when_off():
    result = map_network(load_circuit("cm150"),
                         config=MapperConfig(rearrange_gates=False))
    by_name = {r.name: r for r in result.passes}
    assert by_name["rearrange"].status == "skipped"
    assert "rearrange_gates" in by_name["rearrange"].detail
    assert "rearrange" not in result.pass_times()
    assert set(result.pass_times()) == {
        "decompose", "sweep", "unate", "dp-map", "discharge", "analyze"}


def test_explicit_pass_list_override():
    # run the rs pass list under the soi preset: rearrange is off in the
    # soi config, so it records as skipped and the digest is unchanged
    baseline = map_network(load_circuit("mux"), flow="soi")
    override = map_network(load_circuit("mux"), flow="soi",
                           passes=flow_passes("rs"))
    assert override.circuit.digest() == baseline.circuit.digest()
    by_name = {r.name: r for r in override.passes}
    assert by_name["rearrange"].status == "skipped"


# -- digest identity --------------------------------------------------------
@pytest.mark.parametrize("name,flow,ordering,mode", [
    ("cm150", "soi", "paper", "single"),
    ("mux", "rs", "adverse", "pareto"),
    ("z4ml", "domino", "adverse", "single"),
])
def test_pipeline_reproduces_seed_digest(name, flow, ordering, mode):
    """The staged pipeline is bit-identical to the seed's monolithic flow."""
    config = MapperConfig(ordering=ordering, pareto=(mode == "pareto"))
    result = map_network(load_circuit(name), flow=flow, config=config)
    digest = hashlib.sha256(
        circuit_netlist(result.circuit).encode()).hexdigest()
    assert digest == SEED_DIGESTS[f"{name}/{flow}/{ordering}/{mode}"]
    assert result.circuit.digest() == digest
