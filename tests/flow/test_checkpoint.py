"""Checkpoint/resume: mid-flow serialization and safe-resume refusals."""

import json

import pytest

from repro.bench_suite import load_circuit
from repro.errors import FlowError
from repro.flow import CHECKPOINT_SCHEMA, FlowCheckpoint
from repro.flow.passes import DischargePass
from repro.mapping import MapperConfig, flow_passes, map_network

CONFIG = MapperConfig(ordering="paper", pareto=False)


def _boom(self, ctx):
    raise RuntimeError("simulated crash before discharge insertion")


def _interrupt(monkeypatch, tmp_path, circuit="cm150"):
    """Run the soi flow but crash in ``discharge``; returns the ckpt dir."""
    ckpt_dir = tmp_path / "ckpt"
    with monkeypatch.context() as patch:
        patch.setattr(DischargePass, "run", _boom)
        with pytest.raises(RuntimeError, match="simulated crash"):
            map_network(load_circuit(circuit), flow="soi", config=CONFIG,
                        checkpoint_dir=ckpt_dir)
    return ckpt_dir


def test_interrupted_run_leaves_restorable_checkpoint(monkeypatch, tmp_path):
    ckpt_dir = _interrupt(monkeypatch, tmp_path)
    ckpt = FlowCheckpoint(ckpt_dir)
    assert ckpt.exists()
    manifest = ckpt.load_manifest()
    assert manifest["schema"] == CHECKPOINT_SCHEMA
    assert manifest["flow"] == "soi"
    assert manifest["passes"] == list(flow_passes("soi"))
    # everything up to the crash completed; the plan artifact is on disk
    assert manifest["completed"] == ["decompose", "sweep", "unate", "dp-map"]
    assert "plan" in manifest["artifacts"]
    assert (ckpt_dir / manifest["artifacts"]["plan"]).is_file()


def test_resume_matches_uninterrupted_digest(monkeypatch, tmp_path):
    """The satellite's core guarantee: resume == one uninterrupted run."""
    uninterrupted = map_network(load_circuit("cm150"), flow="soi",
                                config=CONFIG)
    ckpt_dir = _interrupt(monkeypatch, tmp_path)
    resumed = map_network(load_circuit("cm150"), flow="soi", config=CONFIG,
                          checkpoint_dir=ckpt_dir)
    assert resumed.circuit.digest() == uninterrupted.circuit.digest()
    statuses = {r.name: r.status for r in resumed.passes}
    assert statuses == {"decompose": "resumed", "sweep": "resumed",
                        "unate": "resumed", "dp-map": "resumed",
                        "discharge": "ok", "analyze": "ok"}


def test_completed_run_resumes_everything(tmp_path):
    ckpt_dir = tmp_path / "ckpt"
    first = map_network(load_circuit("mux"), flow="soi", config=CONFIG,
                        checkpoint_dir=ckpt_dir)
    again = map_network(load_circuit("mux"), flow="soi", config=CONFIG,
                        checkpoint_dir=ckpt_dir)
    assert all(r.status == "resumed" for r in again.passes)
    assert again.circuit.digest() == first.circuit.digest()


def test_resume_refuses_different_flow(monkeypatch, tmp_path):
    ckpt_dir = _interrupt(monkeypatch, tmp_path)
    with pytest.raises(FlowError, match="was taken for flow"):
        map_network(load_circuit("cm150"), flow="domino", config=CONFIG,
                    checkpoint_dir=ckpt_dir)


def test_resume_refuses_different_pass_list(monkeypatch, tmp_path):
    ckpt_dir = _interrupt(monkeypatch, tmp_path)
    with pytest.raises(FlowError, match="pass list"):
        map_network(load_circuit("cm150"), flow="soi", config=CONFIG,
                    passes=flow_passes("rs"), checkpoint_dir=ckpt_dir)


def test_resume_refuses_different_config(monkeypatch, tmp_path):
    ckpt_dir = _interrupt(monkeypatch, tmp_path)
    with pytest.raises(FlowError, match="different .*config"):
        map_network(load_circuit("cm150"), flow="soi",
                    config=MapperConfig(ordering="exhaustive"),
                    checkpoint_dir=ckpt_dir)


def test_resume_refuses_corrupt_artifact(monkeypatch, tmp_path):
    ckpt_dir = _interrupt(monkeypatch, tmp_path)
    manifest = FlowCheckpoint(ckpt_dir).load_manifest()
    (ckpt_dir / manifest["artifacts"]["plan"]).write_bytes(b"not a pickle")
    with pytest.raises(FlowError, match="cannot load checkpoint artifact"):
        map_network(load_circuit("cm150"), flow="soi", config=CONFIG,
                    checkpoint_dir=ckpt_dir)


def test_resume_refuses_wrong_schema(monkeypatch, tmp_path):
    ckpt_dir = _interrupt(monkeypatch, tmp_path)
    ckpt = FlowCheckpoint(ckpt_dir)
    manifest = ckpt.load_manifest()
    manifest["schema"] = "soidomino-flow-checkpoint/999"
    ckpt.manifest_path.write_text(json.dumps(manifest), encoding="utf-8")
    with pytest.raises(FlowError, match="schema"):
        map_network(load_circuit("cm150"), flow="soi", config=CONFIG,
                    checkpoint_dir=ckpt_dir)


def test_resume_refuses_non_prefix_completed(monkeypatch, tmp_path):
    ckpt_dir = _interrupt(monkeypatch, tmp_path)
    ckpt = FlowCheckpoint(ckpt_dir)
    manifest = ckpt.load_manifest()
    manifest["completed"] = ["sweep", "decompose"]
    ckpt.manifest_path.write_text(json.dumps(manifest), encoding="utf-8")
    with pytest.raises(FlowError, match="not a\\s+prefix"):
        map_network(load_circuit("cm150"), flow="soi", config=CONFIG,
                    checkpoint_dir=ckpt_dir)
