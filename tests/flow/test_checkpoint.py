"""Checkpoint/resume: mid-flow serialization, safe-resume refusals, and
corrupt-checkpoint recovery."""

import hashlib
import json

import pytest

from repro.bench_suite import load_circuit
from repro.errors import CheckpointCorruptError, FlowError
from repro.flow import CHECKPOINT_SCHEMA, FlowCheckpoint
from repro.flow.passes import DischargePass
from repro.mapping import MapperConfig, flow_passes, map_network

CONFIG = MapperConfig(ordering="paper", pareto=False)


def _boom(self, ctx):
    raise RuntimeError("simulated crash before discharge insertion")


def _interrupt(monkeypatch, tmp_path, circuit="cm150"):
    """Run the soi flow but crash in ``discharge``; returns the ckpt dir."""
    ckpt_dir = tmp_path / "ckpt"
    with monkeypatch.context() as patch:
        patch.setattr(DischargePass, "run", _boom)
        with pytest.raises(RuntimeError, match="simulated crash"):
            map_network(load_circuit(circuit), flow="soi", config=CONFIG,
                        checkpoint_dir=ckpt_dir)
    return ckpt_dir


def test_interrupted_run_leaves_restorable_checkpoint(monkeypatch, tmp_path):
    ckpt_dir = _interrupt(monkeypatch, tmp_path)
    ckpt = FlowCheckpoint(ckpt_dir)
    assert ckpt.exists()
    manifest = ckpt.load_manifest()
    assert manifest["schema"] == CHECKPOINT_SCHEMA
    assert manifest["flow"] == "soi"
    assert manifest["passes"] == list(flow_passes("soi"))
    # everything up to the crash completed; the plan artifact is on disk
    assert manifest["completed"] == ["decompose", "sweep", "unate", "dp-map"]
    assert "plan" in manifest["artifacts"]
    assert (ckpt_dir / manifest["artifacts"]["plan"]).is_file()


def test_resume_matches_uninterrupted_digest(monkeypatch, tmp_path):
    """The satellite's core guarantee: resume == one uninterrupted run."""
    uninterrupted = map_network(load_circuit("cm150"), flow="soi",
                                config=CONFIG)
    ckpt_dir = _interrupt(monkeypatch, tmp_path)
    resumed = map_network(load_circuit("cm150"), flow="soi", config=CONFIG,
                          checkpoint_dir=ckpt_dir)
    assert resumed.circuit.digest() == uninterrupted.circuit.digest()
    statuses = {r.name: r.status for r in resumed.passes}
    assert statuses == {"decompose": "resumed", "sweep": "resumed",
                        "unate": "resumed", "dp-map": "resumed",
                        "discharge": "ok", "analyze": "ok"}


def test_completed_run_resumes_everything(tmp_path):
    ckpt_dir = tmp_path / "ckpt"
    first = map_network(load_circuit("mux"), flow="soi", config=CONFIG,
                        checkpoint_dir=ckpt_dir)
    again = map_network(load_circuit("mux"), flow="soi", config=CONFIG,
                        checkpoint_dir=ckpt_dir)
    assert all(r.status == "resumed" for r in again.passes)
    assert again.circuit.digest() == first.circuit.digest()


def test_resume_refuses_different_flow(monkeypatch, tmp_path):
    ckpt_dir = _interrupt(monkeypatch, tmp_path)
    with pytest.raises(FlowError, match="was taken for flow"):
        map_network(load_circuit("cm150"), flow="domino", config=CONFIG,
                    checkpoint_dir=ckpt_dir)


def test_resume_refuses_different_pass_list(monkeypatch, tmp_path):
    ckpt_dir = _interrupt(monkeypatch, tmp_path)
    with pytest.raises(FlowError, match="pass list"):
        map_network(load_circuit("cm150"), flow="soi", config=CONFIG,
                    passes=flow_passes("rs"), checkpoint_dir=ckpt_dir)


def test_resume_refuses_different_config(monkeypatch, tmp_path):
    ckpt_dir = _interrupt(monkeypatch, tmp_path)
    with pytest.raises(FlowError, match="different .*config"):
        map_network(load_circuit("cm150"), flow="soi",
                    config=MapperConfig(ordering="exhaustive"),
                    checkpoint_dir=ckpt_dir)


def test_manifest_records_artifact_checksums(monkeypatch, tmp_path):
    ckpt_dir = _interrupt(monkeypatch, tmp_path)
    manifest = FlowCheckpoint(ckpt_dir).load_manifest()
    assert set(manifest["checksums"]) == set(manifest["artifacts"])
    for name, filename in manifest["artifacts"].items():
        payload = (ckpt_dir / filename).read_bytes()
        assert hashlib.sha256(payload).hexdigest() == manifest["checksums"][name]


def test_resume_recovers_corrupt_artifact(monkeypatch, tmp_path):
    """A corrupt artifact rewinds to the last verified pass, not a crash.

    Corrupting ``plan`` (owned by dp-map, the last completed pass) must
    resume after ``unate`` and re-run dp-map onward — and still produce
    the uninterrupted run's exact digest.
    """
    uninterrupted = map_network(load_circuit("cm150"), flow="soi",
                                config=CONFIG)
    ckpt_dir = _interrupt(monkeypatch, tmp_path)
    manifest = FlowCheckpoint(ckpt_dir).load_manifest()
    (ckpt_dir / manifest["artifacts"]["plan"]).write_bytes(b"not a pickle")
    resumed = map_network(load_circuit("cm150"), flow="soi", config=CONFIG,
                          checkpoint_dir=ckpt_dir)
    assert resumed.circuit.digest() == uninterrupted.circuit.digest()
    statuses = {r.name: r.status for r in resumed.passes}
    assert statuses == {"decompose": "resumed", "sweep": "resumed",
                        "unate": "resumed", "dp-map": "ok",
                        "discharge": "ok", "analyze": "ok"}


def test_resume_recovers_checksum_mismatch(monkeypatch, tmp_path):
    """Valid pickle bytes that fail the checksum are still corruption."""
    ckpt_dir = _interrupt(monkeypatch, tmp_path)
    ckpt = FlowCheckpoint(ckpt_dir)
    manifest = ckpt.load_manifest()
    path = ckpt_dir / manifest["artifacts"]["plan"]
    path.write_bytes((ckpt_dir / manifest["artifacts"]["network"])
                     .read_bytes())
    resumed = map_network(load_circuit("cm150"), flow="soi", config=CONFIG,
                          checkpoint_dir=ckpt_dir)
    statuses = {r.name: r.status for r in resumed.passes}
    assert statuses["dp-map"] == "ok"
    assert statuses["unate"] == "resumed"


def test_corrupt_root_artifact_reruns_everything(monkeypatch, tmp_path):
    """``network`` has providers on both sides of any non-zero cut, so
    corrupting it forces a full re-run — which must still succeed."""
    uninterrupted = map_network(load_circuit("cm150"), flow="soi",
                                config=CONFIG)
    ckpt_dir = _interrupt(monkeypatch, tmp_path)
    manifest = FlowCheckpoint(ckpt_dir).load_manifest()
    (ckpt_dir / manifest["artifacts"]["network"]).write_bytes(b"\x00" * 16)
    resumed = map_network(load_circuit("cm150"), flow="soi", config=CONFIG,
                          checkpoint_dir=ckpt_dir)
    assert resumed.circuit.digest() == uninterrupted.circuit.digest()
    assert all(r.status in ("ok", "skipped") for r in resumed.passes)


def test_corrupt_manifest_json_raises_corrupt_error(monkeypatch, tmp_path):
    ckpt_dir = _interrupt(monkeypatch, tmp_path)
    FlowCheckpoint(ckpt_dir).manifest_path.write_text("{not json",
                                                      encoding="utf-8")
    with pytest.raises(CheckpointCorruptError, match="not valid\\s+JSON"):
        map_network(load_circuit("cm150"), flow="soi", config=CONFIG,
                    checkpoint_dir=ckpt_dir)


def test_checkpoint_save_leaves_no_temp_files(tmp_path):
    ckpt_dir = tmp_path / "ckpt"
    map_network(load_circuit("mux"), flow="soi", config=CONFIG,
                checkpoint_dir=ckpt_dir)
    leftovers = [p.name for p in ckpt_dir.iterdir()
                 if p.suffix == ".tmp"]
    assert leftovers == []


def test_resume_refuses_wrong_schema(monkeypatch, tmp_path):
    ckpt_dir = _interrupt(monkeypatch, tmp_path)
    ckpt = FlowCheckpoint(ckpt_dir)
    manifest = ckpt.load_manifest()
    manifest["schema"] = "soidomino-flow-checkpoint/999"
    ckpt.manifest_path.write_text(json.dumps(manifest), encoding="utf-8")
    with pytest.raises(FlowError, match="schema"):
        map_network(load_circuit("cm150"), flow="soi", config=CONFIG,
                    checkpoint_dir=ckpt_dir)


def test_resume_refuses_non_prefix_completed(monkeypatch, tmp_path):
    ckpt_dir = _interrupt(monkeypatch, tmp_path)
    ckpt = FlowCheckpoint(ckpt_dir)
    manifest = ckpt.load_manifest()
    manifest["completed"] = ["sweep", "decompose"]
    ckpt.manifest_path.write_text(json.dumps(manifest), encoding="utf-8")
    with pytest.raises(FlowError, match="not a\\s+prefix"):
        map_network(load_circuit("cm150"), flow="soi", config=CONFIG,
                    checkpoint_dir=ckpt_dir)
