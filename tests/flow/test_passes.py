"""Pass registry, typed artifacts, and front-end short-circuit tests."""

import pytest

from repro.errors import FlowError
from repro.flow import (
    ARTIFACTS,
    PASS_REGISTRY,
    FlowContext,
    available_passes,
    get_pass,
)
from repro.mapping import CostModel, MapperConfig, flow_passes
from repro.network import network_from_expression

EXPECTED_PASSES = ("decompose", "sweep", "unate", "dp-map", "rearrange",
                   "discharge", "analyze")


def _ctx(network=None, **config):
    ctx = FlowContext(config=MapperConfig(**config), cost_model=CostModel())
    if network is not None:
        ctx.set("network", network)
    return ctx


def test_registry_contains_every_stage():
    assert tuple(PASS_REGISTRY) == EXPECTED_PASSES
    assert [p.name for p in available_passes()] == list(EXPECTED_PASSES)


def test_every_pass_declares_artifacts_and_description():
    for p in available_passes():
        assert p.description
        for artifact in (*p.requires, *p.provides):
            assert artifact in ARTIFACTS


def test_get_pass_unknown_name():
    with pytest.raises(FlowError, match="unknown pass"):
        get_pass("no-such-pass")


def test_flow_passes_presets():
    assert flow_passes("rs") == ("decompose", "sweep", "unate", "dp-map",
                                 "rearrange", "discharge", "analyze")
    assert "rearrange" not in flow_passes("domino")
    assert "rearrange" not in flow_passes("soi")
    assert flow_passes(None) == flow_passes("custom")


def test_context_rejects_wrong_artifact_type():
    ctx = _ctx()
    with pytest.raises(FlowError, match="must be LogicNetwork"):
        ctx.set("network", "not a network")


def test_context_rejects_unknown_artifact():
    ctx = _ctx()
    with pytest.raises(FlowError, match="unknown artifact"):
        ctx.set("netwrk", network_from_expression("a * b"))


def test_context_rejects_none_for_required_artifact():
    ctx = _ctx()
    with pytest.raises(FlowError, match="cannot be None"):
        ctx.set("network", None)
    ctx.set("unate_report", None)  # declared optional


def test_context_get_missing_artifact():
    ctx = _ctx()
    with pytest.raises(FlowError, match="not available"):
        ctx.get("mapping")


def test_decompose_short_circuits_mappable_network():
    """An already-mappable input bypasses the whole front end."""
    network = network_from_expression("a * b")
    assert network.is_mappable()
    ctx = _ctx(network)
    diag = get_pass("decompose").run(ctx)
    assert diag["already_mappable"] is True
    assert ctx.get("unate_network") is network
    assert ctx.artifacts["unate_report"] is None
    for name in ("sweep", "unate"):
        assert get_pass(name).skip_reason(ctx) is not None


def test_frontend_runs_for_binate_network():
    network = network_from_expression("!(a * b) * c")  # INV needs conversion
    assert not network.is_mappable()
    ctx = _ctx(network)
    assert get_pass("decompose").run(ctx)["already_mappable"] is False
    assert get_pass("sweep").skip_reason(ctx) is None
    get_pass("sweep").run(ctx)
    diag = get_pass("unate").run(ctx)
    assert ctx.get("unate_network").is_mappable()
    assert "unate_gates" in diag


def test_rearrange_skips_unless_configured():
    ctx = _ctx(rearrange_gates=False)
    assert "rearrange_gates" in get_pass("rearrange").skip_reason(ctx)
    ctx_on = _ctx(rearrange_gates=True)
    assert get_pass("rearrange").skip_reason(ctx_on) is None


def test_stats_delta_tracks_dp_work():
    network = network_from_expression("(a + b) * (c + d)")
    ctx = _ctx(network)
    get_pass("decompose").run(ctx)
    before = ctx.snapshot_stats()
    get_pass("dp-map").run(ctx)
    delta = ctx.stats_delta(before)
    assert delta["tuples_created"] > 0
    assert delta["nodes_processed"] > 0
    assert ctx.has("plan")
