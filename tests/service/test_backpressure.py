"""Admission control: overload shedding, the breaker, client retries."""

import pytest

from repro.resilience import install, plan_from_spec
from repro.service import (
    CircuitBreaker,
    MappingService,
    ServiceClient,
    ServiceError,
    start_in_thread,
)
from repro.service.jobs import OverloadError, ServiceUnavailableError


class TestCircuitBreaker:
    def test_trips_after_threshold_consecutive_failures(self):
        breaker = CircuitBreaker(threshold=2, reset_s=60.0)
        breaker.record_failure()
        assert breaker.state == "closed" and breaker.allow()
        breaker.record_failure()
        assert breaker.state == "open" and not breaker.allow()
        assert breaker.opens == 1
        assert 0.0 < breaker.retry_after_s() <= 60.0

    def test_success_resets_the_consecutive_count(self):
        breaker = CircuitBreaker(threshold=2, reset_s=60.0)
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        assert breaker.state == "closed" and breaker.failures == 1

    def test_half_open_admits_exactly_one_probe(self):
        breaker = CircuitBreaker(threshold=1, reset_s=0.0)
        breaker.record_failure()
        assert breaker.state == "open"
        assert breaker.allow()  # reset window elapsed: probe admitted
        assert breaker.state == "half_open"
        assert not breaker.allow()  # only one probe at a time
        breaker.record_success()
        assert breaker.state == "closed" and breaker.allow()

    def test_failed_probe_reopens_the_breaker(self):
        breaker = CircuitBreaker(threshold=3, reset_s=0.0)
        for _ in range(3):
            breaker.record_failure()
        assert breaker.allow()
        breaker.record_failure()
        assert breaker.state == "open" and breaker.opens == 2

    def test_threshold_validation(self):
        with pytest.raises(ValueError, match="threshold"):
            CircuitBreaker(threshold=0)


class TestAdmissionGates:
    def test_watermark_shed_is_a_retryable_overload(self):
        service = MappingService(max_workers=1, queue_wait_watermark_s=5.0)
        try:
            service._job_ewma_s = 100.0
            service.submit({"circuits": ["mux"]})  # queued, no scheduler
            with pytest.raises(OverloadError, match="watermark") as excinfo:
                service.submit({"circuits": ["mux"]})
            assert excinfo.value.retryable
            assert excinfo.value.retry_after_s >= 0.5
        finally:
            service.close()

    def test_watermark_none_disables_backpressure(self):
        service = MappingService(max_workers=1,
                                 queue_wait_watermark_s=None)
        try:
            service._job_ewma_s = 1000.0
            service.submit({"circuits": ["mux"]})
            service.submit({"circuits": ["mux"]})  # admitted regardless
            assert service.estimated_queue_wait_s() == 2000.0
        finally:
            service.close()

    def test_open_breaker_rejects_submits_as_unavailable(self):
        service = MappingService(max_workers=1, breaker_threshold=1,
                                 breaker_reset_s=600.0)
        try:
            service.breaker.record_failure()
            with pytest.raises(ServiceUnavailableError) as excinfo:
                service.submit({"circuits": ["mux"]})
            assert excinfo.value.retry_after_s >= 0.5
            health = service.health()
            assert health["ready"] is False
            assert health["breaker"]["state"] == "open"
            registry = service.metrics_registry()
            assert registry.get("repro_service_breaker_state").value == 1
            assert registry.get("repro_service_breaker_opens").value == 1
        finally:
            service.close()

    def test_estimated_wait_is_queue_depth_times_ewma(self):
        service = MappingService(max_workers=1,
                                 queue_wait_watermark_s=None)
        try:
            service._job_ewma_s = 10.0
            assert service.estimated_queue_wait_s() == 0.0
            service.submit({"circuits": ["mux"]})
            assert service.estimated_queue_wait_s() == 10.0
        finally:
            service.close()


class TestClientRetries:
    def test_shed_submit_is_a_429_with_retry_after(self):
        previous = install(plan_from_spec("seed=0;queue.overload:match=mux"))
        service = MappingService(max_workers=1)
        handle = start_in_thread(service)
        try:
            client = ServiceClient(port=handle.port, retries=0)
            with pytest.raises(ServiceError) as excinfo:
                client.submit({"circuits": ["mux"]})
            assert excinfo.value.status == 429
            assert excinfo.value.retryable
            assert excinfo.value.retry_after is not None
            assert excinfo.value.payload["error"]["type"] == "OverloadError"
        finally:
            handle.stop()
            install(previous)

    def test_client_retries_shed_submit_through_to_done(self):
        # the fault sheds attempt 1 of each submission identity; the
        # client's retry carries the same idempotency key, lands as
        # attempt 2, and must not double-run the job
        previous = install(plan_from_spec("seed=0;queue.overload:match=mux"))
        service = MappingService(max_workers=1)
        handle = start_in_thread(service)
        try:
            client = ServiceClient(port=handle.port, retries=3,
                                   backoff_base_s=0.01, backoff_cap_s=0.05)
            job = client.submit({"circuits": ["mux"]})
            result = client.wait(job["id"])
        finally:
            handle.stop()
            install(previous)
        assert result["state"] == "done"
        assert client.retried >= 1
        assert len(service.jobs) == 1

    def test_backoff_is_deterministic_and_honors_retry_after(self):
        first = ServiceClient(seed=7)
        second = ServiceClient(seed=7)
        other = ServiceClient(seed=8)
        a = first._backoff_s("POST /v1/jobs", 1, None)
        assert a == second._backoff_s("POST /v1/jobs", 1, None)
        assert a != other._backoff_s("POST /v1/jobs", 1, None)
        assert 0.05 <= a < 0.15  # base 0.1 x jitter in [0.5, 1.5)
        # an explicit server hint always wins over the schedule
        assert first._backoff_s("POST /v1/jobs", 1, 2.5) == 2.5
