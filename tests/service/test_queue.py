"""JobSpec validation and JobQueue fairness/priority/quota semantics."""

import pytest

from repro.service import Job, JobQueue, JobSpec, JobSpecError
from repro.service.jobs import CANCELLED, QUEUED, QuotaExceededError


def _job(tenant="default", priority=0):
    return Job(spec=JobSpec(circuits=("mux",), tenant=tenant,
                            priority=priority))


class TestJobSpec:
    def test_from_payload_defaults(self):
        spec = JobSpec.from_payload({"circuits": ["mux", "cm150"]})
        assert spec.circuits == ("mux", "cm150")
        assert spec.flows == ("soi",)
        assert spec.cost == "area"
        assert spec.kernel == "auto"
        assert spec.tenant == "default"
        assert spec.priority == 0

    def test_tasks_match_cli_sweep(self):
        from repro import BatchRunner, MapperConfig

        spec = JobSpec.from_payload(
            {"circuits": ["mux", "cm150"], "flows": ["soi", "domino"]})
        expected = BatchRunner.sweep_tasks(
            circuits=["mux", "cm150"], flows=("soi", "domino"),
            cost_models=[None], config=MapperConfig(kernel="auto"))
        assert [t.label for t in spec.tasks()] == \
            [t.label for t in expected]

    @pytest.mark.parametrize("payload,needle", [
        ("not a dict", "JSON object"),
        ({}, "circuits"),
        ({"circuits": []}, "circuits"),
        ({"circuits": ["mux"], "flows": []}, "flows"),
        ({"circuits": ["mux"], "flows": ["nope"]}, "unknown flow"),
        ({"circuits": ["mux"], "cost": "nope"}, "unknown cost"),
        ({"circuits": ["mux"], "kernel": "nope"}, "unknown kernel"),
        ({"circuits": ["mux"], "k": -1}, "'k'"),
        ({"circuits": ["mux"], "tenant": ""}, "tenant"),
        ({"circuits": ["mux"], "priority": "high"}, "priority"),
        ({"circuits": ["mux"], "bogus": 1}, "unknown job field"),
    ])
    def test_invalid_payloads(self, payload, needle):
        with pytest.raises(JobSpecError, match=needle):
            JobSpec.from_payload(payload)


class TestJobQueue:
    def test_fifo_within_tenant(self):
        queue = JobQueue()
        jobs = [_job() for _ in range(3)]
        for job in jobs:
            queue.push(job)
        assert [queue.pop() for _ in range(3)] == jobs
        assert queue.pop() is None

    def test_priority_within_tenant(self):
        queue = JobQueue()
        low, high = _job(priority=0), _job(priority=5)
        queue.push(low)
        queue.push(high)
        assert queue.pop() is high
        assert queue.pop() is low

    def test_round_robin_across_tenants(self):
        queue = JobQueue()
        a1, a2, a3 = (_job("alice") for _ in range(3))
        b1, b2 = (_job("bob") for _ in range(2))
        for job in (a1, a2, a3, b1, b2):
            queue.push(job)
        order = [queue.pop() for _ in range(5)]
        # alice cannot starve bob: strict alternation while both wait
        assert order == [a1, b1, a2, b2, a3]

    def test_priority_does_not_cross_tenants(self):
        queue = JobQueue()
        urgent_a = _job("alice", priority=100)
        plain_a = _job("alice", priority=0)
        plain_b = _job("bob", priority=0)
        queue.push(plain_a)
        queue.push(urgent_a)
        queue.push(plain_b)
        # alice's urgency reorders alice's work, not bob's turn
        assert [queue.pop() for _ in range(3)] == \
            [urgent_a, plain_b, plain_a]

    def test_quota_per_tenant(self):
        queue = JobQueue(max_queued_per_tenant=2)
        queue.push(_job("alice"))
        queue.push(_job("alice"))
        with pytest.raises(QuotaExceededError) as excinfo:
            queue.push(_job("alice"))
        assert excinfo.value.retryable
        queue.push(_job("bob"))  # another tenant is unaffected
        assert queue.queued_count("alice") == 2
        assert queue.queued_count() == 3

    def test_quota_frees_as_jobs_pop(self):
        queue = JobQueue(max_queued_per_tenant=1)
        first = _job("alice")
        queue.push(first)
        with pytest.raises(QuotaExceededError):
            queue.push(_job("alice"))
        assert queue.pop() is first
        queue.push(_job("alice"))  # admitted again

    def test_cancelled_jobs_are_skipped(self):
        queue = JobQueue()
        doomed, live = _job(), _job()
        queue.push(doomed)
        queue.push(live)
        doomed.state = CANCELLED
        assert queue.pop() is live
        assert queue.pop() is None
        assert queue.queued_count() == 0

    def test_async_get_wakes_on_push(self):
        import asyncio

        async def scenario():
            queue = JobQueue()
            job = _job()

            async def producer():
                await asyncio.sleep(0.01)
                queue.push(job)

            asyncio.get_running_loop().create_task(producer())
            return await asyncio.wait_for(queue.get(), timeout=5.0)

        assert asyncio.run(scenario()).state == QUEUED
