"""JobJournal: checksummed write-ahead rows, recovery, degradation."""

import sqlite3

from repro.service import JobJournal, default_journal_path
from repro.service.jobs import DONE, RUNNING, Job, JobSpec
from repro.service.journal import JOURNAL_ENV


def _job(**overrides):
    payload = {"circuits": ["mux"], **overrides}
    return Job(spec=JobSpec.from_payload(payload))


def _db(tmp_path):
    return str(tmp_path / "journal.sqlite")


class TestWriteAheadPath:
    def test_queued_job_round_trips_for_requeue(self, tmp_path):
        journal = JobJournal(_db(tmp_path))
        job = _job(tenant="alice", priority=3, idempotency_key="k1")
        journal.record_submit(job)
        restored, requeue = journal.recover()
        assert restored == [] and len(requeue) == 1
        rec = requeue[0]
        assert rec.job_id == job.id
        assert rec.state == "queued"
        assert rec.idempotency_key == "k1"
        assert rec.spec_payload == job.spec.as_dict()
        assert JobSpec.from_payload(rec.spec_payload) == job.spec
        journal.close()

    def test_terminal_job_restores_result_and_events(self, tmp_path):
        journal = JobJournal(_db(tmp_path))
        job = _job()
        journal.record_submit(job)
        journal.record_event(job.id, job.add_event("state", state="queued"))
        job.state, job.attempts = RUNNING, 1
        journal.record_state(job)
        journal.record_event(job.id, job.add_event("state", state="running"))
        payload = {"results": [{"circuit": "mux", "digest": "abc"}]}
        job.state, job.result, job.finished_s = DONE, payload, job.created_s
        journal.record_result(job, payload)
        journal.record_state(job)
        journal.record_event(job.id, job.add_event("state", state="done"))
        restored, requeue = journal.recover()
        assert requeue == [] and len(restored) == 1
        rec = restored[0]
        assert rec.state == "done" and rec.attempts == 1
        assert rec.result == payload
        assert [e["seq"] for e in rec.events] == [0, 1, 2]
        assert journal.non_terminal_count() == 0
        journal.close()

    def test_corrupt_result_blob_is_demoted_to_requeue(self, tmp_path):
        journal = JobJournal(_db(tmp_path))
        job = _job()
        journal.record_submit(job)
        job.state, job.finished_s = DONE, job.created_s
        journal.record_result(job, {"results": []}, corrupt=True)
        journal.record_state(job)
        restored, requeue = journal.recover()
        assert restored == [] and len(requeue) == 1
        assert requeue[0].result is None  # blob failed its checksum
        assert journal.stats()["corrupt_results"] == 1
        journal.close()

    def test_forget_drops_the_job_and_its_events(self, tmp_path):
        journal = JobJournal(_db(tmp_path))
        job = _job()
        journal.record_submit(job)
        journal.record_event(job.id, job.add_event("state", state="queued"))
        journal.forget(job.id)
        restored, requeue = journal.recover()
        assert restored == [] and requeue == []
        journal.close()


class TestIdempotency:
    def test_find_idempotent_answers_across_connections(self, tmp_path):
        path = _db(tmp_path)
        journal = JobJournal(path)
        job = _job(idempotency_key="retry-me")
        journal.record_submit(job)
        journal.close()
        reopened = JobJournal(path)
        assert reopened.find_idempotent("retry-me") == job.id
        assert reopened.find_idempotent("never-seen") is None
        reopened.close()


class TestLifecycle:
    def test_schema_version_mismatch_clears_the_journal(self, tmp_path):
        path = _db(tmp_path)
        journal = JobJournal(path)
        journal.record_submit(_job())
        journal.close()
        with sqlite3.connect(path) as conn:
            conn.execute("UPDATE meta SET value='0'"
                         " WHERE key='schema_version'")
        reopened = JobJournal(path)
        restored, requeue = reopened.recover()
        assert restored == [] and requeue == []
        assert reopened.errors == 0
        reopened.close()

    def test_every_operation_degrades_to_noop_on_sqlite_error(self, tmp_path):
        # a directory is not a database: every call must absorb the
        # sqlite error (bumping ``errors``) instead of failing the job
        journal = JobJournal(str(tmp_path))
        job = _job()
        journal.record_submit(job)
        journal.record_state(job)
        journal.record_result(job, {"results": []})
        journal.record_event(job.id, {"seq": 0, "kind": "state"})
        journal.forget(job.id)
        assert journal.recover() == ([], [])
        assert journal.find_idempotent("k") is None
        assert journal.non_terminal_count() == 0
        assert journal.stats()["errors"] == journal.errors
        assert journal.errors == 9  # one per degraded call above
        journal.close()

    def test_default_path_honors_the_environment(self, monkeypatch):
        monkeypatch.setenv(JOURNAL_ENV, "/elsewhere/journal.sqlite")
        assert default_journal_path() == "/elsewhere/journal.sqlite"
        monkeypatch.delenv(JOURNAL_ENV)
        monkeypatch.setenv("XDG_CACHE_HOME", "/xdg")
        assert default_journal_path() == "/xdg/soidomino/journal.sqlite"

    def test_stats_counts_rows_and_cumulative_counters(self, tmp_path):
        journal = JobJournal(_db(tmp_path))
        first, second = _job(), _job()
        journal.record_submit(first)
        journal.record_submit(second)
        first.state, first.finished_s = DONE, first.created_s
        journal.record_state(first)
        stats = journal.stats()
        assert stats["jobs"] == {"queued": 1, "done": 1}
        assert stats["non_terminal"] == 1
        assert stats["submitted"] == 2 and stats["finished"] == 1
        journal.close()
