"""Restart-safe jobs: journal recovery, idempotent resubmission, drain."""

import asyncio

import pytest

from repro import BatchRunner
from repro.obs import batch_report
from repro.service import (
    JobJournal,
    MappingService,
    ServiceClient,
    ServiceError,
    start_in_thread,
)
from repro.service.jobs import Job, JobSpec, ServiceUnavailableError


def _served(tmp_path, **service_kwargs):
    service = MappingService(max_workers=1,
                             journal_path=str(tmp_path / "journal.sqlite"),
                             **service_kwargs)
    handle = start_in_thread(service)
    return service, handle, ServiceClient(port=handle.port)


class TestRestart:
    def test_terminal_job_survives_a_restart(self, tmp_path):
        service, handle, client = _served(tmp_path)
        try:
            job = client.submit({"circuits": ["mux"]})
            first = client.wait(job["id"])
            assert first["state"] == "done"
            events_before = list(client.events(job["id"]))
        finally:
            handle.stop()

        service2, handle2, client2 = _served(tmp_path)
        try:
            assert service2.recovered_jobs == 1
            assert service2.requeued_jobs == 0
            status = client2.status(job["id"])
            assert status["state"] == "done" and status["recovered"]
            again = client2.result(job["id"])
            assert again["result"] == first["result"]
            events_after = list(client2.events(job["id"]))
            assert events_after == events_before
        finally:
            handle2.stop()

    def test_interrupted_job_reruns_to_identical_digests(self, tmp_path):
        # simulate kill -9 after admission: the journal holds a queued
        # row that never ran; the successor must run it to completion
        journal = JobJournal(str(tmp_path / "journal.sqlite"))
        job = Job(spec=JobSpec.from_payload({"circuits": ["mux"]}))
        journal.record_submit(job)
        journal.close()

        service, handle, client = _served(tmp_path)
        try:
            assert service.requeued_jobs == 1
            result = client.wait(job.id, timeout=300.0)
            assert result["state"] == "done"
            status = client.status(job.id)
            assert status["recovered"] and status["attempts"] == 1
        finally:
            handle.stop()
        direct = batch_report(BatchRunner(max_workers=1).run(
            BatchRunner.sweep_tasks(circuits=["mux"])))
        assert result["result"]["results"][0]["digest"] == \
            direct["results"][0]["digest"]

    def test_event_cursor_resumes_after_restart(self, tmp_path):
        service, handle, client = _served(tmp_path)
        try:
            job = client.submit({"circuits": ["mux"]})
            head = list(client.events(job["id"]))[:2]
        finally:
            handle.stop()
        service2, handle2, client2 = _served(tmp_path)
        try:
            tail = list(client2.events(job["id"],
                                       since=head[-1]["seq"] + 1))
            seqs = [e["seq"] for e in head + tail]
            assert seqs == list(range(len(seqs)))  # no gaps, no repeats
        finally:
            handle2.stop()


class TestIdempotency:
    def test_resubmission_dedupes_within_one_daemon(self, tmp_path):
        service, handle, client = _served(tmp_path)
        try:
            spec = {"circuits": ["mux"], "idempotency_key": "once"}
            job = client.submit(spec)
            client.wait(job["id"])
            again = client.submit(spec)
            assert again["id"] == job["id"]
            assert len(service.jobs) == 1
        finally:
            handle.stop()

    def test_resubmission_dedupes_across_a_restart(self, tmp_path):
        service, handle, client = _served(tmp_path)
        try:
            spec = {"circuits": ["mux"], "idempotency_key": "durable"}
            job = client.submit(spec)
            client.wait(job["id"])
        finally:
            handle.stop()
        service2, handle2, client2 = _served(tmp_path)
        try:
            again = client2.submit(spec)
            assert again["id"] == job["id"]
            # the original already ran: no second execution happened
            assert again["state"] == "done"
            assert again["attempts"] == client2.status(job["id"])["attempts"]
        finally:
            handle2.stop()


class TestDrain:
    def test_drain_stops_admission_and_settles_the_journal(self, tmp_path):
        async def flow():
            service = MappingService(
                max_workers=1,
                journal_path=str(tmp_path / "journal.sqlite"))
            try:
                service.start()
                job = service.submit({"circuits": ["mux"]})
                while not job.finished:
                    await asyncio.sleep(0.01)
                outcome = await service.drain(grace_s=10.0)
                assert outcome["drained"] and outcome["remaining"] == 0
                with pytest.raises(ServiceUnavailableError):
                    service.submit({"circuits": ["mux"]})
                # SIGTERM contract: nothing non-terminal left journaled
                assert service.journal.non_terminal_count() == 0
                health = service.health()
                assert health["draining"] and health["ready"] is False
            finally:
                await service.aclose()

        asyncio.run(flow())

    def test_draining_submit_is_a_503_with_retry_after(self, tmp_path):
        service, handle, _client = _served(tmp_path)
        client = ServiceClient(port=handle.port, retries=0)
        try:
            service.draining = True
            with pytest.raises(ServiceError) as excinfo:
                client.submit({"circuits": ["mux"]})
            assert excinfo.value.status == 503
            assert excinfo.value.retryable
            assert excinfo.value.retry_after is not None
            error = excinfo.value.payload["error"]
            assert error["type"] == "ServiceUnavailableError"
            # liveness endpoints keep answering while draining
            assert client.health()["draining"] is True
        finally:
            handle.stop()
