"""MappingService over HTTP: parity, warmth, fairness, error contract."""

import json
import time

import pytest

from repro import BatchRunner
from repro.obs import batch_report
from repro.service import (
    MappingService,
    ServiceClient,
    ServiceError,
    start_in_thread,
)

SMALL = ["cm150", "mux"]


@pytest.fixture
def served(tmp_path):
    """A live daemon thread + client; tears down pool and loop."""
    service = MappingService(max_workers=2,
                             store_path=str(tmp_path / "cones.sqlite"))
    handle = start_in_thread(service)
    yield ServiceClient(port=handle.port), service
    handle.stop()


def _submit_and_wait(client, payload, timeout=300.0):
    job = client.submit(payload)
    return client.wait(job["id"], timeout=timeout)


class TestParity:
    def test_served_sweep_is_bit_identical_to_batch(self, served):
        client, _service = served
        result = _submit_and_wait(client, {"circuits": SMALL})
        assert result["state"] == "done"
        direct = BatchRunner(max_workers=1).run(
            BatchRunner.sweep_tasks(circuits=SMALL))
        expected = {e["circuit"]: (e["digest"], e["cost"])
                    for e in batch_report(direct)["results"]}
        served_out = {e["circuit"]: (e["digest"], e["cost"])
                      for e in result["result"]["results"]}
        assert served_out == expected

    def test_serial_service_stats_equal_cold_runner(self, tmp_path):
        # max_workers=1: the service maps in-process on a cold cache,
        # so even the cache counters must equal a direct serial run's
        service = MappingService(max_workers=1)
        handle = start_in_thread(service)
        try:
            client = ServiceClient(port=handle.port)
            result = _submit_and_wait(client, {"circuits": SMALL})
        finally:
            handle.stop()
        direct = batch_report(BatchRunner(max_workers=1).run(
            BatchRunner.sweep_tasks(circuits=SMALL)))
        for got, want in zip(result["result"]["results"],
                             direct["results"]):
            assert got["digest"] == want["digest"]
            assert got["cost"] == want["cost"]
            got_stats, want_stats = dict(got["stats"]), dict(want["stats"])
            for timing in ("node_time_s", "max_node_time_s",
                           "combine_time_s"):
                got_stats.pop(timing), want_stats.pop(timing)
            assert got_stats == want_stats


class TestWarmth:
    def test_second_submission_reuses_pool_and_cache(self, served):
        client, service = served
        first = _submit_and_wait(client, {"circuits": SMALL})["result"]
        second = _submit_and_wait(client, {"circuits": SMALL})["result"]
        assert second["cache"]["pool"]["pools_built"] == \
            first["cache"]["pool"]["pools_built"]
        assert second["cache"]["pool"]["runs"] == \
            first["cache"]["pool"]["runs"] + 1
        assert sum(e["stats"]["cache_hits"]
                   for e in second["results"]) > 0
        for a, b in zip(first["results"], second["results"]):
            assert a["digest"] == b["digest"]
        assert service.pool.pools_built == 1

    def test_fresh_memory_tier_hits_persistent_store(self, tmp_path):
        db = str(tmp_path / "cones.sqlite")
        for _round in range(2):
            service = MappingService(max_workers=1, store_path=db)
            handle = start_in_thread(service)
            try:
                client = ServiceClient(port=handle.port)
                result = _submit_and_wait(client, {"circuits": ["mux"]})
            finally:
                handle.stop()
        tree = result["result"]["cache"]["tree_cache"]
        assert tree["store"]["session"]["hits"] > 0
        assert tree["stores"] == 0  # nothing new computed second time


class TestEvents:
    def test_event_stream_replays_and_follows(self, served):
        client, _service = served
        job = client.submit({"circuits": SMALL})
        events = []
        for event in client.events(job["id"]):
            events.append(event)
        kinds = [e["kind"] for e in events]
        assert kinds.count("task_done") == len(SMALL)
        states = [e["state"] for e in events if e["kind"] == "state"]
        assert states[0] == "queued" and states[-1] == "done"
        assert [e["seq"] for e in events] == list(range(len(events)))
        # ?since= resumes mid-stream
        tail = list(client.events(job["id"], since=events[1]["seq"] + 1))
        assert [e["seq"] for e in tail] == [e["seq"] for e in events[2:]]

    def test_task_done_events_carry_digests(self, served):
        client, _service = served
        job = client.submit({"circuits": ["mux"]})
        result = client.wait(job["id"])
        done = [e for e in client.events(job["id"])
                if e["kind"] == "task_done"]
        assert done[0]["ok"] is True
        assert done[0]["digest"] == \
            result["result"]["results"][0]["digest"]


class TestErrorContract:
    def test_invalid_spec_is_typed_400(self, served):
        client, _service = served
        with pytest.raises(ServiceError) as excinfo:
            client.submit({"circuits": ["mux"], "flows": ["bogus"]})
        assert excinfo.value.status == 400
        error = excinfo.value.payload["error"]
        assert error["type"] == "JobSpecError"
        assert error["kind"] == "repro"
        assert error["retryable"] is False
        assert "bogus" in error["message"]

    def test_malformed_json_is_400(self, served):
        client, _service = served
        import http.client

        conn = http.client.HTTPConnection(client.host, client.port,
                                          timeout=30)
        try:
            conn.request("POST", "/v1/jobs", body=b"{nope",
                         headers={"Content-Type": "application/json"})
            response = conn.getresponse()
            assert response.status == 400
            assert json.loads(response.read())["error"]["type"] == \
                "JobSpecError"
        finally:
            conn.close()

    def test_unknown_job_is_404(self, served):
        client, _service = served
        for probe in (lambda: client.status("nope"),
                      lambda: client.result("nope"),
                      lambda: client.cancel("nope")):
            with pytest.raises(ServiceError) as excinfo:
                probe()
            assert excinfo.value.status == 404

    def test_unroutable_path_is_404(self, served):
        client, _service = served
        with pytest.raises(ServiceError) as excinfo:
            client._request("GET", "/v2/nope")
        assert excinfo.value.status == 404

    def test_failed_task_fails_the_job_with_taxonomy(self, served):
        client, _service = served
        result = _submit_and_wait(client, {"circuits": ["no-such-circuit"]})
        assert result["state"] == "failed"
        assert result["error"]["kind"] == "repro"
        assert "no-such-circuit" in result["error"]["message"]


class TestFairnessAndOps:
    def test_two_tenants_both_complete_interleaved(self, served):
        client, service = served
        # occupy the scheduler, then queue alice twice and bob once
        blocker = client.submit({"circuits": SMALL, "tenant": "warmup"})
        a1 = client.submit({"circuits": ["mux"], "tenant": "alice"})
        a2 = client.submit({"circuits": ["mux"], "tenant": "alice"})
        b1 = client.submit({"circuits": ["mux"], "tenant": "bob"})
        for job in (blocker, a1, a2, b1):
            assert client.wait(job["id"])["state"] == "done"
        finished = {job_id: service.jobs[job_id].finished_s
                    for job_id in (a1["id"], a2["id"], b1["id"])}
        # round-robin: bob's only job beats alice's second
        assert finished[b1["id"]] < finished[a2["id"]]

    def test_cancel_queued_job(self, served):
        client, _service = served
        blocker = client.submit({"circuits": SMALL})
        victim = client.submit({"circuits": ["mux"]})
        cancelled = client.cancel(victim["id"])
        assert cancelled["state"] == "cancelled"
        assert client.wait(blocker["id"])["state"] == "done"
        assert client.status(victim["id"])["state"] == "cancelled"

    def test_health_and_metrics_endpoints(self, served):
        client, _service = served
        _submit_and_wait(client, {"circuits": ["mux"]})
        health = client.health()
        assert health["status"] == "ok"
        assert health["warmth"]["pool"]["width"] == 2
        text = client.metrics_text()
        assert "repro_mapping_tuples_created_total" in text
        assert "repro_mapping_cache_evictions_total" in text
        assert "repro_service_jobs_done_total" in text
        assert "repro_service_jobs_queued" in text

    def test_job_listing(self, served):
        client, _service = served
        submitted = client.submit({"circuits": ["mux"]})
        client.wait(submitted["id"])
        listed = {job["id"] for job in client.jobs()}
        assert submitted["id"] in listed
