"""Tests for the command-line interface."""

import pytest

from repro.cli import main


def test_circuits_listing(capsys):
    assert main(["circuits"]) == 0
    out = capsys.readouterr().out
    assert "cm150" in out
    assert "des" in out


def test_map_benchmark(capsys):
    assert main(["map", "mux", "-a", "soi"]) == 0
    out = capsys.readouterr().out
    assert "T_logic=" in out
    assert "algorithm: soi" in out


def test_map_all_algorithms_and_costs(capsys):
    for algorithm in ("domino", "rs", "soi"):
        for cost in ("area", "clock", "depth"):
            assert main(["map", "z4ml", "-a", algorithm, "-c", cost]) == 0
    assert "mapped:" in capsys.readouterr().out


def test_map_file_input(tmp_path, capsys):
    path = tmp_path / "tiny.bench"
    path.write_text("INPUT(a)\nINPUT(b)\nOUTPUT(f)\nf = NAND(a, b)\n")
    assert main(["map", str(path)]) == 0
    assert "tiny" in capsys.readouterr().out


def test_map_netlist_flag(capsys):
    assert main(["map", "mux", "--netlist"]) == 0
    assert ".subckt" in capsys.readouterr().out


def test_map_dot_flag(capsys):
    assert main(["map", "mux", "--dot"]) == 0
    assert "digraph" in capsys.readouterr().out


def test_map_kernel_flag(capsys):
    pytest.importorskip("numpy")
    assert main(["map", "mux", "--kernel", "soa"]) == 0
    out = capsys.readouterr().out
    assert "kernel:    soa (active: soa)" in out
    assert main(["map", "mux", "--kernel", "reference"]) == 0
    assert "(active: reference)" in capsys.readouterr().out


def test_batch_kernel_column(capsys):
    pytest.importorskip("numpy")
    assert main(["batch", "mux", "--serial", "--kernel", "soa"]) == 0
    out = capsys.readouterr().out
    assert "kernel" in out
    assert "soa" in out


def test_bench_kernel_selection(tmp_path, capsys):
    path = tmp_path / "bench.json"
    assert main(["bench", "mux", "-o", str(path),
                 "--kernels", "reference"]) == 0
    out = capsys.readouterr().out
    assert "bench: 4 tasks" in out
    # single-kernel sweeps have no cross-kernel pairs to compare
    assert "kernels:" not in out


def test_batch_sweep(capsys):
    assert main(["batch", "cm150", "mux", "-a", "domino", "-a", "soi",
                 "--serial"]) == 0
    out = capsys.readouterr().out
    assert "batch: 4 tasks" in out
    assert "T_total" in out
    assert "totals:" in out
    assert "wall:" in out


def test_batch_failure_exits_nonzero(capsys):
    assert main(["batch", "mux", "not-a-circuit", "-j", "1"]) == 1
    captured = capsys.readouterr()
    assert "FAILED" in captured.err
    assert "not-a-circuit" in captured.err
    assert "mux" in captured.out  # good task still reported


def test_tables_subset(capsys):
    assert main(["tables", "-t", "table1", "--circuits", "cm150", "mux"]) == 0
    out = capsys.readouterr().out
    assert "Table I" in out
    assert "average discharge reduction" in out


def test_pbe_clean_circuit(capsys):
    assert main(["pbe", "mux", "-a", "soi", "--cycles", "60"]) == 0
    assert "PBE-free" in capsys.readouterr().out


def test_map_profile_flag(capsys):
    assert main(["map", "mux", "--profile"]) == 0
    out = capsys.readouterr().out
    assert "profile:" in out
    assert "cumulative" in out
    assert "_combine_into" in out


def test_bench_writes_valid_payload(tmp_path, capsys):
    try:
        import numpy  # noqa: F401

        dual_kernel = True
    except ImportError:  # default sweep drops to the reference kernel
        dual_kernel = False
    path = tmp_path / "bench.json"
    assert main(["bench", "cm150", "mux", "-o", str(path)]) == 0
    out = capsys.readouterr().out
    assert f"bench: {16 if dual_kernel else 8} tasks" in out
    assert "aggregate:" in out
    if dual_kernel:
        assert "kernels:   digests IDENTICAL" in out
    assert path.exists()

    assert main(["bench", "--check", str(path)]) == 0
    assert "valid soidomino-bench/1 payload" in capsys.readouterr().out


def test_bench_baseline_speedup(tmp_path, capsys):
    base = tmp_path / "base.json"
    current = tmp_path / "current.json"
    assert main(["bench", "cm150", "-o", str(base)]) == 0
    assert main(["bench", "cm150", "-o", str(current),
                 "--baseline", str(base)]) == 0
    out = capsys.readouterr().out
    assert "baseline:" in out
    assert "speedup" in out

    from repro.pipeline.bench import load_payload

    payload = load_payload(str(current))
    assert payload["baseline"]["speedup"] is not None


def test_bench_check_rejects_garbage(tmp_path, capsys):
    path = tmp_path / "junk.json"
    path.write_text("{}")
    assert main(["bench", "--check", str(path)]) == 1
    assert "invalid" in capsys.readouterr().err


def test_bench_check_unreadable_reports_cleanly(tmp_path, capsys):
    path = tmp_path / "not-json.json"
    path.write_text("this is not json")
    assert main(["bench", "--check", str(path)]) == 2
    assert "error: cannot read" in capsys.readouterr().err
    assert main(["bench", "--check", str(tmp_path / "missing.json")]) == 2
    assert "error: cannot read" in capsys.readouterr().err


def test_map_json_output(capsys):
    import json

    assert main(["map", "mux", "-a", "soi", "--json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["circuit"] == "mux"
    assert payload["flow"] == "soi"
    assert payload["cost_objective"] == "area"
    assert len(payload["digest"]) == 64
    assert payload["config"]["pbe_aware"] is True
    assert payload["stats"]["tuples_created"] > 0
    names = [p["name"] for p in payload["passes"]]
    assert names == ["decompose", "sweep", "unate", "dp-map", "discharge",
                     "analyze"]
    assert all(p["status"] == "ok" for p in payload["passes"])


def test_map_json_includes_netlist_when_asked(capsys):
    import json

    assert main(["map", "mux", "--json", "--netlist"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert ".subckt" in payload["netlist"]


def test_map_text_output_shows_pass_timings(capsys):
    assert main(["map", "mux", "-a", "soi"]) == 0
    out = capsys.readouterr().out
    assert "passes:" in out
    assert "dp-map=" in out


def test_map_checkpoint_resume(tmp_path, capsys):
    import json

    ckpt = tmp_path / "ckpt"
    assert main(["map", "mux", "-a", "soi", "--checkpoint", str(ckpt),
                 "--json"]) == 0
    first = json.loads(capsys.readouterr().out)
    assert (ckpt / "manifest.json").is_file()
    assert main(["map", "mux", "-a", "soi", "--checkpoint", str(ckpt),
                 "--json"]) == 0
    second = json.loads(capsys.readouterr().out)
    assert second["digest"] == first["digest"]
    assert all(p["status"] == "resumed" for p in second["passes"])


def test_passes_listing(capsys):
    assert main(["passes"]) == 0
    out = capsys.readouterr().out
    assert "registered passes:" in out
    for name in ("decompose", "sweep", "unate", "dp-map", "rearrange",
                 "discharge", "analyze"):
        assert name in out
    assert "flow pass lists:" in out


def test_passes_json(capsys):
    import json

    assert main(["passes", "--json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    names = [p["name"] for p in payload["passes"]]
    assert "dp-map" in names
    assert payload["flows"]["rs"] == ["decompose", "sweep", "unate",
                                      "dp-map", "rearrange", "discharge",
                                      "analyze"]


def test_error_reported_cleanly(capsys):
    assert main(["map", "not-a-circuit"]) == 2
    assert "error:" in capsys.readouterr().err


def test_unknown_subcommand_rejected():
    with pytest.raises(SystemExit):
        main(["frobnicate"])
