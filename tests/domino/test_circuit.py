"""Tests for DominoCircuit wiring and accounting."""

import pytest

from repro.domino import DominoCircuit, DominoGate, Leaf, parallel, series
from repro.errors import StructureError


def L(name, primary=True, gate=None):
    return Leaf(name, is_primary=primary, source_gate=gate)


def build_two_level() -> DominoCircuit:
    circuit = DominoCircuit("demo")
    for name in "abcd":
        circuit.add_input(name)
    g1 = DominoGate.from_structure("g1", series(L("a"), L("b")))
    g2 = DominoGate.from_structure(
        "g2", parallel(L("g1", primary=False, gate=1), L("c")))
    g3 = DominoGate.from_structure(
        "g3", series(L("g2", primary=False, gate=2), L("d")))
    for g in (g1, g2, g3):
        circuit.add_gate(g)
    circuit.connect_output("out", "g3")
    return circuit


def test_cost_aggregation():
    circuit = build_two_level()
    cost = circuit.cost()
    gates = circuit.gates
    assert cost.t_logic == sum(g.t_logic for g in gates)
    assert cost.t_disch == sum(g.t_disch for g in gates)
    assert cost.t_total == cost.t_logic + cost.t_disch
    assert cost.num_gates == 3
    assert cost.as_dict()["T_total"] == cost.t_total


def test_levels_recomputed_from_wiring():
    circuit = build_two_level()
    circuit.recompute_levels()
    assert circuit.gate("g1").level == 1
    assert circuit.gate("g2").level == 2
    assert circuit.gate("g3").level == 3
    assert circuit.levels() == 3


def test_validate_passes():
    circuit = build_two_level()
    circuit.recompute_levels()
    circuit.validate(w_max=5, h_max=8)


def test_duplicate_gate_name_rejected():
    circuit = DominoCircuit()
    circuit.add_input("a")
    circuit.add_gate(DominoGate.from_structure("g", series(L("a"), L("a"))))
    with pytest.raises(StructureError, match="duplicate"):
        circuit.add_gate(DominoGate.from_structure("g", series(L("a"), L("a"))))


def test_unknown_driver_rejected():
    circuit = DominoCircuit()
    circuit.add_input("a")
    circuit.add_gate(DominoGate.from_structure(
        "g", series(L("ghost", primary=False, gate=9), L("a"))))
    circuit.connect_output("o", "g")
    with pytest.raises(StructureError, match="unknown"):
        circuit.validate()


def test_unknown_primary_input_rejected():
    circuit = DominoCircuit()
    circuit.add_gate(DominoGate.from_structure("g", series(L("x"), L("y"))))
    circuit.connect_output("o", "g")
    with pytest.raises(StructureError, match="unknown primary input"):
        circuit.validate()


def test_cycle_detected():
    circuit = DominoCircuit()
    circuit.add_gate(DominoGate.from_structure(
        "g1", series(L("g2", primary=False, gate=2), L("g2", primary=False,
                                                       gate=2))))
    circuit.add_gate(DominoGate.from_structure(
        "g2", series(L("g1", primary=False, gate=1), L("g1", primary=False,
                                                       gate=1))))
    with pytest.raises(StructureError, match="cycle"):
        circuit.validate()


def test_const_outputs_tracked():
    circuit = DominoCircuit()
    circuit.set_const_output("always1", True)
    assert circuit.const_outputs == {"always1": True}
