"""Tests for the Elmore delay estimator."""


from repro.domino import (
    DominoGate,
    Leaf,
    circuit_timing,
    gate_delay,
    parallel,
    rearrange,
    series,
)
from repro.mapping import domino_map, soi_domino_map
from repro.network import network_from_expression


def L(name, primary=True, gate=None):
    return Leaf(name, is_primary=primary, source_gate=gate)


class TestGateDelay:
    def test_taller_stack_is_slower(self):
        short = DominoGate.from_structure("s", series(L("a"), L("b")))
        tall = DominoGate.from_structure(
            "t", series(L("a"), L("b"), L("c"), L("d")))
        assert gate_delay(tall).total > gate_delay(short).total

    def test_parallel_width_is_free_in_depth_but_loads_node(self):
        narrow = DominoGate.from_structure("n", parallel(L("a"), L("b")))
        wide = DominoGate.from_structure(
            "w", parallel(L("a"), L("b"), L("c"), L("d")))
        # same stack height, but more diffusion on the dynamic node
        assert gate_delay(wide).dynamic_load > gate_delay(narrow).dynamic_load
        assert gate_delay(wide).total >= gate_delay(narrow).total

    def test_discharge_transistors_load_their_junctions(self):
        structure = series(parallel(series(L("a"), L("b")), L("c")), L("d"))
        protected = DominoGate.from_structure("p", structure)
        assert protected.t_disch > 0
        stripped = DominoGate(name="s", structure=structure,
                              footed=protected.footed,
                              discharge_points=())
        assert gate_delay(protected).total > gate_delay(stripped).total

    def test_footless_gate_is_faster(self):
        footed = DominoGate.from_structure("f", series(L("a"), L("b")))
        footless = DominoGate.from_structure(
            "g", series(L("x", primary=False, gate=1),
                        L("y", primary=False, gate=2)))
        assert footed.footed and not footless.footed
        assert gate_delay(footless).total < gate_delay(footed).total

    def test_rearrangement_changes_delay_only_via_discharges(self):
        """Reordering a series stack keeps the path topology; with equal
        discharge counts the estimate is identical (the paper's first-
        order assumption), and removing discharges can only speed it up."""
        structure = series(parallel(L("a"), L("b")), L("c"))
        gate = DominoGate.from_structure("g", structure)
        moved = DominoGate.from_structure("m", rearrange(structure))
        assert moved.t_disch <= gate.t_disch
        assert gate_delay(moved).total <= gate_delay(gate).total


class TestCircuitTiming:
    def test_critical_path_accumulates_levels(self):
        net = network_from_expression(
            "((a * b + c) * d + e) * f + g", name="deep")
        result = soi_domino_map(net, w_max=2, h_max=2)
        timing = circuit_timing(result.circuit)
        assert timing.critical_path > 0
        assert timing.critical_gate in {g.name for g in result.circuit.gates}
        # arrival times are monotone along the wiring
        for gate in result.circuit.gates:
            for leaf in gate.structure.leaves():
                if not leaf.is_primary:
                    assert (timing.arrival[leaf.signal]
                            < timing.arrival[gate.name])

    def test_fewer_discharges_never_slower(self):
        net = network_from_expression("(a * b + c) * d + (e * f + g) * h")
        bulk = domino_map(net)
        soi = soi_domino_map(net)
        assert soi.cost.t_disch <= bulk.cost.t_disch
        assert (circuit_timing(soi.circuit).critical_path
                <= circuit_timing(bulk.circuit).critical_path)

    def test_empty_circuit(self):
        from repro.domino import DominoCircuit

        timing = circuit_timing(DominoCircuit("empty"))
        assert timing.critical_path == 0.0
