"""Tests for the RS series-stack rearrangement pass."""

import itertools
import random

from repro.domino import (
    Leaf,
    analyse,
    count_discharge_transistors,
    discharge_saving,
    parallel,
    rearrange,
    series,
)


def L(name):
    return Leaf(name)


def _leaf_multiset(structure):
    return sorted(leaf.signal for leaf in structure.leaves())


def random_structure(rng: random.Random, names, depth=3):
    if depth == 0 or rng.random() < 0.35:
        return L(next(names))
    op = series if rng.random() < 0.5 else parallel
    children = [random_structure(rng, names, depth - 1)
                for _ in range(rng.randint(2, 3))]
    return op(*children)


def test_figure5_choice():
    stack = parallel(series(L("A"), L("B")), L("C"))
    bad = series(stack, L("E"))
    fixed = rearrange(bad)
    # the parallel stack must sink to the bottom
    assert fixed.ends_in_parallel
    assert count_discharge_transistors(fixed, grounded=True) == 0
    assert count_discharge_transistors(bad, grounded=True) == 2


def test_rearrange_never_increases_discharges():
    rng = random.Random(42)
    counter = itertools.count()
    names = (f"s{i}" for i in counter)
    for _ in range(60):
        structure = random_structure(rng, names)
        before, after = discharge_saving(structure, grounded=True)
        assert after <= before


def test_rearrange_preserves_leaves():
    rng = random.Random(7)
    counter = itertools.count()
    names = (f"s{i}" for i in counter)
    for _ in range(40):
        structure = random_structure(rng, names)
        assert _leaf_multiset(structure) == _leaf_multiset(rearrange(structure))


def test_rearrange_preserves_dimensions():
    rng = random.Random(11)
    counter = itertools.count()
    names = (f"s{i}" for i in counter)
    for _ in range(40):
        structure = random_structure(rng, names)
        out = rearrange(structure)
        assert out.width == structure.width
        assert out.height == structure.height
        assert out.num_transistors == structure.num_transistors


def test_rearrange_idempotent():
    rng = random.Random(13)
    counter = itertools.count()
    names = (f"s{i}" for i in counter)
    for _ in range(30):
        structure = random_structure(rng, names)
        once = rearrange(structure)
        assert rearrange(once) == once


def test_rearrange_leaf_noop():
    leaf = L("a")
    assert rearrange(leaf) is leaf


def test_recursive_rearrangement_reaches_inner_stacks():
    inner_bad = series(parallel(L("a"), L("b")), L("c"))  # stack on top
    structure = parallel(inner_bad, L("d"))
    fixed = rearrange(structure)
    # the inner stack sinks: its committed point becomes merely potential
    # (protected once the enclosing gate grounds the shared bottom)
    assert len(analyse(fixed).committed) == 0
    assert len(analyse(structure).committed) == 1
