"""Tests for parallel-stack elimination by replication (§III-C item 3)."""

import itertools
import random

from repro.domino import (
    Leaf,
    Parallel,
    Series,
    analyse,
    parallel,
    series,
    split_cost,
    split_parallel_stacks,
)
from repro.sim import evaluate_structure


def L(name):
    return Leaf(name)


def _no_nested_parallel(structure):
    """The split form is one parallel of pure series chains."""
    if isinstance(structure, Leaf):
        return True
    if isinstance(structure, Parallel):
        return all(isinstance(c, Leaf)
                   or (isinstance(c, Series)
                       and all(isinstance(x, Leaf) for x in c.children))
                   for c in structure.children)
    if isinstance(structure, Series):
        return all(isinstance(c, Leaf) for c in structure.children)
    return False


def _equivalent(a, b):
    signals = sorted({leaf.signal for leaf in a.leaves()})
    for bits in itertools.product([0, 1], repeat=len(signals)):
        values = dict(zip(signals, bits))
        if evaluate_structure(a, values, 1) != evaluate_structure(b, values, 1):
            return False
    return True


def test_paper_example():
    """(A + B + C) * D becomes A*D + B*D + C*D (D replicated thrice)."""
    structure = series(parallel(L("A"), L("B"), L("C")), L("D"))
    split = split_parallel_stacks(structure)
    assert split.num_transistors == 6
    assert split.width == 3
    assert _no_nested_parallel(split)
    assert _equivalent(structure, split)


def test_split_has_no_committed_points():
    structure = series(parallel(series(L("a"), L("b")), L("c")),
                       parallel(L("d"), L("e")), L("f"))
    split = split_parallel_stacks(structure)
    assert not analyse(split).committed
    assert _equivalent(structure, split)


def test_random_structures_preserved():
    rng = random.Random(3)
    counter = itertools.count()

    def build(depth):
        if depth == 0 or rng.random() < 0.4:
            return L(f"s{next(counter) % 6}")
        op = series if rng.random() < 0.5 else parallel
        return op(*[build(depth - 1) for _ in range(rng.randint(2, 3))])

    for _ in range(25):
        structure = build(3)
        split = split_parallel_stacks(structure)
        assert _no_nested_parallel(split)
        assert _equivalent(structure, split)


def test_cost_tradeoff_fields():
    structure = series(parallel(L("A"), L("B"), L("C")), L("D"))
    cost = split_cost(structure)
    assert cost.original_transistors == 4
    assert cost.original_discharges == 1
    assert cost.split_transistors == 6
    assert cost.replication_overhead == 2
    # two extra copies of D cost more than the single discharge transistor
    assert not cost.replication_wins


def test_replication_wins_when_stack_is_cheap_to_flatten():
    # two stacked parallels of leaves: 2 committed discharges, but
    # flattening (a+b)(c+d) -> ac+ad+bc+bd doubles the transistors: still
    # a loss.  A case where replication wins: deep series below a narrow
    # stack, e.g. (a+b) * c * d * e -> ac de + bcde: overhead 3, vs ... 0
    # discharges (stack reorderable).  The interesting regime is a stack
    # locked on top: (a+b)*(c+d) has 1 committed point.
    structure = series(parallel(L("a"), L("b")), parallel(L("c"), L("d")))
    cost = split_cost(structure)
    assert cost.original_discharges == 1
    assert cost.replication_overhead == 4
    assert not cost.replication_wins


def test_leaf_passthrough():
    leaf = L("a")
    assert split_parallel_stacks(leaf) is leaf
