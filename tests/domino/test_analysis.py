"""Tests for the static PBE discharge-point analysis.

The figure-based cases lock in the paper's worked examples (Figures 4
and 5); the remaining tests cover the recursive classification rules.
"""

from repro.domino import (
    Leaf,
    analyse,
    count_discharge_transistors,
    p_dis,
    par_b,
    parallel,
    series,
)


def L(name: str) -> Leaf:
    return Leaf(name)


def fig4a():
    """(A*B) + C — one potential discharge point at the A-B junction."""
    return parallel(series(L("A"), L("B")), L("C"))


class TestPaperFigures:
    def test_figure_4a(self):
        analysis = analyse(fig4a())
        assert len(analysis.committed) == 0
        assert analysis.p_dis == 1
        assert analysis.ends_in_parallel

    def test_figure_4b(self):
        """(D*E + F) stacked on (A*B + C): two committed, one potential."""
        top = parallel(series(L("D"), L("E")), L("F"))
        structure = series(top, fig4a())
        analysis = analyse(structure)
        assert len(analysis.committed) == 2
        assert analysis.p_dis == 1
        assert analysis.ends_in_parallel

    def test_figure_5_left(self):
        """(A*B + C) over E: two discharge transistors committed."""
        analysis = analyse(series(fig4a(), L("E")))
        assert len(analysis.committed) == 2
        assert analysis.p_dis == 0
        assert not analysis.ends_in_parallel

    def test_figure_5_right(self):
        """E over (A*B + C): no commits, two potential points."""
        analysis = analyse(series(L("E"), fig4a()))
        assert len(analysis.committed) == 0
        assert analysis.p_dis == 2
        assert analysis.ends_in_parallel

    def test_figure_2a_orderings(self):
        """(A+B+C)*D: stack on top needs a discharge, stack at bottom none."""
        stack = parallel(L("A"), L("B"), L("C"))
        bulk = series(stack, L("D"))
        soi = series(L("D"), stack)
        assert count_discharge_transistors(bulk, grounded=True) == 1
        assert count_discharge_transistors(soi, grounded=True) == 0


class TestRules:
    def test_leaf_has_no_points(self):
        analysis = analyse(L("a"))
        assert analysis.committed == ()
        assert analysis.potential == ()

    def test_series_junctions_are_potential(self):
        analysis = analyse(series(L("a"), L("b"), L("c")))
        assert len(analysis.committed) == 0
        assert analysis.p_dis == 2  # two junctions

    def test_parallel_of_leaves_has_no_points(self):
        analysis = analyse(parallel(L("a"), L("b"), L("c")))
        assert analysis.p_dis == 0
        assert analysis.committed == ()

    def test_grounding_protects_potential_points(self):
        structure = series(L("E"), fig4a())
        assert count_discharge_transistors(structure, grounded=True) == 0
        assert count_discharge_transistors(structure, grounded=False) == 2

    def test_required_set_monotone_in_grounding(self):
        structures = [
            fig4a(),
            series(fig4a(), fig4a()),
            series(parallel(series(L("a"), L("b")), L("c")),
                   parallel(L("d"), series(L("e"), L("f")))),
        ]
        for s in structures:
            analysis = analyse(s)
            grounded = set(analysis.required(True))
            floating = set(analysis.required(False))
            assert grounded <= floating

    def test_stacked_parallels_commit_upper(self):
        # Two parallel stacks in series: only the bottom one can be
        # protected by ground; the junction below the upper one commits.
        upper = parallel(L("a"), L("b"))
        lower = parallel(L("c"), L("d"))
        analysis = analyse(series(upper, lower))
        assert len(analysis.committed) == 1
        assert analysis.p_dis == 0

    def test_deep_nesting_counts(self):
        # ((a*b)+c) * ((d*e)+f) * g : top two OR stacks commit everything
        structure = series(fig4a(),
                           parallel(series(L("d"), L("e")), L("f")),
                           L("g"))
        analysis = analyse(structure)
        # fig4a on top: 1 potential + its stack bottom junction = 2
        # second OR: 1 potential + its stack bottom junction = 2
        assert len(analysis.committed) == 4
        assert analysis.p_dis == 0

    def test_helper_functions(self):
        structure = series(L("E"), fig4a())
        assert p_dis(structure) == 2
        assert par_b(structure)
        assert not par_b(series(fig4a(), L("E")))
