"""Tests for DominoGate accounting."""

import pytest

from repro.domino import DominoGate, Leaf, parallel, series
from repro.errors import StructureError


def L(name, primary=True, gate=None):
    return Leaf(name, is_primary=primary, source_gate=gate)


def test_footed_when_primary_inputs_present():
    gate = DominoGate.from_structure("g", series(L("a"), L("b")))
    assert gate.footed
    assert gate.t_overhead == 5


def test_footless_when_all_gate_driven():
    structure = series(L("g1", primary=False, gate=1),
                       L("g2", primary=False, gate=2))
    gate = DominoGate.from_structure("g", structure)
    assert not gate.footed
    assert gate.t_overhead == 4


def test_accounting_matches_paper_conventions():
    # (A+B+C)*D bulk form: 4 pulldown + 5 overhead + 1 discharge
    structure = series(parallel(L("A"), L("B"), L("C")), L("D"))
    gate = DominoGate.from_structure("g", structure)
    assert gate.t_pulldown == 4
    assert gate.t_logic == 9
    assert gate.t_disch == 1
    assert gate.t_total == 10
    assert gate.t_clock == 3  # p-clock + n-clock + 1 discharge


def test_pessimistic_grounding_adds_potential_points():
    structure = series(L("D"), parallel(series(L("A"), L("B")), L("C")))
    optimistic = DominoGate.from_structure("g", structure, grounded=True)
    pessimistic = DominoGate.from_structure("g", structure, grounded=False)
    assert optimistic.t_disch == 0
    assert pessimistic.t_disch == 2


def test_width_height_exposed():
    gate = DominoGate.from_structure(
        "g", series(parallel(L("a"), L("b")), L("c")))
    assert gate.width == 2
    assert gate.height == 2


def test_validate_passes_for_consistent_gate():
    gate = DominoGate.from_structure(
        "g", series(parallel(series(L("a"), L("b")), L("c")), L("d")))
    gate.validate(w_max=5, h_max=8)


def test_validate_rejects_wrong_footedness():
    gate = DominoGate.from_structure("g", series(L("a"), L("b")))
    gate.footed = False
    with pytest.raises(StructureError, match="footed"):
        gate.validate()


def test_validate_rejects_missing_committed_discharge():
    structure = series(parallel(series(L("a"), L("b")), L("c")), L("d"))
    gate = DominoGate.from_structure("g", structure)
    assert gate.t_disch == 2
    gate.discharge_points = ()
    with pytest.raises(StructureError, match="no discharge transistor"):
        gate.validate()


def test_validate_rejects_bogus_discharge_point():
    gate = DominoGate.from_structure("g", series(L("a"), L("b")))
    gate.discharge_points = (((9, 9), 4),)
    with pytest.raises(StructureError, match="not a junction"):
        gate.validate()


def test_validate_rejects_limit_violation():
    gate = DominoGate.from_structure(
        "g", parallel(*[L(f"x{i}") for i in range(6)]))
    with pytest.raises(StructureError, match="width"):
        gate.validate(w_max=5)
