"""Tests for pulldown structure trees."""

import pytest

from repro.domino import (
    Leaf,
    Series,
    check_limits,
    gate_leaf_refs,
    has_primary_leaf,
    parallel,
    series,
)
from repro.errors import StructureError


def L(name: str, primary: bool = True, gate=None) -> Leaf:
    return Leaf(name, is_primary=primary, source_gate=gate)


class TestMetrics:
    def test_leaf(self):
        leaf = L("a")
        assert leaf.width == 1
        assert leaf.height == 1
        assert leaf.num_transistors == 1
        assert not leaf.ends_in_parallel

    def test_series_dimensions(self):
        s = series(L("a"), L("b"), L("c"))
        assert s.width == 1
        assert s.height == 3
        assert s.num_transistors == 3
        assert not s.ends_in_parallel

    def test_parallel_dimensions(self):
        p = parallel(L("a"), L("b"), L("c"))
        assert p.width == 3
        assert p.height == 1
        assert p.ends_in_parallel

    def test_mixed_dimensions(self):
        # (A+B+C) * D, the paper's figure 2(a)
        s = series(parallel(L("A"), L("B"), L("C")), L("D"))
        assert s.width == 3
        assert s.height == 2
        assert s.num_transistors == 4
        assert not s.ends_in_parallel  # D at the bottom

    def test_par_b_set_by_bottom(self):
        s = series(L("D"), parallel(L("A"), L("B")))
        assert s.ends_in_parallel


class TestComposition:
    def test_nested_series_flattened(self):
        s = series(series(L("a"), L("b")), L("c"))
        assert isinstance(s, Series)
        assert len(s.children) == 3
        assert [str(c) for c in s.children] == ["a", "b", "c"]

    def test_nested_parallel_flattened(self):
        p = parallel(parallel(L("a"), L("b")), L("c"))
        assert len(p.children) == 3

    def test_flattening_preserves_top_bottom_order(self):
        s = series(L("top"), series(L("mid"), L("bot")))
        assert str(s.top) == "top"
        assert str(s.bottom) == "bot"

    def test_single_element_collapses(self):
        assert isinstance(series(L("a")), Leaf)
        assert isinstance(parallel(L("a")), Leaf)

    def test_empty_rejected(self):
        with pytest.raises(StructureError):
            series()
        with pytest.raises(StructureError):
            parallel()

    def test_structural_equality(self):
        a = series(L("a"), parallel(L("b"), L("c")))
        b = series(L("a"), parallel(L("b"), L("c")))
        assert a == b
        assert hash(a) == hash(b)
        assert a != series(parallel(L("b"), L("c")), L("a"))


class TestLeafQueries:
    def test_has_primary_leaf(self):
        assert has_primary_leaf(series(L("a"), L("g", primary=False, gate=3)))
        assert not has_primary_leaf(parallel(L("g1", primary=False, gate=1),
                                             L("g2", primary=False, gate=2)))

    def test_gate_leaf_refs(self):
        s = series(L("a"), parallel(L("g1", primary=False, gate=10),
                                    L("g2", primary=False, gate=11)))
        assert sorted(gate_leaf_refs(s)) == [10, 11]

    def test_leaves_in_order(self):
        s = series(L("a"), parallel(L("b"), L("c")), L("d"))
        assert [leaf.signal for leaf in s.leaves()] == ["a", "b", "c", "d"]


class TestLimits:
    def test_within_limits(self):
        check_limits(series(parallel(L("a"), L("b")), L("c")), w_max=5, h_max=8)

    def test_width_violation(self):
        wide = parallel(*[L(f"x{i}") for i in range(6)])
        with pytest.raises(StructureError, match="width"):
            check_limits(wide, w_max=5, h_max=8)

    def test_height_violation(self):
        tall = series(*[L(f"x{i}") for i in range(9)])
        with pytest.raises(StructureError, match="height"):
            check_limits(tall, w_max=5, h_max=8)
