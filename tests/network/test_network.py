"""Unit tests for the LogicNetwork DAG container."""

import pytest

from repro.errors import NetworkError
from repro.network import LogicNetwork, NodeType


@pytest.fixture
def simple() -> LogicNetwork:
    net = LogicNetwork("simple")
    a = net.add_pi("a")
    b = net.add_pi("b")
    g = net.add_and(a, b, name="g")
    net.add_po(g, "out")
    return net


class TestConstruction:
    def test_basic_counts(self, simple):
        assert len(simple) == 4
        assert len(simple.pis) == 2
        assert len(simple.pos) == 1

    def test_missing_fanin_rejected(self):
        net = LogicNetwork()
        with pytest.raises(NetworkError):
            net.add_and(0, 1)

    def test_po_cannot_be_fanin(self, simple):
        po = simple.pos[0]
        with pytest.raises(NetworkError):
            simple.add_inv(po)

    def test_ids_unique_and_increasing(self):
        net = LogicNetwork()
        ids = [net.add_pi(f"p{i}") for i in range(5)]
        assert ids == sorted(set(ids))


class TestTraversal:
    def test_topological_order(self, simple):
        order = simple.topological_order()
        pos = {uid: i for i, uid in enumerate(order)}
        for node in simple:
            for f in node.fanins:
                assert pos[f] < pos[node.uid]

    def test_fanouts(self, simple):
        a = simple.pis[0]
        gate = simple.node(simple.pos[0]).fanins[0]
        assert simple.fanouts(a) == (gate,)
        assert simple.fanout_count(gate) == 1

    def test_transitive_fanin(self, simple):
        po = simple.pos[0]
        cone = simple.transitive_fanin(po)
        assert cone == set(simple.node_ids)

    def test_depth(self, simple):
        assert simple.depth() == 1
        deeper = LogicNetwork()
        a = deeper.add_pi("a")
        x = a
        for _ in range(5):
            x = deeper.add_and(x, a)
        deeper.add_po(x, "o")
        assert deeper.depth() == 5


class TestEditing:
    def test_replace_fanin(self, simple):
        a, b = simple.pis
        gate = simple.node(simple.pos[0]).fanins[0]
        c = simple.add_pi("c")
        simple.replace_fanin(gate, a, c)
        assert simple.node(gate).fanins == (c, b)
        simple.validate()

    def test_replace_missing_fanin_raises(self, simple):
        gate = simple.node(simple.pos[0]).fanins[0]
        with pytest.raises(NetworkError):
            simple.replace_fanin(gate, 999, simple.pis[0])

    def test_remove_unused(self):
        net = LogicNetwork()
        a = net.add_pi("a")
        b = net.add_pi("b")
        used = net.add_and(a, b)
        net.add_or(a, b)  # dangling
        net.add_po(used, "o")
        removed = net.remove_unused()
        assert removed == 1
        net.validate()
        # PIs always retained
        assert len(net.pis) == 2

    def test_copy_is_independent(self, simple):
        dup = simple.copy()
        dup.add_pi("z")
        assert len(dup) == len(simple) + 1
        assert [n.uid for n in simple] == sorted(simple.node_ids)


class TestValidation:
    def test_validate_passes(self, simple):
        simple.validate()

    def test_mappable_detection(self, simple):
        assert simple.is_mappable()
        simple.add_inv(simple.pis[0])
        assert not simple.is_mappable()

    def test_mappable_allows_const_po(self):
        net = LogicNetwork()
        net.add_pi("a")
        c = net.add_const(True)
        net.add_po(c, "o")
        assert net.is_mappable()

    def test_const_feeding_gate_not_mappable(self):
        net = LogicNetwork()
        a = net.add_pi("a")
        c = net.add_const(True)
        net.add_po(net.add_and(a, c), "o")
        assert not net.is_mappable()

    def test_count_by_type(self, simple):
        assert simple.count(NodeType.AND) == 1
        assert simple.count(NodeType.PI) == 2
        assert simple.count(NodeType.OR) == 0
