"""Tests for the boolean-expression network builder."""

import pytest

from repro.errors import ParseError
from repro.network import network_from_expression, network_from_expressions
from repro.sim import evaluate_by_name, truth_table


class TestParsing:
    def test_simple_and_or(self):
        net = network_from_expression("a * b + c")
        assert len(net.pis) == 3
        assert len(net.pos) == 1

    def test_implicit_and_by_adjacency(self):
        explicit = network_from_expression("a * (b + c)")
        implicit = network_from_expression("a(b + c)")
        assert truth_table(explicit) == truth_table(implicit)

    def test_negation(self):
        net = network_from_expression("!a")
        out = evaluate_by_name(net, {"a": False})
        assert out["out"] is True

    def test_constants(self):
        net = network_from_expression("a * 1 + 0")
        table = truth_table(net)
        ident = truth_table(network_from_expression("a"))
        assert table == ident

    def test_shared_inputs_across_outputs(self):
        net = network_from_expressions({"x": "a + b", "y": "a * b"})
        assert len(net.pis) == 2
        assert len(net.pos) == 2

    def test_nested_parentheses(self):
        net = network_from_expression("((a + b) * (c + d)) + !(a * d)")
        assert len(net.pis) == 4
        net.validate()

    def test_unbalanced_parenthesis_rejected(self):
        with pytest.raises(ParseError):
            network_from_expression("(a + b")

    def test_trailing_garbage_rejected(self):
        with pytest.raises(ParseError):
            network_from_expression("a + b )")

    def test_bad_character_rejected(self):
        with pytest.raises(ParseError):
            network_from_expression("a & b")


class TestSemantics:
    @pytest.mark.parametrize("expr,assignment,expected", [
        ("(A + B + C) * D", dict(A=1, B=0, C=0, D=1), True),
        ("(A + B + C) * D", dict(A=1, B=0, C=0, D=0), False),
        ("(A + B + C) * D", dict(A=0, B=0, C=0, D=1), False),
        ("!a * !b", dict(a=0, b=0), True),
        ("!(a + b)", dict(a=0, b=0), True),
        ("!(a + b)", dict(a=1, b=0), False),
    ])
    def test_evaluation(self, expr, assignment, expected):
        net = network_from_expression(expr)
        values = {k: bool(v) for k, v in assignment.items()}
        assert evaluate_by_name(net, values)["out"] is expected

    def test_demorgan_equivalence(self):
        lhs = network_from_expression("!(a * b)")
        rhs = network_from_expression("!a + !b")
        assert truth_table(lhs) == truth_table(rhs)
