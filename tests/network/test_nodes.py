"""Unit tests for node types and LogicNode."""

import pytest

from repro.network.nodes import LogicNode, NodeType


class TestNodeType:
    def test_sources_have_no_fanins(self):
        assert NodeType.PI.is_source
        assert NodeType.CONST0.is_source
        assert NodeType.CONST1.is_source
        assert not NodeType.AND.is_source

    def test_gate_classification(self):
        for t in (NodeType.AND, NodeType.OR, NodeType.NAND, NodeType.NOR,
                  NodeType.XOR, NodeType.XNOR, NodeType.INV, NodeType.BUF):
            assert t.is_gate
        for t in (NodeType.PI, NodeType.PO, NodeType.CONST0):
            assert not t.is_gate

    def test_monotone_gates(self):
        assert NodeType.AND.is_monotone
        assert NodeType.OR.is_monotone
        assert not NodeType.NAND.is_monotone
        assert not NodeType.INV.is_monotone

    def test_demorgan_duals(self):
        assert NodeType.AND.dual is NodeType.OR
        assert NodeType.OR.dual is NodeType.AND
        assert NodeType.NAND.dual is NodeType.NOR
        assert NodeType.CONST0.dual is NodeType.CONST1

    def test_dual_undefined_for_xor(self):
        with pytest.raises(ValueError):
            NodeType.XOR.dual


class TestLogicNode:
    def test_fanin_count_checked(self):
        with pytest.raises(ValueError):
            LogicNode(0, NodeType.PI, (1,))
        with pytest.raises(ValueError):
            LogicNode(0, NodeType.INV, (1, 2))
        with pytest.raises(ValueError):
            LogicNode(0, NodeType.AND, ())

    def test_label_falls_back_to_uid(self):
        assert LogicNode(7, NodeType.PI).label == "n7"
        assert LogicNode(7, NodeType.PI, name="x").label == "x"

    @pytest.mark.parametrize("node_type,values,expected", [
        (NodeType.AND, (True, True), True),
        (NodeType.AND, (True, False), False),
        (NodeType.OR, (False, False), False),
        (NodeType.OR, (False, True), True),
        (NodeType.NAND, (True, True), False),
        (NodeType.NOR, (False, False), True),
        (NodeType.XOR, (True, False), True),
        (NodeType.XOR, (True, True), False),
        (NodeType.XNOR, (True, True), True),
        (NodeType.INV, (True,), False),
        (NodeType.BUF, (False,), False),
    ])
    def test_evaluate(self, node_type, values, expected):
        node = LogicNode(0, node_type, tuple(range(len(values))))
        assert node.evaluate(list(values)) is expected

    def test_evaluate_wide_gates(self):
        and4 = LogicNode(0, NodeType.AND, (1, 2, 3, 4))
        assert and4.evaluate([True] * 4)
        assert not and4.evaluate([True, True, False, True])
        xor3 = LogicNode(0, NodeType.XOR, (1, 2, 3))
        assert xor3.evaluate([True, True, True])
        assert not xor3.evaluate([True, True, False])
