"""Tests for network statistics."""

from repro.network import (
    fanout_histogram,
    level_map,
    network_from_expression,
    network_stats,
)


def test_basic_stats():
    net = network_from_expression("(a + b) * !c", name="t")
    stats = network_stats(net)
    assert stats.name == "t"
    assert stats.num_pis == 3
    assert stats.num_pos == 1
    assert stats.num_and == 1
    assert stats.num_or == 1
    assert stats.num_inv == 1
    assert stats.depth == 2
    assert "t:" in str(stats)


def test_as_dict_roundtrip():
    net = network_from_expression("a * b")
    d = network_stats(net).as_dict()
    assert d["pis"] == 2
    assert d["gates"] == 1


def test_fanout_histogram():
    net = network_from_expression("a * a + a")
    hist = fanout_histogram(net)
    # 'a' has fanout 3 (used thrice), gates have fanout 1 each
    assert hist[3] == 1
    assert hist[1] == 2


def test_level_map_monotone():
    net = network_from_expression("(a + b) * (c + d) * e")
    levels = level_map(net)
    for node in net:
        for fanin in node.fanins:
            assert levels[fanin] <= levels[node.uid]
    assert max(levels.values()) == net.depth()
