"""Property-based tests (hypothesis) over the core pipeline.

Random boolean expressions drive the whole flow (decompose -> sweep ->
unate -> map -> transistor circuit) and random structure trees drive the
PBE analysis; the invariants checked here are the ones the paper's
optimality argument rests on.
"""

from __future__ import annotations

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.domino import Leaf, analyse, parallel, rearrange, series
from repro.mapping import (
    CostModel,
    MapperConfig,
    MappingEngine,
    domino_map,
    prepare_network,
    rs_map,
    soi_domino_map,
)
from repro.network import network_from_expression
from repro.sim import check_circuit_against_network
from repro.synth import check_unate_equivalent

# --------------------------------------------------------------------------
# expression strategy
# --------------------------------------------------------------------------
_VARS = list("abcdef")


def _exprs(depth: int):
    if depth == 0:
        return st.sampled_from(_VARS)
    sub = _exprs(depth - 1)
    return st.one_of(
        st.sampled_from(_VARS),
        st.tuples(sub, sub).map(lambda t: f"({t[0]} * {t[1]})"),
        st.tuples(sub, sub).map(lambda t: f"({t[0]} + {t[1]})"),
        sub.map(lambda s: f"!({s})"),
    )


EXPRESSIONS = _exprs(4)


@settings(max_examples=40, deadline=None)
@given(EXPRESSIONS)
def test_unate_conversion_preserves_function(expr):
    net = network_from_expression(expr)
    unate, _ = prepare_network(net)
    assert unate.is_mappable()
    assert check_unate_equivalent(net, unate, vectors=128) is None


@settings(max_examples=25, deadline=None)
@given(EXPRESSIONS)
def test_all_three_flows_preserve_function(expr):
    net = network_from_expression(expr)
    for flow in (domino_map, rs_map, soi_domino_map):
        circuit = flow(net).circuit
        assert check_circuit_against_network(circuit, net,
                                             vectors=128) is None


@settings(max_examples=25, deadline=None)
@given(EXPRESSIONS)
def test_soi_discharge_never_exceeds_baseline(expr):
    net = network_from_expression(expr)
    base = domino_map(net).cost
    soi = soi_domino_map(net).cost
    assert soi.t_disch <= base.t_disch
    assert soi.t_total <= base.t_total


@settings(max_examples=25, deadline=None)
@given(EXPRESSIONS, st.integers(min_value=2, max_value=4),
       st.integers(min_value=2, max_value=6))
def test_limits_always_respected(expr, w_max, h_max):
    net = network_from_expression(expr)
    unate, _ = prepare_network(net)
    engine = MappingEngine(unate, CostModel(),
                           MapperConfig(w_max=w_max, h_max=h_max))
    result = engine.run()
    for gate in result.circuit.gates:
        assert gate.width <= w_max
        assert gate.height <= h_max


# --------------------------------------------------------------------------
# structure strategy
# --------------------------------------------------------------------------
_sigs = st.integers(min_value=0, max_value=40).map(lambda i: Leaf(f"s{i}"))

STRUCTURES = st.recursive(
    _sigs,
    lambda children: st.one_of(
        st.lists(children, min_size=2, max_size=3).map(lambda c: series(*c)),
        st.lists(children, min_size=2, max_size=3).map(lambda c: parallel(*c)),
    ),
    max_leaves=12,
)


@settings(max_examples=120, deadline=None)
@given(STRUCTURES)
def test_analysis_point_sets_disjoint(structure):
    analysis = analyse(structure)
    assert not set(analysis.committed) & set(analysis.potential)


@settings(max_examples=120, deadline=None)
@given(STRUCTURES)
def test_analysis_points_bounded_by_junctions(structure):
    analysis = analyse(structure)
    # a structure with n transistors has at most n-1 junction points
    assert (len(analysis.committed) + len(analysis.potential)
            <= max(0, structure.num_transistors - 1))


@settings(max_examples=120, deadline=None)
@given(STRUCTURES)
def test_rearrange_is_improving_and_stable(structure):
    out = rearrange(structure)
    assert out.num_transistors == structure.num_transistors
    assert out.width == structure.width
    assert out.height == structure.height
    before = len(analyse(structure).required(True))
    after = len(analyse(out).required(True))
    assert after <= before
    assert rearrange(out) == out


def _tail_potentials(structure) -> int:
    """Potential points inside the trailing parallel stack of ``structure``
    (what the mapper tracks as ``p_tail``)."""
    from repro.domino.structure import Parallel, Series

    analysis = analyse(structure)
    if isinstance(structure, Parallel):
        return analysis.p_dis
    if isinstance(structure, Series) and structure.ends_in_parallel:
        bottom_index = len(structure.children) - 1
        return sum(1 for path, _ in analysis.potential
                   if path[:1] == (bottom_index,))
    return 0


@settings(max_examples=120, deadline=None)
@given(STRUCTURES)
def test_combine_and_arithmetic_matches_structural_analysis(structure):
    """The mapper's incremental AND bookkeeping (paper section V, with the
    flattened-spine refinement documented in DESIGN.md) must agree with
    the from-scratch structural analysis when `structure` is stacked on
    top of a fresh transistor: a parallel-ending top commits its tail
    points plus the new junction; a series-ending top commits nothing and
    gains one spine junction."""
    top = analyse(structure)
    tail = _tail_potentials(structure)
    stacked = series(structure, Leaf("bottom"))
    combined = analyse(stacked)
    if structure.ends_in_parallel:
        expected_committed = len(top.committed) + tail + 1
        expected_potential = (top.p_dis - tail)
    else:
        expected_committed = len(top.committed)
        expected_potential = top.p_dis + 1
    assert len(combined.committed) == expected_committed
    assert combined.p_dis == expected_potential
