"""Tests for the random network generator and the registry."""

import pytest

from repro.bench_suite import (
    circuit_names,
    get_spec,
    load_circuit,
    random_network,
)
from repro.errors import BenchmarkError
from repro.io import save_bench
from repro.network import network_stats


class TestRandomGenerator:
    def test_deterministic(self):
        a = random_network("r", 8, 40, 4, seed=5)
        b = random_network("r", 8, 40, 4, seed=5)
        assert [(n.uid, n.type, n.fanins) for n in a] == \
            [(n.uid, n.type, n.fanins) for n in b]

    def test_seed_changes_result(self):
        a = random_network("r", 8, 40, 4, seed=5)
        b = random_network("r", 8, 40, 4, seed=6)
        assert [(n.uid, n.type, n.fanins) for n in a] != \
            [(n.uid, n.type, n.fanins) for n in b]

    def test_interface_counts(self):
        net = random_network("r", 10, 60, 7, seed=1)
        assert len(net.pis) == 10
        assert len(net.pos) == 7
        net.validate()

    def test_depth_roughly_bounded(self):
        net = random_network("r", 10, 200, 5, seed=2, depth_target=12)
        # funnel trees may add a few levels on top of the target
        assert net.depth() <= 12 + 12

    def test_no_dead_logic(self):
        net = random_network("r", 10, 80, 4, seed=3)
        before = len(net)
        net.remove_unused()
        assert len(net) == before

    def test_bad_probabilities_rejected(self):
        with pytest.raises(BenchmarkError):
            random_network("r", 8, 10, 2, p_and=0.9, p_or=0.9,
                           p_inv=0.0, p_xor=0.0)

    def test_degenerate_interface_rejected(self):
        with pytest.raises(BenchmarkError):
            random_network("r", 1, 10, 1)
        with pytest.raises(BenchmarkError):
            random_network("r", 4, 2, 10)  # more POs than gates


class TestRegistry:
    def test_all_paper_circuits_present(self):
        names = set(circuit_names())
        for required in ("cm150", "mux", "z4ml", "cordic", "frg1", "f51m",
                         "count", "b9", "9symml", "apex7", "c432", "c880",
                         "t481", "c1355", "c499", "apex6", "c1908", "k2",
                         "c2670", "c5315", "c7552", "des", "c8", "x1", "i6",
                         "dalu", "rot", "c3540"):
            assert required in names, required

    def test_specs_have_metadata(self):
        for name in circuit_names():
            spec = get_spec(name)
            assert spec.kind in ("functional", "random")
            assert spec.description

    def test_unknown_circuit_rejected(self):
        with pytest.raises(BenchmarkError, match="unknown"):
            get_spec("nonesuch")

    def test_load_builds_named_network(self):
        net = load_circuit("z4ml")
        assert net.name == "z4ml"
        net.validate()

    def test_loads_are_deterministic(self):
        a = network_stats(load_circuit("frg1"))
        b = network_stats(load_circuit("frg1"))
        assert a == b

    def test_bench_dir_overrides_generator(self, tmp_path):
        # write a tiny .bench file named like a registry circuit
        from repro.network import network_from_expression

        tiny = network_from_expression("a * b", name="frg1")
        save_bench(tiny, str(tmp_path / "frg1.bench"))
        net = load_circuit("frg1", bench_dir=str(tmp_path))
        assert len(net.pis) == 2  # the file, not the generator
        assert net.name == "frg1"
